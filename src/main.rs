//! `stmatch` — command-line graph pattern matching.
//!
//! ```text
//! stmatch count  --graph data.lg|edges.txt --pattern q8|triangle|pattern.lg
//!                [--induced] [--no-symmetry] [--labels N[,SEED]]
//!                [--unroll N] [--blocks N] [--warps N] [--timeout SECS]
//!                [--devices N] [--enumerate LIMIT]
//! stmatch stats  --graph data.lg|edges.txt
//! stmatch gen    --kind rmat|er|pa --out edges.txt [--scale S] [--edges M] [--seed K]
//! ```
//!
//! Graph files ending in `.lg` are parsed as labeled graphs; anything else
//! as SNAP edge lists. Patterns are either a catalog name (`triangle`,
//! `wedge`, `square`, `diamond`, `k4`..., `q1`..`q24`) or a `.lg` file.

use std::process::exit;
use std::time::Duration;
use stmatch_core::{multi, Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, io, Graph, GraphStats};
use stmatch_pattern::{catalog, Pattern};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        exit(2);
    };
    let opts = Opts::parse(rest);
    match cmd.as_str() {
        "count" => count(&opts),
        "stats" => stats(&opts),
        "gen" => generate(&opts),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            exit(2);
        }
    }
}

#[derive(Default)]
struct Opts {
    graph: Option<String>,
    pattern: Option<String>,
    induced: bool,
    no_symmetry: bool,
    labels: Option<(u32, u64)>,
    unroll: Option<usize>,
    blocks: Option<usize>,
    warps: Option<usize>,
    timeout: Option<u64>,
    devices: usize,
    enumerate: Option<usize>,
    kind: Option<String>,
    out: Option<String>,
    scale: u32,
    edges: usize,
    seed: u64,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut o = Opts {
            devices: 1,
            scale: 10,
            edges: 8,
            seed: 42,
            ..Opts::default()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut next = |what: &str| -> String {
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("{what} needs a value");
                        exit(2);
                    })
                    .clone()
            };
            match a.as_str() {
                "--graph" => o.graph = Some(next("--graph")),
                "--pattern" => o.pattern = Some(next("--pattern")),
                "--induced" => o.induced = true,
                "--no-symmetry" => o.no_symmetry = true,
                "--labels" => {
                    let v = next("--labels");
                    let mut parts = v.splitn(2, ',');
                    let n: u32 = parts.next().unwrap().parse().expect("label count");
                    let seed: u64 = parts.next().map(|s| s.parse().expect("seed")).unwrap_or(0);
                    o.labels = Some((n, seed));
                }
                "--unroll" => o.unroll = Some(next("--unroll").parse().expect("unroll")),
                "--blocks" => o.blocks = Some(next("--blocks").parse().expect("blocks")),
                "--warps" => o.warps = Some(next("--warps").parse().expect("warps")),
                "--timeout" => o.timeout = Some(next("--timeout").parse().expect("seconds")),
                "--devices" => o.devices = next("--devices").parse().expect("devices"),
                "--enumerate" => o.enumerate = Some(next("--enumerate").parse().expect("limit")),
                "--kind" => o.kind = Some(next("--kind")),
                "--out" => o.out = Some(next("--out")),
                "--scale" => o.scale = next("--scale").parse().expect("scale"),
                "--edges" => o.edges = next("--edges").parse().expect("edges"),
                "--seed" => o.seed = next("--seed").parse().expect("seed"),
                other => {
                    eprintln!("unknown flag `{other}`");
                    usage();
                    exit(2);
                }
            }
        }
        o
    }
}

fn load_graph(opts: &Opts) -> Graph {
    let path = opts.graph.as_deref().unwrap_or_else(|| {
        eprintln!("--graph is required");
        exit(2);
    });
    let g = if path.ends_with(".lg") {
        io::load_lg(path)
    } else {
        io::load_edge_list(path)
    };
    let mut g = g.unwrap_or_else(|e| {
        eprintln!("failed to load `{path}`: {e}");
        exit(1);
    });
    if let Some((n, seed)) = opts.labels {
        g = gen::assign_random_labels(&g, n, seed);
    }
    g.degree_ordered().with_name(path)
}

fn load_pattern(opts: &Opts) -> Pattern {
    let spec = opts.pattern.as_deref().unwrap_or_else(|| {
        eprintln!("--pattern is required");
        exit(2);
    });
    let p = match spec {
        "triangle" => catalog::triangle(),
        "wedge" => catalog::wedge(),
        "square" => catalog::square(),
        "diamond" => catalog::diamond(),
        "star3" => catalog::star3(),
        "k4" => catalog::k4(),
        "k5" => catalog::clique(5),
        "k6" => catalog::clique(6),
        "k7" => catalog::clique(7),
        q if q.starts_with('q') => match q[1..].parse::<usize>() {
            Ok(i) if (1..=24).contains(&i) => catalog::paper_query(i),
            _ => {
                eprintln!("unknown query `{q}` (expect q1..q24)");
                exit(2);
            }
        },
        path => {
            let g = io::load_lg(path).unwrap_or_else(|e| {
                eprintln!("failed to load pattern `{path}`: {e}");
                exit(1);
            });
            Pattern::from_graph(&g)
        }
    };
    match opts.labels {
        Some((n, seed)) if !p.is_labeled() => p.with_random_labels(n, seed),
        _ => p,
    }
}

fn engine_config(opts: &Opts) -> EngineConfig {
    let mut cfg = EngineConfig {
        induced: opts.induced,
        symmetry_breaking: !opts.no_symmetry,
        ..EngineConfig::default()
    };
    if let Some(u) = opts.unroll {
        cfg = cfg.with_unroll(u);
    }
    let mut grid = GridConfig::default();
    if let Some(b) = opts.blocks {
        grid.num_blocks = b;
    }
    if let Some(w) = opts.warps {
        grid.warps_per_block = w;
    }
    cfg.with_grid(grid)
}

fn count(opts: &Opts) {
    let g = load_graph(opts);
    let p = load_pattern(opts);
    let mut engine = Engine::new(engine_config(opts));
    if let Some(secs) = opts.timeout {
        engine = engine.with_timeout(Duration::from_secs(secs));
    }
    eprintln!(
        "matching `{}` ({} vertices) against {} ({} vertices, induced={}, symmetry={})",
        g.name(),
        g.num_vertices(),
        p.name(),
        p.size(),
        opts.induced,
        !opts.no_symmetry
    );
    if let Some(limit) = opts.enumerate {
        let en = engine.enumerate(&g, &p).unwrap_or_else(|e| {
            eprintln!("launch failed: {e}");
            exit(1);
        });
        for emb in en.embeddings.iter().take(limit) {
            let cells: Vec<String> = emb.iter().map(|v| v.to_string()).collect();
            println!("{}", cells.join(" "));
        }
        eprintln!(
            "{} matches ({} shown), {:.1} ms",
            en.embeddings.len(),
            limit.min(en.embeddings.len()),
            en.outcome.elapsed_ms()
        );
        return;
    }
    if opts.devices > 1 {
        let out = multi::run_multi_device(&engine, &g, &p, opts.devices).unwrap_or_else(|e| {
            eprintln!("launch failed: {e}");
            exit(1);
        });
        println!("{}", out.count);
        eprintln!(
            "{} devices, bottleneck {:.2} Mcycles",
            opts.devices,
            out.simulated_cycles() as f64 / 1e6
        );
        return;
    }
    let out = engine.run(&g, &p).unwrap_or_else(|e| {
        eprintln!("launch failed: {e}");
        exit(1);
    });
    println!("{}", out.count);
    eprintln!(
        "{:.1} ms wall, {:.2} Mcycles (sim), lane utilization {:.1}%{}",
        out.elapsed_ms(),
        out.simulated_cycles() as f64 / 1e6,
        out.metrics.lane_utilization() * 100.0,
        if out.timed_out {
            " [TIMED OUT: partial]"
        } else {
            ""
        }
    );
}

fn stats(opts: &Opts) {
    let g = load_graph(opts);
    println!("{}", GraphStats::of(&g));
}

fn generate(opts: &Opts) {
    let kind = opts.kind.as_deref().unwrap_or("rmat");
    let g = match kind {
        "rmat" => gen::rmat(opts.scale, opts.edges, opts.seed),
        "er" => gen::erdos_renyi(1 << opts.scale, (1 << opts.scale) * opts.edges, opts.seed),
        "pa" => gen::preferential_attachment(1 << opts.scale, opts.edges.max(1), opts.seed),
        other => {
            eprintln!("unknown generator `{other}` (rmat|er|pa)");
            exit(2);
        }
    };
    let out = opts.out.as_deref().unwrap_or_else(|| {
        eprintln!("--out is required");
        exit(2);
    });
    let file = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create `{out}`: {e}");
        exit(1);
    });
    io::write_lg(&g, std::io::BufWriter::new(file)).expect("write");
    eprintln!(
        "wrote {} ({} vertices, {} edges) to {out}",
        kind,
        g.num_vertices(),
        g.num_edges()
    );
}

fn usage() {
    println!(
        "stmatch — stack-based graph pattern matching (STMatch, SC'22 reproduction)\n\n\
         usage:\n\
         \u{20}  stmatch count --graph G --pattern P [--induced] [--no-symmetry]\n\
         \u{20}                [--labels N[,SEED]] [--unroll N] [--blocks N] [--warps N]\n\
         \u{20}                [--timeout SECS] [--devices N] [--enumerate LIMIT]\n\
         \u{20}  stmatch stats --graph G\n\
         \u{20}  stmatch gen   --kind rmat|er|pa --out FILE [--scale S] [--edges M] [--seed K]\n\n\
         G: .lg (labeled) or SNAP edge list; P: catalog name (triangle, k5, q1..q24) or .lg file"
    );
}
