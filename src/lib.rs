//! # stmatch — facade crate
//!
//! Re-exports the whole STMatch reproduction workspace under one roof so
//! downstream users can depend on a single crate:
//!
//! ```
//! use stmatch::prelude::*;
//!
//! let graph = gen::erdos_renyi(64, 256, 1);
//! let engine = Engine::new(EngineConfig::default());
//! let triangles = engine.run(&graph, &catalog::triangle()).unwrap().count;
//! assert!(triangles > 0);
//! ```
//!
//! See the [`stmatch_core`] crate for the engine itself, and the
//! repository's README / DESIGN.md / EXPERIMENTS.md for the reproduction
//! story.

pub use stmatch_baselines as baselines;
pub use stmatch_core as core;
pub use stmatch_gpusim as gpusim;
pub use stmatch_graph as graph;
pub use stmatch_pattern as pattern;

/// One-stop imports for applications.
pub mod prelude {
    pub use stmatch_core::{Engine, EngineConfig, Enumeration, MatchOutcome};
    pub use stmatch_gpusim::GridConfig;
    pub use stmatch_graph::datasets::Dataset;
    pub use stmatch_graph::{gen, io, Graph, GraphBuilder, GraphStats};
    pub use stmatch_pattern::{catalog, MatchPlan, Pattern, PlanOptions};
}
