//! Labeled pattern search: a cybersecurity-style provenance query.
//!
//! Vertices carry type labels (0 = host, 1 = process, 2 = file,
//! 3 = socket); the query looks for a lateral-movement-shaped pattern: two
//! hosts bridged by a process that touches a file and a socket.
//!
//! Also demonstrates the `.lg` interchange format round-trip.
//!
//! ```text
//! cargo run --release --example labeled_search
//! ```

use stmatch_core::{Engine, EngineConfig};
use stmatch_graph::{gen, io, GraphBuilder};
use stmatch_pattern::Pattern;

const HOST: u32 = 0;
const PROCESS: u32 = 1;
const FILE: u32 = 2;
const SOCKET: u32 = 3;

fn main() {
    // A synthetic provenance graph: hosts own processes; processes touch
    // files and sockets; sockets connect host pairs.
    let base = gen::preferential_attachment(4000, 2, 7).degree_ordered();
    let mut b = GraphBuilder::with_capacity(base.num_vertices(), base.num_edges());
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    for v in base.vertices() {
        // Hubs behave like hosts, mid-degree like processes, leaves split
        // into files and sockets — a crude but structured type assignment.
        let label = match base.degree(v) {
            d if d >= 16 => HOST,
            d if d >= 4 => PROCESS,
            _ if v % 2 == 0 => FILE,
            _ => SOCKET,
        };
        b.set_label(v, label);
    }
    let graph = b.build().with_name("provenance");

    println!(
        "provenance graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_labels()
    );

    // Query: host - process - host bridge, with the process touching a
    // file (possible exfiltration staging).
    let bridge = Pattern::new(4, &[(0, 1), (1, 2), (1, 3)])
        .with_labels(&[HOST, PROCESS, HOST, FILE])
        .with_name("host-process-host+file");

    // Query: two processes sharing a file and a socket (possible C2
    // channel reuse).
    let shared_channel = Pattern::new(4, &[(0, 2), (0, 3), (1, 2), (1, 3)])
        .with_labels(&[PROCESS, PROCESS, FILE, SOCKET])
        .with_name("shared file+socket");

    let engine = Engine::new(EngineConfig::default());
    for q in [&bridge, &shared_channel] {
        let out = engine.run(&graph, q).expect("launch");
        println!(
            "{:<24} {:>10} matches  ({:.1} ms, {:.2} Mcycles sim)",
            q.name(),
            out.count,
            out.elapsed_ms(),
            out.simulated_cycles() as f64 / 1e6
        );
    }

    // Interchange: write the graph as .lg and read it back.
    let mut buf = Vec::new();
    io::write_lg(&graph, &mut buf).expect("serialize");
    let roundtrip = io::read_lg(buf.as_slice()).expect("parse");
    assert_eq!(roundtrip.num_edges(), graph.num_edges());
    println!(
        ".lg round-trip ok ({} bytes for {} edges)",
        buf.len(),
        graph.num_edges()
    );
}
