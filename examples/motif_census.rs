//! Motif census: the graph-analytics workload from the paper's
//! introduction. Counts every connected 3- and 4-vertex vertex-induced
//! motif in a network and reports their distribution — the fingerprint
//! used in social-network analysis and bioinformatics.
//!
//! ```text
//! cargo run --release --example motif_census
//! ```

use stmatch_core::{Engine, EngineConfig};
use stmatch_graph::datasets::Dataset;
use stmatch_pattern::{catalog, Pattern};

fn main() {
    let graph = Dataset::WikiVote.load();
    println!(
        "motif census of `{}` ({} vertices, {} edges)\n",
        graph.name(),
        graph.num_vertices(),
        graph.num_edges()
    );

    // All connected motifs of 3 and 4 vertices.
    let motifs: Vec<Pattern> = vec![
        catalog::wedge(),
        catalog::triangle(),
        catalog::path(4),
        catalog::star3(),
        catalog::square(),
        catalog::tailed_triangle(),
        catalog::diamond(),
        catalog::k4(),
    ];

    // A census partitions the k-subsets: induced counts.
    let engine = Engine::new(EngineConfig::default().induced(true));

    let mut results = Vec::new();
    for m in &motifs {
        let out = engine.run(&graph, m).expect("launch");
        results.push((m.name().to_string(), m.size(), out.count, out.elapsed_ms()));
    }

    for size in [3usize, 4] {
        let total: u64 = results
            .iter()
            .filter(|(_, s, _, _)| *s == size)
            .map(|(_, _, c, _)| *c)
            .sum();
        println!("{size}-vertex motifs (total {total}):");
        for (name, s, count, ms) in &results {
            if *s != size {
                continue;
            }
            let share = if total > 0 {
                100.0 * *count as f64 / total as f64
            } else {
                0.0
            };
            println!("  {name:<16} {count:>12}   {share:>6.2}%   ({ms:.1} ms)");
        }
        println!();
    }

    // Sanity: wedges + triangles must partition the connected 3-subsets.
    let wedges = results[0].2;
    let triangles = results[1].2;
    println!(
        "global clustering coefficient: {:.4}",
        3.0 * triangles as f64 / (wedges as f64 + 3.0 * triangles as f64)
    );
}
