//! Scaling study: multi-device partitioning and the work-stealing /
//! unrolling ablation on one workload.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use stmatch_core::{multi, Engine, EngineConfig};
use stmatch_graph::datasets::Dataset;
use stmatch_pattern::catalog;

fn main() {
    let graph = Dataset::MiCo.load();
    let query = catalog::paper_query(16);
    println!(
        "workload: unlabeled q16 (K6) on `{}` ({} vertices, {} edges)\n",
        graph.name(),
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- Multi-device scaling (Fig. 11) ---
    let engine = Engine::new(EngineConfig::default());
    let single = multi::run_multi_device(&engine, &graph, &query, 1).expect("launch");
    println!("multi-device scaling (simulated bottleneck time):");
    for devices in [1usize, 2, 4] {
        let out = multi::run_multi_device(&engine, &graph, &query, devices).expect("launch");
        assert_eq!(
            out.count, single.count,
            "partitioning must not change counts"
        );
        println!(
            "  {devices} device(s): {:>8.2} Mcycles   speedup {:.2}x",
            out.simulated_cycles() as f64 / 1e6,
            single.simulated_cycles() as f64 / out.simulated_cycles() as f64
        );
    }

    // --- Ablation (Fig. 12) ---
    println!("\nwork-stealing / unrolling ablation:");
    let configs: [(&str, EngineConfig); 4] = [
        ("naive", EngineConfig::naive()),
        ("localsteal", EngineConfig::local_steal_only()),
        ("local+globalsteal", EngineConfig::local_global_steal()),
        ("unroll+local+global", EngineConfig::full()),
    ];
    let mut naive_cycles = None;
    for (name, cfg) in configs {
        let out = Engine::new(cfg).run(&graph, &query).expect("launch");
        let mc = out.simulated_cycles() as f64 / 1e6;
        let base = *naive_cycles.get_or_insert(mc);
        println!(
            "  {name:<20} {mc:>8.2} Mcycles   speedup {:.2}x   busy {:>5.1}%   steals L{} G{}",
            base / mc,
            out.metrics.busy_fraction() * 100.0,
            out.metrics.total().local_steals,
            out.metrics.total().global_steal_receives,
        );
        assert_eq!(out.count, single.count, "{name} must not change counts");
    }
}
