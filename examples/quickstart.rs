//! Quickstart: count triangles and 5-cliques in a synthetic social graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stmatch_core::{Engine, EngineConfig};
use stmatch_graph::gen;
use stmatch_pattern::catalog;

fn main() {
    // A power-law graph standing in for a small social network.
    let graph = gen::rmat(10, 8, 42)
        .degree_ordered()
        .with_name("demo-social");
    println!(
        "graph `{}`: {} vertices, {} edges, max degree {}",
        graph.name(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // The default engine: stack-based matching with two-level work
    // stealing, loop unrolling (8) and code motion, on a simulated GPU
    // grid of 4 blocks x 4 warps.
    let engine = Engine::new(EngineConfig::default());

    for pattern in [catalog::triangle(), catalog::k4(), catalog::clique(5)] {
        let out = engine.run(&graph, &pattern).expect("launch");
        println!(
            "{:<10} {:>12} matches   {:>8.1} ms wall   {:>6.2} Mcycles (sim)   lane util {:>5.1}%",
            pattern.name(),
            out.count,
            out.elapsed_ms(),
            out.simulated_cycles() as f64 / 1e6,
            out.metrics.lane_utilization() * 100.0
        );
    }

    // Matching is configurable: vertex-induced mode, no symmetry breaking
    // (count embeddings instead of subgraphs), different unroll size...
    let cfg = EngineConfig {
        induced: true,
        symmetry_breaking: false,
        ..EngineConfig::default()
    };
    let squares = Engine::new(cfg)
        .run(&graph, &catalog::square())
        .expect("launch");
    println!(
        "vertex-induced square embeddings: {} (each square counted 8x, once per automorphism)",
        squares.count
    );
}
