//! Deadline / cancellation tests for the work-stealing scheduler under
//! the std::sync locks: a deliberately oversized enumeration with
//! [`Engine::with_timeout`] must come back within 1.5× the deadline, with
//! the abort flag latched (`MatchOutcome::timed_out`, which mirrors
//! `Board::aborted()`), and without panicking or deadlocking any warp in
//! the idle-spin loops of `steal.rs`. The tightened bound (previously 2×)
//! holds because the engine's idle-spin loop now polls
//! `Board::check_deadline` directly instead of relying solely on the
//! kernel's every-4096-claims poll.

use std::time::{Duration, Instant};
use stmatch_core::steal::Board;
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::gen;
use stmatch_pattern::catalog;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

/// A workload that takes far longer than the deadline: a hub-heavy graph
/// large enough that q9 (size 6, dense) enumerates for many seconds.
#[test]
fn oversized_run_returns_within_1p5x_the_deadline() {
    let g = gen::preferential_attachment(2000, 6, 1).degree_ordered();
    let q = catalog::paper_query(9);
    let deadline = Duration::from_millis(500);
    let engine = Engine::new(EngineConfig::full().with_grid(grid())).with_timeout(deadline);
    let t = Instant::now();
    let out = engine.run(&g, &q).expect("launch must not fail");
    let elapsed = t.elapsed();
    assert!(
        out.timed_out,
        "workload finished before the deadline ({elapsed:?}) — enlarge the graph"
    );
    assert!(
        elapsed < deadline * 3 / 2,
        "cancellation took {elapsed:?}, more than 1.5x the {deadline:?} deadline"
    );
}

/// The cancelled count is a partial lower bound (the paper's '−' cells
/// still report progress internally), and cancellation composes with the
/// stealing configurations.
#[test]
fn cancelled_runs_report_partial_progress_in_every_config() {
    let g = gen::preferential_attachment(2000, 6, 2).degree_ordered();
    let q = catalog::paper_query(9);
    let full = Engine::new(EngineConfig::full().with_grid(grid()))
        .run(&g, &catalog::triangle())
        .unwrap()
        .count;
    assert!(full > 0);
    for cfg in [
        EngineConfig::naive(),
        EngineConfig::local_steal_only(),
        EngineConfig::local_global_steal(),
        EngineConfig::full(),
    ] {
        let engine = Engine::new(cfg.with_grid(grid())).with_timeout(Duration::from_millis(200));
        let out = engine.run(&g, &q).expect("launch must not fail");
        assert!(out.timed_out, "config should time out on this workload");
        // Partial progress: the run did real work before the deadline.
        assert!(out.metrics.total().simt_instructions > 0);
    }
}

/// Board-level deadline mechanics, directly: a deadline in the past
/// latches the abort flag on the next poll, and the flag is sticky.
#[test]
fn board_latches_abort_on_expired_deadline() {
    let mut board = Board::new(2, 2, 2, (0, 1000), 10);
    assert!(!board.aborted());
    board.set_deadline(Instant::now() - Duration::from_millis(1));
    assert!(board.check_deadline(), "expired deadline must report abort");
    assert!(board.aborted(), "abort flag must latch");
    // Sticky even without a further deadline check.
    assert!(board.aborted());
}

/// A timeout that never fires leaves the outcome clean.
#[test]
fn generous_timeout_does_not_mark_timed_out() {
    let g = gen::erdos_renyi(30, 90, 4);
    let engine =
        Engine::new(EngineConfig::full().with_grid(grid())).with_timeout(Duration::from_secs(120));
    let out = engine.run(&g, &catalog::triangle()).unwrap();
    assert!(!out.timed_out);
}
