//! Property tests for the adaptive set-operation kernels: the three
//! host-side membership algorithms (binary search, linear merge, galloping
//! search) plus the ratio-driven auto selection must all produce exactly
//! the output of a scalar reference, with bit-identical simulator metrics,
//! across slot counts and input/operand size ratios — including the
//! empty-operand short-circuit and the arena sink's spill fallback.
//!
//! The hub-bitmap paths ride the same harness: `BitmapProbe` must match
//! the classic paths' outputs *and* metric tuple (it is an element-stream
//! algorithm), while `BitmapMerge` and the auto hub routing must match
//! outputs (their wave structure differs by design — see DESIGN.md §4f).
//! On failure the testkit harness shrinks the case and prints a seeded
//! reproduce line.

use std::sync::Mutex;

use stmatch_core::arena::StackArena;
use stmatch_core::setops::{apply_op_hub_into, apply_op_into, choose_algo, SetOpAlgo, SetOpTuning};
use stmatch_gpusim::{Grid, GridConfig, Warp, WarpMetrics};
use stmatch_graph::{gen, Graph, VertexId};
use stmatch_pattern::{LabelMask, OpKind};
use stmatch_testkit::prop::forall;
use stmatch_testkit::rng::Rng;

fn with_warp<F: Fn(&mut Warp) + Sync>(f: F) -> WarpMetrics {
    let grid = Grid::new(GridConfig {
        num_blocks: 1,
        warps_per_block: 1,
        shared_mem_per_block: 0,
    })
    .unwrap();
    grid.launch(|w| f(w)).warps[0]
}

/// Sorts and dedups a raw (possibly shrunk) vector into a valid set.
fn normalize(raw: &[VertexId]) -> Vec<VertexId> {
    let mut v = raw.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Scalar reference: per-slot intersection/difference by `contains`.
fn reference(input: &[VertexId], ops: &[VertexId], kind: OpKind) -> Vec<VertexId> {
    input
        .iter()
        .copied()
        .filter(|v| match kind {
            OpKind::Intersect => ops.contains(v),
            OpKind::Difference => !ops.contains(v),
        })
        .collect()
}

/// Runs one combined op over `slots` under `tuning` into plain vectors,
/// returning the outputs and the warp metrics.
fn run_vec(
    g: &Graph,
    slots: &[(Vec<VertexId>, Vec<VertexId>)],
    kind: OpKind,
    tuning: SetOpTuning,
) -> (Vec<Vec<VertexId>>, WarpMetrics) {
    let out = Mutex::new(Vec::new());
    let m = with_warp(|w| {
        let inputs: Vec<&[VertexId]> = slots.iter().map(|(a, _)| a.as_slice()).collect();
        let operands: Vec<&[VertexId]> = slots.iter().map(|(_, b)| b.as_slice()).collect();
        let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); slots.len()];
        apply_op_into(
            w,
            g,
            &inputs,
            &operands,
            kind,
            LabelMask::ALL,
            tuning,
            &mut outs[..],
        );
        *out.lock().unwrap() = outs;
    });
    (out.into_inner().unwrap(), m)
}

/// Same op streamed into a deliberately tiny-capacity [`StackArena`] so
/// most outputs take the spill path; returns the slot contents.
fn run_arena(
    g: &Graph,
    slots: &[(Vec<VertexId>, Vec<VertexId>)],
    kind: OpKind,
    tuning: SetOpTuning,
) -> Vec<Vec<VertexId>> {
    let out = Mutex::new(Vec::new());
    with_warp(|w| {
        let inputs: Vec<&[VertexId]> = slots.iter().map(|(a, _)| a.as_slice()).collect();
        let operands: Vec<&[VertexId]> = slots.iter().map(|(_, b)| b.as_slice()).collect();
        let mut arena = StackArena::new(1, slots.len(), 2);
        let (_, mut sink) = arena.split_for_write(0, slots.len());
        apply_op_into(
            w,
            g,
            &inputs,
            &operands,
            kind,
            LabelMask::ALL,
            tuning,
            &mut sink,
        );
        // ArenaWriter's Drop folds peak stats back into the arena, so the
        // writer must end before the slots are read out.
        drop(sink);
        *out.lock().unwrap() = (0..slots.len())
            .map(|u| arena.slot(0, u).to_vec())
            .collect();
    });
    out.into_inner().unwrap()
}

/// Packs a sorted set into hub-bitmap row words of the given stride.
fn bits_of(vals: &[VertexId], stride: usize) -> Vec<u64> {
    let mut words = vec![0u64; stride];
    for &v in vals {
        words[(v >> 6) as usize] |= 1u64 << (v & 63);
    }
    words
}

/// Runs one combined op through [`apply_op_hub_into`] with bitmap rows
/// attached per `give_input_bits`/`give_operand_bits`, returning outputs
/// and metrics. Values must stay below `stride * 64`.
fn run_vec_hub(
    g: &Graph,
    slots: &[(Vec<VertexId>, Vec<VertexId>)],
    kind: OpKind,
    tuning: SetOpTuning,
    stride: usize,
    give_input_bits: bool,
    give_operand_bits: bool,
) -> (Vec<Vec<VertexId>>, WarpMetrics) {
    let a_bits: Vec<Vec<u64>> = slots.iter().map(|(a, _)| bits_of(a, stride)).collect();
    let b_bits: Vec<Vec<u64>> = slots.iter().map(|(_, b)| bits_of(b, stride)).collect();
    let out = Mutex::new(Vec::new());
    let m = with_warp(|w| {
        let inputs: Vec<&[VertexId]> = slots.iter().map(|(a, _)| a.as_slice()).collect();
        let operands: Vec<&[VertexId]> = slots.iter().map(|(_, b)| b.as_slice()).collect();
        let input_bits: Vec<Option<&[u64]>> = a_bits
            .iter()
            .map(|b| give_input_bits.then_some(b.as_slice()))
            .collect();
        let operand_bits: Vec<Option<&[u64]>> = b_bits
            .iter()
            .map(|b| give_operand_bits.then_some(b.as_slice()))
            .collect();
        let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); slots.len()];
        apply_op_hub_into(
            w,
            g,
            &inputs,
            &input_bits,
            &operands,
            &operand_bits,
            kind,
            LabelMask::ALL,
            tuning,
            &mut outs[..],
        );
        *out.lock().unwrap() = outs;
    });
    (out.into_inner().unwrap(), m)
}

const TUNINGS: [(&str, SetOpTuning); 4] = [
    (
        "auto",
        SetOpTuning {
            merge_ratio: 4,
            gallop_ratio: 64,
            bitmap_ratio: 1,
            force: None,
        },
    ),
    (
        "bsearch",
        SetOpTuning {
            merge_ratio: 4,
            gallop_ratio: 64,
            bitmap_ratio: 1,
            force: Some(SetOpAlgo::BinarySearch),
        },
    ),
    (
        "merge",
        SetOpTuning {
            merge_ratio: 4,
            gallop_ratio: 64,
            bitmap_ratio: 1,
            force: Some(SetOpAlgo::Merge),
        },
    ),
    (
        "gallop",
        SetOpTuning {
            merge_ratio: 4,
            gallop_ratio: 64,
            bitmap_ratio: 1,
            force: Some(SetOpAlgo::Gallop),
        },
    ),
];

/// All four tunings agree with the scalar reference — and with each
/// other's simulated cost — on random multi-slot workloads spanning the
/// size ratios that trigger each algorithm (empty, ≈1×, ≈8×, ≈200×).
#[test]
fn all_paths_match_scalar_reference() {
    let g = gen::complete(2); // labels unused (mask ALL)
    forall(
        "setops_paths_agree",
        |rng| {
            let nslots = rng.gen_range(1u64..4) as usize;
            (0..nslots)
                .map(|_| {
                    let a_len = rng.gen_range(0u64..40) as usize;
                    // Ratio class drives which algorithm `auto` picks.
                    let b_len = match rng.gen_range(0u64..4) {
                        0 => 0,
                        1 => a_len.max(1),
                        2 => a_len.max(1) * 8,
                        _ => a_len.max(1) * 200,
                    };
                    let a: Vec<VertexId> = (0..a_len)
                        .map(|_| rng.gen_range(0u64..2000) as VertexId)
                        .collect();
                    let b: Vec<VertexId> = (0..b_len)
                        .map(|_| rng.gen_range(0u64..2000) as VertexId)
                        .collect();
                    (a, b)
                })
                .collect::<Vec<_>>()
        },
        |raw| {
            let slots: Vec<(Vec<VertexId>, Vec<VertexId>)> = raw
                .iter()
                .map(|(a, b)| (normalize(a), normalize(b)))
                .collect();
            for kind in [OpKind::Intersect, OpKind::Difference] {
                let mut metrics: Vec<(u64, u64, u64)> = Vec::new();
                for (name, tuning) in TUNINGS {
                    let (outs, m) = run_vec(&g, &slots, kind, tuning);
                    for (u, (a, b)) in slots.iter().enumerate() {
                        let want = reference(a, b, kind);
                        if outs[u] != want {
                            return Err(format!(
                                "{name} {kind:?} slot {u}: got {:?}, want {want:?}",
                                outs[u]
                            ));
                        }
                    }
                    metrics.push((
                        m.simt_instructions,
                        m.issued_lane_slots,
                        m.active_lane_slots,
                    ));
                    let arena_outs = run_arena(&g, &slots, kind, tuning);
                    for (u, (a, b)) in slots.iter().enumerate() {
                        let want = reference(a, b, kind);
                        if arena_outs[u] != want {
                            return Err(format!(
                                "{name} {kind:?} slot {u} via arena: got {:?}, want {want:?}",
                                arena_outs[u]
                            ));
                        }
                    }
                }
                if metrics.windows(2).any(|p| p[0] != p[1]) {
                    return Err(format!(
                        "{kind:?} metrics diverge across algorithms: {metrics:?}"
                    ));
                }
                // Hub-bitmap legs. Values are < 2000, so stride 32 words
                // (universe 2048) covers every generated set.
                let stride = 32;
                for (name, force, give_input_bits) in [
                    // Probe is an element-stream algorithm: outputs *and*
                    // the metric tuple must match the classic paths.
                    ("bitmap-probe", Some(SetOpAlgo::BitmapProbe), false),
                    // Merge deliberately restructures waves (word wavefronts
                    // instead of element waves): outputs only.
                    ("bitmap-merge", Some(SetOpAlgo::BitmapMerge), true),
                    // Auto routing with rows on both sides picks merge or
                    // probe per slot; outputs must still agree.
                    ("bitmap-auto", None, true),
                ] {
                    let tuning = SetOpTuning {
                        merge_ratio: 4,
                        gallop_ratio: 64,
                        bitmap_ratio: 1,
                        force,
                    };
                    let (outs, m) =
                        run_vec_hub(&g, &slots, kind, tuning, stride, give_input_bits, true);
                    for (u, (a, b)) in slots.iter().enumerate() {
                        let want = reference(a, b, kind);
                        if outs[u] != want {
                            return Err(format!(
                                "{name} {kind:?} slot {u}: got {:?}, want {want:?}",
                                outs[u]
                            ));
                        }
                    }
                    let tuple = (
                        m.simt_instructions,
                        m.issued_lane_slots,
                        m.active_lane_slots,
                    );
                    if name == "bitmap-probe" && tuple != metrics[0] {
                        return Err(format!(
                            "{name} {kind:?} metrics {tuple:?} != classic {:?}",
                            metrics[0]
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Forcing the thresholds (rather than the `force` override) routes slots
/// through each algorithm, and the routed result still matches.
#[test]
fn threshold_extremes_route_every_algorithm() {
    let g = gen::complete(2);
    let a: Vec<VertexId> = (0..60).step_by(3).collect();
    let b: Vec<VertexId> = (0..120).step_by(2).collect();
    for (tuning, expect) in [
        // merge_ratio 0 + gallop_ratio 1: everything non-trivial gallops.
        (
            SetOpTuning {
                merge_ratio: 0,
                gallop_ratio: 1,
                bitmap_ratio: 1,
                force: None,
            },
            SetOpAlgo::Gallop,
        ),
        // Huge merge_ratio: everything merges.
        (
            SetOpTuning {
                merge_ratio: usize::MAX,
                gallop_ratio: usize::MAX,
                bitmap_ratio: 1,
                force: None,
            },
            SetOpAlgo::Merge,
        ),
        // merge_ratio 0 + huge gallop_ratio: everything binary-searches.
        (
            SetOpTuning {
                merge_ratio: 0,
                gallop_ratio: usize::MAX,
                bitmap_ratio: 1,
                force: None,
            },
            SetOpAlgo::BinarySearch,
        ),
    ] {
        assert_eq!(choose_algo(a.len(), b.len(), tuning), expect);
        for kind in [OpKind::Intersect, OpKind::Difference] {
            let (outs, _) = run_vec(&g, &[(a.clone(), b.clone())], kind, tuning);
            assert_eq!(outs[0], reference(&a, &b, kind), "{expect:?} {kind:?}");
        }
    }
}

/// Empty operands short-circuit identically on every path, including when
/// mixed with non-empty slots in the same combined stream.
#[test]
fn empty_operand_mixed_slots_agree() {
    let g = gen::complete(2);
    let slots: Vec<(Vec<VertexId>, Vec<VertexId>)> = vec![
        (vec![1, 4, 9], vec![]),
        (vec![], vec![2, 3]),
        (vec![5, 6, 7], vec![6]),
    ];
    for kind in [OpKind::Intersect, OpKind::Difference] {
        for (name, tuning) in TUNINGS {
            let (outs, _) = run_vec(&g, &slots, kind, tuning);
            for (u, (a, b)) in slots.iter().enumerate() {
                assert_eq!(outs[u], reference(a, b, kind), "{name} {kind:?} slot {u}");
            }
        }
    }
}
