//! Property-based tests: on arbitrary random graphs, every engine must
//! agree with the oracle for every catalog pattern, regardless of
//! configuration knobs that should be semantically invisible (grid
//! geometry, unroll size, chunk size, stealing).

use proptest::prelude::*;
use stmatch_baselines::reference::{self, RefOptions};
use stmatch_core::{Engine, EngineConfig};
use stmatch_graph::{gen, Graph};
use stmatch_gpusim::GridConfig;
use stmatch_pattern::{catalog, Pattern};

fn grid(blocks: usize, wpb: usize) -> GridConfig {
    GridConfig {
        num_blocks: blocks,
        warps_per_block: wpb,
        shared_mem_per_block: 100 * 1024,
    }
}

fn oracle(g: &Graph, p: &Pattern, induced: bool) -> u64 {
    reference::count(
        g,
        p,
        RefOptions {
            induced,
            symmetry_breaking: true,
        },
    )
}

/// Strategy: a small random graph described by (n, m, seed).
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (8usize..40, 1usize..4, 0u64..1000).prop_map(|(n, density, seed)| {
        let m = n * density;
        gen::erdos_renyi(n, m, seed)
    })
}

/// Strategy: one of the catalog patterns, biased toward small ones so the
/// counts stay cheap under proptest's case count.
fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(catalog::triangle()),
        Just(catalog::wedge()),
        Just(catalog::square()),
        Just(catalog::diamond()),
        Just(catalog::star3()),
        Just(catalog::k4()),
        Just(catalog::tailed_triangle()),
        Just(catalog::paper_query(2)),
        Just(catalog::paper_query(5)),
        Just(catalog::paper_query(6)),
        Just(catalog::paper_query(8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn engine_matches_oracle_on_random_graphs(
        g in graph_strategy(),
        p in pattern_strategy(),
        induced in any::<bool>(),
    ) {
        let want = oracle(&g, &p, induced);
        let mut cfg = EngineConfig::default().with_grid(grid(2, 2));
        cfg.induced = induced;
        let got = Engine::new(cfg).run(&g, &p).unwrap().count;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_geometry_is_invisible(
        g in graph_strategy(),
        blocks in 1usize..4,
        wpb in 1usize..4,
    ) {
        let p = catalog::paper_query(6);
        let want = oracle(&g, &p, false);
        let cfg = EngineConfig::default().with_grid(grid(blocks, wpb));
        let got = Engine::new(cfg).run(&g, &p).unwrap().count;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn unroll_and_chunk_are_invisible(
        g in graph_strategy(),
        unroll in 1usize..16,
        chunk in 1usize..32,
    ) {
        let p = catalog::k4();
        let want = oracle(&g, &p, false);
        let mut cfg = EngineConfig::default().with_grid(grid(2, 2)).with_unroll(unroll);
        cfg.chunk_size = chunk;
        let got = Engine::new(cfg).run(&g, &p).unwrap().count;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn labeled_engine_matches_oracle(
        g in graph_strategy(),
        labels in 2u32..5,
        seed in 0u64..100,
    ) {
        let gl = gen::assign_random_labels(&g, labels, seed);
        let p = catalog::paper_query(3).with_random_labels(labels, seed);
        let want = reference::count(&gl, &p, RefOptions::default());
        let got = Engine::new(EngineConfig::default().with_grid(grid(2, 2)))
            .run(&gl, &p)
            .unwrap()
            .count;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn embeddings_equal_subgraphs_times_automorphisms(
        g in graph_strategy(),
    ) {
        for p in [catalog::triangle(), catalog::square(), catalog::star3()] {
            let aut = stmatch_pattern::symmetry::automorphism_count(&p) as u64;
            let mut sym = EngineConfig::default().with_grid(grid(2, 2));
            sym.symmetry_breaking = true;
            let mut nosym = sym;
            nosym.symmetry_breaking = false;
            let unique = Engine::new(sym).run(&g, &p).unwrap().count;
            let embeddings = Engine::new(nosym).run(&g, &p).unwrap().count;
            prop_assert_eq!(embeddings, unique * aut);
        }
    }

    #[test]
    fn alternative_matching_orders_agree(
        g in graph_strategy(),
        qi in 1usize..=24,
    ) {
        use stmatch_pattern::order::MatchOrder;
        use stmatch_pattern::{MatchPlan, PlanOptions};
        let q = catalog::paper_query(qi);
        // Skip the heavyweight sparse size-7 queries under proptest.
        if q.size() >= 7 && q.num_edges() < 10 {
            return Ok(());
        }
        let opts = PlanOptions::default();
        let engine = Engine::new(EngineConfig::default().with_grid(grid(2, 2)));
        let greedy = MatchPlan::compile_with_order(&q, MatchOrder::greedy(&q), opts);
        let degen = MatchPlan::compile_with_order(&q, MatchOrder::degeneracy(&q), opts);
        let a = engine.run_plan(&g, &greedy).unwrap().count;
        let b = engine.run_plan(&g, &degen).unwrap().count;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn clique_counts_match_binomials(n in 4usize..10) {
        // K_k in K_n: C(n, k) subgraphs.
        let g = gen::complete(n);
        let engine = Engine::new(EngineConfig::default().with_grid(grid(2, 2)));
        for k in 3..=4usize {
            let c = engine.run(&g, &catalog::clique(k)).unwrap().count;
            let binom = (0..k).fold(1u64, |acc, i| acc * (n - i) as u64) /
                        (1..=k).product::<usize>() as u64;
            prop_assert_eq!(c, binom);
        }
    }
}
