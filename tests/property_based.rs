//! Property-based tests: on arbitrary random graphs, every engine must
//! agree with the oracle for every catalog pattern, regardless of
//! configuration knobs that should be semantically invisible (grid
//! geometry, unroll size, chunk size, stealing).
//!
//! Runs on the in-tree `stmatch_testkit::prop` harness: each property
//! draws `TESTKIT_CASES` seeded inputs (default 24) as plain integer
//! tuples — so the harness can shrink them by halving — and the property
//! body maps them onto graphs/patterns, clamping shrunk values back into
//! their valid ranges. A failure panics with the minimal counterexample
//! and the `TESTKIT_SEED=... TESTKIT_CASES=1` line that replays it.

use stmatch_baselines::reference::{self, RefOptions};
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};
use stmatch_testkit::prop::forall;
use stmatch_testkit::rng::Rng;

fn grid(blocks: usize, wpb: usize) -> GridConfig {
    GridConfig {
        num_blocks: blocks,
        warps_per_block: wpb,
        shared_mem_per_block: 100 * 1024,
    }
}

fn oracle(g: &Graph, p: &Pattern, induced: bool) -> u64 {
    reference::count(
        g,
        p,
        RefOptions {
            induced,
            symmetry_breaking: true,
        },
    )
}

/// Maps a shrinkable `(n, density, seed)` triple onto a small random
/// graph, clamping out-of-range (possibly shrunk) values.
fn make_graph(n: usize, density: usize, seed: u64) -> Graph {
    let n = n.clamp(2, 40);
    gen::erdos_renyi(n, n * density.min(3), seed)
}

/// Maps a shrinkable index onto a catalog pattern, biased toward small
/// ones so the counts stay cheap under the harness's case count.
fn make_pattern(idx: usize) -> Pattern {
    match idx % 11 {
        0 => catalog::triangle(),
        1 => catalog::wedge(),
        2 => catalog::square(),
        3 => catalog::diamond(),
        4 => catalog::star3(),
        5 => catalog::k4(),
        6 => catalog::tailed_triangle(),
        7 => catalog::paper_query(2),
        8 => catalog::paper_query(5),
        9 => catalog::paper_query(6),
        _ => catalog::paper_query(8),
    }
}

#[test]
fn engine_matches_oracle_on_random_graphs() {
    forall(
        "engine_matches_oracle_on_random_graphs",
        |rng| {
            (
                rng.gen_range(8usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen::<bool>(),
                rng.gen_range(0usize..11),
            )
        },
        |&(n, density, seed, induced, pidx)| {
            let g = make_graph(n, density, seed);
            let p = make_pattern(pidx);
            let want = oracle(&g, &p, induced);
            let mut cfg = EngineConfig::default().with_grid(grid(2, 2));
            cfg.induced = induced;
            let got = Engine::new(cfg).run(&g, &p).unwrap().count;
            if got == want {
                Ok(())
            } else {
                Err(format!("{}: engine {got} != oracle {want}", p.name()))
            }
        },
    );
}

#[test]
fn grid_geometry_is_invisible() {
    forall(
        "grid_geometry_is_invisible",
        |rng| {
            (
                rng.gen_range(8usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen_range(1usize..4),
                rng.gen_range(1usize..4),
            )
        },
        |&(n, density, seed, blocks, wpb)| {
            let g = make_graph(n, density, seed);
            let p = catalog::paper_query(6);
            let want = oracle(&g, &p, false);
            let cfg = EngineConfig::default().with_grid(grid(blocks.clamp(1, 4), wpb.clamp(1, 4)));
            let got = Engine::new(cfg).run(&g, &p).unwrap().count;
            if got == want {
                Ok(())
            } else {
                Err(format!("blocks={blocks} wpb={wpb}: {got} != {want}"))
            }
        },
    );
}

#[test]
fn unroll_and_chunk_are_invisible() {
    forall(
        "unroll_and_chunk_are_invisible",
        |rng| {
            (
                rng.gen_range(8usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen_range(1usize..16),
                rng.gen_range(1usize..32),
            )
        },
        |&(n, density, seed, unroll, chunk)| {
            let g = make_graph(n, density, seed);
            let p = catalog::k4();
            let want = oracle(&g, &p, false);
            let mut cfg = EngineConfig::default()
                .with_grid(grid(2, 2))
                .with_unroll(unroll.max(1));
            cfg.chunk_size = chunk.max(1);
            let got = Engine::new(cfg).run(&g, &p).unwrap().count;
            if got == want {
                Ok(())
            } else {
                Err(format!("unroll={unroll} chunk={chunk}: {got} != {want}"))
            }
        },
    );
}

#[test]
fn labeled_engine_matches_oracle() {
    forall(
        "labeled_engine_matches_oracle",
        |rng| {
            (
                rng.gen_range(8usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen_range(2u32..5),
                rng.gen_range(0u64..100),
            )
        },
        |&(n, density, seed, labels, lseed)| {
            let labels = labels.clamp(1, 4);
            let gl = gen::assign_random_labels(&make_graph(n, density, seed), labels, lseed);
            let p = catalog::paper_query(3).with_random_labels(labels, lseed);
            let want = reference::count(&gl, &p, RefOptions::default());
            let got = Engine::new(EngineConfig::default().with_grid(grid(2, 2)))
                .run(&gl, &p)
                .unwrap()
                .count;
            if got == want {
                Ok(())
            } else {
                Err(format!("labels={labels}: {got} != {want}"))
            }
        },
    );
}

#[test]
fn embeddings_equal_subgraphs_times_automorphisms() {
    forall(
        "embeddings_equal_subgraphs_times_automorphisms",
        |rng| {
            (
                rng.gen_range(8usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
            )
        },
        |&(n, density, seed)| {
            let g = make_graph(n, density, seed);
            for p in [catalog::triangle(), catalog::square(), catalog::star3()] {
                let aut = stmatch_pattern::symmetry::automorphism_count(&p) as u64;
                let mut sym = EngineConfig::default().with_grid(grid(2, 2));
                sym.symmetry_breaking = true;
                let mut nosym = sym;
                nosym.symmetry_breaking = false;
                let unique = Engine::new(sym).run(&g, &p).unwrap().count;
                let embeddings = Engine::new(nosym).run(&g, &p).unwrap().count;
                if embeddings != unique * aut {
                    return Err(format!(
                        "{}: {embeddings} embeddings != {unique} x {aut} automorphisms",
                        p.name()
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn alternative_matching_orders_agree() {
    forall(
        "alternative_matching_orders_agree",
        |rng| {
            (
                rng.gen_range(8usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen_range(1usize..=24),
            )
        },
        |&(n, density, seed, qi)| {
            use stmatch_pattern::order::MatchOrder;
            use stmatch_pattern::{MatchPlan, PlanOptions};
            let qi = qi.clamp(1, 24);
            let g = make_graph(n, density, seed);
            let q = catalog::paper_query(qi);
            // Skip the heavyweight sparse size-7 queries under the
            // property case count.
            if q.size() >= 7 && q.num_edges() < 10 {
                return Ok(());
            }
            let opts = PlanOptions::default();
            let engine = Engine::new(EngineConfig::default().with_grid(grid(2, 2)));
            let greedy = MatchPlan::compile_with_order(&q, MatchOrder::greedy(&q), opts);
            let degen = MatchPlan::compile_with_order(&q, MatchOrder::degeneracy(&q), opts);
            let a = engine.run_plan(&g, &greedy).unwrap().count;
            let b = engine.run_plan(&g, &degen).unwrap().count;
            if a == b {
                Ok(())
            } else {
                Err(format!("q{qi}: greedy {a} != degeneracy {b}"))
            }
        },
    );
}

#[test]
fn clique_counts_match_binomials() {
    forall(
        "clique_counts_match_binomials",
        |rng| (rng.gen_range(4usize..10),),
        |&(n,)| {
            // K_k in K_n: C(n, k) subgraphs.
            let n = n.clamp(4, 10);
            let g = gen::complete(n);
            let engine = Engine::new(EngineConfig::default().with_grid(grid(2, 2)));
            for k in 3..=4usize {
                let c = engine.run(&g, &catalog::clique(k)).unwrap().count;
                let binom = (0..k).fold(1u64, |acc, i| acc * (n - i) as u64)
                    / (1..=k).product::<usize>() as u64;
                if c != binom {
                    return Err(format!("K{k} in K{n}: {c} != C({n},{k}) = {binom}"));
                }
            }
            Ok(())
        },
    );
}
