//! Cross-validation and behavioural contracts of the baseline systems:
//! oracle agreement on wider inputs, memory-model ordering (trie vs full
//! rows), kernel-launch accounting, and hybrid batching.

use stmatch_baselines::reference::{self, RefOptions};
use stmatch_baselines::{cuts, dryadic, gsi};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::catalog;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn cuts_cfg() -> cuts::CutsConfig {
    cuts::CutsConfig {
        grid: grid(),
        ..Default::default()
    }
}

fn gsi_cfg() -> gsi::GsiConfig {
    gsi::GsiConfig {
        grid: grid(),
        ..Default::default()
    }
}

fn graphs() -> Vec<Graph> {
    vec![
        gen::erdos_renyi(36, 150, 21).with_name("er36"),
        gen::preferential_attachment(60, 2, 5)
            .degree_ordered()
            .with_name("pa60"),
        gen::grid(6, 6).with_name("grid6"),
        gen::complete_bipartite(6, 7).with_name("k67"),
    ]
}

#[test]
fn subgraph_centric_engines_agree_with_oracle_widely() {
    for g in graphs() {
        for i in [1usize, 3, 6, 8, 11, 14, 16, 20, 22, 24] {
            let q = catalog::paper_query(i);
            let want = reference::count(&g, &q, RefOptions::default());
            let c = cuts::run(&g, &q, cuts_cfg()).unwrap().count;
            assert_eq!(c, want, "cuts {} q{i}", g.name());
            let s = gsi::run(&g, &q, gsi_cfg()).unwrap().count;
            assert_eq!(s, want, "gsi {} q{i}", g.name());
        }
    }
}

#[test]
fn dryadic_agrees_with_oracle_widely() {
    for g in graphs() {
        for i in [2usize, 4, 7, 9, 12, 15, 18, 21, 23] {
            let q = catalog::paper_query(i);
            for induced in [false, true] {
                let want = reference::count(
                    &g,
                    &q,
                    RefOptions {
                        induced,
                        symmetry_breaking: true,
                    },
                );
                let cfg = dryadic::DryadicConfig {
                    threads: 3,
                    induced,
                    ..Default::default()
                };
                assert_eq!(
                    dryadic::run(&g, &q, cfg).count,
                    want,
                    "dryadic {} q{i} induced={induced}",
                    g.name()
                );
            }
        }
    }
}

#[test]
fn trie_storage_uses_less_memory_than_full_rows() {
    // On the same workload, the cuTS-like trie (8 B/node, parents shared)
    // must peak below the GSI-like full-row table (4 B x row width).
    let g = gen::erdos_renyi(100, 800, 9);
    let q = catalog::paper_query(8); // K5: width-5 rows vs depth-5 trie
    let mut ccfg = cuts_cfg();
    ccfg.batch_roots = usize::MAX; // pure BFS so peaks are comparable
    let c = cuts::run(&g, &q, ccfg).unwrap();
    let s = gsi::run(&g, &q, gsi_cfg()).unwrap();
    assert_eq!(c.count, s.count);
    assert!(
        c.peak_memory < s.peak_memory,
        "trie {} B vs rows {} B",
        c.peak_memory,
        s.peak_memory
    );
}

#[test]
fn kernel_launch_counts_follow_the_level_structure() {
    // A complete graph guarantees non-empty frontiers at every level, so
    // the engines launch exactly once per extension step.
    let g = gen::complete(10);
    for size in [3usize, 5, 7] {
        let q = catalog::clique(size);
        let gs = gsi::run(&g, &q, gsi_cfg()).unwrap();
        assert_eq!(
            gs.metrics.kernel_launches,
            (size - 1) as u64,
            "gsi K{size}: one launch per extension level"
        );
        let mut ccfg = cuts_cfg();
        ccfg.batch_roots = usize::MAX;
        let cu = cuts::run(&g, &q, ccfg).unwrap();
        assert_eq!(cu.metrics.kernel_launches, (size - 1) as u64);
    }
}

#[test]
fn hybrid_batching_launch_counts_scale_with_batches() {
    let g = gen::erdos_renyi(64, 256, 4);
    let q = catalog::k4();
    let mut one_batch = cuts_cfg();
    one_batch.batch_roots = usize::MAX;
    let a = cuts::run(&g, &q, one_batch).unwrap();
    let mut many = cuts_cfg();
    many.batch_roots = 8;
    let b = cuts::run(&g, &q, many).unwrap();
    assert_eq!(a.count, b.count);
    assert!(b.metrics.kernel_launches > a.metrics.kernel_launches);
    assert!(b.peak_memory <= a.peak_memory);
}

#[test]
fn oom_is_deterministic_and_leaves_no_leak() {
    let g = gen::complete(30);
    let q = catalog::paper_query(16); // K6 on K30: enormous frontier
    let mut cfg = cuts_cfg();
    cfg.memory_limit = 4 * 1024;
    cfg.batch_roots = 32;
    for _ in 0..3 {
        assert!(cuts::run(&g, &q, cfg).is_err(), "must OOM every time");
    }
}

#[test]
fn dryadic_ops_metric_is_deterministic_and_additive() {
    let g = gen::erdos_renyi(50, 220, 12);
    let q = catalog::paper_query(8);
    let base = dryadic::run(
        &g,
        &q,
        dryadic::DryadicConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let again = dryadic::run(
        &g,
        &q,
        dryadic::DryadicConfig {
            threads: 1,
            ..Default::default()
        },
    );
    assert_eq!(base.element_ops, again.element_ops);
    assert!(base.element_ops > 0);
}

#[test]
fn reference_enumeration_matches_engine_enumeration() {
    use stmatch_core::{Engine, EngineConfig};
    let g = gen::erdos_renyi(24, 80, 31);
    for p in [
        catalog::triangle(),
        catalog::square(),
        catalog::paper_query(6),
    ] {
        let engine = Engine::new(EngineConfig::default().with_grid(grid()));
        let mine = engine.enumerate(&g, &p).unwrap();
        // Remap the oracle's order-position embeddings to pattern-vertex
        // indexing for comparison.
        let order = stmatch_pattern::order::MatchOrder::greedy(&p);
        let mut theirs: Vec<Vec<u32>> = Vec::new();
        reference::enumerate(&g, &p, RefOptions::default(), |m| {
            let mut emb = vec![0u32; p.size()];
            for (pos, &v) in m.iter().enumerate() {
                emb[order.vertex_at(pos)] = v;
            }
            theirs.push(emb);
        });
        theirs.sort_unstable();
        assert_eq!(mine.embeddings, theirs, "{}", p.name());
    }
}
