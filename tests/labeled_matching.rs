//! Labeled-matching semantics across the whole stack: label masks, merged
//! multi-label intermediate sets, per-system agreement, and degenerate
//! label distributions.

use stmatch_baselines::reference::{self, RefOptions};
use stmatch_baselines::{dryadic, gsi};
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_grid(grid()))
}

fn oracle(g: &Graph, p: &Pattern) -> u64 {
    reference::count(g, p, RefOptions::default())
}

#[test]
fn all_labeled_paper_queries_agree_across_systems() {
    let g = gen::assign_random_labels(&gen::erdos_renyi(40, 160, 6), 4, 9);
    for i in 1..=24 {
        let q = catalog::paper_query(i).with_random_labels(4, i as u64);
        let want = oracle(&g, &q);
        assert_eq!(engine().run(&g, &q).unwrap().count, want, "stmatch q{i}");
        let d = dryadic::run(
            &g,
            &q,
            dryadic::DryadicConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(d.count, want, "dryadic q{i}");
        let gs = gsi::run(
            &g,
            &q,
            gsi::GsiConfig {
                grid: grid(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(gs.count, want, "gsi q{i}");
    }
}

#[test]
fn single_label_graph_equals_unlabeled() {
    // Everything labeled 0 must behave exactly like the unlabeled case
    // when the query is all-zero-labeled too.
    let g = gen::erdos_renyi(36, 140, 2);
    let gl = g.relabeled(vec![0; g.num_vertices()]);
    let q = catalog::paper_query(6);
    let ql = q.clone().with_labels(&[0; 5]);
    let unlabeled = engine().run(&g, &q).unwrap().count;
    let labeled = engine().run(&gl, &ql).unwrap().count;
    assert_eq!(unlabeled, labeled);
}

#[test]
fn absent_label_yields_zero() {
    let g = gen::assign_random_labels(&gen::complete(12), 3, 4); // labels 0..3
    let q = catalog::triangle().with_labels(&[7, 7, 7]); // label 7 unused
    assert_eq!(engine().run(&g, &q).unwrap().count, 0);
}

#[test]
fn label_permutations_partition_the_triangles() {
    // Sum over all label triples (a <= b <= c assignments via distinct
    // patterns) must equal the unlabeled triangle count.
    let base = gen::erdos_renyi(30, 140, 11);
    let g = gen::assign_random_labels(&base, 2, 5);
    let unlabeled = engine().run(&base, &catalog::triangle()).unwrap().count;
    let mut labeled_sum = 0u64;
    for a in 0..2u32 {
        for b in 0..2u32 {
            for c in 0..2u32 {
                // Count embeddings (not subgraphs) to avoid automorphism
                // weighting differences between label assignments, then
                // divide by |Aut(triangle)| = 6 at the end.
                let q = catalog::triangle().with_labels(&[a, b, c]);
                let mut cfg = EngineConfig::default().with_grid(grid());
                cfg.symmetry_breaking = false;
                labeled_sum += Engine::new(cfg).run(&g, &q).unwrap().count;
            }
        }
    }
    assert_eq!(labeled_sum / 6, unlabeled);
}

#[test]
fn many_labels_stress_the_mask_paths() {
    // 64+ labels exercise the LabelMask conservative path (labels >= 64
    // always pass the mask and rely on the exact candidate check).
    let base = gen::erdos_renyi(80, 400, 8);
    let labels: Vec<u32> = (0..base.num_vertices() as u32).map(|v| v % 70).collect();
    let g = base.relabeled(labels);
    let q = catalog::triangle().with_labels(&[65, 66, 67]);
    let want = oracle(&g, &q);
    assert_eq!(engine().run(&g, &q).unwrap().count, want);
}

#[test]
fn merged_intermediates_do_not_change_results() {
    // A pattern engineered so different target labels share a prefix: the
    // merged multi-label set (Fig. 10b) must not alter counts vs the
    // no-code-motion plan.
    let g = gen::assign_random_labels(&gen::erdos_renyi(50, 260, 3), 3, 14);
    let q = catalog::clique(5).with_labels(&[0, 1, 2, 1, 0]);
    let with = engine().run(&g, &q).unwrap().count;
    let mut cfg = EngineConfig::default().with_grid(grid());
    cfg.code_motion = false;
    let without = Engine::new(cfg).run(&g, &q).unwrap().count;
    assert_eq!(with, without);
    assert_eq!(with, oracle(&g, &q));
}

#[test]
fn labeled_vertex_induced_agrees() {
    let g = gen::assign_random_labels(&gen::erdos_renyi(32, 120, 19), 3, 1);
    for i in [2usize, 3, 6, 10, 13] {
        let q = catalog::paper_query(i).with_random_labels(3, i as u64);
        let want = reference::count(
            &g,
            &q,
            RefOptions {
                induced: true,
                symmetry_breaking: true,
            },
        );
        let mut cfg = EngineConfig::default().with_grid(grid());
        cfg.induced = true;
        assert_eq!(Engine::new(cfg).run(&g, &q).unwrap().count, want, "q{i}");
    }
}
