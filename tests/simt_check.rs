//! Integration gate for the `simt-check` concurrency analysis layer.
//!
//! Two obligations, both load-bearing for the checker's credibility:
//!
//! * **Zero false positives.** Every checker enabled over real engine
//!   runs — the paper-query goldens and the fault-injection scenarios —
//!   must produce no error diagnostics. A checker that cries wolf on
//!   correct code is worse than no checker.
//! * **Mutation kill.** The seeded concurrency bugs in
//!   `stmatch_core::steal::mutation` (a deleted mirror-lock acquisition,
//!   an inverted slot/mirror lock order) must be caught with diagnostics
//!   naming the involved sites. If a refactor ever lets one go silent,
//!   this file (and the `smoke:check` CI phase) fails.
//!
//! The checkers are process-global, so every test takes the [`SERIAL`]
//! mutex and re-`enable`s (which resets shadow cells, the lock graph,
//! wave-site stats, and pending diagnostics).

use std::sync::Mutex;

use simt_check::{CheckConfig, Diagnostic, Severity};
use stmatch_core::steal::{mutation, Board};
use stmatch_core::{Engine, EngineConfig, FaultPlan};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::gen;
use stmatch_pattern::catalog;

/// Checker state is process-global; tests enabling it must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned guard only means another checker test failed; the state
    // is re-`enable`d (reset) below, so continuing is sound.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 4,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    }
}

/// The hub-skewed golden fixture of `tests/golden_counts.rs`.
fn fixture() -> stmatch_graph::Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn errors(diags: &[Diagnostic]) -> Vec<String> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(Diagnostic::render)
        .collect()
}

/// All checkers over the full paper-query sweep on the golden fixture:
/// counts must match the pinned goldens (instrumentation must not perturb
/// results) and no error diagnostic may fire (no false positives). The
/// biggest queries (q9/q17/q19, millions of matches) are skipped here —
/// shadow-cell tracking serializes on a global map, and q1..q8 + the rest
/// already cover every distinct synchronization pattern the engine has.
#[test]
fn clean_queries_produce_no_diagnostics() {
    let _g = serial();
    // Edge-induced golden counts from tests/golden_counts.rs.
    const GOLDEN: &[(usize, u64)] = &[
        (1, 119531),
        (2, 5176),
        (3, 9200),
        (4, 34587),
        (5, 1486),
        (6, 2884),
        (7, 88),
        (8, 4),
        (10, 31430),
        (11, 967),
        (12, 258862),
        (13, 155617),
        (14, 621),
        (15, 3),
        (16, 0),
        (18, 186933),
        (20, 129),
        (21, 1294),
        (22, 78),
        (23, 0),
        (24, 0),
    ];
    simt_check::enable(CheckConfig::all());
    let g = fixture();
    let cfg = EngineConfig::full().with_grid(grid());
    for &(qi, want) in GOLDEN {
        let got = Engine::new(cfg)
            .run(&g, &catalog::paper_query(qi))
            .expect("launch")
            .count;
        assert_eq!(got, want, "q{qi} count drifted under instrumentation");
    }
    let diags = simt_check::drain();
    simt_check::disable();
    let errs = errors(&diags);
    assert!(
        errs.is_empty(),
        "false positives on clean paper queries:\n{}",
        errs.join("\n")
    );
}

/// All checkers with hub-bitmap routing enabled: the bitmap probe, the
/// word-wave merge, and the fused chain paths issue their own `wave` /
/// `ballot` sequences, so they must satisfy the divergence lint's ballot
/// ⊆ active contract and perturb no counts. Runs both with and without
/// code motion (the fused chains mostly live in the no-motion recompute).
#[test]
fn hub_bitmap_paths_produce_no_diagnostics() {
    let _g = serial();
    const GOLDEN: &[(usize, u64)] = &[(1, 119531), (6, 2884), (8, 4)];
    simt_check::enable(CheckConfig::all());
    let g = fixture().with_hub_bitmap(6);
    for motion in [true, false] {
        let mut cfg = EngineConfig::full().with_grid(grid()).with_hub_bitmap(true);
        cfg.code_motion = motion;
        for &(qi, want) in GOLDEN {
            let got = Engine::new(cfg)
                .run(&g, &catalog::paper_query(qi))
                .expect("launch")
                .count;
            assert_eq!(got, want, "q{qi} drifted under bitmap + motion={motion}");
        }
    }
    let diags = simt_check::drain();
    simt_check::disable();
    let errs = errors(&diags);
    assert!(
        errs.is_empty(),
        "false positives on hub-bitmap paths:\n{}",
        errs.join("\n")
    );
}

/// All checkers over the fault-injection scenarios: contained panics,
/// stalls, and poisoned publishes are *correct* executions (the
/// containment protocol orders every recovery path), so the checkers must
/// stay silent while recovery machinery runs — by construction of the
/// happens-before edges, not by suppression.
#[test]
fn fault_injection_produces_no_diagnostics() {
    let _g = serial();
    simt_check::enable(CheckConfig::all());
    let g = fixture();
    let cfg = EngineConfig::full().with_grid(grid());
    let q = catalog::paper_query(1);

    // Seeded plan: one panic + one stall (the smoke:faults scenario).
    let plan = FaultPlan::seeded(0x1d, grid().total_warps(), 1, 1);
    let r = Engine::new(cfg)
        .with_fault_plan(plan)
        .run(&g, &q)
        .expect("faulty launch");
    assert_eq!(r.count, 119531, "count must survive the seeded faults");
    if let Some(f) = &r.fault {
        assert!(f.fully_recovered(), "seeded plan must be fully recovered");
    }

    // Poisoned publishes: panics mid-critical-section, exercising the
    // poison-recovery paths of every tracked lock.
    let plan = FaultPlan::new()
        .poison_publish_at(0, 4)
        .poison_publish_at(5, 4);
    let r = Engine::new(cfg)
        .with_fault_plan(plan)
        .run(&g, &q)
        .expect("poisoned launch");
    assert_eq!(r.count, 119531, "count must survive poisoned publishes");

    let diags = simt_check::drain();
    simt_check::disable();
    let errs = errors(&diags);
    assert!(
        errs.is_empty(),
        "false positives under fault injection:\n{}",
        errs.join("\n")
    );
}

/// Divergence lint, positive case: a star graph under the naive config
/// (no unrolling) streams one-element candidate sets through 32-wide
/// waves — exactly the sustained sub-warp utilization the paper's loop
/// unrolling exists to fix. The lint must fire and name the set-op
/// streaming site (`setops.rs`), not a wrapper.
#[test]
fn skewed_fixture_trips_subwarp_lint_at_setops_site() {
    let _g = serial();
    simt_check::enable(CheckConfig {
        races: false,
        deadlock: false,
        ..CheckConfig::all()
    });
    let g = gen::star(40).degree_ordered();
    let cfg = EngineConfig::naive().with_grid(grid());
    let _ = Engine::new(cfg)
        .run(&g, &catalog::paper_query(1))
        .expect("launch");
    let diags = simt_check::drain();
    simt_check::disable();
    let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "subwarp-util").collect();
    assert!(
        !hits.is_empty(),
        "star graph + unroll 1 must trip the sub-warp lint; got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
    assert!(
        hits.iter().any(|d| d.message.contains("setops.rs")),
        "lint must name the set-op streaming site:\n{}",
        hits.iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        hits.iter().all(|d| d.severity == Severity::Warning),
        "sub-warp utilization is advisory, not an error"
    );
}

/// Divergence lint, negative case: a complete graph under the full config
/// keeps candidate sets warp-sized and batches eight unroll slots per
/// wave — utilization stays high and the lint must stay quiet.
#[test]
fn balanced_fixture_stays_clean() {
    let _g = serial();
    simt_check::enable(CheckConfig {
        races: false,
        deadlock: false,
        ..CheckConfig::all()
    });
    let g = gen::complete(32).degree_ordered();
    let cfg = EngineConfig::full().with_grid(grid());
    let _ = Engine::new(cfg)
        .run(&g, &catalog::paper_query(1))
        .expect("launch");
    let diags = simt_check::drain();
    simt_check::disable();
    let subwarp: Vec<String> = diags
        .iter()
        .filter(|d| d.code == "subwarp-util")
        .map(Diagnostic::render)
        .collect();
    assert!(
        subwarp.is_empty(),
        "balanced fixture must not trip the sub-warp lint:\n{}",
        subwarp.join("\n")
    );
    assert!(errors(&diags).is_empty());
}

/// Mutation kill, race detector: `claim_shallow_without_lock` replays a
/// shallow claim whose `Mirror::lock` acquisition was deleted. A worker
/// thread seeds the mirror *under* the tracked lock; `std::thread`
/// spawn/join is invisible to the checker (only tracked locks and launch
/// fork/join create happens-before), so the unlocked claim from the host
/// thread has no edge to the worker's locked write — a data race naming
/// both sites.
#[test]
fn mutation_lock_drop_is_caught_as_race() {
    let _g = serial();
    simt_check::enable(CheckConfig {
        divergence: false,
        ..CheckConfig::all()
    });
    simt_check::set_reproduce(
        "SIMT_CHECK=races,deadlock cargo run --release -p stmatch-bench \
         --bin simt_check -- --mutate=lock-drop",
    );
    let board = Board::new(1, 2, 2, (0, 100), 10);
    std::thread::scope(|s| {
        s.spawn(|| {
            // The legitimate, locked seeding write (the racing site).
            let mut m = board.mirror(0).lock();
            m.size[0] = 4;
        });
    });
    let claimed = mutation::claim_shallow_without_lock(&board, 0, 0);
    assert_eq!(claimed, Some(0), "mutation must still claim work");
    let diags = simt_check::drain();
    simt_check::disable();
    let races: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "race").collect();
    assert!(
        !races.is_empty(),
        "deleted lock acquisition must be reported as a race; got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
    let msg = &races[0].message;
    assert!(
        msg.contains("mirror[0]"),
        "race must name the mirror cell: {msg}"
    );
    assert!(
        msg.contains("steal.rs") && msg.contains("simt_check.rs"),
        "race must name both the mutation site and the locked site: {msg}"
    );
    assert!(
        races[0]
            .reproduce
            .as_deref()
            .unwrap_or("")
            .contains("SIMT_CHECK="),
        "diagnostic must carry a deterministic reproduce line"
    );
}

/// Mutation kill, deadlock analyzer: after one legitimate global push has
/// recorded the declared slot → mirror nesting, `push_global_inverted`
/// (mirror held across the slot acquisition) closes a cycle in the
/// runtime acquisition graph and must be reported with both edge sites.
#[test]
fn mutation_lock_invert_is_caught_as_cycle() {
    let _g = serial();
    simt_check::enable(CheckConfig {
        races: false,
        divergence: false,
        ..CheckConfig::all()
    });
    simt_check::set_reproduce(
        "SIMT_CHECK=races,deadlock cargo run --release -p stmatch-bench \
         --bin simt_check -- --mutate=lock-invert",
    );
    // Two blocks × one warp: warp 0 pushes into block 1's slot.
    let board = Board::new(2, 1, 2, (0, 100), 10);
    board.mark_idle(1);
    board.mirror(0).lock().size[0] = 4;
    // Legitimate push: slot (rank 10) then mirror (rank 30).
    assert!(board.try_push_global(0), "the legitimate push must land");
    // Drain the slot and restore idleness so the mutation can re-push.
    assert!(board.try_claim_global(1).is_some());
    board.mark_idle(1);
    // Inverted push: mirror held across the slot acquisition.
    assert!(mutation::push_global_inverted(&board, 0));
    let diags = simt_check::drain();
    simt_check::disable();
    let cycles: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "lock-cycle").collect();
    assert!(
        !cycles.is_empty(),
        "inverted lock order must be reported as a cycle; got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
    let msg = &cycles[0].message;
    assert!(
        msg.contains("GlobalSlot") && msg.contains("Mirror"),
        "cycle must name both lock classes: {msg}"
    );
    assert!(
        msg.contains("steal.rs"),
        "cycle must carry the acquisition sites: {msg}"
    );
    assert!(
        cycles[0]
            .reproduce
            .as_deref()
            .unwrap_or("")
            .contains("--mutate=lock-invert"),
        "diagnostic must carry a deterministic reproduce line"
    );
}

/// All checkers over the resident service's concurrent-submission path:
/// multiple client threads racing into the admission queue, two workers
/// draining batches onto warm slots (parked warp threads + recycled
/// arenas), plan-cache hits and misses, a fault-injected query and a
/// queued-deadline expiry — all while the race detector watches the
/// service's new shadow state (`plan-cache[id]`, per-instance boards,
/// recycled arena cells). Zero error diagnostics allowed, and every
/// count must stay at the golden value under instrumentation.
#[test]
fn service_concurrent_submissions_produce_no_diagnostics() {
    let _g = serial();
    simt_check::enable(CheckConfig::all());
    let svc = stmatch_core::MatchService::new(
        std::sync::Arc::new(fixture()),
        stmatch_core::ServiceConfig::new(EngineConfig::full().with_grid(grid()))
            .with_workers(2)
            .with_batch_max(4),
    );
    // Edge-induced goldens from tests/golden_counts.rs (cheap queries).
    const GOLDEN: &[(usize, u64)] = &[(1, 119531), (6, 2884), (8, 4)];
    let svc_ref = &svc;
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(move || {
                for &(qi, want) in GOLDEN {
                    let out = svc_ref
                        .submit(&catalog::paper_query(qi), Default::default())
                        .expect("clean query");
                    assert_eq!(out.count, want, "q{qi} drifted under instrumentation");
                }
            });
        }
        s.spawn(move || {
            // A fault-injected neighbour: deaths contained per query.
            let opts = stmatch_core::QueryOptions {
                fault_plan: Some(FaultPlan::seeded(0x1d, grid().total_warps(), 1, 1)),
                ..Default::default()
            };
            let out = svc_ref
                .submit(&catalog::paper_query(1), opts)
                .expect("faulted query recovers");
            assert_eq!(out.count, 119531);
        });
        s.spawn(move || {
            // A queued-deadline expiry: replies without launching.
            let opts = stmatch_core::QueryOptions {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            };
            assert!(svc_ref.submit(&catalog::paper_query(1), opts).is_err());
        });
    });
    drop(svc); // graceful shutdown is part of the checked surface
    let diags = simt_check::drain();
    simt_check::disable();
    let errs = errors(&diags);
    assert!(
        errs.is_empty(),
        "false positives on the service path:\n{}",
        errs.join("\n")
    );
}

/// All checkers over the service's *tier-up* path (PR 7): plan
/// compilation on with a threshold low enough that the resident q8
/// cascade promotes while other clients are hitting the same cache entry
/// — the exact write the `tier-state[p]` shadow cell and `PlanTierUp`
/// lock class (rank 3, between `ServiceAdmission` and
/// `ServicePlanCache`) exist to order. Concurrent `cache_stats` sweeps
/// ride along: they clone compiled plans out of the cache lock and then
/// read tier state, which would deadlock-cycle if anyone nested the
/// locks the other way. Zero error diagnostics allowed; counts stay at
/// the goldens; the tier counters must show the promotion happened.
#[test]
fn service_tier_up_races_produce_no_diagnostics() {
    let _g = serial();
    simt_check::enable(CheckConfig::all());
    let mut engine_cfg = EngineConfig::full().with_grid(grid());
    engine_cfg.compile.enabled = true;
    engine_cfg.compile.tier_up_after = 64;
    let svc = stmatch_core::MatchService::new(
        std::sync::Arc::new(fixture()),
        stmatch_core::ServiceConfig::new(engine_cfg)
            .with_workers(2)
            .with_batch_max(4),
    );
    // Edge-induced goldens from tests/golden_counts.rs: q8 is the
    // promotable cascade; q1 (path) and q6 (general) stay tier 0.
    const GOLDEN: &[(usize, u64)] = &[(1, 119531), (6, 2884), (8, 4)];
    let svc_ref = &svc;
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(move || {
                for &(qi, want) in GOLDEN {
                    let out = svc_ref
                        .submit(&catalog::paper_query(qi), Default::default())
                        .expect("clean query");
                    assert_eq!(out.count, want, "q{qi} drifted under instrumentation");
                }
            });
        }
        s.spawn(move || {
            // Stat sweeps racing the tier-ups: each takes the cache lock,
            // drops it, then the per-plan tier locks.
            for _ in 0..16 {
                let _ = svc_ref.cache_stats();
                std::thread::yield_now();
            }
        });
    });
    let stats = svc.cache_stats();
    assert_eq!(stats.tier_ups, 1, "the q8 entry must promote exactly once");
    assert_eq!(
        stats.tier0_served + stats.specialized_hits,
        9,
        "every submission served at some tier"
    );
    drop(svc);
    let diags = simt_check::drain();
    simt_check::disable();
    let errs = errors(&diags);
    assert!(
        errs.is_empty(),
        "false positives on the tier-up path:\n{}",
        errs.join("\n")
    );
}

/// Mutation kill, race detector, service edition:
/// `cache_insert_without_lock` inserts a plan through the raw mutex,
/// bypassing the tracked `ServicePlanCache` lock. A prior blocking submit
/// guarantees a worker has already written the cache *under* the tracked
/// lock, and the mpsc reply channel is invisible to the checker — so the
/// untracked insert has no happens-before edge to the worker's write and
/// must be reported as a data race naming the `plan-cache` cell.
#[test]
fn mutation_cache_drop_is_caught_as_race() {
    let _g = serial();
    simt_check::enable(CheckConfig {
        divergence: false,
        ..CheckConfig::all()
    });
    simt_check::set_reproduce(
        "SIMT_CHECK=races,deadlock cargo run --release -p stmatch-bench \
         --bin simt_check -- --mutate=cache-drop",
    );
    let svc = stmatch_core::MatchService::new(
        std::sync::Arc::new(fixture()),
        stmatch_core::ServiceConfig::new(EngineConfig::full().with_grid(grid())).with_workers(1),
    );
    // Seed the cache through the front door: the worker's locked write.
    // (No cache_stats() call after this — that takes the tracked lock and
    // would order this thread after the worker, hiding the race.)
    let out = svc
        .submit(&catalog::paper_query(8), Default::default())
        .expect("seeding query");
    assert_eq!(out.count, 4);
    stmatch_core::service::mutation::cache_insert_without_lock(&svc, &catalog::paper_query(7));
    let diags = simt_check::drain();
    simt_check::disable();
    let races: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "race").collect();
    assert!(
        !races.is_empty(),
        "untracked cache insert must be reported as a race; got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
    let msg = &races[0].message;
    assert!(
        msg.contains("plan-cache["),
        "race must name the plan-cache cell: {msg}"
    );
    assert!(
        msg.contains("service.rs"),
        "race must carry the service sites: {msg}"
    );
    assert!(
        races[0]
            .reproduce
            .as_deref()
            .unwrap_or("")
            .contains("--mutate=cache-drop"),
        "diagnostic must carry a deterministic reproduce line"
    );
}

/// The checkers default to off, and a disabled checker files nothing even
/// when instrumented state is exercised.
#[test]
fn disabled_checkers_are_silent() {
    let _g = serial();
    simt_check::enable(CheckConfig::off());
    let board = Board::new(1, 2, 2, (0, 100), 10);
    let _ = mutation::claim_shallow_without_lock(&board, 0, 0);
    let _ = board.mirror(0).lock();
    let diags = simt_check::drain();
    assert!(diags.is_empty(), "checkers off must mean zero diagnostics");
}
