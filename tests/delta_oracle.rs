//! Incremental-matching oracle: on seeded update streams, cumulative
//! [`MatchDelta`]s must reconcile with full recomputation *after every
//! batch* — the exactness contract of DESIGN.md §4k. Runs the paper's
//! full q1..q24 catalog on both golden fixture graphs (the same seeded
//! generators `tests/golden_counts.rs` pins), plus adversarial batch
//! shapes and a shrinking property over arbitrary graphs and streams.

use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, DeltaOverlay, EdgeOp, Graph};
use stmatch_pattern::{catalog, Pattern};
use stmatch_testkit::prop::forall;
use stmatch_testkit::rng::{Rng, SplitMix64};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn engine() -> Engine {
    Engine::new(EngineConfig::default().with_grid(grid()).with_delta(true))
}

/// The two golden fixture graphs (same derivation as
/// `tests/golden_counts.rs` — if those shapes change, these streams
/// change with them).
fn unlabeled_graph() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn labeled_graph() -> Graph {
    gen::assign_random_labels(&gen::rmat(6, 4, 11).degree_ordered(), 10, 2022)
}

/// One seeded batch of `ops` random edge toggles against the overlay's
/// current state: delete when present, insert when absent. Ops on the
/// same pair may repeat within a batch (exercising in-batch
/// cancellation); the overlay's net lists are what the delta runs on.
fn seeded_batch(overlay: &DeltaOverlay, rng: &mut SplitMix64, ops: usize) -> Vec<EdgeOp> {
    let n = overlay.num_vertices() as u32;
    let mut out: Vec<EdgeOp> = Vec::with_capacity(ops);
    while out.len() < ops {
        let u = (rng.next_u64() % n as u64) as u32;
        let v = (rng.next_u64() % n as u64) as u32;
        if u == v {
            continue;
        }
        // Toggle against the overlay *plus* the ops already in this
        // batch, so repeats flip back and forth deterministically.
        let mut present = overlay.has_edge(u, v);
        for op in &out {
            let (a, b) = (op.u.min(op.v), op.u.max(op.v));
            if (a, b) == (u.min(v), u.max(v)) {
                present = op.insert;
            }
        }
        out.push(if present {
            EdgeOp::delete(u, v)
        } else {
            EdgeOp::insert(u, v)
        });
    }
    out
}

/// Drives `batches` seeded batches over `base`, reconciling every
/// query's running count (seeded from a full run on the base graph)
/// against full recomputation on the post-batch snapshot after each
/// step. Compacts mid-stream to prove folding is invisible.
fn check_stream(base: Graph, queries: &[Pattern], seed: u64, batches: usize, ops: usize) {
    let e = engine();
    let plans: Vec<_> = queries.iter().map(|q| e.compile_delta(q)).collect();
    let mut running: Vec<i64> = queries
        .iter()
        .map(|q| e.run(&base, q).expect("base count").count as i64)
        .collect();
    let mut overlay = DeltaOverlay::new(base);
    let mut rng = SplitMix64::new(seed);
    for step in 0..batches {
        let pre = overlay.snapshot();
        let ops = seeded_batch(&overlay, &mut rng, ops);
        let batch = overlay.apply(&ops);
        if step == batches / 2 {
            // Mid-stream compaction: the folded CSR and the patched view
            // must be indistinguishable to both full and delta runs.
            overlay.compact();
        }
        let post = overlay.snapshot();
        for (i, q) in queries.iter().enumerate() {
            let delta = e
                .run_delta_plans(&pre, &post, &batch, &plans[i])
                .expect("delta run");
            running[i] += delta.net();
            let full = e.run(&post, q).expect("recompute").count;
            assert_eq!(
                running[i],
                full as i64,
                "query {} diverged at step {step} (batch {batch:?}, delta {delta:?})",
                q.name(),
            );
        }
    }
}

#[test]
fn update_stream_reconciles_q1_to_q24_on_the_unlabeled_fixture() {
    let queries: Vec<Pattern> = (1..=24).map(catalog::paper_query).collect();
    check_stream(unlabeled_graph(), &queries, 0xd17a_0001, 3, 6);
}

#[test]
fn update_stream_reconciles_q1_to_q24_on_the_labeled_fixture() {
    let queries: Vec<Pattern> = (1..=24)
        .map(|i| catalog::paper_query(i).with_random_labels(10, i as u64))
        .collect();
    check_stream(labeled_graph(), &queries, 0xd17a_0002, 3, 6);
}

/// Delete-only stream: strip a hub vertex bare one batch at a time. The
/// added side must stay zero the whole way.
#[test]
fn delete_only_stream_reports_no_additions() {
    let base = unlabeled_graph();
    let hub = 0u32; // degree-ordered: vertex 0 is the heaviest hub
    let victims: Vec<u32> = base.neighbors(hub).to_vec();
    let e = engine();
    let q = catalog::triangle();
    let mut running = e.run(&base, &q).unwrap().count as i64;
    let mut overlay = DeltaOverlay::new(base);
    for chunk in victims.chunks(4) {
        let pre = overlay.snapshot();
        let ops: Vec<EdgeOp> = chunk.iter().map(|&v| EdgeOp::delete(hub, v)).collect();
        let batch = overlay.apply(&ops);
        let post = overlay.snapshot();
        let delta = e.run_delta(&pre, &post, &batch, &q).unwrap();
        assert_eq!(delta.added, 0, "deletes cannot add edge-induced matches");
        running += delta.net();
        assert_eq!(running, e.run(&post, &q).unwrap().count as i64);
    }
    assert_eq!(overlay.degree(hub), 0, "the hub was stripped bare");
}

/// In-batch cancellation: inserting and deleting the same edge within
/// one batch (in both orders, alongside a real update) nets to exactly
/// the real update's delta.
#[test]
fn insert_then_delete_same_edge_within_a_batch_cancels() {
    let base = unlabeled_graph();
    let absent: Vec<(u32, u32)> = (0..48u32)
        .flat_map(|u| (u + 1..48).map(move |v| (u, v)))
        .filter(|&(u, v)| !base.has_edge(u, v))
        .take(2)
        .collect();
    let (x, y) = absent[0];
    let (a, b) = absent[1];
    let e = engine();
    let q = catalog::triangle();
    let before = e.run(&base, &q).unwrap().count as i64;
    let mut overlay = DeltaOverlay::new(base);
    let pre = overlay.snapshot();
    let batch = overlay.apply(&[
        EdgeOp::insert(x, y), // cancels below
        EdgeOp::insert(a, b), // the real update
        EdgeOp::delete(x, y),
    ]);
    assert_eq!(batch.inserts, vec![(a.min(b), a.max(b))]);
    assert!(batch.deletes.is_empty());
    let post = overlay.snapshot();
    let delta = e.run_delta(&pre, &post, &batch, &q).unwrap();
    assert_eq!(delta.removed, 0);
    assert_eq!(
        before + delta.net(),
        e.run(&post, &q).unwrap().count as i64,
        "only the surviving insert contributes"
    );
}

/// Shrinking property: on arbitrary Erdős–Rényi graphs and seeded
/// streams, a two-batch stream reconciles for a rotating catalog
/// pattern. Failures shrink to a minimal `(n, density, seed, pattern)`
/// tuple with a `TESTKIT_SEED=...` reproduce line.
#[test]
fn prop_random_streams_reconcile() {
    forall(
        "delta stream reconciles with recompute",
        |rng| {
            (
                rng.gen_range(6usize..32),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen_range(0usize..6),
            )
        },
        |&(n, density, seed, qidx)| {
            let n = n.clamp(4, 32);
            let base = gen::erdos_renyi(n, n * density.clamp(1, 3), seed);
            let q = match qidx % 6 {
                0 => catalog::triangle(),
                1 => catalog::wedge(),
                2 => catalog::square(),
                3 => catalog::diamond(),
                4 => catalog::k4(),
                _ => catalog::tailed_triangle(),
            };
            let e = engine();
            let plans = e.compile_delta(&q);
            let mut running = e.run(&base, &q).map_err(|e| e.to_string())?.count as i64;
            let mut overlay = DeltaOverlay::new(base);
            let mut rng = SplitMix64::new(seed ^ 0xde17a);
            for _ in 0..2 {
                let pre = overlay.snapshot();
                let ops = seeded_batch(&overlay, &mut rng, 5);
                let batch = overlay.apply(&ops);
                let post = overlay.snapshot();
                let delta = e
                    .run_delta_plans(&pre, &post, &batch, &plans)
                    .map_err(|e| e.to_string())?;
                running += delta.net();
                let full = e.run(&post, &q).map_err(|e| e.to_string())?.count;
                if running != full as i64 {
                    return Err(format!(
                        "query {} diverged: running {running} vs full {full} \
                         after batch {batch:?} (delta {delta:?})",
                        q.name()
                    ));
                }
            }
            Ok(())
        },
    );
}

/// The per-batch cost must scale with the batch, not the graph: a
/// single-edge delta on a 4x larger graph does strictly less simulated
/// work than one full recount on the small graph.
#[test]
fn delta_work_scales_with_batch_not_graph() {
    let small = unlabeled_graph();
    let big = gen::preferential_attachment(192, 4, 9).degree_ordered();
    let q = catalog::triangle();
    let e = engine();
    let full_small = e.run(&small, &q).unwrap().metrics.total().simt_instructions;
    let absent = (0..192u32)
        .flat_map(|u| (u + 1..192).map(move |v| (u, v)))
        .find(|&(u, v)| !big.has_edge(u, v))
        .unwrap();
    let mut overlay = DeltaOverlay::new(big);
    let pre = overlay.snapshot();
    let batch = overlay.apply(&[EdgeOp::insert(absent.0, absent.1)]);
    let post = overlay.snapshot();
    // Count instructions across the delta's anchored launches by running
    // them through the same API and summing the outcome metrics is not
    // exposed; instead bound wall-clock-free work via the recompute on
    // the big graph, which must dwarf the small-graph recount.
    let delta = e.run_delta(&pre, &post, &batch, &q).unwrap();
    let full_big = e.run(&post, &q).unwrap().metrics.total().simt_instructions;
    assert!(
        full_big > full_small,
        "sanity: the big graph costs more to recount"
    );
    // The delta of a single inserted edge touches two endpoints'
    // neighborhoods; its added count is bounded by the smaller endpoint
    // degree, far below the graph's triangle count.
    assert!(delta.added <= post.degree(absent.0).min(post.degree(absent.1)) as u64);
    assert_eq!(delta.removed, 0);
}
