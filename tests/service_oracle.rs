//! Service-vs-oracle equivalence: every admission path of the resident
//! [`MatchService`] — cold (plan compiled), plan-cache hit, and batched
//! concurrent submission — must produce counts exactly equal to the
//! one-shot [`Engine::run`] golden oracle for q1..q24 on both fixture
//! graphs of `tests/golden_counts.rs`. The pinned numbers ARE the
//! `Engine::run` results (that file re-derives them every CI run), so
//! comparing against the table is comparing against the oracle without
//! paying for a second live sweep.
//!
//! A separate leg pins *metric* exactness: under the deterministic naive
//! schedule, a cache-hit service run must reproduce the cold `Engine::run`
//! outcome field for field — same instruction totals, same launch shape —
//! proving the warm path (recycled arenas, parked warp threads, cached
//! plan) changes where the work runs, not what work runs.

use std::sync::Arc;
use stmatch_core::{Engine, EngineConfig, MatchService, QueryOptions, ServiceConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::catalog;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn unlabeled_graph() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn labeled_graph() -> Graph {
    gen::assign_random_labels(&gen::rmat(6, 4, 11).degree_ordered(), 10, 2022)
}

/// `(query, edge-induced, vertex-induced, labeled)` — kept in lockstep
/// with `tests/golden_counts.rs` (which re-derives these from
/// `Engine::run` every run).
const GOLDEN: &[(usize, u64, u64, u64)] = &[
    (1, 119531, 17771, 92),
    (2, 5176, 633, 0),
    (3, 9200, 1568, 0),
    (4, 34587, 5603, 12),
    (5, 1486, 524, 0),
    (6, 2884, 617, 7),
    (7, 88, 48, 0),
    (8, 4, 4, 0),
    (9, 915277, 40034, 4),
    (10, 31430, 1021, 2),
    (11, 967, 20, 0),
    (12, 258862, 10979, 14),
    (13, 155617, 12324, 3),
    (14, 621, 40, 0),
    (15, 3, 3, 0),
    (16, 0, 0, 0),
    (17, 6605944, 73704, 0),
    (18, 186933, 1477, 0),
    (19, 1783390, 16736, 12),
    (20, 129, 0, 0),
    (21, 1294, 15, 0),
    (22, 78, 0, 0),
    (23, 0, 0, 0),
    (24, 0, 0, 0),
];

fn service(graph: Graph) -> MatchService {
    MatchService::new(
        Arc::new(graph),
        ServiceConfig::new(EngineConfig::default().with_grid(grid())).with_workers(2),
    )
}

/// Cold then hot on the unlabeled fixture: the first submission of each
/// query compiles (miss), the second must hit the cache — both paths
/// count-exact against the oracle for all 24 queries.
#[test]
fn cold_and_cache_hit_paths_match_oracle_unlabeled() {
    let svc = service(unlabeled_graph());
    for &(qi, edge_induced, _, _) in GOLDEN {
        let q = catalog::paper_query(qi);
        let cold = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(cold.count, edge_induced, "cold q{qi}");
        let hot = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(hot.count, edge_induced, "cache-hit q{qi}");
    }
    let stats = svc.cache_stats();
    assert_eq!(stats.hits, 24, "every second submission must hit");
    // Some paper queries are isomorphic to each other, so entries can be
    // below 24 — but never above, and every miss compiled at most once.
    assert!(stats.entries <= 24);
    assert_eq!(stats.misses as usize, stats.entries);
}

/// Same cold/hot discipline on the labeled fixture with the Table-3 label
/// derivation.
#[test]
fn cold_and_cache_hit_paths_match_oracle_labeled() {
    let svc = service(labeled_graph());
    for &(qi, _, _, labeled) in GOLDEN {
        let q = catalog::paper_query(qi).with_random_labels(10, qi as u64);
        let cold = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(cold.count, labeled, "cold labeled q{qi}");
        let hot = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(hot.count, labeled, "cache-hit labeled q{qi}");
    }
    assert_eq!(svc.cache_stats().hits, 24);
}

/// Batched-concurrent admission, unlabeled: all 24 queries enqueued at
/// once from four client threads, drained in batches by two workers onto
/// shared warm slots — every count still oracle-exact. The vertex-induced
/// semantics ride along via the per-query override, so this also proves
/// option plumbing through admission.
#[test]
fn batched_concurrent_submissions_match_oracle_unlabeled() {
    let svc = service(unlabeled_graph());
    let svc = &svc;
    std::thread::scope(|s| {
        for chunk in GOLDEN.chunks(6) {
            s.spawn(move || {
                for &(qi, edge_induced, vertex_induced, _) in chunk {
                    let q = catalog::paper_query(qi);
                    let edge = svc.enqueue(&q, QueryOptions::default());
                    let vertex = svc.enqueue(
                        &q,
                        QueryOptions {
                            induced: Some(true),
                            ..QueryOptions::default()
                        },
                    );
                    assert_eq!(edge.wait().unwrap().count, edge_induced, "edge q{qi}");
                    assert_eq!(vertex.wait().unwrap().count, vertex_induced, "vertex q{qi}");
                }
            });
        }
    });
}

/// Batched-concurrent admission on the labeled fixture.
#[test]
fn batched_concurrent_submissions_match_oracle_labeled() {
    let svc = service(labeled_graph());
    let svc = &svc;
    std::thread::scope(|s| {
        for chunk in GOLDEN.chunks(6) {
            s.spawn(move || {
                for &(qi, _, _, labeled) in chunk {
                    let q = catalog::paper_query(qi).with_random_labels(10, qi as u64);
                    let got = svc.submit(&q, QueryOptions::default()).unwrap();
                    assert_eq!(got.count, labeled, "concurrent labeled q{qi}");
                }
            });
        }
    });
}

/// Metric exactness on the cache-hit path: under the deterministic naive
/// schedule (no stealing, so instruction totals are schedule-independent)
/// a warm cache-hit run must reproduce the cold `Engine::run` outcome
/// field for field — count, instruction totals, launch geometry, spills.
#[test]
fn cache_hit_path_is_metric_exact_against_cold_engine() {
    let cfg = EngineConfig::naive().with_grid(grid());
    let graph = unlabeled_graph();
    let svc = MatchService::new(
        Arc::new(unlabeled_graph()),
        ServiceConfig::new(cfg).with_workers(1),
    );
    for qi in [1usize, 4, 6, 9, 12] {
        let q = catalog::paper_query(qi);
        let oracle = Engine::new(cfg).run(&graph, &q).unwrap();
        // Prime the cache, then take the measured (hit) run.
        svc.submit(&q, QueryOptions::default()).unwrap();
        let warm = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(warm.count, oracle.count, "q{qi} count");
        // Note: only the *total* is schedule-independent — which warp
        // claims which chunk is a thread-timing artifact even in naive
        // mode, so per-warp maxima (simulated_cycles) may differ.
        assert_eq!(
            warm.total_instructions(),
            oracle.total_instructions(),
            "q{qi} instruction total"
        );
        assert_eq!(warm.num_sets, oracle.num_sets, "q{qi} num_sets");
        assert_eq!(warm.stack_bytes, oracle.stack_bytes, "q{qi} stack bytes");
        assert_eq!(
            warm.shared_bytes_per_block, oracle.shared_bytes_per_block,
            "q{qi} shared bytes"
        );
        assert_eq!(warm.spill_events, oracle.spill_events, "q{qi} spills");
        assert_eq!(warm.metrics.kernel_launches, oracle.metrics.kernel_launches);
        assert!(warm.fault.is_none() && !warm.timed_out);
        assert!(warm.downgrades.is_empty());
    }
}
