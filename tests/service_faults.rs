//! Fault isolation on the resident service: queries carrying injected
//! warp deaths or expired deadlines fail (or recover) *per query*, while
//! concurrently admitted healthy queries on the same warm pool keep
//! returning exact counts — the shared grids, arenas, and plan cache are
//! never poisoned by a neighbour's death.

use std::sync::Arc;
use std::time::Duration;
use stmatch_core::{
    Engine, EngineConfig, FaultPlan, MatchService, QueryOptions, ServiceConfig, ServiceError,
};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::catalog;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn fixture_graph() -> Graph {
    gen::erdos_renyi(48, 192, 7).degree_ordered()
}

fn service() -> (MatchService, u64) {
    let graph = fixture_graph();
    let q = catalog::paper_query(6); // bowtie
    let oracle = Engine::new(EngineConfig::default().with_grid(grid()))
        .run(&graph, &q)
        .unwrap()
        .count;
    assert!(oracle > 0, "fixture must be non-trivial");
    let svc = MatchService::new(
        Arc::new(graph),
        ServiceConfig::new(EngineConfig::default().with_grid(grid())).with_workers(2),
    );
    (svc, oracle)
}

/// Injected warp deaths riding on one query recover to the exact count
/// (PR3 containment) and surface in that query's `FaultReport` — while
/// healthy queries admitted concurrently on the same pool stay exact and
/// fault-free.
#[test]
fn injected_deaths_are_contained_per_query() {
    let (svc, oracle) = service();
    let q = catalog::paper_query(6);
    let faulty_opts = QueryOptions {
        fault_plan: Some(FaultPlan::seeded(0xBEEF, grid().total_warps(), 2, 1)),
        ..QueryOptions::default()
    };
    let svc_ref = &svc;
    std::thread::scope(|s| {
        let faulty = s.spawn(move || svc_ref.submit(&q, faulty_opts));
        let healthy: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || svc_ref.submit(&catalog::paper_query(6), QueryOptions::default()))
            })
            .collect();
        let out = faulty
            .join()
            .unwrap()
            .expect("faulted query still completes");
        assert_eq!(out.count, oracle, "deaths recover to the exact count");
        let report = out.fault.expect("deaths must be reported");
        assert!(!report.deaths.is_empty(), "seeded plan kills warps");
        assert!(report.fully_recovered(), "all requeued work was drained");
        for h in healthy {
            let out = h.join().unwrap().expect("healthy query");
            assert_eq!(out.count, oracle, "neighbour unaffected");
            assert!(out.fault.is_none(), "no fault bleed-through");
        }
    });
    // The pool survives: one more query after the storm, still exact.
    let after = svc
        .submit(&catalog::paper_query(6), QueryOptions::default())
        .unwrap();
    assert_eq!(after.count, oracle);
    assert!(after.fault.is_none());
}

/// A deadline that expires while the query is stalled mid-run cancels
/// cooperatively: the query reports `DeadlineExceeded` with a partial
/// outcome, and the *same* warm slot then serves an exact healthy query.
#[test]
fn mid_run_deadline_returns_timeout_without_poisoning_pool() {
    let (svc, oracle) = service();
    let q = catalog::paper_query(6);
    // Stall every warp's first claim far past the deadline: the run
    // cannot finish inside 40ms regardless of scheduling.
    let mut plan = FaultPlan::new();
    for w in 0..grid().total_warps() {
        plan = plan.stall_at(w, 1, Duration::from_millis(250));
    }
    let opts = QueryOptions {
        deadline: Some(Duration::from_millis(40)),
        fault_plan: Some(plan),
        ..QueryOptions::default()
    };
    match svc.submit(&q, opts) {
        Err(ServiceError::DeadlineExceeded { partial: Some(out) }) => {
            assert!(out.timed_out);
            assert!(out.count <= oracle, "partial count is a lower bound");
        }
        other => panic!("expected mid-run deadline expiry, got {other:?}"),
    }
    // Expired-in-queue: a zero deadline can never launch.
    let expired = QueryOptions {
        deadline: Some(Duration::ZERO),
        ..QueryOptions::default()
    };
    match svc.submit(&q, expired) {
        Err(ServiceError::DeadlineExceeded { partial: None }) => {}
        other => panic!("expected queued deadline expiry, got {other:?}"),
    }
    // Same pool, next query: exact.
    let after = svc.submit(&q, QueryOptions::default()).unwrap();
    assert_eq!(after.count, oracle);
}

/// Deadlines and faults on *different* queries admitted in the same
/// batch never cross-contaminate: each reply matches its own options.
#[test]
fn mixed_batch_keeps_per_query_outcomes() {
    let (svc, oracle) = service();
    let q = catalog::paper_query(6);
    let faulty = svc.enqueue(
        &q,
        QueryOptions {
            fault_plan: Some(FaultPlan::new().panic_at(1, 1)),
            ..QueryOptions::default()
        },
    );
    let expired = svc.enqueue(
        &q,
        QueryOptions {
            deadline: Some(Duration::ZERO),
            ..QueryOptions::default()
        },
    );
    let healthy = svc.enqueue(&q, QueryOptions::default());
    let out = faulty.wait().expect("death recovers");
    assert_eq!(out.count, oracle);
    assert_eq!(out.fault.expect("reported").deaths.len(), 1);
    assert!(matches!(
        expired.wait(),
        Err(ServiceError::DeadlineExceeded { partial: None })
    ));
    let out = healthy.wait().expect("healthy");
    assert_eq!(out.count, oracle);
    assert!(out.fault.is_none());
}
