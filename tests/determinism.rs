//! Determinism regression tests: the same seeds must produce identical
//! results run-to-run, and match counts must be invariant to the warp
//! layout (`num_blocks`). This is the property that makes the golden
//! fixtures and the BENCH_*.json trajectories trustworthy — if it breaks,
//! every other gate goes soft.

use stmatch_core::{Engine, EngineConfig, MatchOutcome};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};

fn grid(num_blocks: usize) -> GridConfig {
    GridConfig {
        num_blocks,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn workload() -> (Graph, Pattern) {
    (
        gen::assign_random_labels(
            &gen::preferential_attachment(80, 4, 17).degree_ordered(),
            4,
            5,
        ),
        catalog::paper_query(6),
    )
}

fn run(cfg: EngineConfig, g: &Graph, p: &Pattern) -> MatchOutcome {
    Engine::new(cfg).run(g, p).unwrap()
}

/// Same seed, same config → byte-identical count across 3 runs, for the
/// full configuration (work stealing enabled) and the naive one.
#[test]
fn repeated_runs_agree_exactly() {
    let (g, p) = workload();
    for base in [EngineConfig::full(), EngineConfig::naive()] {
        let runs: Vec<u64> = (0..3)
            .map(|_| run(base.with_grid(grid(2)), &g, &p).count)
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }
}

/// Counts are invariant to warp layout: `num_blocks` ∈ {1, 2, 4} changes
/// scheduling and stealing topology but must not change what is counted.
#[test]
fn counts_invariant_to_num_blocks() {
    let (g, p) = workload();
    let want = run(EngineConfig::full().with_grid(grid(1)), &g, &p).count;
    assert!(want > 0, "workload must be non-trivial");
    for blocks in [2usize, 4] {
        for _ in 0..3 {
            let got = run(EngineConfig::full().with_grid(grid(blocks)), &g, &p).count;
            assert_eq!(got, want, "num_blocks={blocks}");
        }
    }
}

/// Without stealing, the work each warp does is a pure function of the
/// graph, plan, and layout — so the *instruction-level* metrics must also
/// be stable across runs: total SIMT instructions, issued and active lane
/// slots, and total matches all byte-identical. (Stealing configurations
/// keep the counts stable but migrate work based on wall-clock timing, so
/// only the naive config pins instruction totals.)
#[test]
fn naive_metrics_totals_are_stable() {
    let (g, p) = workload();
    let totals: Vec<_> = (0..3)
        .map(|_| {
            let out = run(EngineConfig::naive().with_grid(grid(2)), &g, &p);
            let t = out.metrics.total();
            (
                t.simt_instructions,
                t.issued_lane_slots,
                t.active_lane_slots,
                t.matches_found,
            )
        })
        .collect();
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[1], totals[2]);
}

/// Enumeration output (sorted embeddings) is deterministic even under
/// stealing, across runs and layouts.
#[test]
fn enumeration_is_deterministic_across_layouts() {
    let g = gen::erdos_renyi(40, 140, 9);
    let p = catalog::paper_query(5);
    let reference = Engine::new(EngineConfig::full().with_grid(grid(1)))
        .enumerate(&g, &p)
        .unwrap()
        .embeddings;
    assert!(!reference.is_empty(), "workload must be non-trivial");
    for blocks in [2usize, 4] {
        let embeddings = Engine::new(EngineConfig::full().with_grid(grid(blocks)))
            .enumerate(&g, &p)
            .unwrap()
            .embeddings;
        assert_eq!(embeddings, reference, "num_blocks={blocks}");
    }
}

/// The generators themselves are deterministic and independent of call
/// context (no global RNG state anywhere in the workspace).
#[test]
fn generators_have_no_hidden_state() {
    let a = gen::rmat(7, 4, 99);
    // Interleave unrelated generator calls; they must not perturb `b`.
    let _ = gen::erdos_renyi(30, 60, 1);
    let _ = gen::watts_strogatz(24, 4, 0.2, 2);
    let b = gen::rmat(7, 4, 99);
    assert_eq!(a, b);
}
