//! End-to-end fault-tolerance tests: injected warp deaths, poisoned steal
//! mirrors, stranded-work salvage, and the launch-planning degradation
//! ladder must all preserve *exact* match counts (DESIGN.md §4d).
//!
//! The contract under test: a warp death rolls back the dead warp's open
//! counting transaction (`WarpKernel::reclaim_on_death`), requeues its
//! unfinished work on the `Board`, and survivors (or a salvage relaunch)
//! re-execute exactly the dropped subtrees — no match lost, none counted
//! twice.

use std::time::Duration;
use stmatch_core::{DowngradeStep, Engine, EngineConfig, FaultPlan, LaunchError, RecoveryPolicy};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::{gen, Graph};
use stmatch_pattern::catalog;

/// The faults fixture: hub-heavy enough that shallow mirrors hold real
/// ranges when a fault fires, small enough that 24 queries stay fast.
fn fixture() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn grid_2x4() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 4,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    }
}

/// Two of eight warps die on every query of the paper's evaluation set;
/// every count must match the clean run exactly.
#[test]
fn two_warp_deaths_keep_all_paper_queries_exact() {
    let g = fixture();
    let cfg = EngineConfig::full().with_grid(grid_2x4());
    let clean = Engine::new(cfg);
    // Kill the first warp of each block, early enough that substantial
    // work is still pending and must be requeued. (First warps spawn
    // first, so they reliably win chunks even on a loaded host — later
    // warps can race to no work at all on a 48-vertex fixture.)
    let plan = FaultPlan::new().panic_at(0, 3).panic_at(4, 5);
    let faulty = Engine::new(cfg).with_fault_plan(plan);
    let mut deaths_seen = 0usize;
    for i in 1..=24 {
        let q = catalog::paper_query(i);
        let expected = clean.run(&g, &q).unwrap();
        let got = faulty.run(&g, &q).unwrap();
        assert_eq!(got.count, expected.count, "q{i} count drifted under faults");
        assert!(!got.timed_out, "q{i} must terminate despite deaths");
        if let Some(report) = &got.fault {
            deaths_seen += report.deaths.len();
            assert_eq!(report.escaped_panics, 0, "q{i}: containment must hold");
            assert!(report.fully_recovered(), "q{i}: work left stranded");
            assert!(report.deaths.len() <= 2);
        }
    }
    // The plan cannot fire on every query (tiny traversals may finish
    // before the Nth claim), but across 24 queries it must have killed
    // warps many times — otherwise the test is vacuous.
    assert!(
        deaths_seen >= 12,
        "only {deaths_seen} deaths across 24 queries — injection barely fired"
    );
}

/// A panic injected *inside* the mirror's publish critical section leaves
/// the mutex poisoned mid-update. `Mirror::lock`'s poison recovery plus
/// the requeue protocol must still deliver exact counts.
///
/// Deterministic setup: one block, two warps, a single level-0 chunk, and
/// the same publish fault armed on *both* warps — whichever warp ends up
/// doing the work provably reaches the fourth publish (q6 on this fixture
/// publishes far more than four child ranges) and dies holding the lock.
#[test]
fn poisoned_mirror_publish_recovers_exactly() {
    let g = fixture();
    let mut cfg = EngineConfig::full().with_grid(GridConfig {
        num_blocks: 1,
        warps_per_block: 2,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    });
    cfg.chunk_size = g.num_vertices();
    let expected = Engine::new(cfg).run(&g, &catalog::paper_query(6)).unwrap();
    let plan = FaultPlan::new()
        .poison_publish_at(0, 4)
        .poison_publish_at(1, 4);
    let got = Engine::new(cfg)
        .with_fault_plan(plan)
        .run(&g, &catalog::paper_query(6))
        .unwrap();
    assert_eq!(got.count, expected.count);
    let report = got.fault.expect("the publish fault must have fired");
    assert!(!report.deaths.is_empty());
    assert!(
        report.deaths.iter().any(|d| d.message.contains("publish")),
        "a death message should identify the poisoned publish: {report:?}"
    );
    assert!(report.fully_recovered(), "{report:?}");
}

/// Seeded plans are replayable: the same `FAULT_SEED` produces identical
/// fault schedules, identical death sets, and identical (exact) counts.
#[test]
fn seeded_plan_is_deterministic_and_exact() {
    let g = fixture();
    let cfg = EngineConfig::full().with_grid(grid_2x4());
    let expected = Engine::new(cfg).run(&g, &catalog::paper_query(1)).unwrap();
    let total = grid_2x4().total_warps();
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let plan = FaultPlan::seeded(0xfee1_dead, total, 2, 1);
            assert_eq!(plan.reproduce_line(), Some("FAULT_SEED=0xfee1dead"));
            Engine::new(cfg)
                .with_fault_plan(plan)
                .run(&g, &catalog::paper_query(1))
                .unwrap()
        })
        .collect();
    // The fault *schedule* is identical run to run (unit-tested in
    // `fault.rs`); warp scheduling on a host simulator is not, so here we
    // assert the recovery invariants: exact counts, and any death must be
    // one of the plan's chosen victims.
    let victims: Vec<usize> = FaultPlan::seeded(0xfee1_dead, total, 2, 1)
        .faults()
        .iter()
        .map(|f| f.warp)
        .collect();
    for out in &runs {
        assert_eq!(out.count, expected.count);
        if let Some(report) = &out.fault {
            assert!(report.fully_recovered(), "{report:?}");
            for d in &report.deaths {
                assert!(victims.contains(&d.warp), "unplanned victim {}", d.warp);
            }
        }
    }
}

/// Killing *every* warp strands all remaining work; the bounded salvage
/// relaunch (injection disabled) must finish the traversal exactly.
#[test]
fn all_warps_dead_salvage_relaunch_completes_the_count() {
    let g = fixture();
    let small = GridConfig {
        num_blocks: 1,
        warps_per_block: 2,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    };
    let cfg = EngineConfig::full().with_grid(small);
    let expected = Engine::new(cfg).run(&g, &catalog::paper_query(6)).unwrap();
    let plan = FaultPlan::new().panic_at(0, 2).panic_at(1, 3);
    let got = Engine::new(cfg)
        .with_fault_plan(plan)
        .run(&g, &catalog::paper_query(6))
        .unwrap();
    assert_eq!(got.count, expected.count);
    let report = got.fault.expect("both warps must have died");
    assert_eq!(report.deaths.len(), 2, "{report:?}");
    assert!(report.salvage_launches >= 1, "{report:?}");
    assert!(report.fully_recovered(), "{report:?}");
}

/// Deaths in naive mode (no stealing, no idle phase to absorb requeues):
/// the salvage pass is the only recovery path and must still be exact.
/// A 1×1 grid makes the schedule deterministic — the sole warp owns every
/// chunk and provably reaches the fault ordinal.
#[test]
fn naive_mode_death_recovers_via_salvage() {
    let g = fixture();
    let cfg = EngineConfig::naive().with_grid(GridConfig {
        num_blocks: 1,
        warps_per_block: 1,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    });
    let expected = Engine::new(cfg).run(&g, &catalog::paper_query(2)).unwrap();
    let got = Engine::new(cfg)
        .with_fault_plan(FaultPlan::new().panic_at(0, 10))
        .run(&g, &catalog::paper_query(2))
        .unwrap();
    assert_eq!(got.count, expected.count);
    let report = got.fault.expect("fault must fire");
    assert_eq!(report.deaths.len(), 1);
    assert!(report.salvage_launches >= 1, "{report:?}");
    assert!(report.fully_recovered(), "{report:?}");
}

/// Stalls perturb scheduling without killing anyone: counts exact, no
/// fault report (stalls are not deaths).
#[test]
fn stalls_change_timing_not_counts() {
    let g = fixture();
    let cfg = EngineConfig::full().with_grid(grid_2x4());
    let expected = Engine::new(cfg).run(&g, &catalog::paper_query(8)).unwrap();
    let plan = FaultPlan::new()
        .stall_at(0, 1, Duration::from_millis(20))
        .stall_at(5, 2, Duration::from_millis(10));
    let got = Engine::new(cfg)
        .with_fault_plan(plan)
        .run(&g, &catalog::paper_query(8))
        .unwrap();
    assert_eq!(got.count, expected.count);
    assert!(got.fault.is_none());
}

/// Enumeration under a warp death: the embedding *set* (not just the
/// count) must be identical — the emit watermark truncates uncommitted
/// records and survivors re-emit exactly the dropped subtrees.
#[test]
fn enumeration_survives_warp_death_with_identical_embeddings() {
    let g = fixture();
    let cfg = EngineConfig::full().with_grid(grid_2x4());
    let clean = Engine::new(cfg)
        .enumerate(&g, &catalog::paper_query(6))
        .unwrap();
    let faulty = Engine::new(cfg)
        .with_fault_plan(FaultPlan::new().panic_at(0, 3).panic_at(4, 2))
        .enumerate(&g, &catalog::paper_query(6))
        .unwrap();
    assert_eq!(faulty.embeddings, clean.embeddings);
    assert!(faulty
        .outcome
        .fault
        .map(|r| r.fully_recovered())
        .unwrap_or(true));
}

/// A shared-memory budget one byte short of the requirement recovers
/// through the degradation ladder with identical counts; with recovery
/// disabled the same config fails fast with the original error.
#[test]
fn degradation_ladder_end_to_end() {
    let g = fixture();
    let q = catalog::paper_query(16); // q16 = 6-clique: deep, set-heavy
    let full = Engine::new(EngineConfig::full().with_grid(grid_2x4()))
        .run(&g, &q)
        .unwrap();
    let mut cfg = EngineConfig::full().with_grid(grid_2x4());
    cfg.grid.shared_mem_per_block = full.shared_bytes_per_block - 1;
    let degraded = Engine::new(cfg).run(&g, &q).unwrap();
    assert_eq!(degraded.count, full.count);
    assert!(!degraded.downgrades.is_empty());
    for step in &degraded.downgrades {
        assert!(matches!(
            step,
            DowngradeStep::Unroll { .. }
                | DowngradeStep::WarpsPerBlock { .. }
                | DowngradeStep::MaxDegreeSlab { .. }
        ));
    }
    cfg.recovery = RecoveryPolicy::disabled();
    match Engine::new(cfg).run(&g, &q) {
        Err(LaunchError::SharedMemory(_)) => {}
        other => panic!("expected fail-fast, got {other:?}"),
    }
}

/// Downgrades compose with fault injection: a tight budget *and* a warp
/// death in the same run still produce the exact count.
#[test]
fn downgraded_run_with_warp_death_stays_exact() {
    let g = fixture();
    let q = catalog::paper_query(6);
    let full = Engine::new(EngineConfig::full().with_grid(grid_2x4()))
        .run(&g, &q)
        .unwrap();
    let mut cfg = EngineConfig::full().with_grid(grid_2x4());
    cfg.grid.shared_mem_per_block = full.shared_bytes_per_block - 1;
    let got = Engine::new(cfg)
        .with_fault_plan(FaultPlan::new().panic_at(2, 3))
        .run(&g, &q)
        .unwrap();
    assert_eq!(got.count, full.count);
    assert!(!got.downgrades.is_empty());
}

/// Fault injection is strictly opt-in: engines without a plan never
/// produce a fault report, even over many runs.
#[test]
fn no_plan_means_no_fault_reports() {
    let g = fixture();
    let engine = Engine::new(EngineConfig::full().with_grid(grid_2x4()));
    for i in [1, 6, 8, 16] {
        let out = engine.run(&g, &catalog::paper_query(i)).unwrap();
        assert!(out.fault.is_none(), "q{i}");
        assert!(out.downgrades.is_empty(), "q{i}");
    }
}
