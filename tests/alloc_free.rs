//! Proves the allocation-free hot path: after one warmup pass has sized
//! the kernel's reusable scratch (arena slabs, unroll batches, ping/pong
//! chain buffers, the raw-claim buffer), a full steady-state matching run
//! performs **zero** heap allocations.
//!
//! A counting `#[global_allocator]` tallies every `alloc`/`realloc`; this
//! file deliberately holds a single `#[test]` so no concurrently running
//! test can pollute the counter between the reset and the snapshot.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stmatch_core::kernel::WarpKernel;
use stmatch_core::steal::Board;
use stmatch_core::EngineConfig;
use stmatch_gpusim::{Grid, GridConfig};
use stmatch_graph::gen;
use stmatch_pattern::catalog;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs warmup + steady-state passes of `paper_query(6)` over a PA graph,
/// returning `(steady_allocs, steady_matches, grid_total_matches,
/// bitmap_probe_words + bitmap_merge_words)`. When `bitmap` is set, the
/// graph carries a hub-bitmap index and the kernel routes through the
/// bitmap set-op paths (including the arena's lent word scratch).
fn steady_state_case(bitmap: bool) -> (u64, u64, u64, u64) {
    // Steal-free single-warp geometry: the claim loop is the whole kernel.
    let mut cfg = EngineConfig {
        grid: GridConfig {
            num_blocks: 1,
            warps_per_block: 1,
            shared_mem_per_block: 100 * 1024,
        },
        local_steal: false,
        global_steal: false,
        ..EngineConfig::default()
    };
    cfg.hub_bitmap.enabled = bitmap;
    cfg.validate();

    let mut g = gen::preferential_attachment(120, 6, 11).degree_ordered();
    if bitmap {
        // Low threshold so plenty of vertices qualify as hubs and both the
        // probe and merge/fused-chain paths actually run.
        g = g.with_hub_bitmap(6);
    }
    let n = g.num_vertices();
    let hubs = g.hub_bitmap();

    // A pattern whose plan exercises multi-op chains and the unrolled deep
    // levels (so the ping/pong scratch and every arena set slot are live).
    let pattern = catalog::paper_query(6);
    let plan = stmatch_core::Engine::new(cfg).compile(&pattern);

    let grid = Grid::new(cfg.grid).unwrap();
    let k = plan.num_levels();
    let board = Board::new(1, 1, cfg.effective_stop(k), (0, n), cfg.chunk_size);

    // Allocation count observed during the post-warmup run, and the match
    // count of that run (sanity: the steady-state pass did real work).
    static STEADY_ALLOCS: AtomicU64 = AtomicU64::new(0);
    static STEADY_MATCHES: AtomicU64 = AtomicU64::new(0);

    let metrics = grid.launch(|warp| {
        let mut kernel = WarpKernel::new(&g, &plan, &cfg, &board, warp.id(), None, hubs);

        // Warmup pass: sizes every reusable scratch buffer.
        kernel.install_chunk(0, n);
        kernel.run(warp);
        let warm_matches = warp.metrics_mut().matches_found;

        // Steady-state pass over the identical workload: must be heap-free.
        let before = ALLOCS.load(Ordering::Relaxed);
        kernel.install_chunk(0, n);
        kernel.run(warp);
        let after = ALLOCS.load(Ordering::Relaxed);

        STEADY_ALLOCS.store(after - before, Ordering::Relaxed);
        STEADY_MATCHES.store(
            warp.metrics_mut().matches_found - warm_matches,
            Ordering::Relaxed,
        );
    });

    let total = metrics.total();
    (
        STEADY_ALLOCS.load(Ordering::Relaxed),
        STEADY_MATCHES.load(Ordering::Relaxed),
        metrics.matches(),
        total.bitmap_probe_words + total.bitmap_merge_words,
    )
}

#[test]
fn steady_state_run_does_not_allocate() {
    let mut classic_matches = 0;
    for bitmap in [false, true] {
        let (steady_allocs, steady_matches, grid_matches, bitmap_words) = steady_state_case(bitmap);
        assert!(steady_matches > 0, "steady-state pass found no matches");
        assert_eq!(
            steady_matches * 2,
            grid_matches,
            "both passes must count the same workload (bitmap: {bitmap})"
        );
        assert_eq!(
            steady_allocs, 0,
            "steady-state run() allocated on the heap (bitmap: {bitmap})"
        );
        if bitmap {
            assert_eq!(
                steady_matches, classic_matches,
                "bitmap routing changed match counts"
            );
            assert!(
                bitmap_words > 0,
                "bitmap-enabled run never took a bitmap path"
            );
        } else {
            classic_matches = steady_matches;
            assert_eq!(bitmap_words, 0, "bitmap counters moved while disabled");
        }
    }
}
