//! Sharded-execution golden sweep: the q1..q24 paper evaluation set must
//! produce *exact* golden counts on both pinned fixture graphs when the
//! domain is split across shard grids — clean, under whole-shard death
//! (1-of-4 and 3-of-4 victims), through the shard recovery ladder, and
//! via the `run_multi_device` facade (DESIGN.md §4i).
//!
//! The contract under test: a dying shard's reclaimed work lands on the
//! shared [`ShardRail`] and is re-executed by survivors (or by the
//! fewer-shards / cold single-grid fallback rounds) — no match lost, none
//! counted twice, and every shard-death report carries a deterministic
//! reproduce line.

use stmatch_core::{run_multi_device, Engine, EngineConfig, FaultPlan, RecoveryPolicy, ShardStep};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};

/// Same fixtures as `tests/golden_counts.rs`; the expected numbers below
/// are that file's pinned columns (edge-induced and labeled).
fn unlabeled_graph() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn labeled_graph() -> Graph {
    gen::assign_random_labels(&gen::rmat(6, 4, 11).degree_ordered(), 10, 2022)
}

/// Per-shard grid: 2 blocks x 2 warps, so a 4-shard run drives 16 warp
/// threads total — enough for real cross-shard traffic, small enough
/// that 24-query sweeps stay fast.
fn grid_2x2() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    }
}

/// (query, unlabeled edge-induced count, labeled count) — the golden
/// columns from `tests/golden_counts.rs`.
const GOLDEN: &[(usize, u64, u64)] = &[
    (1, 119_531, 92),
    (2, 5_176, 0),
    (3, 9_200, 0),
    (4, 34_587, 12),
    (5, 1_486, 0),
    (6, 2_884, 7),
    (7, 88, 0),
    (8, 4, 0),
    (9, 915_277, 4),
    (10, 31_430, 2),
    (11, 967, 0),
    (12, 258_862, 14),
    (13, 155_617, 3),
    (14, 621, 0),
    (15, 3, 0),
    (16, 0, 0),
    (17, 6_605_944, 0),
    (18, 186_933, 0),
    (19, 1_783_390, 12),
    (20, 129, 0),
    (21, 1_294, 0),
    (22, 78, 0),
    (23, 0, 0),
    (24, 0, 0),
];

fn sharded_cfg(shards: usize) -> EngineConfig {
    EngineConfig::default()
        .with_grid(grid_2x2())
        .with_shard(true)
        .with_shards(shards)
}

fn queries(labeled: bool) -> Vec<(usize, Pattern, u64)> {
    GOLDEN
        .iter()
        .map(|&(qi, unlabeled, lab)| {
            if labeled {
                (
                    qi,
                    catalog::paper_query(qi).with_random_labels(10, qi as u64),
                    lab,
                )
            } else {
                (qi, catalog::paper_query(qi), unlabeled)
            }
        })
        .collect()
}

/// Runs the full q1..q24 sweep on both fixtures with `kills` of 4 shards
/// seeded to die, asserting every count against the golden columns.
/// Returns accumulated (warp deaths, shard deaths, requeue pushes+claims,
/// cross-shard steal receives) for the caller's vacuity guards.
fn sweep(kills: usize, seed: u64) -> (usize, u64, u64, u64) {
    let mut deaths = 0usize;
    let mut shard_deaths = 0u64;
    let mut requeues = 0u64;
    let mut steal_receives = 0u64;
    for (graph, labeled) in [(unlabeled_graph(), false), (labeled_graph(), true)] {
        for (qi, q, want) in queries(labeled) {
            let mut engine = Engine::new(sharded_cfg(4));
            if kills > 0 {
                engine = engine.with_fault_plan(FaultPlan::seeded_shard_kill(seed, 4, kills));
            }
            let out = engine.run_sharded(&graph, &q).unwrap();
            assert_eq!(
                out.outcome.count, want,
                "q{qi} labeled={labeled} kills={kills}: sharded count drifted from golden"
            );
            assert!(!out.outcome.timed_out, "q{qi}: sharded run must terminate");
            assert_eq!(out.shards, 4);
            assert_eq!(
                out.per_shard.len(),
                4,
                "q{qi}: round 0 must report every shard"
            );
            assert!(
                out.unfinished.is_empty(),
                "q{qi}: nothing may stay on the rail after recovery"
            );
            if let Some(report) = &out.outcome.fault {
                deaths += report.deaths.len();
                assert_eq!(report.escaped_panics, 0, "q{qi}: containment must hold");
                assert!(report.fully_recovered(), "q{qi}: work left stranded");
                if !report.deaths.is_empty() {
                    assert!(
                        out.reproduce.is_some(),
                        "q{qi}: shard-death report lacks a reproduce line"
                    );
                    assert!(
                        out.reproduce.as_deref().unwrap().contains("FAULT_SEED"),
                        "q{qi}: seeded kill must reproduce by seed"
                    );
                }
            } else {
                assert_eq!(out.rail.shard_deaths, 0, "q{qi}: deaths without a report");
            }
            shard_deaths += out.rail.shard_deaths;
            requeues += out.rail.requeue_pushes + out.rail.requeue_claims;
            steal_receives += out.outcome.metrics.total().shard_steal_receives;
        }
    }
    (deaths, shard_deaths, requeues, steal_receives)
}

/// Clean 4-shard sweep: every golden number exact on both fixtures, no
/// fault bookkeeping, and the cross-shard rail demonstrably in use (the
/// fixtures are skewed, so some shard always drains early and steals).
#[test]
fn clean_sharded_sweep_matches_golden_on_both_fixtures() {
    let (deaths, shard_deaths, _requeues, steal_receives) = sweep(0, 0);
    assert_eq!(deaths, 0, "clean sweep must not report deaths");
    assert_eq!(shard_deaths, 0);
    assert!(
        steal_receives > 0,
        "cross-shard stealing never fired — the sweep is vacuous as a rail test"
    );
}

/// One of four shards dies mid-run on every query; survivors steal the
/// dead shard's unclaimed ranges and re-run its reclaimed subtrees.
#[test]
fn one_of_four_shard_death_keeps_counts_exact() {
    let (deaths, shard_deaths, requeues, steal_receives) = sweep(1, 0x5eed_0001);
    // A kill at claim ordinal N cannot fire on queries that finish
    // earlier, but across 48 runs the victim must have died many times —
    // otherwise the sweep proves nothing.
    assert!(deaths >= 16, "only {deaths} warp deaths across the sweep");
    assert!(shard_deaths >= 4, "only {shard_deaths} whole-shard deaths");
    assert!(requeues > 0, "no reclaimed work ever crossed the rail");
    assert!(steal_receives > 0, "survivors never received rail work");
}

/// Three of four shards die; the lone survivor (plus recovery rounds when
/// the deaths outrun the rail) must still land every golden number.
#[test]
fn three_of_four_shard_death_keeps_counts_exact() {
    let (deaths, shard_deaths, requeues, steal_receives) = sweep(3, 0x5eed_0003);
    assert!(deaths >= 48, "only {deaths} warp deaths across the sweep");
    assert!(shard_deaths >= 12, "only {shard_deaths} whole-shard deaths");
    assert!(requeues > 0, "no reclaimed work ever crossed the rail");
    assert!(steal_receives > 0, "survivors never received rail work");
}

/// Every shard dies and cross-steal is off, so round 0 strands the whole
/// rail: the ladder must halve the shard count, then (with the retry
/// budget exhausted) fall back to the cold single grid — and the count
/// must still be exact, with a deterministic `SHARD_KILLS=` line naming
/// the hand-built kills.
#[test]
fn recovery_ladder_reaches_single_grid_and_stays_exact() {
    let g = unlabeled_graph();
    let q = catalog::paper_query(6);
    let mut cfg = sharded_cfg(4);
    cfg.shard.cross_steal = false;
    let kill_all = FaultPlan::new()
        .shard_kill_at(0, 1)
        .shard_kill_at(1, 1)
        .shard_kill_at(2, 1)
        .shard_kill_at(3, 1);

    let out = Engine::new(cfg)
        .with_fault_plan(kill_all.clone())
        .run_sharded(&g, &q)
        .unwrap();
    assert_eq!(out.outcome.count, 2_884, "q6 must survive total shard loss");
    assert!(out.recovery_rounds >= 1);
    assert_eq!(
        out.degradations.first(),
        Some(&ShardStep::FewerShards { from: 4, to: 2 }),
        "ladder must halve before falling back"
    );
    assert!(out.outcome.fault.as_ref().unwrap().fully_recovered());
    let line = out
        .reproduce
        .expect("hand-built kills need a reproduce line");
    assert!(line.contains("SHARD_KILLS="), "got {line:?}");

    // With the retry budget zeroed the ladder skips straight to the cold
    // single-grid fallback.
    let mut cold = sharded_cfg(4);
    cold.shard.cross_steal = false;
    cold.recovery = RecoveryPolicy {
        shard_retries: 0,
        ..RecoveryPolicy::default()
    };
    let out = Engine::new(cold)
        .with_fault_plan(kill_all)
        .run_sharded(&g, &q)
        .unwrap();
    assert_eq!(out.outcome.count, 2_884);
    assert_eq!(out.degradations, vec![ShardStep::SingleGrid]);
    assert_eq!(out.recovery_rounds, 1);
}

/// Partitioning mode is count-invariant: contiguous splits (including a
/// shard count that does not divide the domain) land the same golden
/// numbers as the default work-aware split.
#[test]
fn contiguous_partitioning_is_count_invariant() {
    let g = unlabeled_graph();
    for &(qi, want, _) in GOLDEN
        .iter()
        .filter(|(qi, ..)| matches!(qi, 1 | 6 | 9 | 12))
    {
        let q = catalog::paper_query(qi);
        for shards in [3, 4] {
            let mut cfg = sharded_cfg(shards);
            cfg.shard.work_aware = false;
            let out = Engine::new(cfg).run_sharded(&g, &q).unwrap();
            assert_eq!(out.outcome.count, want, "q{qi} contiguous x{shards}");
        }
    }
}

/// The multi-device facade routes through the shard driver when the knob
/// is on — exact counts, full bookkeeping attached, nothing uncovered —
/// and stays on the strided path (no shard bookkeeping) when it is off.
#[test]
fn multi_device_facade_routes_through_shards() {
    let g = unlabeled_graph();
    let q = catalog::paper_query(6);

    let on = Engine::new(
        EngineConfig::default()
            .with_grid(grid_2x2())
            .with_shard(true),
    );
    let multi = run_multi_device(&on, &g, &q, 4).unwrap();
    assert_eq!(multi.count, 2_884);
    assert!(!multi.aborted);
    assert!(multi.uncovered.is_empty());
    let sharded = multi
        .sharded
        .as_ref()
        .expect("knob on => shard bookkeeping");
    assert_eq!(sharded.shards, 4);
    assert_eq!(multi.devices.len(), 4);

    // Facade + injected shard death: still exact, reproduce line intact.
    let faulty = Engine::new(
        EngineConfig::default()
            .with_grid(grid_2x2())
            .with_shard(true),
    )
    .with_fault_plan(FaultPlan::seeded_shard_kill(0xfade, 4, 1));
    let multi = run_multi_device(&faulty, &g, &q, 4).unwrap();
    assert_eq!(multi.count, 2_884);
    assert!(!multi.aborted, "a fully recovered run is not aborted");
    let sharded = multi.sharded.as_ref().unwrap();
    if !sharded
        .outcome
        .fault
        .as_ref()
        .is_none_or(|f| f.deaths.is_empty())
    {
        assert!(sharded.reproduce.is_some());
    }

    // Knob off: same count via the strided path, no shard bookkeeping.
    let off = Engine::new(EngineConfig::default().with_grid(grid_2x2()));
    assert!(
        !off.config().shard.enabled,
        "sharding must be off by default"
    );
    let multi = run_multi_device(&off, &g, &q, 4).unwrap();
    assert_eq!(multi.count, 2_884);
    assert!(multi.sharded.is_none());
    assert!(multi.uncovered.is_empty());
}
