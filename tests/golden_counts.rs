//! Golden-count fixtures: exact match counts for every catalog paper
//! query (q1..q24, Fig. 10) on two seeded generator graphs, pinned so
//! future kernel / set-operation / planner changes cannot silently change
//! results. The paper's correctness argument (Table 2/3) is exact-count
//! agreement across systems; these fixtures freeze this repo's side of
//! that agreement.
//!
//! The numbers were produced by this engine at the commit that introduced
//! the in-tree PRNG (`stmatch_testkit::rng`), cross-validated against the
//! reference oracle by `tests/engine_vs_oracle.rs` and
//! `tests/property_based.rs`. If a change to `stmatch_testkit::rng`
//! legitimately alters the generated graphs, regenerate every number in
//! the same commit and say so in the commit message — a mismatch in only
//! *some* rows means an engine bug, not a generator change (the graph
//! shape assertions below tell the two apart).

use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::catalog;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

/// The unlabeled fixture graph: preferential attachment produces the
/// hub-heavy skew the paper's datasets have, so clique-ish queries get
/// nonzero counts at this tiny scale.
fn unlabeled_graph() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

/// The labeled fixture graph: RMAT with the paper's "randomly assign ten
/// labels" setup.
fn labeled_graph() -> Graph {
    gen::assign_random_labels(&gen::rmat(6, 4, 11).degree_ordered(), 10, 2022)
}

/// `(query, edge-induced count, vertex-induced count, labeled count)`
/// on the two fixture graphs. Labeled runs use
/// `paper_query(i).with_random_labels(10, i)` — the same derivation the
/// Table 3 harness uses.
const GOLDEN: &[(usize, u64, u64, u64)] = &[
    (1, 119531, 17771, 92),
    (2, 5176, 633, 0),
    (3, 9200, 1568, 0),
    (4, 34587, 5603, 12),
    (5, 1486, 524, 0),
    (6, 2884, 617, 7),
    (7, 88, 48, 0),
    (8, 4, 4, 0),
    (9, 915277, 40034, 4),
    (10, 31430, 1021, 2),
    (11, 967, 20, 0),
    (12, 258862, 10979, 14),
    (13, 155617, 12324, 3),
    (14, 621, 40, 0),
    (15, 3, 3, 0),
    (16, 0, 0, 0),
    (17, 6605944, 73704, 0),
    (18, 186933, 1477, 0),
    (19, 1783390, 16736, 12),
    (20, 129, 0, 0),
    (21, 1294, 15, 0),
    (22, 78, 0, 0),
    (23, 0, 0, 0),
    (24, 0, 0, 0),
];

/// If these fail, the *generator* changed (PRNG or graph algorithms) and
/// every count in [`GOLDEN`] must be regenerated; if these pass but a
/// count below differs, the *engine* changed behavior.
#[test]
fn fixture_graphs_have_pinned_shape() {
    let g = unlabeled_graph();
    assert_eq!((g.num_vertices(), g.num_edges()), (48, 182));
    let l = labeled_graph();
    assert_eq!((l.num_vertices(), l.num_edges()), (64, 265));
    assert!(l.is_labeled());
    assert!(l.vertices().all(|v| l.label(v) < 10));
}

#[test]
fn unlabeled_paper_query_counts_are_pinned() {
    let g = unlabeled_graph();
    for &(qi, edge_induced, vertex_induced, _) in GOLDEN {
        let q = catalog::paper_query(qi);
        for (induced, want) in [(false, edge_induced), (true, vertex_induced)] {
            let mut cfg = EngineConfig::default().with_grid(grid());
            cfg.induced = induced;
            let got = Engine::new(cfg).run(&g, &q).unwrap().count;
            assert_eq!(
                got,
                want,
                "q{qi} ({}) induced={induced}: got {got}, golden {want}",
                q.name()
            );
        }
    }
}

#[test]
fn labeled_paper_query_counts_are_pinned() {
    let g = labeled_graph();
    for &(qi, _, _, want) in GOLDEN {
        let q = catalog::paper_query(qi).with_random_labels(10, qi as u64);
        let got = Engine::new(EngineConfig::default().with_grid(grid()))
            .run(&g, &q)
            .unwrap()
            .count;
        assert_eq!(got, want, "labeled q{qi}: got {got}, golden {want}");
    }
}

/// Analytic fixtures independent of any generator: clique counts in K_n
/// are binomial coefficients, so these cannot go stale no matter what
/// happens to the PRNG.
#[test]
fn clique_counts_in_complete_graphs_are_binomial() {
    let g = gen::complete(12);
    let engine = Engine::new(EngineConfig::default().with_grid(grid()));
    // (k, C(12, k))
    for (k, want) in [(3u64, 220u64), (4, 495), (5, 792)] {
        let got = engine.run(&g, &catalog::clique(k as usize)).unwrap().count;
        assert_eq!(got, want, "K{k} in K12");
    }
}

/// Hub-bitmap routing is count-invariant: the full unlabeled sweep with a
/// low hub threshold (so bitmap probes, merges, and fused chains all fire)
/// reproduces every golden number exactly.
#[test]
fn unlabeled_counts_survive_hub_bitmap_routing() {
    let g = unlabeled_graph().with_hub_bitmap(6);
    for &(qi, edge_induced, vertex_induced, _) in GOLDEN {
        let q = catalog::paper_query(qi);
        for (induced, want) in [(false, edge_induced), (true, vertex_induced)] {
            let mut cfg = EngineConfig::default()
                .with_grid(grid())
                .with_hub_bitmap(true);
            cfg.induced = induced;
            let got = Engine::new(cfg).run(&g, &q).unwrap().count;
            assert_eq!(got, want, "bitmap q{qi} induced={induced}");
        }
    }
}

/// Same invariance on the labeled fixture — bitmap rows are label-blind
/// (masks filter at extraction), so labeled counts must not move either.
#[test]
fn labeled_counts_survive_hub_bitmap_routing() {
    let g = labeled_graph().with_hub_bitmap(6);
    for &(qi, _, _, want) in GOLDEN {
        let q = catalog::paper_query(qi).with_random_labels(10, qi as u64);
        let got = Engine::new(
            EngineConfig::default()
                .with_grid(grid())
                .with_hub_bitmap(true),
        )
        .run(&g, &q)
        .unwrap()
        .count;
        assert_eq!(got, want, "bitmap labeled q{qi}");
    }
}

/// Bitmap routing with code motion disabled: candidate sets are recomputed
/// at every level through multi-op chains, which is the heaviest consumer
/// of the fused bitmap-chain path. Counts must still be exact, and the
/// engine must build its own index (none attached) from the config
/// threshold.
#[test]
fn counts_survive_hub_bitmap_without_code_motion() {
    let g = unlabeled_graph(); // no attached index: engine builds at threshold
    for &(qi, edge_induced, _, _) in &GOLDEN[..8] {
        let q = catalog::paper_query(qi);
        let mut cfg = EngineConfig::default()
            .with_grid(grid())
            .with_hub_bitmap(true);
        cfg.code_motion = false;
        cfg.hub_bitmap.hub_threshold = 6;
        let got = Engine::new(cfg).run(&g, &q).unwrap().count;
        assert_eq!(got, edge_induced, "bitmap no-motion q{qi}");
    }
}
