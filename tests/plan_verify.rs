//! Static-verifier soundness: the resource certificate's claims must
//! hold against the *actual* runtime counters, on arbitrary random
//! graphs, for every catalog plan, across slab configurations — and the
//! verifier must catch seeded plan corruptions *by name*, not merely
//! "something looks off".
//!
//! Three legs:
//!
//! * property — on seeded random graphs × catalog patterns, the runtime
//!   `peak_slab_cells` never exceeds `ResourceCert::peak_cells(unroll)`,
//!   and a `spill_free` certificate implies zero `spill_events`. Small
//!   `max_degree_slab` values are drawn too, exercising certificates
//!   that (soundly) refuse the spill-free claim;
//! * mutation kill tests — `insert_dead_set`, `drop_symmetry_bound`, and
//!   `overlap_cut` must each surface a diagnostic naming the exact
//!   set/level/vertex that was corrupted, with a `reproduce:` line;
//! * service — [`MatchService`] verifies once per canonical cache entry,
//!   exposes verified/diagnostic counters in `cache_stats`, and hands
//!   the cached certificate back through `verification()`.

use std::sync::Arc;
use stmatch_core::shard::{self, ShardPlan};
use stmatch_core::{Engine, EngineConfig, MatchService, QueryOptions, ServiceConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::catalog;
use stmatch_pattern::plan::{mutation, MatchPlan, PlanOptions};
use stmatch_plan_verify::{verify_plan, DiagKind, GraphProfile};
use stmatch_testkit::prop::forall;
use stmatch_testkit::rng::Rng;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

/// Maps a shrinkable `(n, density, seed)` triple onto a small random
/// graph, clamping out-of-range (possibly shrunk) values.
fn make_graph(n: usize, density: usize, seed: u64) -> Graph {
    let n = n.clamp(2, 40);
    gen::erdos_renyi(n, n * density.min(3), seed)
}

fn make_pattern(idx: usize) -> stmatch_pattern::Pattern {
    match idx % 8 {
        0 => catalog::triangle(),
        1 => catalog::wedge(),
        2 => catalog::square(),
        3 => catalog::diamond(),
        4 => catalog::k4(),
        5 => catalog::paper_query(2),
        6 => catalog::paper_query(6),
        _ => catalog::paper_query(8),
    }
}

/// Certificate vs reality: the static peak bound dominates the runtime
/// high-water mark, and spill-freedom is never claimed falsely — across
/// random graphs, catalog plans, and slab capacities small enough to
/// force the verifier into the "may spill" verdict.
#[test]
fn runtime_peak_never_exceeds_certified_bound() {
    forall(
        "runtime_peak_never_exceeds_certified_bound",
        |rng| {
            (
                rng.gen_range(4usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen_range(0usize..8),
                // Slab capacities from pathologically tiny (certificates
                // must refuse spill-freedom) up past any fixture degree.
                rng.gen_range(2usize..64),
            )
        },
        |&(n, density, seed, pidx, slab)| {
            let g = make_graph(n, density, seed);
            let p = make_pattern(pidx);
            let plan = MatchPlan::compile(&p, PlanOptions::default());
            let mut cfg = EngineConfig::default().with_grid(grid()).with_verify(true);
            cfg.max_degree_slab = slab.max(2);
            // Mirror the engine's effective slab sizing so the checked
            // certificate is the one the launch actually runs under.
            let slab_cap = cfg.max_degree_slab.min(g.max_degree().max(1));
            let profile = GraphProfile::of(&g);
            let v = verify_plan(&plan, &profile, slab_cap, "tests/plan_verify.rs property");
            if !v.diagnostics.is_empty() {
                return Err(format!(
                    "false positive on a catalog plan: {}",
                    v.diagnostics[0]
                ));
            }
            let out = Engine::new(cfg).run(&g, &p).map_err(|e| e.to_string())?;
            let bound = v.cert.peak_cells(cfg.unroll);
            if out.peak_slab_cells > bound {
                return Err(format!(
                    "{}: runtime peak {} cells exceeds certified bound {bound}",
                    p.name(),
                    out.peak_slab_cells
                ));
            }
            if v.cert.spill_free && out.spill_events != 0 {
                return Err(format!(
                    "{}: {} spills under a spill-free certificate (slab_cap {slab_cap})",
                    p.name(),
                    out.spill_events
                ));
            }
            Ok(())
        },
    );
}

/// Tight slabs must sometimes yield non-spill-free certificates — if the
/// verifier always said "spill free" the property above would be vacuous.
#[test]
fn tight_slabs_refuse_the_spill_free_claim() {
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let profile = GraphProfile::of(&g);
    let plan = MatchPlan::compile(&catalog::paper_query(6), PlanOptions::default());
    let tight = verify_plan(&plan, &profile, 2, "tests/plan_verify.rs tight");
    assert!(
        !tight.cert.spill_free,
        "2-cell slabs certified spill-free on a max-degree-{} graph",
        profile.max_degree
    );
    let roomy = verify_plan(&plan, &profile, 4096, "tests/plan_verify.rs roomy");
    assert!(roomy.cert.spill_free, "4096-cell slabs must be spill-free");
    assert!(roomy.is_clean());
}

/// Kill test 1: a set written but never read must be reported as exactly
/// that set, with the level that defines it.
#[test]
fn mutation_dead_set_is_caught_by_name() {
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let profile = GraphProfile::of(&g);
    let mut plan = MatchPlan::compile(&catalog::paper_query(6), PlanOptions::default());
    let set = mutation::insert_dead_set(&mut plan);
    let v = verify_plan(&plan, &profile, 4096, "tests/plan_verify.rs dead-set");
    let hit = v
        .diagnostics
        .iter()
        .find(|d| matches!(d.kind, DiagKind::DeadSet { set: s, .. } if s == set))
        .unwrap_or_else(|| panic!("dead set {set} not named in {:?}", v.diagnostics));
    assert!(hit.message.contains(&format!("dead set {set}")));
    assert!(
        hit.reproduce.contains("dead-set"),
        "diagnostic must carry its reproduce line"
    );
}

/// Kill test 2: deleting one symmetry-break bound must be reported at
/// its exact (level, position), as duplicate counting.
#[test]
fn mutation_dropped_symmetry_bound_is_caught_by_name() {
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let profile = GraphProfile::of(&g);
    let mut plan = MatchPlan::compile(&catalog::paper_query(8), PlanOptions::default());
    let (level, pos) = mutation::drop_symmetry_bound(&mut plan)
        .expect("the K5 plan carries symmetry bounds to drop");
    let v = verify_plan(&plan, &profile, 4096, "tests/plan_verify.rs drop-bound");
    assert!(
        v.diagnostics.iter().any(|d| matches!(
            d.kind,
            DiagKind::MissingSymmetryBound { level: l, pos: p, .. } if l == level && p == pos
        )),
        "dropped bound at level {level} pos {pos} not named in {:?}",
        v.diagnostics
    );
}

/// Kill test 3: corrupting a shard cut so one vertex is owned twice and
/// another by nobody must name both vertices.
#[test]
fn mutation_overlapping_shard_cut_is_caught_by_name() {
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let mut splan = ShardPlan::work_aware(&g, 4);
    let (dup, orphan) = shard::mutation::overlap_cut(&mut splan).expect("4-shard plan is mutable");
    let diags = splan.verify_cover(g.num_vertices(), "tests/plan_verify.rs shard-overlap");
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ShardOverlap { vertex, .. } if vertex == dup)),
        "duplicated vertex {dup} not named in {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ShardGap { vertex } if vertex == orphan)),
        "orphaned vertex {orphan} not named in {diags:?}"
    );
    // An untouched plan must pass the same check.
    let clean = ShardPlan::work_aware(&g, 4).verify_cover(g.num_vertices(), "clean");
    assert!(clean.is_empty(), "clean shard plan flagged: {clean:?}");
}

/// The service verifies once per canonical cache entry: repeated and
/// equivalent submissions reuse the cached certificate, the counters in
/// `cache_stats` track entries (not submissions), and `verification()`
/// hands the certificate out.
#[test]
fn service_verifies_once_per_canonical_plan() {
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let expected = Engine::new(EngineConfig::default().with_grid(grid()))
        .run(&g, &catalog::paper_query(6))
        .unwrap()
        .count;
    let svc = MatchService::new(
        Arc::new(g),
        ServiceConfig::new(
            EngineConfig::default()
                .with_grid(grid())
                .with_compile(true)
                .with_verify(true),
        )
        .with_workers(2),
    );
    let q = catalog::paper_query(6);
    for _ in 0..3 {
        let out = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(out.count, expected, "verified service run drifted");
        assert_eq!(out.spill_events, 0, "certified-clean plan spilled");
    }
    let stats = svc.cache_stats();
    assert_eq!(stats.verified, 1, "one canonical entry → one verification");
    assert_eq!(stats.diagnostics, 0, "clean plan raised diagnostics");
    let v = svc.verification(&q).expect("verify knob is on");
    assert!(v.is_clean());
    assert!(v.cert.spill_free);
    // Asking for the certificate again must not re-verify.
    let _ = svc.verification(&q);
    assert_eq!(svc.cache_stats().verified, 1);
    // A different canonical plan gets its own verification.
    let _ = svc
        .submit(&catalog::triangle(), QueryOptions::default())
        .unwrap();
    assert_eq!(svc.cache_stats().verified, 2);
}

/// With the knob off (the default) nothing is verified and the stats
/// stay zero — verification is strictly opt-in.
#[test]
fn service_verification_is_opt_in() {
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let svc = MatchService::new(
        Arc::new(g),
        ServiceConfig::new(EngineConfig::default().with_grid(grid())).with_workers(1),
    );
    svc.submit(&catalog::triangle(), QueryOptions::default())
        .unwrap();
    let stats = svc.cache_stats();
    assert_eq!(stats.verified, 0);
    assert_eq!(stats.diagnostics, 0);
    assert!(svc.verification(&catalog::triangle()).is_none());
}
