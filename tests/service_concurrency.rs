//! Property-based concurrency suite for the resident [`MatchService`]
//! (testkit harness — seeded, shrinking, reproducible via
//! `TESTKIT_SEED`/`TESTKIT_CASES`).
//!
//! Each case spins up a fresh service and 2–8 client threads. Every
//! client submits randomly *vertex-relabeled* copies of base patterns —
//! isomorphic by construction — so the whole interleaving must be
//! invisible in the results: every query's count equals the one-shot
//! `Engine::run` oracle of its base pattern (counts are isomorphism
//! invariants), and the plan cache converges to exactly one entry per
//! canonical form no matter how the racing compiles interleave.

use std::collections::HashSet;
use std::sync::Arc;
use stmatch_core::{Engine, EngineConfig, MatchService, QueryOptions, ServiceConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, iso, Pattern};
use stmatch_testkit::prop::forall;
use stmatch_testkit::rng::{Rng, SmallRng};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn fixture_graph() -> Graph {
    gen::erdos_renyi(40, 160, 7).degree_ordered()
}

/// Base patterns cheap enough to run dozens of times per property case.
fn base_patterns() -> Vec<Pattern> {
    vec![
        catalog::triangle(),
        catalog::square(),
        Pattern::new(4, &[(0, 1), (1, 2), (2, 3)]).with_name("p4"),
        catalog::paper_query(8),
    ]
}

/// A uniformly random vertex relabeling of `p`: same graph, permuted
/// vertex ids (labels carried along), so `iso::canonical_form` is
/// unchanged and so is every match count.
fn relabel(p: &Pattern, rng: &mut SmallRng) -> Pattern {
    let n = p.size();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        perm.swap(i, j);
    }
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if p.has_edge(u, v) {
                edges.push((perm[u], perm[v]));
            }
        }
    }
    let mut q = Pattern::new(n, &edges);
    if p.is_labeled() {
        let mut labels = vec![0u32; n];
        for u in 0..n {
            labels[perm[u]] = p.label(u);
        }
        q = q.with_labels(&labels);
    }
    q
}

/// The property: concurrent clients submitting relabeled isomorphic
/// patterns observe deterministic per-query counts, and the cache holds
/// at most (here: exactly) one entry per canonical form.
#[test]
fn concurrent_isomorphic_submissions_are_deterministic() {
    let graph = fixture_graph();
    let bases = base_patterns();
    let engine_cfg = EngineConfig::default().with_grid(grid());
    let oracle: Vec<u64> = bases
        .iter()
        .map(|p| Engine::new(engine_cfg).run(&graph, p).unwrap().count)
        .collect();
    assert!(oracle.iter().any(|&c| c > 0), "fixture must be non-trivial");

    forall(
        "service_concurrent_isomorphic_counts",
        |rng| {
            let clients = rng.gen_range(2usize..9);
            let per_client = rng.gen_range(1usize..4);
            let seed = rng.gen_range(0u64..u64::MAX);
            (clients, per_client, seed)
        },
        |&(clients, per_client, seed)| {
            let oracle = &oracle;
            let svc = MatchService::new(
                Arc::new(fixture_graph()),
                ServiceConfig::new(engine_cfg)
                    .with_workers(2)
                    .with_batch_max(4),
            );
            // Pre-derive each client's submissions so the property is a
            // pure function of the case input (thread interleaving only
            // affects scheduling, never the checked values).
            let mut submissions: Vec<Vec<(usize, Pattern)>> = Vec::new();
            let mut forms: HashSet<(Vec<u32>, Vec<u8>)> = HashSet::new();
            for c in 0..clients {
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1)),
                );
                let mut mine = Vec::new();
                for _ in 0..per_client {
                    let base = rng.gen_range(0..bases.len());
                    let p = relabel(&bases[base], &mut rng);
                    forms.insert(iso::canonical_form(&p));
                    mine.push((base, p));
                }
                submissions.push(mine);
            }
            let svc_ref = &svc;
            let failures: Vec<String> = std::thread::scope(|s| {
                let handles: Vec<_> = submissions
                    .iter()
                    .map(|mine| {
                        s.spawn(move || {
                            let mut errs = Vec::new();
                            for (base, p) in mine {
                                match svc_ref.submit(p, QueryOptions::default()) {
                                    Ok(out) if out.count == oracle[*base] => {}
                                    Ok(out) => errs.push(format!(
                                        "base {base}: got {} want {}",
                                        out.count, oracle[*base]
                                    )),
                                    Err(e) => errs.push(format!("base {base}: error {e}")),
                                }
                            }
                            errs
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread"))
                    .collect()
            });
            if !failures.is_empty() {
                return Err(failures.join("; "));
            }
            let stats = svc.cache_stats();
            if stats.entries != forms.len() {
                return Err(format!(
                    "cache entries {} != {} distinct canonical forms",
                    stats.entries,
                    forms.len()
                ));
            }
            let total = (clients * per_client) as u64;
            if stats.hits + stats.misses < total {
                return Err(format!(
                    "cache saw {} lookups for {total} submissions",
                    stats.hits + stats.misses
                ));
            }
            Ok(())
        },
    );
}

/// Canonical keying, checked directly: a pattern and any vertex
/// relabeling of it produce the same canonical form; structurally
/// different patterns produce different forms.
#[test]
fn relabeling_preserves_canonical_form() {
    let mut rng = SmallRng::seed_from_u64(0x5354_4d41);
    for base in base_patterns() {
        let form = iso::canonical_form(&base);
        for _ in 0..8 {
            let r = relabel(&base, &mut rng);
            assert!(iso::isomorphic(&base, &r));
            assert_eq!(iso::canonical_form(&r), form, "{}", base.name());
        }
    }
    let tri = iso::canonical_form(&catalog::triangle());
    let sq = iso::canonical_form(&catalog::square());
    assert_ne!(tri, sq);
}
