//! Concurrency stress: work stealing must never change results, under any
//! stop/detect configuration, grid shape, chunking, or device count, and
//! results must be deterministic run-to-run even though steal timing is
//! scheduler-dependent.

use stmatch_core::{multi, Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};

fn grid(blocks: usize, wpb: usize) -> GridConfig {
    GridConfig {
        num_blocks: blocks,
        warps_per_block: wpb,
        shared_mem_per_block: 100 * 1024,
    }
}

/// A skewed graph that makes load imbalance (and hence stealing) likely.
fn skewed() -> Graph {
    gen::preferential_attachment(500, 3, 77).degree_ordered()
}

fn expected(g: &Graph, p: &Pattern) -> u64 {
    Engine::new(EngineConfig::naive().with_grid(grid(1, 1)))
        .run(g, p)
        .unwrap()
        .count
}

#[test]
fn stop_and_detect_levels_do_not_change_counts() {
    let g = skewed();
    let p = catalog::paper_query(8);
    let want = expected(&g, &p);
    for stop in 1..=4usize {
        for detect in 1..=stop {
            let mut cfg = EngineConfig::full().with_grid(grid(2, 2));
            cfg.stop_level = stop;
            cfg.detect_level = detect;
            cfg.chunk_size = 4;
            let got = Engine::new(cfg).run(&g, &p).unwrap().count;
            assert_eq!(got, want, "stop={stop} detect={detect}");
        }
    }
}

#[test]
fn tiny_chunks_force_contention_but_not_miscounts() {
    let g = skewed();
    let p = catalog::paper_query(6);
    let want = expected(&g, &p);
    for chunk in [1usize, 2, 3] {
        let mut cfg = EngineConfig::full().with_grid(grid(3, 3));
        cfg.chunk_size = chunk;
        assert_eq!(
            Engine::new(cfg).run(&g, &p).unwrap().count,
            want,
            "chunk={chunk}"
        );
    }
}

#[test]
fn repeated_runs_are_deterministic_in_count() {
    let g = skewed();
    let p = catalog::paper_query(7);
    let cfg = EngineConfig::full().with_grid(grid(4, 4));
    let engine = Engine::new(cfg);
    let first = engine.run(&g, &p).unwrap().count;
    for run in 0..6 {
        assert_eq!(engine.run(&g, &p).unwrap().count, first, "run {run}");
    }
}

#[test]
fn single_warp_grid_degenerates_gracefully() {
    // With one warp there is nobody to steal from; all configurations
    // must still terminate and agree.
    let g = gen::erdos_renyi(60, 220, 3);
    let p = catalog::paper_query(5);
    let want = expected(&g, &p);
    for cfg in [
        EngineConfig::naive(),
        EngineConfig::local_steal_only(),
        EngineConfig::local_global_steal(),
        EngineConfig::full(),
    ] {
        let got = Engine::new(cfg.with_grid(grid(1, 1)))
            .run(&g, &p)
            .unwrap()
            .count;
        assert_eq!(got, want);
    }
}

#[test]
fn one_warp_per_block_exercises_global_stealing_only() {
    // Blocks of one warp can never steal locally: only the push-based
    // global path can move work.
    let g = skewed();
    let p = catalog::paper_query(8);
    let want = expected(&g, &p);
    let mut cfg = EngineConfig::full().with_grid(grid(6, 1));
    cfg.chunk_size = g.num_vertices(); // single chunk: maximal imbalance
    let out = Engine::new(cfg).run(&g, &p).unwrap();
    assert_eq!(out.count, want);
}

#[test]
fn device_partitioning_is_exact_for_many_device_counts() {
    let g = skewed();
    let p = catalog::triangle();
    let engine = Engine::new(EngineConfig::full().with_grid(grid(2, 2)));
    let want = engine.run(&g, &p).unwrap().count;
    for devices in [1usize, 2, 3, 5, 8] {
        let out = multi::run_multi_device(&engine, &g, &p, devices).unwrap();
        assert_eq!(out.count, want, "devices={devices}");
    }
}

#[test]
fn timeout_yields_partial_monotone_counts() {
    // A timed-out run must flag itself and report no more matches than the
    // true total.
    let g = gen::rmat(8, 4, 123).degree_ordered();
    let p = catalog::paper_query(13); // heavy: triangle with three pendants
    let full = Engine::new(EngineConfig::full().with_grid(grid(2, 2)))
        .with_timeout(std::time::Duration::from_secs(60))
        .run(&g, &p)
        .unwrap();
    if full.timed_out {
        // A loaded or slow host can miss even the generous budget; there
        // is no reference total to compare against in that case.
        return;
    }
    let cut = Engine::new(EngineConfig::full().with_grid(grid(2, 2)))
        .with_timeout(std::time::Duration::from_millis(30))
        .run(&g, &p)
        .unwrap();
    if cut.timed_out {
        assert!(cut.count <= full.count);
    } else {
        assert_eq!(cut.count, full.count);
    }
}

#[test]
fn stack_bytes_follow_the_paper_formula() {
    // §VIII-A: the fixed stack allocation is
    // NUM_SETS x UNROLL x MAX_DEGREE x 4 B x NUM_WARP.
    let g = gen::complete(8);
    let p = catalog::paper_query(16); // K6
    let mut cfg = EngineConfig::full().with_grid(grid(2, 3));
    cfg.unroll = 4;
    cfg.max_degree_slab = 128;
    let engine = Engine::new(cfg);
    let plan = engine.compile(&p);
    let out = engine.run_plan(&g, &plan).unwrap();
    assert_eq!(
        out.stack_bytes,
        plan.num_sets() * 4 * 128 * 4 * 6,
        "NUM_SETS({}) x UNROLL(4) x MAX_DEGREE(128) x 4B x NUM_WARP(6)",
        plan.num_sets()
    );
    assert_eq!(out.num_sets, plan.num_sets());
    assert!(out.shared_bytes_per_block > 0);
    assert!(out.shared_bytes_per_block <= 100 * 1024);
}

#[test]
fn metrics_are_internally_consistent() {
    let g = skewed();
    let p = catalog::paper_query(8);
    let out = Engine::new(EngineConfig::full().with_grid(grid(2, 2)))
        .run(&g, &p)
        .unwrap();
    let total = out.metrics.total();
    assert_eq!(total.matches_found, out.count);
    assert!(total.active_lane_slots <= total.issued_lane_slots);
    assert!(out.metrics.lane_utilization() <= 1.0);
    assert!(out.metrics.load_imbalance() >= 1.0);
    assert!(total.local_steals <= total.local_steal_attempts);
    // Simulated cycles are bounded by the total instruction count.
    assert!(out.simulated_cycles() <= out.total_instructions());
}
