//! Cross-validation of the STMatch engine against the reference oracle:
//! every paper query, both induced modes, labeled and unlabeled, with and
//! without symmetry breaking, on several small graphs.

use stmatch_baselines::reference::{self, RefOptions};
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn engine_count(g: &Graph, p: &Pattern, induced: bool, symmetry: bool) -> u64 {
    let mut cfg = EngineConfig::default().with_grid(grid());
    cfg.induced = induced;
    cfg.symmetry_breaking = symmetry;
    Engine::new(cfg).run(g, p).unwrap().count
}

fn oracle_count(g: &Graph, p: &Pattern, induced: bool, symmetry: bool) -> u64 {
    reference::count(
        g,
        p,
        RefOptions {
            induced,
            symmetry_breaking: symmetry,
        },
    )
}

fn check(g: &Graph, p: &Pattern, induced: bool, symmetry: bool) {
    let want = oracle_count(g, p, induced, symmetry);
    let got = engine_count(g, p, induced, symmetry);
    assert_eq!(
        got,
        want,
        "{} on {} induced={induced} symmetry={symmetry} labeled={}",
        p.name(),
        g.name(),
        p.is_labeled()
    );
}

fn small_graphs() -> Vec<Graph> {
    vec![
        gen::erdos_renyi(36, 130, 7).with_name("er36"),
        gen::preferential_attachment(40, 3, 9)
            .degree_ordered()
            .with_name("pa40"),
        gen::complete(9).with_name("k9"),
        gen::grid(5, 5).with_name("grid5"),
    ]
}

#[test]
fn all_paper_queries_unlabeled_edge_induced() {
    for g in small_graphs() {
        for q in catalog::all_paper_queries() {
            check(&g, &q, false, true);
        }
    }
}

#[test]
fn all_paper_queries_unlabeled_vertex_induced() {
    for g in small_graphs() {
        for q in catalog::all_paper_queries() {
            check(&g, &q, true, true);
        }
    }
}

#[test]
fn paper_queries_embedding_counts_no_symmetry() {
    // Without symmetry breaking counts can be |Aut| times larger; use the
    // sparser graphs to keep runtimes sane.
    let graphs = vec![
        gen::erdos_renyi(30, 90, 3).with_name("er30"),
        gen::grid(4, 4).with_name("grid4"),
    ];
    for g in graphs {
        for i in [1, 3, 6, 8, 10, 13, 16, 19, 22, 24] {
            let q = catalog::paper_query(i);
            check(&g, &q, false, false);
            check(&g, &q, true, false);
        }
    }
}

#[test]
fn all_paper_queries_labeled() {
    for g in small_graphs() {
        let gl = gen::assign_random_labels(&g, 4, 17).with_name(g.name());
        for (i, q) in catalog::all_paper_queries().into_iter().enumerate() {
            let ql = q.with_random_labels(4, i as u64);
            check(&gl, &ql, false, true);
            check(&gl, &ql, true, true);
        }
    }
}

#[test]
fn classic_motifs_all_modes() {
    for g in small_graphs() {
        for p in [
            catalog::triangle(),
            catalog::wedge(),
            catalog::square(),
            catalog::diamond(),
            catalog::tailed_triangle(),
            catalog::star3(),
            catalog::k4(),
        ] {
            for induced in [false, true] {
                for symmetry in [false, true] {
                    check(&g, &p, induced, symmetry);
                }
            }
        }
    }
}
