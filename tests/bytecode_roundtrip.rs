//! Bytecode roundtrip properties (PR 7): the compiled tiers must be
//! *behaviorally invisible*. For every catalog paper query on both golden
//! fixture graphs, running with plan compilation on — at tier 0
//! (bytecode dispatch) and with specialization forced — must reproduce
//! the plan-walking engine's metrics bit-for-bit under the deterministic
//! steal-free schedule: same count, same total SIMT instructions, same
//! lane utilization. A randomized `testkit` leg extends the check to
//! arbitrary graphs, and a seeded-mutation leg proves the golden
//! comparison has teeth: corrupting one opcode in an otherwise
//! well-formed stream must change counts (and carries a reproduce line).

use stmatch_core::{CompiledPlan, Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::bytecode::{mutation, PlanBytecode};
use stmatch_pattern::catalog;
use stmatch_testkit::prop::forall;
use stmatch_testkit::rng::Rng;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

/// Steal-free configuration: the deterministic schedule under which
/// instruction totals are reproducible across runs, so metric equality
/// can be asserted exactly (steal timing would perturb batch composition
/// run-to-run while leaving counts intact).
fn deterministic_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::default().with_grid(grid());
    cfg.local_steal = false;
    cfg.global_steal = false;
    cfg
}

/// The same fixture graphs `tests/golden_counts.rs` pins counts on.
fn unlabeled_graph() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn labeled_graph() -> Graph {
    gen::assign_random_labels(&gen::rmat(6, 4, 11).degree_ordered(), 10, 2022)
}

/// Runs `q` on `g` under `cfg` and returns the metric triple the golden
/// suites pin: `(count, total instructions, lane utilization)`.
fn fingerprint(cfg: EngineConfig, g: &Graph, q: &stmatch_pattern::Pattern) -> (u64, u64, f64) {
    let out = Engine::new(cfg).run(g, q).unwrap();
    (
        out.count,
        out.total_instructions(),
        out.metrics.total().lane_utilization(),
    )
}

#[test]
fn compiled_tiers_are_metric_identical_on_golden_fixtures() {
    let fixtures = [
        ("unlabeled", unlabeled_graph(), false),
        ("labeled", labeled_graph(), true),
    ];
    for (gname, g, labeled) in &fixtures {
        for qi in 1..=24 {
            let q = if *labeled {
                catalog::paper_query(qi).with_random_labels(10, qi as u64)
            } else {
                catalog::paper_query(qi)
            };
            let base = fingerprint(deterministic_cfg(), g, &q);

            let mut tier0 = deterministic_cfg();
            tier0.compile.enabled = true;
            tier0.compile.specialize = false;
            assert_eq!(
                fingerprint(tier0, g, &q),
                base,
                "q{qi} on {gname}: bytecode dispatch must be metric-identical"
            );

            let mut forced = deterministic_cfg();
            forced.compile.enabled = true;
            forced.compile.tier_up_after = 0;
            assert_eq!(
                fingerprint(forced, g, &q),
                base,
                "q{qi} on {gname}: forced specialization must be metric-identical"
            );
        }
    }
}

#[test]
fn compiled_tiers_are_metric_identical_on_random_graphs() {
    forall(
        "compiled_tiers_are_metric_identical_on_random_graphs",
        |rng| {
            (
                rng.gen_range(8usize..40),
                rng.gen_range(1usize..4),
                rng.gen_range(0u64..1000),
                rng.gen_range(1usize..25),
                rng.gen::<bool>(),
            )
        },
        |&(n, density, seed, qi, forced)| {
            let n = n.clamp(2, 40);
            let g = gen::erdos_renyi(n, n * density.min(3), seed);
            let q = catalog::paper_query(qi.clamp(1, 24));
            let base = fingerprint(deterministic_cfg(), &g, &q);
            let mut cfg = deterministic_cfg();
            cfg.compile.enabled = true;
            if forced {
                cfg.compile.tier_up_after = 0;
            } else {
                cfg.compile.specialize = false;
            }
            let got = fingerprint(cfg, &g, &q);
            if got == base {
                Ok(())
            } else {
                Err(format!(
                    "{} forced={forced}: compiled {got:?} != plan-walk {base:?}",
                    q.name()
                ))
            }
        },
    );
}

/// The kill test for the golden comparison: swapping the first
/// intersect/difference opcode of a verified stream is exactly the class
/// of bug the metric-identity suites exist to catch, so running the
/// mutant through the full engine must change the count.
#[test]
fn seeded_opcode_swap_is_caught_by_golden_counts() {
    let g = unlabeled_graph();
    let reproduce = "reproduce: bytecode::mutation::swap_first_op_kind on q8, \
                     PA(48,4,3) degree-ordered fixture";
    let q = catalog::paper_query(8);
    let plan = Engine::new(deterministic_cfg()).compile(&q);
    let baseline = Engine::new(deterministic_cfg())
        .run_plan(&g, &plan)
        .unwrap()
        .count;
    assert_eq!(baseline, 4, "golden q8 count on the unlabeled fixture");

    let mut bc = PlanBytecode::lower(&plan).unwrap();
    assert!(
        mutation::swap_first_op_kind(&mut bc),
        "q8's cascade has an opcode to corrupt"
    );
    bc.verify()
        .expect("the mutant is well-formed — only its semantics are wrong");
    let mut cfg = deterministic_cfg();
    cfg.compile.enabled = true;
    let mutant = CompiledPlan::from_bytecode(bc, cfg.compile);
    let engine = Engine::new(cfg);
    let got = engine.run_plan_compiled(&g, &plan, &mutant).unwrap().count;
    assert_ne!(
        got, baseline,
        "opcode swap escaped the golden count check ({reproduce})"
    );
}
