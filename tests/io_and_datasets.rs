//! File I/O and dataset-registry integration tests.

use stmatch_graph::datasets::{toy, Dataset};
use stmatch_graph::{gen, io, GraphStats};

#[test]
fn edge_list_file_roundtrip() {
    let g = gen::erdos_renyi(50, 180, 77).with_name("er50");
    let dir = std::env::temp_dir().join("stmatch-io-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("er50.txt");
    // Write a SNAP-style edge list by hand.
    let mut text = String::from("# comment line\n");
    for (u, v) in g.edges() {
        text.push_str(&format!("{u}\t{v}\n"));
    }
    std::fs::write(&path, text).unwrap();
    let loaded = io::load_edge_list(&path).unwrap();
    assert_eq!(loaded.num_edges(), g.num_edges());
    assert_eq!(loaded.num_vertices(), g.num_vertices());
    for (u, v) in g.edges() {
        assert!(loaded.has_edge(u, v));
    }
    std::fs::remove_file(path).unwrap();
}

#[test]
fn lg_file_roundtrip_with_labels() {
    let g = gen::assign_random_labels(&gen::erdos_renyi(40, 120, 5), 6, 9).with_name("labeled40");
    let dir = std::env::temp_dir().join("stmatch-io-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("labeled40.lg");
    let mut buf = Vec::new();
    io::write_lg(&g, &mut buf).unwrap();
    std::fs::write(&path, &buf).unwrap();
    let loaded = io::load_lg(&path).unwrap();
    assert_eq!(loaded.num_edges(), g.num_edges());
    for v in g.vertices() {
        assert_eq!(loaded.label(v), g.label(v));
    }
    std::fs::remove_file(path).unwrap();
}

#[test]
fn loading_missing_file_errors() {
    assert!(io::load_edge_list("/nonexistent/definitely-missing.txt").is_err());
    assert!(io::load_lg("/nonexistent/definitely-missing.lg").is_err());
}

#[test]
fn all_datasets_load_and_are_degree_ordered() {
    for ds in Dataset::ALL {
        let g = ds.load();
        assert!(g.num_vertices() > 0, "{}", ds.name());
        assert!(g.num_edges() > 0, "{}", ds.name());
        assert_eq!(g.name(), ds.name());
        // Degree ordering: vertex 0 is a max-degree hub.
        let max = g.max_degree();
        assert_eq!(g.degree(0), max, "{} not degree-ordered", ds.name());
    }
}

#[test]
fn dataset_relative_shapes_mirror_the_paper() {
    // Relative orderings the paper's Table I implies, preserved by the
    // stand-ins: WikiVote is the smallest; Friendster has the most nodes;
    // MiCo and Orkut have the highest average degree of their size class.
    let stats: Vec<GraphStats> = Dataset::ALL
        .iter()
        .map(|d| GraphStats::of(&d.load()))
        .collect();
    let by_name = |n: &str| stats.iter().find(|s| s.name.starts_with(n)).unwrap();
    assert!(
        by_name("WikiVote").num_vertices <= stats.iter().map(|s| s.num_vertices).min().unwrap()
    );
    assert_eq!(
        by_name("Friendster").num_vertices,
        stats.iter().map(|s| s.num_vertices).max().unwrap()
    );
    assert!(by_name("Orkut").avg_degree() > by_name("Youtube").avg_degree());
    assert!(by_name("MiCo").avg_degree() > by_name("Enron").avg_degree());
}

#[test]
fn labeled_datasets_are_deterministic_per_seed() {
    let a = Dataset::Enron.load_labeled(10, 1);
    let b = Dataset::Enron.load_labeled(10, 1);
    let c = Dataset::Enron.load_labeled(10, 2);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn toy_graphs_match_documented_shapes() {
    let house = toy::house();
    assert_eq!((house.num_vertices(), house.num_edges()), (5, 6));
    let bowtie = toy::bowtie();
    assert_eq!(bowtie.degree(2), 4);
    let ex = toy::example();
    assert!(ex.num_edges() >= 10);
}

#[test]
fn stats_threshold_column_counts_hubs() {
    let g = gen::star(5000).with_name("star5000");
    let s = GraphStats::of(&g); // threshold 4096
    assert_eq!(s.max_degree, 5000);
    assert!(s.frac_above_threshold > 0.0);
    assert!(s.frac_above_threshold < 0.001);
}
