#!/usr/bin/env bash
# Tier-1 gate for stmatch-rs. Must pass with NO network access: the
# workspace has zero registry dependencies (see DESIGN.md §5), so every
# cargo invocation runs --offline. A hard wall-clock cap guards each
# phase so a scheduler deadlock fails the gate instead of hanging it.
set -euo pipefail
cd "$(dirname "$0")"

CAP=${CI_PHASE_CAP:-900}   # seconds per phase
run() {
    local name=$1; shift
    echo "==> ${name}: $*"
    timeout --signal=KILL "${CAP}" "$@"
    echo "==> ${name}: OK"
}

run "fmt"   cargo fmt --all --check
run "build" cargo build --release --offline
run "test"  cargo test -q --workspace --offline

# Example smoke runs: the two cheapest examples, release profile (already
# built above), each under the cap.
run "smoke:quickstart"   cargo run --release --offline --example quickstart
run "smoke:motif_census" cargo run --release --offline --example motif_census

# Hot-path drift gate: re-runs the BENCH_PR2 workloads and fails on any
# drift in golden counts or simulator metrics (instructions, utilization).
run "smoke:hotpath" cargo run --release --offline -p stmatch-bench --bin hotpath_check

# Fault-tolerance gate: q1/q6 under a seeded fault plan (one warp panic +
# one warp stall); counts must stay exactly at the goldens, the death must
# be contained and recovered, and the run must finish well under its cap.
run "smoke:faults" cargo run --release --offline -p stmatch-bench --bin faults_check

echo "ci.sh: all phases passed"
