#!/usr/bin/env bash
# Tier-1 gate for stmatch-rs. Must pass with NO network access: the
# workspace has zero registry dependencies (see DESIGN.md §5), so every
# cargo invocation runs --offline. A hard wall-clock cap guards each
# phase so a scheduler deadlock fails the gate instead of hanging it.
set -euo pipefail
cd "$(dirname "$0")"

CAP=${CI_PHASE_CAP:-900}   # seconds per phase
run() {
    local name=$1; shift
    echo "==> ${name}: $*"
    timeout --signal=KILL "${CAP}" "$@"
    echo "==> ${name}: OK"
}

run "fmt"   cargo fmt --all --check
run "build" cargo build --release --offline
run "lint"  cargo clippy --workspace --all-targets --offline -- -D warnings
run "test"  cargo test -q --workspace --offline

# Example smoke runs: the two cheapest examples, release profile (already
# built above), each under the cap.
run "smoke:quickstart"   cargo run --release --offline --example quickstart
run "smoke:motif_census" cargo run --release --offline --example motif_census

# Hot-path drift gate: re-runs the BENCH_PR2 workloads and fails on any
# drift in golden counts or simulator metrics (instructions, utilization).
run "smoke:hotpath" cargo run --release --offline -p stmatch-bench --bin hotpath_check

# Hub-bitmap routing gate: every workload off-leg must stay bit-identical
# to the classic engine (GOLDEN rows / pinned counts, zero bitmap
# counters), the on legs must reproduce the exact counts, and the bitmap
# paths must actually fire where the plans have hub-operand set ops (the
# grep guards against a silently-dead phase: the binary must report
# nonzero merged words).
run "smoke:bitmap" cargo run --release --offline -p stmatch-bench --bin bitmap_check
echo "==> smoke:bitmap(grep): expecting nonzero bitmap traffic"
cargo run --release --offline -p stmatch-bench --bin bitmap_check 2>/dev/null \
    | grep -Eq "bitmap_check totals: probe_words=[0-9]*[1-9][0-9]* merge_words=[0-9]*[1-9][0-9]*" \
    || { echo "==> smoke:bitmap(grep): FAILED — totals line missing or zero"; exit 1; }
echo "==> smoke:bitmap(grep): OK"

# Plan-compilation gate: every off-leg must stay bit-identical to the
# pre-compilation engine (GOLDEN rows / pinned clique count, no tier
# reported), every compiled leg must be metric-bit-identical to its off
# leg, and tier routing must match the promotion policy (q8 cascades
# reach tier 1 under profiling, q1 stays tier 0 until specialization is
# forced, q6 never leaves bytecode). The grep guards against a silently
# dead tier-1 path: the binary must report nonzero specialized runs.
run "smoke:bytecode" cargo run --release --offline -p stmatch-bench --bin bytecode_check
echo "==> smoke:bytecode(grep): expecting nonzero specialized traffic"
cargo run --release --offline -p stmatch-bench --bin bytecode_check 2>/dev/null \
    | grep -Eq "bytecode_check totals: specialized_runs=[0-9]*[1-9][0-9]* tier0_runs=[0-9]*[1-9][0-9]*" \
    || { echo "==> smoke:bytecode(grep): FAILED — totals line missing or zero"; exit 1; }
echo "==> smoke:bytecode(grep): OK"

# Fault-tolerance gate: q1/q6 under a seeded fault plan (one warp panic +
# one warp stall); counts must stay exactly at the goldens, the death must
# be contained and recovered, and the run must finish well under its cap.
run "smoke:faults" cargo run --release --offline -p stmatch-bench --bin faults_check

# Concurrency-analysis gate: q1/q6 clean, seeded-fault, and sharded runs
# with every simt-check checker enabled must stay free of error
# diagnostics (zero false positives), and the seeded mutations must be CAUGHT — the bin
# exits 1 on findings, so the mutation legs invert its exit code and then
# grep for the expected diagnostic (a timeout kill must not pass as a
# catch).
run "smoke:check" cargo run --release --offline -p stmatch-bench --bin simt_check
for mut in lock-drop:"data race" lock-invert:"cycle" cache-drop:"data race" \
           rail-drop:"data race on rail"; do
    name=${mut%%:*}; expect=${mut#*:}
    echo "==> smoke:check(mutate=${name}): expecting a caught mutation"
    log=$(mktemp)
    if timeout --signal=KILL "${CAP}" \
        cargo run --release --offline -p stmatch-bench --bin simt_check -- \
        "--mutate=${name}" >"${log}" 2>&1; then
        cat "${log}"
        echo "==> smoke:check(mutate=${name}): FAILED — mutation escaped"
        exit 1
    fi
    if ! grep -q "${expect}" "${log}"; then
        cat "${log}"
        echo "==> smoke:check(mutate=${name}): FAILED — no '${expect}' diagnostic"
        exit 1
    fi
    rm -f "${log}"
    echo "==> smoke:check(mutate=${name}): OK"
done

# Sharded-execution gate: with the knob off the engine must stay
# bit-identical to the baseline (golden counts, zero rail metrics); a
# clean 4-shard run and the seeded 1-of-4 / 3-of-4 shard-kill legs must
# land the exact goldens with the dead shards' work recovered over the
# rail and a deterministic FAULT_SEED reproduce line on every report.
run "smoke:shard" cargo run --release --offline -p stmatch-bench --bin shard_check

# Resident-service gate: cold/cache-hit submissions must reproduce the
# golden counts, a naive-schedule cache hit must be metric-exact against
# the cold engine, and injected deaths / expired deadlines must fail
# per-query while the shared pool keeps serving exact counts.
run "smoke:service" cargo run --release --offline -p stmatch-bench --bin service_check

# Static-verifier gate (DESIGN.md §4j). Clean leg: q1..q24 on both golden
# fixtures must verify with zero diagnostics (false positives fail CI),
# and certified-spill-free plans must run with zero spills and a runtime
# peak under the certificate's bound. Mutation legs: each seeded plan
# corruption must be CAUGHT — the bin exits 1 printing the named
# diagnostic, so the legs invert its exit code and grep for the expected
# text (a timeout kill must not pass as a catch).
run "smoke:verify" cargo run --release --offline -p stmatch-bench --bin verify_check
for mut in dead-set:"dead set" drop-bound:"drops the symmetry bound" \
           shard-overlap:"covered twice"; do
    name=${mut%%:*}; expect=${mut#*:}
    echo "==> smoke:verify(mutate=${name}): expecting a caught mutation"
    log=$(mktemp)
    if timeout --signal=KILL "${CAP}" \
        cargo run --release --offline -p stmatch-bench --bin verify_check -- \
        "--mutate=${name}" >"${log}" 2>&1; then
        cat "${log}"
        echo "==> smoke:verify(mutate=${name}): FAILED — mutation escaped"
        exit 1
    fi
    if ! grep -q "${expect}" "${log}"; then
        cat "${log}"
        echo "==> smoke:verify(mutate=${name}): FAILED — no '${expect}' diagnostic"
        exit 1
    fi
    if ! grep -q "reproduce:" "${log}"; then
        cat "${log}"
        echo "==> smoke:verify(mutate=${name}): FAILED — diagnostic lacks a reproduce line"
        exit 1
    fi
    rm -f "${log}"
    echo "==> smoke:verify(mutate=${name}): OK"
done

# Incremental-matching gate (DESIGN.md §4k). Off leg: the delta knob
# defaults off and flipping it leaves full runs bit-identical (golden
# counts, identical instruction totals with stealing disabled). Stream and
# service legs: cumulative MatchDeltas over seeded update streams must
# reconcile exactly with full recomputation after every batch, through
# both the engine API and MatchService::apply_batch/submit_watch. Timing
# leg: regenerates BENCH_PR10.json and fails if the amortized per-batch
# delta work at batch 16 is not >= 10x below one full recount.
run "smoke:delta" cargo run --release --offline -p stmatch-bench --bin delta_check

# Atomics-annotation lint: every `Ordering::` use in the engine crate must
# carry a nearby comment naming its ordering and the invariant it upholds
# (within the 10 preceding lines, or trailing on the use itself). Keeps
# the memory-ordering story reviewable file-locally.
echo "==> lint:atomics: scanning crates/core/src for unannotated atomics"
awk '
/Ordering::(Relaxed|Acquire|Release|AcqRel|SeqCst)/ {
    line=$0
    if (line ~ /^[[:space:]]*\/\//|| line ~ /use std::sync/) { push(line); next }
    annotated=0
    for (i=0;i<10;i++) {
        c=buf[(idx-i+10)%10]
        if (c ~ /\/\/.*(Relaxed|Acquire|Release|AcqRel|SeqCst)/) { annotated=1; break }
    }
    if (line ~ /\/\/.*(Relaxed|Acquire|Release|AcqRel|SeqCst)/) annotated=1
    if (!annotated) { printf "%s:%d: unannotated atomic: %s\n", FILENAME, FNR, line; bad=1 }
    push(line); next
}
{ push($0) }
function push(l) { buf[idx%10]=l; idx++ }
END { exit bad }
' crates/core/src/*.rs \
    || { echo "==> lint:atomics: FAILED — annotate the ordering invariant"; exit 1; }
echo "==> lint:atomics: OK"

echo "ci.sh: all phases passed"
