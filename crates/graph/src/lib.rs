//! Graph substrate for the STMatch reproduction.
//!
//! This crate provides the data-graph representation shared by every engine in
//! the workspace:
//!
//! * [`Graph`] — an immutable, label-aware CSR (compressed sparse row) graph
//!   with sorted adjacency lists, the format the STMatch kernel expects for
//!   its binary-search set operations.
//! * [`GraphBuilder`] — incremental construction from edge lists.
//! * [`bitmap`] — the optional hub-bitmap neighbor index: dense bitmap rows
//!   for high-degree vertices, enabling O(1) adjacency probes and
//!   word-parallel intersections in the matching engines.
//! * [`gen`] — deterministic synthetic generators (Erdős–Rényi, RMAT
//!   power-law, cliques, stars, …) used both by tests and by the dataset
//!   stand-ins.
//! * [`io`] — loaders for SNAP edge-list files and the `.lg` labeled-graph
//!   format, so real datasets can be dropped in.
//! * [`stats`] — degree statistics reproducing the columns of Table I of the
//!   paper.
//! * [`datasets`] — the registry of scaled-down stand-ins for the paper's
//!   SNAP graphs (WikiVote, Enron, MiCo, Youtube, LiveJournal, Orkut,
//!   Friendster).
//! * [`delta`] — batch-dynamic edge updates: a [`delta::DeltaOverlay`] of
//!   sorted per-vertex insert/delete side arrays over the immutable CSR,
//!   with O(touched) snapshot views and hub-bitmap rows patched word-wise
//!   (DESIGN.md §4k).

pub mod bitmap;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod gen;
pub mod io;
pub mod stats;

pub use bitmap::HubBitmapIndex;
pub use builder::GraphBuilder;
pub use csr::{mutation, Graph, VertexId};
pub use delta::{AppliedBatch, DeltaOverlay, EdgeOp};
pub use stats::GraphStats;

/// A vertex label. Label `0` is the default for unlabeled graphs.
pub type Label = u32;
