//! Deterministic synthetic graph generators.
//!
//! All generators take an explicit seed and are fully deterministic, so the
//! benchmark tables are reproducible run-to-run. The RMAT generator is the
//! workhorse for the dataset stand-ins: it produces the power-law degree
//! skew that makes work stealing matter in the paper's evaluation.

use crate::{Graph, GraphBuilder, Label, VertexId};
use stmatch_testkit::rng::{Rng, SmallRng};

/// Erdős–Rényi G(n, m): `m` edges sampled uniformly without replacement.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0, "need at least two vertices for edges");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let target = m.min(max_edges);
    // Rejection sampling; fine for the sparse graphs we generate.
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    while seen.len() < target {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// RMAT (recursive matrix) generator producing a power-law degree
/// distribution. `scale` gives `n = 2^scale` vertices; `edge_factor` gives
/// `m ≈ n * edge_factor` distinct undirected edges. Probabilities follow the
/// Graph500 defaults (a=0.57, b=0.19, c=0.19, d=0.05) unless overridden.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    rmat_with_probs(scale, edge_factor, seed, (0.57, 0.19, 0.19, 0.05))
}

/// RMAT with explicit quadrant probabilities `(a, b, c, d)`, `a+b+c+d == 1`.
pub fn rmat_with_probs(
    scale: u32,
    edge_factor: usize,
    seed: u64,
    (a, b, c, d): (f64, f64, f64, f64),
) -> Graph {
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "RMAT probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let m_target = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m_target);
    // Oversample: duplicates and self-loops get dropped by the builder.
    let attempts = m_target * 2 + 16;
    for _ in 0..attempts {
        let (mut lo_u, mut lo_v) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, half)
            } else if r < a + b + c {
                (half, 0)
            } else {
                (half, half)
            };
            lo_u += du;
            lo_v += dv;
            half >>= 1;
        }
        builder.add_edge(lo_u as VertexId, lo_v as VertexId);
    }
    builder.build()
}

/// The complete graph K_n.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// A star: center 0 connected to `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(leaves + 1, leaves);
    for leaf in 1..=leaves as VertexId {
        b.add_edge(0, leaf);
    }
    b.build()
}

/// A simple path 0-1-...-(n-1).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// A cycle of `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.add_edge(n as VertexId - 1, 0);
    b.build()
}

/// `rows x cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::with_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Complete bipartite graph K_{a,b}.
pub fn complete_bipartite(a: usize, b_count: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(a + b_count, a * b_count);
    for u in 0..a as VertexId {
        for v in 0..b_count as VertexId {
            b.add_edge(u, a as VertexId + v);
        }
    }
    b.build()
}

/// Barabási–Albert-style preferential attachment: each new vertex attaches
/// to `m` existing vertices chosen proportional to degree. Produces hubs.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m);
    // Repeated-endpoint list: sampling uniformly from it is degree-biased.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique of m+1 vertices.
    for u in 0..=(m as VertexId) {
        for v in (u + 1)..=(m as VertexId) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in (m + 1)..n {
        // Insertion-ordered Vec, not a HashSet: iterating a HashSet walks
        // RandomState order, which differs per process and broke the
        // cross-process determinism the golden-count fixtures pin. `m` is
        // tiny, so the linear dedup scan is free.
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(new as VertexId, t);
            endpoints.push(new as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice of `n` vertices each
/// joined to its `k` nearest neighbors (`k` even), with each edge rewired
/// to a random endpoint with probability `beta`. High clustering with
/// short paths — a useful counterpoint to RMAT's hub-dominated skew in
/// tests.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniformly random non-self endpoint.
                let mut w = rng.gen_range(0..n);
                while w == u {
                    w = rng.gen_range(0..n);
                }
                b.add_edge(u as VertexId, w as VertexId);
            } else {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Assigns `num_labels` labels uniformly at random (seeded) to the vertices,
/// as the paper does for the labeled-matching experiments ("randomly assign
/// ten labels to the data and query graphs").
pub fn assign_random_labels(g: &Graph, num_labels: u32, seed: u64) -> Graph {
    assert!(num_labels >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels: Vec<Label> = (0..g.num_vertices())
        .map(|_| rng.gen_range(0..num_labels))
        .collect();
    g.relabeled(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_is_deterministic_and_sized() {
        let g1 = erdos_renyi(50, 100, 7);
        let g2 = erdos_renyi(50, 100, 7);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_edges(), 100);
        let g3 = erdos_renyi(50, 100, 8);
        assert_ne!(g1, g3);
    }

    #[test]
    fn er_caps_at_complete() {
        let g = erdos_renyi(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 8, 42);
        assert!(g.num_vertices() == 1024);
        assert!(g.num_edges() > 1024); // enough survived dedup
                                       // Power-law: max degree far above average degree.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn star_path_cycle_shapes() {
        assert_eq!(star(5).degree(0), 5);
        assert_eq!(path(4).num_edges(), 3);
        let c = cycle(5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn grid_degrees() {
        let g = grid(3, 3);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(4), 4); // center
        assert_eq!(g.degree(0), 2); // corner
    }

    #[test]
    fn bipartite_has_no_triangles() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_edges(), 12);
        for (u, v) in g.edges() {
            for &w in g.neighbors(v) {
                assert!(!g.has_edge(u, w) || w == u);
            }
        }
    }

    #[test]
    fn pa_produces_hubs() {
        let g = preferential_attachment(200, 2, 3);
        assert!(g.max_degree() >= 10, "max degree {}", g.max_degree());
    }

    #[test]
    fn watts_strogatz_shapes() {
        // Without rewiring, exactly a ring lattice: every degree == k.
        let g0 = watts_strogatz(40, 4, 0.0, 1);
        assert!(g0.vertices().all(|v| g0.degree(v) == 4));
        assert_eq!(g0.num_edges(), 80);
        // With rewiring the graph stays near the same size but changes.
        let g1 = watts_strogatz(40, 4, 0.3, 1);
        assert_ne!(g0, g1);
        assert!(g1.num_edges() <= 80); // rewires can collide and dedup
                                       // Deterministic per seed.
        assert_eq!(g1, watts_strogatz(40, 4, 0.3, 1));
    }

    #[test]
    fn random_labels_in_range() {
        let g = assign_random_labels(&complete(20), 10, 99);
        assert!(g.vertices().all(|v| g.label(v) < 10));
        assert!(g.is_labeled());
        // Deterministic.
        let g2 = assign_random_labels(&complete(20), 10, 99);
        assert_eq!(g, g2);
    }
}
