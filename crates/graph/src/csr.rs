//! Immutable CSR graph with sorted adjacency lists and vertex labels.
//!
//! Since the batch-dynamic work (DESIGN.md §4k) the CSR arrays are
//! `Arc`-shared and a [`Graph`] value can additionally carry a *patch*: a
//! small table of materialized replacement rows for the vertices an edge
//! batch touched. A patched graph ("view") answers every query through the
//! same API — `neighbors` consults the patch first — so the whole engine
//! stack runs on views unchanged, while constructing one costs O(touched),
//! not O(graph). Views are produced by [`crate::delta::DeltaOverlay`];
//! graphs built normally never carry a patch.

use crate::bitmap::HubBitmapIndex;
use crate::Label;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Vertex identifier. `u32` keeps the warp stacks compact (the paper stores
/// candidate sets as 32-bit node ids in GPU global memory).
pub type VertexId = u32;

/// Materialized replacement rows for the vertices an edge batch touched,
/// plus the patched global aggregates. Shared by every clone of a view.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct GraphPatch {
    /// Fully merged, sorted neighbor list per touched vertex.
    pub(crate) rows: HashMap<VertexId, Arc<[VertexId]>>,
    /// Undirected edge count of the patched graph.
    pub(crate) num_edges: usize,
    /// Upper bound on the patched graph's maximum degree (exact unless a
    /// deletion shrank the unique maximum-degree vertex; see
    /// [`Graph::max_degree`]). Only sizes host-side slabs, so an upper
    /// bound is always safe.
    pub(crate) max_degree: usize,
}

/// An undirected, vertex-labeled graph in CSR form.
///
/// Adjacency lists are sorted ascending, which every engine in the workspace
/// relies on for binary-search set intersection/difference — the core
/// primitive of the STMatch `getCandidates` step.
///
/// The graph is immutable after construction; build one with
/// [`crate::GraphBuilder`] or a generator from [`crate::gen`], or derive a
/// batch-updated *view* through [`crate::delta::DeltaOverlay`]. Cloning is
/// cheap: the CSR arrays are `Arc`-shared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col_idx` for vertex `v`.
    row_ptr: Arc<Vec<usize>>,
    /// Concatenated sorted neighbor lists.
    col_idx: Arc<Vec<VertexId>>,
    /// One label per vertex; all zero for unlabeled graphs.
    labels: Arc<Vec<Label>>,
    /// Number of distinct labels in use (at least 1).
    num_labels: u32,
    /// Human-readable name (dataset id), used by the bench harness.
    name: String,
    /// Topology version: 0 for freshly built graphs, bumped by every
    /// applied [`crate::delta::DeltaOverlay`] batch. A hub-bitmap index is
    /// stamped with the version it was built (or patched) for, and every
    /// probe checks the stamp — see [`Graph::has_edge`].
    version: u64,
    /// Replacement rows for batch-touched vertices (`None` = plain CSR).
    patch: Option<Arc<GraphPatch>>,
    /// Optional hub-bitmap neighbor index (see [`crate::bitmap`]); derived
    /// data attached with [`Graph::with_hub_bitmap`] or built lazily (and
    /// exactly once, even under concurrent callers) by
    /// [`Graph::ensure_hub_bitmap`]; absent by default.
    hub_bitmap: OnceLock<HubBitmapIndex>,
}

impl Graph {
    pub(crate) fn from_parts(
        row_ptr: Vec<usize>,
        col_idx: Vec<VertexId>,
        labels: Vec<Label>,
        name: String,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), labels.len() + 1);
        let num_labels = labels.iter().copied().max().unwrap_or(0) + 1;
        Graph {
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            labels: Arc::new(labels),
            num_labels,
            name,
            version: 0,
            patch: None,
            hub_bitmap: OnceLock::new(),
        }
    }

    /// A view sharing this graph's arrays, with `patch` rows overriding the
    /// touched vertices, stamped `version`, and (when this graph carries a
    /// hub index) `patched_index` attached in its place. O(1) beyond what
    /// the caller already materialized.
    pub(crate) fn with_patch(
        &self,
        patch: GraphPatch,
        version: u64,
        patched_index: Option<HubBitmapIndex>,
    ) -> Graph {
        Graph {
            row_ptr: Arc::clone(&self.row_ptr),
            col_idx: Arc::clone(&self.col_idx),
            labels: Arc::clone(&self.labels),
            num_labels: self.num_labels,
            name: self.name.clone(),
            version,
            patch: Some(Arc::new(patch)),
            hub_bitmap: match patched_index {
                Some(idx) => OnceLock::from(idx),
                None => OnceLock::new(),
            },
        }
    }

    /// A view of this graph with the given undirected edges removed — the
    /// staged-view primitive behind exactly-once delta enumeration: stage
    /// `i` of a batch enumerates its update edge against the graph minus
    /// the batch's earlier (deletes) or later (inserts) edges. O(sum of
    /// touched degrees), independent of graph size. Every listed edge must
    /// be present; self-loops and duplicates are the caller's bug.
    ///
    /// The view keeps this graph's version (it is a *hypothetical* stage
    /// graph, not a new topology) and carries no hub index — delta
    /// launches run with hub routing off, so none is ever probed.
    pub fn without_edges(&self, edges: &[(VertexId, VertexId)]) -> Graph {
        if edges.is_empty() {
            return self.clone();
        }
        let mut removed: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        for &(u, v) in edges {
            debug_assert_ne!(u, v, "self-loop in without_edges");
            removed.entry(u).or_default().push(v);
            removed.entry(v).or_default().push(u);
        }
        // Start from the existing patch (if any) so rows overridden by an
        // earlier view survive; removal rows then overwrite the touched
        // vertices.
        let mut rows = self
            .patch
            .as_ref()
            .map(|p| p.rows.clone())
            .unwrap_or_default();
        for (v, gone) in removed {
            let row: Arc<[VertexId]> = self
                .neighbors(v)
                .iter()
                .copied()
                .filter(|u| !gone.contains(u))
                .collect();
            debug_assert_eq!(
                row.len() + gone.len(),
                self.degree(v),
                "without_edges: an edge at vertex {v} is absent or duplicated"
            );
            rows.insert(v, row);
        }
        let patch = GraphPatch {
            rows,
            num_edges: self.num_edges() - edges.len(),
            // Removal can only shrink degrees; the old bound stays safe
            // for slab sizing.
            max_degree: self.max_degree(),
        };
        self.with_patch(patch, self.version, None)
    }

    /// Topology version stamp: 0 for freshly built graphs; views produced
    /// by a [`crate::delta::DeltaOverlay`] carry the overlay's batch count.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True when this graph is a patched view (carries replacement rows)
    /// rather than a plain CSR.
    #[inline]
    pub fn is_view(&self) -> bool {
        self.patch.is_some()
    }

    /// Re-stamps the version (used by `DeltaOverlay::compact`, whose folded
    /// CSR represents the overlay's current version, not a fresh graph).
    pub(crate) fn with_version(mut self, version: u64) -> Graph {
        self.version = version;
        self
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges (each edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        match &self.patch {
            Some(p) => p.num_edges,
            None => self.col_idx.len() / 2,
        }
    }

    /// The graph's dataset name (empty for ad-hoc graphs).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph (used by the dataset registry).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        if let Some(p) = &self.patch {
            if let Some(row) = p.rows.get(&v) {
                return row;
            }
        }
        let v = v as usize;
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        if let Some(p) = &self.patch {
            if let Some(row) = p.rows.get(&v) {
                return row.len();
            }
        }
        let v = v as usize;
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// The label of `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// Number of distinct labels (1 for unlabeled graphs).
    #[inline]
    pub fn num_labels(&self) -> u32 {
        self.num_labels
    }

    /// True if the graph carries non-trivial labels.
    #[inline]
    pub fn is_labeled(&self) -> bool {
        self.num_labels > 1
    }

    /// The attached index after the version-stamp check, or `None`.
    ///
    /// Probing an index built for a different topology version would
    /// silently answer adjacency from a stale bitmap — the classic overlay
    /// hazard — so any mismatch is a hard, named diagnostic rather than a
    /// wrong count.
    #[inline]
    fn checked_index(&self) -> Option<&HubBitmapIndex> {
        let idx = self.hub_bitmap.get()?;
        if idx.version() != self.version {
            panic!(
                "stale hub-bitmap probe on graph '{}': index stamped for \
                 version {} but the graph is at version {}. An overlay \
                 advanced the topology without patching the index — derive \
                 views via DeltaOverlay::snapshot (word-patched rows) or \
                 rebuild through compact().\n  reproduce: attach a \
                 version-{} index to a version-{} view, e.g. \
                 stmatch_graph::mutation::attach_stale_index, then call \
                 has_edge/hub_bits",
                self.name,
                idx.version(),
                self.version,
                idx.version(),
                self.version,
            );
        }
        Some(idx)
    }

    /// Edge test. With a hub-bitmap index attached, an endpoint that is a
    /// hub answers with one O(1) word probe; otherwise (and always without
    /// an index) this binary-searches the (sorted) smaller adjacency list.
    ///
    /// # Panics
    /// Panics with a named diagnostic if the attached index's version
    /// stamp does not match the graph's (a stale index would answer
    /// adjacency for a different topology).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if let Some(idx) = self.checked_index() {
            if let Some(hit) = idx.contains(u, v).or_else(|| idx.contains(v, u)) {
                return hit;
            }
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Attaches a freshly built hub-bitmap index (see [`crate::bitmap`])
    /// covering every vertex with `degree > threshold`. Replaces any index
    /// already attached.
    pub fn with_hub_bitmap(mut self, threshold: usize) -> Self {
        self.hub_bitmap = OnceLock::from(HubBitmapIndex::build(&self, threshold));
        self
    }

    /// Returns the attached hub-bitmap index, building it at `threshold`
    /// first if none is attached yet. Thread-safe and idempotent: under
    /// concurrent callers exactly one build runs and every caller sees the
    /// same index — this is the shared-index handoff a resident service
    /// uses so one `Arc<Graph>` serves many queries without per-query
    /// index builds. (If an index is already attached, its threshold wins;
    /// `threshold` is only used for a fresh build.)
    pub fn ensure_hub_bitmap(&self, threshold: usize) -> &HubBitmapIndex {
        self.hub_bitmap
            .get_or_init(|| HubBitmapIndex::build(self, threshold))
    }

    /// The attached hub-bitmap index, if any.
    #[inline]
    pub fn hub_bitmap(&self) -> Option<&HubBitmapIndex> {
        self.hub_bitmap.get()
    }

    /// The bitmap row of `v` when an index is attached and `v` is a hub.
    ///
    /// # Panics
    /// Panics with a named diagnostic on a stale index (see
    /// [`Graph::has_edge`]).
    #[inline]
    pub fn hub_bits(&self, v: VertexId) -> Option<&[u64]> {
        self.checked_index()?.row(v)
    }

    /// Iterator over all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for the empty graph). On a
    /// patched view this is an upper bound (exact unless a deletion shrank
    /// the unique maximum-degree vertex): it only sizes host-side slab
    /// capacities, where an upper bound is always safe.
    pub fn max_degree(&self) -> usize {
        match &self.patch {
            Some(p) => p.max_degree,
            None => self.vertices().map(|v| self.degree(v)).max().unwrap_or(0),
        }
    }

    /// Returns a copy of this graph with labels replaced by `labels`.
    ///
    /// # Panics
    /// Panics if `labels.len() != num_vertices()`.
    pub fn relabeled(&self, labels: Vec<Label>) -> Graph {
        assert_eq!(labels.len(), self.num_vertices(), "label count mismatch");
        let num_labels = labels.iter().copied().max().unwrap_or(0) + 1;
        Graph {
            row_ptr: Arc::clone(&self.row_ptr),
            col_idx: Arc::clone(&self.col_idx),
            labels: Arc::new(labels),
            num_labels,
            name: self.name.clone(),
            version: self.version,
            patch: self.patch.clone(),
            // The hub index depends only on topology, which is unchanged.
            hub_bitmap: self.hub_bitmap.clone(),
        }
    }

    /// Returns the same topology with all labels cleared to 0.
    pub fn unlabeled(&self) -> Graph {
        self.relabeled(vec![0; self.num_vertices()])
    }

    /// Approximate in-memory footprint in bytes (CSR arrays + labels +
    /// patch rows + hub-bitmap index when attached).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<VertexId>()
            + self.labels.len() * std::mem::size_of::<Label>()
            + self.patch.as_ref().map_or(0, |p| {
                p.rows
                    .values()
                    .map(|r| r.len() * std::mem::size_of::<VertexId>())
                    .sum()
            })
            + self.hub_bitmap.get().map_or(0, |b| b.memory_bytes())
    }

    /// Returns a new graph whose vertex ids are permuted so that vertices are
    /// ordered by descending degree. This is the standard relabeling that
    /// graph-mining systems apply so that symmetry-breaking comparisons
    /// (`v > u`) prune the search tree early.
    pub fn degree_ordered(&self) -> Graph {
        let n = self.num_vertices();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        // Stable sort for determinism across runs.
        order.sort_by(|&a, &b| self.degree(b).cmp(&self.degree(a)).then(a.cmp(&b)));
        // old id -> new id
        let mut rank = vec![0 as VertexId; n];
        for (new_id, &old_id) in order.iter().enumerate() {
            rank[old_id as usize] = new_id as VertexId;
        }
        let mut builder = crate::GraphBuilder::with_capacity(n, self.num_edges());
        for old in 0..n as VertexId {
            builder.set_label(rank[old as usize], self.label(old));
        }
        for (u, v) in self.edges() {
            builder.add_edge(rank[u as usize], rank[v as usize]);
        }
        let g = builder.build().with_name(self.name.clone());
        // Vertex ids changed, so a carried index must be rebuilt (same
        // threshold) rather than copied.
        match self.hub_bitmap.get() {
            Some(idx) => g.with_hub_bitmap(idx.threshold()),
            None => g,
        }
    }
}

/// Seeded misuse helpers for the version-stamp safety net. Never called
/// from production paths — they exist so tests can prove the stale-probe
/// diagnostic fires by name (mirrors `stmatch-core`'s `mutation` modules).
pub mod mutation {
    use super::*;

    /// Attaches `donor`'s hub index to `view` *without* patching it — the
    /// exact bug the version stamp exists to catch: a view whose topology
    /// moved on while its index still answers for the old graph. Any
    /// subsequent `has_edge`/`hub_bits` on the returned graph must panic
    /// with the `stale hub-bitmap probe` diagnostic.
    pub fn attach_stale_index(view: &Graph, donor: &Graph) -> Graph {
        let idx = donor
            .hub_bitmap()
            .expect("donor must carry a hub index")
            .clone();
        assert_ne!(
            idx.version(),
            view.version(),
            "mutation needs a genuine version mismatch"
        );
        let mut g = view.clone();
        g.hub_bitmap = OnceLock::from(idx);
        g
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> crate::Graph {
        // 0-1, 1-2, 2-0 triangle; 2-3 tail.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn counts_vertices_and_edges() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.version(), 0, "fresh graphs sit at version 0");
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = triangle_plus_tail();
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
        }
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_tail();
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn degrees_match_neighbor_lengths() {
        let g = triangle_plus_tail();
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_ordering_puts_hubs_first() {
        let g = triangle_plus_tail();
        let d = g.degree_ordered();
        assert_eq!(d.num_edges(), g.num_edges());
        // New vertex 0 must be the old hub (degree 3).
        assert_eq!(d.degree(0), 3);
        let mut degs: Vec<_> = d.vertices().map(|v| d.degree(v)).collect();
        let mut sorted = degs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        degs.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(degs, sorted);
    }

    #[test]
    fn relabel_roundtrip() {
        let g = triangle_plus_tail();
        let labeled = g.relabeled(vec![1, 2, 1, 0]);
        assert!(labeled.is_labeled());
        assert_eq!(labeled.num_labels(), 3);
        assert_eq!(labeled.label(1), 2);
        let back = labeled.unlabeled();
        assert!(!back.is_labeled());
        assert_eq!(back.num_edges(), g.num_edges());
    }

    #[test]
    fn clones_share_storage() {
        let g = crate::gen::preferential_attachment(200, 4, 1);
        let c = g.clone();
        // Arc-backed arrays: a clone is a pointer copy, not a CSR copy.
        assert!(std::ptr::eq(
            g.neighbors(0).as_ptr(),
            c.neighbors(0).as_ptr()
        ));
        assert_eq!(g, c);
    }

    #[test]
    fn has_edge_agrees_with_csr_under_hub_bitmap() {
        // Satellite: the O(1) hub probe must answer exactly like the
        // binary-search path for every vertex pair of a PA graph.
        let plain = crate::gen::preferential_attachment(130, 5, 17).degree_ordered();
        let indexed = plain.clone().with_hub_bitmap(7);
        assert!(
            indexed.hub_bitmap().is_some_and(|b| b.num_hubs() > 0),
            "fixture must contain hubs above degree 7"
        );
        for u in plain.vertices() {
            for v in plain.vertices() {
                assert_eq!(
                    indexed.has_edge(u, v),
                    plain.has_edge(u, v),
                    "hub probe diverged from CSR at ({u},{v})"
                );
            }
        }
        assert!(indexed.memory_bytes() > plain.memory_bytes());
    }

    #[test]
    fn hub_bitmap_survives_relabel_and_reorder() {
        let g = crate::gen::preferential_attachment(80, 4, 5).with_hub_bitmap(6);
        let labeled = g.relabeled(vec![1; 80]);
        assert_eq!(
            labeled.hub_bitmap(),
            g.hub_bitmap(),
            "relabeling keeps topology, so the index is copied verbatim"
        );
        let ordered = g.degree_ordered();
        let idx = ordered.hub_bitmap().expect("reorder rebuilds the index");
        assert_eq!(idx.threshold(), 6);
        for v in ordered.vertices() {
            assert_eq!(idx.is_hub(v), ordered.degree(v) > 6);
        }
    }

    #[test]
    fn ensure_hub_bitmap_builds_once_under_concurrency() {
        let g = std::sync::Arc::new(crate::gen::preferential_attachment(80, 4, 5));
        assert!(g.hub_bitmap().is_none());
        let addrs: Vec<usize> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let g = g.clone();
                    s.spawn(move || g.ensure_hub_bitmap(6) as *const _ as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Every thread got the same index instance, and the threshold of
        // the winning build stuck.
        assert!(addrs.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(g.hub_bitmap().unwrap().threshold(), 6);
        // An already-attached index wins over a later ensure at a
        // different threshold.
        assert_eq!(g.ensure_hub_bitmap(3).threshold(), 6);
    }

    #[test]
    fn stale_index_probe_panics_with_named_diagnostic() {
        // Satellite (version-stamp safety): a view whose topology advanced
        // past its attached index must fail loudly, not answer stale bits.
        let base = crate::gen::preferential_attachment(60, 4, 3)
            .degree_ordered()
            .with_hub_bitmap(5);
        let mut overlay = crate::delta::DeltaOverlay::new(base.clone());
        let (u, v) = base.edges().next().expect("fixture has edges");
        overlay.apply(&[crate::delta::EdgeOp::delete(u, v)]);
        let view = overlay.snapshot();
        // The honest view probes fine (its index was word-patched).
        assert!(!view.has_edge(u, v));
        let broken = crate::csr::mutation::attach_stale_index(&view, &base);
        let err =
            std::panic::catch_unwind(|| broken.has_edge(u, v)).expect_err("stale probe must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("stale hub-bitmap probe"),
            "diagnostic must be named: {msg}"
        );
        assert!(
            msg.contains("reproduce:"),
            "diagnostic must reproduce: {msg}"
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
