//! Batch-dynamic edge updates: a delta overlay on the immutable CSR.
//!
//! The paper's engine — and every engine in this workspace — runs on a
//! frozen [`Graph`]. Live workloads (continuous motif monitoring,
//! fraud-ring alerting) instead stream edge inserts/deletes and want each
//! batch applied for O(batch) work, not an O(graph) rebuild. Following the
//! batch-dynamic literature (see PAPERS.md), [`DeltaOverlay`] keeps the
//! base CSR untouched and maintains **sorted per-vertex side arrays** of
//! inserted and deleted neighbors:
//!
//! * [`DeltaOverlay::apply`] normalizes a batch against the current state
//!   (re-deleting an absent edge or re-inserting a present one nets to
//!   nothing, insert-then-delete inside one batch cancels), folds the net
//!   edges into the side arrays, bumps the version, and returns the net
//!   [`AppliedBatch`] — the exact edge set incremental matching anchors on;
//! * [`DeltaOverlay::neighbors`] merges `base ∪ inserts ∖ deletes` on the
//!   fly in one sorted pass;
//! * [`DeltaOverlay::snapshot`] materializes an O(touched) [`Graph`] *view*
//!   (patched rows for touched vertices only, hub-bitmap rows word-patched
//!   in place) that the whole engine stack consumes unchanged;
//! * [`DeltaOverlay::compact`] folds everything into a fresh CSR once the
//!   overlay grows past taste, re-indexing any vertices that became hubs.
//!
//! The vertex set is fixed at overlay creation; only edges change.

use crate::csr::{Graph, GraphPatch, VertexId};
use crate::stats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sorted `(u, v)` pairs with `u < v` — the normal form for a batch's
/// net edge list.
type EdgeList = Vec<(VertexId, VertexId)>;

/// One edge insert or delete. Endpoints are unordered (the graph is
/// undirected); self-loops are rejected at [`DeltaOverlay::apply`] time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeOp {
    pub u: VertexId,
    pub v: VertexId,
    pub insert: bool,
}

impl EdgeOp {
    /// An edge insertion.
    pub fn insert(u: VertexId, v: VertexId) -> EdgeOp {
        EdgeOp { u, v, insert: true }
    }

    /// An edge deletion.
    pub fn delete(u: VertexId, v: VertexId) -> EdgeOp {
        EdgeOp {
            u,
            v,
            insert: false,
        }
    }
}

/// The *net* effect of one applied batch: edges present after but not
/// before (`inserts`), edges present before but not after (`deletes`),
/// both normalized `u < v` and sorted, plus the overlay version the batch
/// produced. Ops that cancel inside the batch (insert-then-delete of the
/// same edge) or restate current state appear in neither list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedBatch {
    pub inserts: Vec<(VertexId, VertexId)>,
    pub deletes: Vec<(VertexId, VertexId)>,
    /// Overlay version after this batch (every `apply` bumps it by one,
    /// even when the batch nets to nothing).
    pub version: u64,
}

impl AppliedBatch {
    /// True when the batch netted to no topology change.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Sorted, deduplicated endpoints of all net edges — the affected
    /// vertex frontier that incremental enumeration seeds from.
    pub fn touched(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .inserts
            .iter()
            .chain(&self.deletes)
            .flat_map(|&(u, v)| [u, v])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Sorted per-vertex insert/delete side arrays over a base [`Graph`].
///
/// See the module docs for the lifecycle. Not `Sync`-shared: a service
/// serializes `apply`/`snapshot` behind one lock and hands out snapshot
/// views (cheap `Arc`-backed graphs) for concurrent readers.
#[derive(Clone, Debug)]
pub struct DeltaOverlay {
    base: Graph,
    /// `v → sorted neighbors added to v`. Disjoint from `base.neighbors(v)`
    /// and from `deletes[v]` — `apply` maintains both invariants.
    inserts: BTreeMap<VertexId, Vec<VertexId>>,
    /// `v → sorted neighbors removed from v`; always ⊆ `base.neighbors(v)`.
    deletes: BTreeMap<VertexId, Vec<VertexId>>,
    /// Undirected edge count of the current (post-overlay) graph.
    num_edges: usize,
    /// Bumped once per `apply`; snapshots and patched hub indexes carry it.
    version: u64,
    /// Incrementally maintained `stats::level0_weights` of the current
    /// graph, when [`DeltaOverlay::track_weights`] enabled it.
    weights: Option<Vec<u64>>,
}

impl DeltaOverlay {
    /// Wraps `base` (which must be a plain CSR, not itself a patched
    /// view — compact a view before layering a new overlay on it).
    pub fn new(base: Graph) -> DeltaOverlay {
        assert!(
            !base.is_view(),
            "DeltaOverlay requires a plain CSR base; compact the view first"
        );
        DeltaOverlay {
            version: base.version(),
            num_edges: base.num_edges(),
            base,
            inserts: BTreeMap::new(),
            deletes: BTreeMap::new(),
            weights: None,
        }
    }

    /// The base CSR (pre-overlay; use [`DeltaOverlay::snapshot`] for the
    /// current graph).
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Current overlay version (bumped once per applied batch).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of vertices (fixed for the overlay's lifetime).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Undirected edge count of the current graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v` in the current graph.
    pub fn degree(&self, v: VertexId) -> usize {
        self.base.degree(v) + self.side_len(&self.inserts, v) - self.side_len(&self.deletes, v)
    }

    fn side_len(&self, side: &BTreeMap<VertexId, Vec<VertexId>>, v: VertexId) -> usize {
        side.get(&v).map_or(0, Vec::len)
    }

    fn side(side: &BTreeMap<VertexId, Vec<VertexId>>, v: VertexId) -> &[VertexId] {
        side.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Edge test against the current graph: deletes shadow the base, then
    /// inserts, then the base CSR answers.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if Self::side(&self.deletes, u).binary_search(&v).is_ok() {
            return false;
        }
        if Self::side(&self.inserts, u).binary_search(&v).is_ok() {
            return true;
        }
        self.base.has_edge(u, v)
    }

    /// The current sorted neighbor list of `v`, merged lazily: one sorted
    /// pass over `base.neighbors(v) ∪ inserts[v] ∖ deletes[v]` with no
    /// allocation.
    pub fn neighbors(&self, v: VertexId) -> MergedNeighbors<'_> {
        MergedNeighbors {
            base: self.base.neighbors(v),
            ins: Self::side(&self.inserts, v),
            del: Self::side(&self.deletes, v),
            bi: 0,
            ii: 0,
            di: 0,
        }
    }

    /// Applies `ops` in order and returns the batch's net effect. Cost is
    /// O(batch × log + Σ touched-row lengths) — independent of graph size.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints (the vertex set is
    /// fixed at overlay creation).
    pub fn apply(&mut self, ops: &[EdgeOp]) -> AppliedBatch {
        let n = self.num_vertices() as u32;
        // Pre/post membership per distinct edge the batch names.
        let mut fate: BTreeMap<(VertexId, VertexId), (bool, bool)> = BTreeMap::new();
        for op in ops {
            assert!(op.u != op.v, "self-loop {}-{} in edge batch", op.u, op.v);
            assert!(
                op.u < n && op.v < n,
                "edge {}-{} out of range (|V| = {n}, fixed at overlay creation)",
                op.u,
                op.v
            );
            let e = (op.u.min(op.v), op.u.max(op.v));
            let entry = fate
                .entry(e)
                .or_insert_with(|| (self.has_edge(e.0, e.1), false));
            entry.1 = op.insert;
        }
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for (&(u, v), &(pre, post)) in &fate {
            match (pre, post) {
                (false, true) => inserts.push((u, v)),
                (true, false) => deletes.push((u, v)),
                _ => {}
            }
        }
        // Weight maintenance needs the pre-batch view; capture it before
        // mutating (O(touched) thanks to the patched snapshot).
        let pre_view = self
            .weights
            .as_ref()
            .filter(|_| !(inserts.is_empty() && deletes.is_empty()))
            .map(|_| self.snapshot());
        for &(u, v) in &inserts {
            self.fold_insert(u, v);
            self.fold_insert(v, u);
            self.num_edges += 1;
        }
        for &(u, v) in &deletes {
            self.fold_delete(u, v);
            self.fold_delete(v, u);
            self.num_edges -= 1;
        }
        self.version += 1;
        let applied = AppliedBatch {
            inserts,
            deletes,
            version: self.version,
        };
        if let Some(pre) = pre_view {
            let post = self.snapshot();
            let weights = self.weights.as_mut().expect("tracking enabled");
            stats::adjust_level0_weights(weights, &pre, &post, &applied.touched());
        }
        applied
    }

    /// Folds a net insert of neighbor `t` into `o`'s side arrays: a
    /// re-insert of a base edge cancels its pending delete, anything else
    /// lands in the insert array.
    fn fold_insert(&mut self, o: VertexId, t: VertexId) {
        if let Some(del) = self.deletes.get_mut(&o) {
            if let Ok(i) = del.binary_search(&t) {
                del.remove(i);
                if del.is_empty() {
                    self.deletes.remove(&o);
                }
                return;
            }
        }
        let ins = self.inserts.entry(o).or_default();
        let i = ins.binary_search(&t).expect_err("edge absent by netting");
        ins.insert(i, t);
    }

    /// Folds a net delete of neighbor `t` out of `o`'s side arrays: a
    /// delete of a pending insert cancels it, a base edge lands in the
    /// delete array.
    fn fold_delete(&mut self, o: VertexId, t: VertexId) {
        if let Some(ins) = self.inserts.get_mut(&o) {
            if let Ok(i) = ins.binary_search(&t) {
                ins.remove(i);
                if ins.is_empty() {
                    self.inserts.remove(&o);
                }
                return;
            }
        }
        let del = self.deletes.entry(o).or_default();
        let i = del.binary_search(&t).expect_err("edge present by netting");
        del.insert(i, t);
    }

    /// Sorted, deduplicated vertices with non-empty side arrays.
    fn touched_vertices(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .inserts
            .keys()
            .chain(self.deletes.keys())
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Net overlay edges (`u < v`, sorted) currently held in the side
    /// arrays, split (inserts, deletes).
    fn overlay_edges(&self) -> (EdgeList, EdgeList) {
        let collect = |side: &BTreeMap<VertexId, Vec<VertexId>>| {
            side.iter()
                .flat_map(|(&u, ts)| ts.iter().map(move |&v| (u, v)))
                .filter(|&(u, v)| u < v)
                .collect::<Vec<_>>()
        };
        (collect(&self.inserts), collect(&self.deletes))
    }

    /// Materializes the current graph as an O(touched) patched *view* of
    /// the base: replacement rows only for touched vertices, the base's
    /// hub-bitmap index (when attached) word-patched in place, version
    /// stamped. The whole engine stack runs on the view unchanged.
    pub fn snapshot(&self) -> Graph {
        if self.inserts.is_empty() && self.deletes.is_empty() {
            return if self.version == self.base.version() {
                self.base.clone()
            } else {
                // Batches all netted out: topology equals the base, but the
                // stamp must advance so stale-index checks stay honest.
                let (ins, del) = (Vec::new(), Vec::new());
                let idx = self
                    .base
                    .hub_bitmap()
                    .map(|i| i.patched(self.version, &ins, &del));
                self.base.with_patch(
                    GraphPatch {
                        rows: Default::default(),
                        num_edges: self.num_edges,
                        max_degree: self.base.max_degree(),
                    },
                    self.version,
                    idx,
                )
            };
        }
        let mut rows = std::collections::HashMap::new();
        let mut max_touched = 0usize;
        for v in self.touched_vertices() {
            let row: Arc<[VertexId]> = self.neighbors(v).collect::<Vec<_>>().into();
            max_touched = max_touched.max(row.len());
            rows.insert(v, row);
        }
        let patch = GraphPatch {
            rows,
            num_edges: self.num_edges,
            max_degree: self.base.max_degree().max(max_touched),
        };
        let (ins, del) = self.overlay_edges();
        let idx = self
            .base
            .hub_bitmap()
            .map(|i| i.patched(self.version, &ins, &del));
        self.base.with_patch(patch, self.version, idx)
    }

    /// Folds the overlay into a fresh CSR: O(n + m). The new base carries
    /// the current version, and — when the old base was hub-indexed — a
    /// rebuilt index at the same threshold, which is where vertices that
    /// *became* hubs under inserts finally get rows.
    pub fn compact(&mut self) {
        let n = self.num_vertices();
        let mut b = crate::GraphBuilder::with_capacity(n, self.num_edges);
        for v in 0..n as VertexId {
            b.set_label(v, self.base.label(v));
            for u in self.neighbors(v) {
                if v < u {
                    b.add_edge(v, u);
                }
            }
        }
        let g = b
            .build()
            .with_name(self.base.name().to_string())
            .with_version(self.version);
        self.base = match self.base.hub_bitmap() {
            Some(idx) => g.with_hub_bitmap(idx.threshold()),
            None => g,
        };
        self.inserts.clear();
        self.deletes.clear();
    }

    /// Starts maintaining `stats::level0_weights` incrementally: the full
    /// O(graph) computation runs once now, then every `apply` adjusts only
    /// the touched vertices and their neighbors. Used by work-aware shard
    /// partitioning under update streams.
    pub fn track_weights(&mut self) {
        if self.weights.is_none() {
            self.weights = Some(stats::level0_weights(&self.snapshot()));
        }
    }

    /// The maintained level-0 weights, when tracking is enabled.
    pub fn weights(&self) -> Option<&[u64]> {
        self.weights.as_deref()
    }
}

/// Lazy sorted merge `base ∪ ins ∖ del` over three sorted slices.
/// Invariants from the overlay: `ins` is disjoint from `base` and `del`;
/// `del ⊆ base`.
pub struct MergedNeighbors<'a> {
    base: &'a [VertexId],
    ins: &'a [VertexId],
    del: &'a [VertexId],
    bi: usize,
    ii: usize,
    di: usize,
}

impl Iterator for MergedNeighbors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            let b = self.base.get(self.bi).copied();
            let i = self.ins.get(self.ii).copied();
            match (b, i) {
                (None, None) => return None,
                (Some(bv), iv) if iv.is_none() || bv < iv.unwrap() => {
                    self.bi += 1;
                    // Deleted base neighbors are skipped; `del` is sorted
                    // in lockstep with `base`, so one cursor suffices.
                    if self.del.get(self.di) == Some(&bv) {
                        self.di += 1;
                        continue;
                    }
                    return Some(bv);
                }
                (_, Some(iv)) => {
                    self.ii += 1;
                    return Some(iv);
                }
                _ => unreachable!("both cursors exhausted is handled above"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn path4() -> Graph {
        // 0-1-2-3
        let mut b = crate::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn apply_nets_inserts_and_deletes() {
        let mut o = DeltaOverlay::new(path4());
        let batch = o.apply(&[
            EdgeOp::insert(0, 3),
            EdgeOp::delete(1, 2),
            EdgeOp::insert(1, 0), // already present → no net
            EdgeOp::delete(0, 2), // already absent → no net
        ]);
        assert_eq!(batch.inserts, vec![(0, 3)]);
        assert_eq!(batch.deletes, vec![(1, 2)]);
        assert_eq!(batch.version, 1);
        assert_eq!(batch.touched(), vec![0, 1, 2, 3]);
        assert_eq!(o.num_edges(), 3);
        assert!(o.has_edge(0, 3) && o.has_edge(3, 0));
        assert!(!o.has_edge(1, 2));
        assert_eq!(o.neighbors(0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(o.neighbors(1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(o.degree(2), 1);
    }

    #[test]
    fn insert_then_delete_same_edge_cancels_in_batch() {
        let mut o = DeltaOverlay::new(path4());
        let batch = o.apply(&[EdgeOp::insert(0, 2), EdgeOp::delete(2, 0)]);
        assert!(batch.is_empty(), "in-batch cancel must net to nothing");
        assert_eq!(batch.version, 1, "version still advances");
        assert!(!o.has_edge(0, 2));
        assert_eq!(o.num_edges(), 3);
        // And the mirror: delete a base edge then re-insert it.
        let batch = o.apply(&[EdgeOp::delete(1, 2), EdgeOp::insert(1, 2)]);
        assert!(batch.is_empty());
        assert!(o.has_edge(1, 2));
    }

    #[test]
    fn reinsert_across_batches_cancels_pending_delete() {
        let mut o = DeltaOverlay::new(path4());
        o.apply(&[EdgeOp::delete(1, 2)]);
        let batch = o.apply(&[EdgeOp::insert(2, 1)]);
        assert_eq!(batch.inserts, vec![(1, 2)]);
        assert!(o.has_edge(1, 2));
        // The side arrays are empty again: snapshot degenerates to a
        // version-stamped view with no replacement rows.
        let view = o.snapshot();
        assert_eq!(view.num_edges(), 3);
        assert_eq!(view.version(), 2);
        assert_eq!(view.neighbors(1), path4().neighbors(1));
    }

    #[test]
    fn snapshot_views_agree_with_scratch_rebuild() {
        let g = gen::preferential_attachment(64, 4, 7).degree_ordered();
        let mut o = DeltaOverlay::new(g.clone());
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move |m: u32| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % m as u64) as u32
        };
        for _ in 0..6 {
            let mut ops = Vec::new();
            for _ in 0..10 {
                let (u, v) = (next(64), next(64));
                if u == v {
                    continue;
                }
                ops.push(if next(2) == 0 {
                    EdgeOp::insert(u, v)
                } else {
                    EdgeOp::delete(u, v)
                });
            }
            o.apply(&ops);
            let view = o.snapshot();
            assert_eq!(view.num_edges(), o.num_edges());
            for v in view.vertices() {
                let merged: Vec<_> = o.neighbors(v).collect();
                assert_eq!(view.neighbors(v), merged.as_slice(), "row {v}");
                assert!(merged.windows(2).all(|w| w[0] < w[1]), "sorted row {v}");
                assert_eq!(view.degree(v), o.degree(v));
            }
            assert!(view.max_degree() >= view.vertices().map(|v| view.degree(v)).max().unwrap());
            for u in view.vertices() {
                for v in view.vertices() {
                    assert_eq!(view.has_edge(u, v), o.has_edge(u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn compact_folds_and_rebuilds_hub_index() {
        let g = gen::preferential_attachment(64, 4, 7)
            .degree_ordered()
            .with_hub_bitmap(6);
        let mut o = DeltaOverlay::new(g.clone());
        // Promote a low-degree vertex to hub by wiring it widely.
        let leaf = 63u32;
        let ops: Vec<EdgeOp> = (0..10)
            .filter(|&t| t != leaf && !g.has_edge(leaf, t))
            .map(|t| EdgeOp::insert(leaf, t))
            .collect();
        assert!(ops.len() > 6);
        o.apply(&ops);
        // Pre-compaction: the view's patched index has no row for the new
        // hub (correct, just unindexed)…
        let view = o.snapshot();
        let idx = view.hub_bitmap().expect("view carries patched index");
        assert!(!idx.is_hub(leaf));
        assert!(view.has_edge(leaf, ops[0].v), "CSR fallback still answers");
        o.compact();
        // …post-compaction it is indexed, and the folded CSR matches.
        let base = o.base().clone();
        assert_eq!(base.version(), 1);
        assert_eq!(base.num_edges(), view.num_edges());
        let idx = base.hub_bitmap().expect("compaction rebuilds the index");
        assert_eq!(idx.version(), 1);
        assert!(idx.is_hub(leaf), "new hub indexed on compaction");
        for v in base.vertices() {
            assert_eq!(base.neighbors(v), view.neighbors(v), "row {v}");
        }
        // The overlay keeps working on the new base.
        let b2 = o.apply(&[EdgeOp::delete(leaf, ops[0].v)]);
        assert_eq!(b2.version, 2);
        assert!(!o.has_edge(leaf, ops[0].v));
    }

    #[test]
    fn tracked_weights_match_scratch_recompute() {
        // Satellite: incremental weight adjustment over touched vertices
        // only must equal the full O(graph) recompute after every batch.
        let g = gen::preferential_attachment(72, 4, 13).degree_ordered();
        let mut o = DeltaOverlay::new(g);
        o.track_weights();
        let mut rng = 0xdeadbeefcafef00du64;
        let mut next = move |m: u32| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % m as u64) as u32
        };
        for round in 0..8 {
            let ops: Vec<EdgeOp> = (0..12)
                .filter_map(|_| {
                    let (u, v) = (next(72), next(72));
                    (u != v).then(|| {
                        if next(3) == 0 {
                            EdgeOp::delete(u, v)
                        } else {
                            EdgeOp::insert(u, v)
                        }
                    })
                })
                .collect();
            o.apply(&ops);
            let scratch = stats::level0_weights(&o.snapshot());
            assert_eq!(
                o.weights().expect("tracking on"),
                scratch.as_slice(),
                "incremental weights diverged at round {round}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_are_rejected() {
        DeltaOverlay::new(path4()).apply(&[EdgeOp::insert(2, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoints_are_rejected() {
        DeltaOverlay::new(path4()).apply(&[EdgeOp::insert(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "plain CSR base")]
    fn overlay_on_a_view_is_rejected() {
        let mut o = DeltaOverlay::new(path4());
        o.apply(&[EdgeOp::insert(0, 2)]);
        DeltaOverlay::new(o.snapshot());
    }
}
