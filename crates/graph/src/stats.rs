//! Degree statistics reproducing Table I of the paper.

use crate::Graph;

/// Summary statistics for a data graph — the columns of Table I:
/// `#nodes, #edges, max degree, median degree, fraction of nodes with
/// degree > threshold` (the paper uses 4096, the `MAX_DEGREE` slab size).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    pub name: String,
    pub num_vertices: usize,
    pub num_edges: usize,
    pub max_degree: usize,
    pub median_degree: usize,
    /// Fraction (0..=1) of vertices whose degree exceeds `deg_threshold`.
    pub frac_above_threshold: f64,
    pub deg_threshold: usize,
}

impl GraphStats {
    /// Computes statistics with the paper's 4096 threshold.
    pub fn of(g: &Graph) -> GraphStats {
        Self::with_threshold(g, 4096)
    }

    /// Computes statistics with an explicit degree threshold.
    pub fn with_threshold(g: &Graph, deg_threshold: usize) -> GraphStats {
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let n = degrees.len();
        let median_degree = if n == 0 { 0 } else { degrees[n / 2] };
        let above = degrees.iter().filter(|&&d| d > deg_threshold).count();
        GraphStats {
            name: g.name().to_string(),
            num_vertices: n,
            num_edges: g.num_edges(),
            max_degree: *degrees.last().unwrap_or(&0),
            median_degree,
            frac_above_threshold: if n == 0 { 0.0 } else { above as f64 / n as f64 },
            deg_threshold,
        }
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices as f64
        }
    }
}

/// Per-vertex work weights for level-0 domain partitioning.
///
/// The cost of rooting the search at `v` is dominated by `v`'s degree (the
/// level-1 candidate list) and by how many of those candidates survive the
/// level-2 intersection — approximated per neighbor `u` by
/// `min(deg(u), deg(v))`, the set-intersection bound. The `1 +` floor keeps
/// isolated vertices from weighing zero, so every vertex lands in some
/// shard's accounting.
pub fn level0_weights(g: &Graph) -> Vec<u64> {
    g.vertices()
        .map(|v| {
            let dv = g.degree(v) as u64;
            let isect: u64 = g
                .neighbors(v)
                .iter()
                .map(|&u| (g.degree(u) as u64).min(dv))
                .sum();
            1 + dv + isect
        })
        .collect()
}

/// Incrementally repairs [`level0_weights`] after an edge batch moved the
/// graph from `pre` to `post`, touching only `touched` (the endpoints of
/// the net edges) — O(local neighborhood), not O(graph).
///
/// `weight(v)` depends on `v`'s adjacency and its neighbors' degrees, so it
/// can change only for `v ∈ touched` (adjacency changed) or
/// `v ∈ N_pre(touched) ∪ N_post(touched)` (a neighbor's degree changed —
/// the pre-side set matters because a deleted neighbor still contributes to
/// `v`'s old weight). Everything in that affected set is recomputed from
/// `post` with the exact closed form.
pub fn adjust_level0_weights(weights: &mut [u64], pre: &Graph, post: &Graph, touched: &[u32]) {
    debug_assert_eq!(weights.len(), post.num_vertices());
    let mut affected: Vec<u32> = Vec::new();
    for &v in touched {
        affected.push(v);
        affected.extend_from_slice(pre.neighbors(v));
        affected.extend_from_slice(post.neighbors(v));
    }
    affected.sort_unstable();
    affected.dedup();
    for v in affected {
        let dv = post.degree(v) as u64;
        let isect: u64 = post
            .neighbors(v)
            .iter()
            .map(|&u| (post.degree(u) as u64).min(dv))
            .sum();
        weights[v as usize] = 1 + dv + isect;
    }
}

/// The `min(k, n)` largest vertex degrees, descending.
///
/// This is the degree summary the static plan verifier's abstract
/// interpretation runs on: a candidate set contained in the neighbor lists
/// of `j` *distinct* matched vertices is no larger than the smallest of
/// their degrees, which is at most `top_degrees(g, k)[j - 1]` — the `j`-th
/// largest degree in the whole graph. O(n) selection + O(k log k) sort.
pub fn top_degrees(g: &Graph, k: usize) -> Vec<usize> {
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let k = k.min(degrees.len());
    if k == 0 {
        return Vec::new();
    }
    degrees.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
    degrees.truncate(k);
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    degrees
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} |V|={:<9} |E|={:<10} max_deg={:<6} med_deg={:<4} deg>{}: {:.4}%",
            self.name,
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            self.median_degree,
            self.deg_threshold,
            self.frac_above_threshold * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_star() {
        let g = gen::star(100).with_name("star100");
        let s = GraphStats::with_threshold(&g, 50);
        assert_eq!(s.num_vertices, 101);
        assert_eq!(s.num_edges, 100);
        assert_eq!(s.max_degree, 100);
        assert_eq!(s.median_degree, 1);
        // Exactly the hub exceeds 50.
        assert!((s.frac_above_threshold - 1.0 / 101.0).abs() < 1e-12);
        assert!((s.avg_degree() - 200.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let g = crate::GraphBuilder::new(0).build();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.frac_above_threshold, 0.0);
    }

    #[test]
    fn level0_weights_track_skew() {
        let g = gen::star(10);
        let w = level0_weights(&g);
        assert_eq!(w.len(), 11);
        // Hub: deg 10, each neighbor contributes min(1, 10) = 1.
        assert_eq!(w[0], 1 + 10 + 10);
        // Leaf: deg 1, the hub neighbor contributes min(10, 1) = 1.
        assert_eq!(w[1], 1 + 1 + 1);
        // Isolated vertices still weigh 1.
        let empty = crate::GraphBuilder::new(3).build();
        assert_eq!(level0_weights(&empty), vec![1, 1, 1]);
    }

    #[test]
    fn top_degrees_orders_and_clamps() {
        let g = gen::star(5);
        assert_eq!(top_degrees(&g, 3), vec![5, 1, 1]);
        assert_eq!(top_degrees(&g, 100).len(), 6);
        assert_eq!(top_degrees(&g, 0), Vec::<usize>::new());
        let empty = crate::GraphBuilder::new(0).build();
        assert!(top_degrees(&empty, 4).is_empty());
    }

    #[test]
    fn display_is_stable() {
        let g = gen::complete(4).with_name("k4");
        let line = GraphStats::of(&g).to_string();
        assert!(line.contains("k4"));
        assert!(line.contains("|V|=4"));
    }
}
