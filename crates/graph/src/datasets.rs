//! Registry of dataset stand-ins for the paper's SNAP graphs.
//!
//! The paper evaluates on WikiVote, Enron, MiCo, Youtube, LiveJournal, Orkut
//! and Friendster. Those graphs are not redistributable inside this
//! repository and are far too large for a software-simulated GPU, so each is
//! replaced by a deterministic RMAT stand-in whose *shape* (relative size,
//! density, degree skew) mirrors the original at 10–100x reduced scale. See
//! DESIGN.md §1 for the substitution rationale. Real SNAP files can be used
//! instead via [`crate::io::load_edge_list`].

use crate::gen;
use crate::Graph;

/// The data graphs of the paper's evaluation, as synthetic stand-ins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Stand-in for soc-Wiki-Vote (7.1k nodes, 104k edges): small and dense.
    WikiVote,
    /// Stand-in for email-Enron (36.7k nodes, 184k edges).
    Enron,
    /// Stand-in for MiCo (100k nodes, 1.08M edges): dense mining graph.
    MiCo,
    /// Stand-in for com-Youtube (1.13M nodes, 2.99M edges): large, sparse.
    Youtube,
    /// Stand-in for soc-LiveJournal1 (4.8M nodes, 42.9M edges).
    LiveJournal,
    /// Stand-in for com-Orkut (3.1M nodes, 117M edges): very dense.
    Orkut,
    /// Stand-in for com-Friendster (65.6M nodes, 1.8B edges): the largest.
    Friendster,
}

impl Dataset {
    /// All datasets, in the order the paper's tables list them.
    pub const ALL: [Dataset; 7] = [
        Dataset::WikiVote,
        Dataset::Enron,
        Dataset::MiCo,
        Dataset::Youtube,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Friendster,
    ];

    /// The three graphs of Table II (unlabeled experiments).
    pub const TABLE2: [Dataset; 3] = [Dataset::WikiVote, Dataset::Enron, Dataset::MiCo];

    /// Dataset name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::WikiVote => "WikiVote-s",
            Dataset::Enron => "Enron-s",
            Dataset::MiCo => "MiCo-s",
            Dataset::Youtube => "Youtube-s",
            Dataset::LiveJournal => "LiveJournal-s",
            Dataset::Orkut => "Orkut-s",
            Dataset::Friendster => "Friendster-s",
        }
    }

    /// RMAT parameters: (scale, edge_factor, seed, quadrant probabilities).
    ///
    /// Scales are chosen so the full 24-query sweep finishes in minutes on a
    /// multicore host while preserving each graph's relative density and
    /// skew: WikiVote-s is small/dense, MiCo-s and Orkut-s are the dense
    /// ones, Youtube-s/LiveJournal-s/Friendster-s are the large sparse ones.
    fn params(self) -> (u32, usize, u64, (f64, f64, f64, f64)) {
        match self {
            Dataset::WikiVote => (8, 6, 0xA1 ^ 0x5717, (0.48, 0.21, 0.21, 0.10)),
            Dataset::Enron => (9, 4, 0xE2 ^ 0x5717, (0.46, 0.22, 0.22, 0.10)),
            Dataset::MiCo => (9, 9, 0x3C0 ^ 0x5717, (0.44, 0.23, 0.23, 0.10)),
            Dataset::Youtube => (11, 2, 0x417 ^ 0x5717, (0.47, 0.22, 0.22, 0.09)),
            Dataset::LiveJournal => (10, 5, 0x115 ^ 0x5717, (0.46, 0.22, 0.22, 0.10)),
            Dataset::Orkut => (9, 13, 0x0CC ^ 0x5717, (0.45, 0.22, 0.22, 0.11)),
            Dataset::Friendster => (11, 4, 0xF12 ^ 0x5717, (0.47, 0.22, 0.22, 0.09)),
        }
    }

    /// Generates the stand-in, degree-ordered (hubs first) and named.
    ///
    /// Generation is deterministic; repeated calls return identical graphs.
    pub fn load(self) -> Graph {
        let (scale, ef, seed, probs) = self.params();
        gen::rmat_with_probs(scale, ef, seed, probs)
            .degree_ordered()
            .with_name(self.name())
    }

    /// Generates the stand-in with `num_labels` random labels, matching the
    /// paper's labeled setup ("randomly assign ten labels").
    pub fn load_labeled(self, num_labels: u32, seed: u64) -> Graph {
        let g = self.load();
        gen::assign_random_labels(&g, num_labels, seed).with_name(self.name())
    }
}

/// Tiny named test graphs used across the workspace's unit tests.
pub mod toy {
    use crate::builder::graph_from_edges;
    use crate::Graph;

    /// The 5-vertex "house": a 4-cycle with a roof triangle.
    pub fn house() -> Graph {
        graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]).with_name("house")
    }

    /// Two triangles sharing one vertex (bow-tie).
    pub fn bowtie() -> Graph {
        graph_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]).with_name("bowtie")
    }

    /// The paper's running-example data graph shape: a small graph with
    /// hubs and a tail, large enough to exercise level-3 recursion.
    pub fn example() -> Graph {
        graph_from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (4, 6),
                (0, 7),
            ],
        )
        .with_name("example")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphStats;

    #[test]
    fn loads_are_deterministic() {
        let a = Dataset::WikiVote.load();
        let b = Dataset::WikiVote.load();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Dataset::ALL.len());
    }

    #[test]
    fn relative_density_ordering_holds() {
        // MiCo-s and Orkut-s stand-ins must be denser than Youtube-s.
        let mico = GraphStats::of(&Dataset::MiCo.load());
        let orkut = GraphStats::of(&Dataset::Orkut.load());
        let youtube = GraphStats::of(&Dataset::Youtube.load());
        assert!(mico.avg_degree() > youtube.avg_degree());
        assert!(orkut.avg_degree() > youtube.avg_degree());
    }

    #[test]
    fn labeled_load_uses_requested_labels() {
        let g = Dataset::WikiVote.load_labeled(10, 1);
        assert!(g.is_labeled());
        assert!(g.vertices().all(|v| g.label(v) < 10));
    }

    #[test]
    fn toy_graphs_have_expected_shapes() {
        assert_eq!(toy::house().num_edges(), 6);
        assert_eq!(toy::bowtie().degree(2), 4);
        assert_eq!(toy::example().num_vertices(), 8);
    }
}
