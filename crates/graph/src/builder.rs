//! Incremental graph construction.

use crate::{Graph, Label, VertexId};

/// Builds an undirected [`Graph`] from an edge list.
///
/// Duplicate edges and self-loops are silently dropped (the standard
/// preprocessing applied to the SNAP datasets in the paper's artifact).
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    labels: Vec<Label>,
}

impl GraphBuilder {
    /// A builder for a graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        Self::with_capacity(num_vertices, 0)
    }

    /// Like [`GraphBuilder::new`] but pre-reserves space for `edge_hint` edges.
    pub fn with_capacity(num_vertices: usize, edge_hint: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::with_capacity(edge_hint),
            labels: vec![0; num_vertices],
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored. Vertex ids
    /// beyond the current vertex count grow the graph.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v {
            return;
        }
        let hi = u.max(v) as usize + 1;
        if hi > self.num_vertices {
            self.num_vertices = hi;
            self.labels.resize(hi, 0);
        }
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Sets the label of `u`, growing the graph if needed.
    pub fn set_label(&mut self, u: VertexId, label: Label) {
        let hi = u as usize + 1;
        if hi > self.num_vertices {
            self.num_vertices = hi;
            self.labels.resize(hi, 0);
        }
        self.labels[u as usize] = label;
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Finalizes into a CSR [`Graph`]: deduplicates edges, sorts adjacency.
    pub fn build(self) -> Graph {
        let n = self.num_vertices;
        let mut edges = self.edges;
        edges.sort_unstable();
        edges.dedup();

        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        row_ptr.push(0);
        for d in &degree {
            acc += d;
            row_ptr.push(acc);
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0 as VertexId; acc];
        for &(u, v) in &edges {
            col_idx[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            col_idx[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each adjacency run is already mostly sorted (edges were sorted by
        // (min,max)), but the mixture of "as u" and "as v" entries is not:
        // sort each run.
        for v in 0..n {
            col_idx[row_ptr[v]..row_ptr[v + 1]].sort_unstable();
        }
        Graph::from_parts(row_ptr, col_idx, self.labels, String::new())
    }
}

/// Convenience: builds a graph directly from an edge slice.
pub fn graph_from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(num_vertices, edges.len());
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_duplicates_and_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate, reversed
        b.add_edge(0, 1); // duplicate
        b.add_edge(2, 2); // self-loop
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn grows_on_out_of_range_ids() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 5);
        b.set_label(7, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.label(7), 3);
        assert!(g.has_edge(5, 0));
    }

    #[test]
    fn from_edges_helper() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_edges(), 4);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
    }
}
