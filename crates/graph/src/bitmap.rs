//! Hub-bitmap neighbor index: dense bitmap rows for high-degree vertices.
//!
//! GPU matchers that beat sorted-list intersection on dense graphs do it by
//! re-encoding *hub* neighborhoods (vertices whose degree exceeds a
//! threshold) as fixed-stride bitmaps over vertex ids, so membership is one
//! word probe and hub∩hub intersection is a stream of word ANDs (gMatch's
//! fine-grained set ops, GSI's vertex encoding). This module precomputes
//! that index once per graph:
//!
//! * every vertex with `degree > threshold` becomes a **hub** and gets a
//!   dense hub id via `hub_of` (a `vertex → hub id` remap, `NOT_HUB` for
//!   the rest), so the row storage scales with the number of hubs, not the
//!   number of vertices;
//! * each hub's row is `stride = ceil(n / 64)` words; bit `u & 63` of word
//!   `u >> 6` is set iff the hub is adjacent to vertex `u`. All rows share
//!   one flat `Vec<u64>` (row `h` at `rows[h * stride ..][..stride]`).
//!
//! Under degree ordering hubs occupy the smallest vertex ids, so `hub_of`
//! is a short dense prefix in practice. The index is derived data: it never
//! affects match results, only which set-operation algorithm the host picks
//! (see `stmatch-core`'s `setops` and DESIGN.md §4f).
//!
//! Since the batch-dynamic work (DESIGN.md §4k) the flat storage is
//! `Arc`-shared and an index carries a **version stamp** plus an optional
//! copy-on-write patch table: [`HubBitmapIndex::patched`] applies an edge
//! batch word-wise to only the touched hub rows, so a delta view's index
//! costs O(touched hubs × stride), not a rebuild. Vertices that *become*
//! hubs under inserts stay unindexed until `DeltaOverlay::compact` rebuilds
//! (the CSR binary-search fallback keeps probes correct); hubs that sink
//! below the threshold under deletes keep their (accurate) row.

use crate::csr::{Graph, VertexId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// `hub_of` marker for vertices below the degree threshold.
const NOT_HUB: u32 = u32::MAX;

/// Tests bit `v` of a fixed-stride bitmap row. O(1): one shift, one mask.
#[inline]
pub fn word_probe(bits: &[u64], v: VertexId) -> bool {
    (bits[(v >> 6) as usize] >> (v & 63)) & 1 == 1
}

/// Precomputed bitmap rows for every hub vertex of one [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubBitmapIndex {
    /// Degree threshold used at build time: hubs satisfy
    /// `degree > threshold` (strict).
    threshold: usize,
    /// Words per row: `ceil(num_vertices / 64)`.
    stride: usize,
    /// Graph topology version this index answers for; checked by every
    /// probe that goes through [`Graph::has_edge`] / [`Graph::hub_bits`].
    version: u64,
    /// Vertex id → dense hub id, [`NOT_HUB`] for non-hubs. Shared.
    hub_of: Arc<Vec<u32>>,
    /// Flat base row storage: `num_hubs × stride` words. Shared.
    rows: Arc<Vec<u64>>,
    /// Copy-on-write replacement rows (hub id → full row) for hubs an edge
    /// batch touched; empty on freshly built indexes. `BTreeMap` keeps
    /// iteration (and so `Debug`/equality behavior) deterministic.
    patched: BTreeMap<u32, Box<[u64]>>,
}

impl HubBitmapIndex {
    /// Builds the index for `g`, promoting every vertex with
    /// `degree > threshold` to a hub, stamped with `g`'s version.
    pub fn build(g: &Graph, threshold: usize) -> HubBitmapIndex {
        let n = g.num_vertices();
        let stride = n.div_ceil(64);
        let mut hub_of = vec![NOT_HUB; n];
        let mut num_hubs = 0u32;
        for v in g.vertices() {
            if g.degree(v) > threshold {
                hub_of[v as usize] = num_hubs;
                num_hubs += 1;
            }
        }
        let mut rows = vec![0u64; num_hubs as usize * stride];
        for v in g.vertices() {
            let h = hub_of[v as usize];
            if h == NOT_HUB {
                continue;
            }
            let row = &mut rows[h as usize * stride..][..stride];
            for &u in g.neighbors(v) {
                row[(u >> 6) as usize] |= 1u64 << (u & 63);
            }
        }
        HubBitmapIndex {
            threshold,
            stride,
            version: g.version(),
            hub_of: Arc::new(hub_of),
            rows: Arc::new(rows),
            patched: BTreeMap::new(),
        }
    }

    /// A word-patched copy of this index answering for `version`: every
    /// `(u, v)` in `inserts` sets — and in `deletes` clears — bit `v` of
    /// hub `u`'s row and bit `u` of hub `v`'s row, copying a base row into
    /// the patch table on first touch. Non-hub endpoints are skipped (the
    /// CSR fallback covers them). O(touched hubs × stride) + O(batch).
    pub(crate) fn patched(
        &self,
        version: u64,
        inserts: &[(VertexId, VertexId)],
        deletes: &[(VertexId, VertexId)],
    ) -> HubBitmapIndex {
        let mut out = self.clone();
        out.version = version;
        for (set, edges) in [(true, inserts), (false, deletes)] {
            for &(u, v) in edges {
                out.patch_bit(u, v, set);
                out.patch_bit(v, u, set);
            }
        }
        out
    }

    /// Sets/clears bit `target` in hub `owner`'s row, CoW-copying the base
    /// row on first touch. No-op when `owner` is not an indexed hub.
    fn patch_bit(&mut self, owner: VertexId, target: VertexId, set: bool) {
        let h = self.hub_of[owner as usize];
        if h == NOT_HUB {
            return;
        }
        let row = self
            .patched
            .entry(h)
            .or_insert_with(|| self.rows[h as usize * self.stride..][..self.stride].into());
        let word = &mut row[(target >> 6) as usize];
        let bit = 1u64 << (target & 63);
        if set {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// The build-time degree threshold (hubs are strictly above it).
    #[inline]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Words per bitmap row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The graph topology version this index answers for.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of hub vertices indexed.
    #[inline]
    pub fn num_hubs(&self) -> usize {
        self.rows.len().checked_div(self.stride).unwrap_or(0)
    }

    /// True if `v` has a bitmap row.
    #[inline]
    pub fn is_hub(&self, v: VertexId) -> bool {
        self.hub_of[v as usize] != NOT_HUB
    }

    /// The bitmap row of `v` (`stride` words), or `None` for non-hubs.
    /// Patched rows shadow base rows.
    #[inline]
    pub fn row(&self, v: VertexId) -> Option<&[u64]> {
        match self.hub_of[v as usize] {
            NOT_HUB => None,
            h => Some(match self.patched.get(&h) {
                Some(row) => row,
                None => &self.rows[h as usize * self.stride..][..self.stride],
            }),
        }
    }

    /// O(1) adjacency probe against `v`'s row; `None` if `v` is not a hub.
    #[inline]
    pub fn contains(&self, v: VertexId, u: VertexId) -> Option<bool> {
        self.row(v).map(|bits| word_probe(bits, u))
    }

    /// In-memory footprint in bytes (remap + rows + patched rows).
    pub fn memory_bytes(&self) -> usize {
        self.hub_of.len() * std::mem::size_of::<u32>()
            + self.rows.len() * std::mem::size_of::<u64>()
            + self.patched.len() * self.stride * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn rows_reproduce_neighbor_lists() {
        let g = gen::preferential_attachment(150, 5, 3).degree_ordered();
        let idx = HubBitmapIndex::build(&g, 8);
        assert!(idx.num_hubs() > 0, "threshold 8 must yield hubs");
        assert_eq!(idx.stride(), 150usize.div_ceil(64));
        assert_eq!(idx.version(), 0);
        for v in g.vertices() {
            match idx.row(v) {
                Some(bits) => {
                    assert!(g.degree(v) > 8);
                    let decoded: Vec<VertexId> =
                        g.vertices().filter(|&u| word_probe(bits, u)).collect();
                    assert_eq!(decoded, g.neighbors(v), "row mismatch at hub {v}");
                    let pop: u32 = bits.iter().map(|w| w.count_ones()).sum();
                    assert_eq!(pop as usize, g.degree(v));
                }
                None => assert!(g.degree(v) <= 8),
            }
        }
    }

    #[test]
    fn contains_matches_has_edge_for_hubs() {
        let g = gen::preferential_attachment(90, 4, 9).degree_ordered();
        let idx = HubBitmapIndex::build(&g, 6);
        for v in g.vertices() {
            for u in g.vertices() {
                if let Some(hit) = idx.contains(v, u) {
                    assert_eq!(hit, g.has_edge(v, u), "probe mismatch ({v},{u})");
                }
            }
        }
    }

    #[test]
    fn patched_rows_flip_only_the_touched_bits() {
        let g = gen::preferential_attachment(120, 5, 21).degree_ordered();
        let idx = HubBitmapIndex::build(&g, 7);
        let hub = g
            .vertices()
            .find(|&v| idx.is_hub(v))
            .expect("fixture has hubs");
        let old = *g.neighbors(hub).first().unwrap();
        // A vertex not adjacent to the hub, to insert.
        let new = g
            .vertices()
            .find(|&v| v != hub && !g.has_edge(hub, v))
            .expect("hub is not universal");
        let patched = idx.patched(3, &[(hub, new)], &[(old, hub)]);
        assert_eq!(patched.version(), 3);
        assert_eq!(patched.contains(hub, new), Some(true));
        assert_eq!(patched.contains(hub, old), Some(false));
        // The base index is untouched (CoW) and everything else agrees.
        assert_eq!(idx.contains(hub, new), Some(false));
        assert_eq!(idx.contains(hub, old), Some(true));
        for v in g.vertices() {
            if v == new || v == old {
                continue;
            }
            assert_eq!(patched.contains(hub, v), idx.contains(hub, v));
        }
        assert!(patched.memory_bytes() > idx.memory_bytes());
    }

    #[test]
    fn patching_through_a_non_hub_endpoint_is_a_no_op() {
        let g = gen::star(6); // hub 0, leaves 1..=6
        let idx = HubBitmapIndex::build(&g, 3);
        assert!(idx.is_hub(0) && !idx.is_hub(1));
        // Leaf-leaf insert touches no hub row at all.
        let p = idx.patched(1, &[(1, 2)], &[]);
        assert_eq!(p.contains(1, 2), None, "leaves stay unindexed");
        assert_eq!(p.row(0), idx.row(0));
        // Hub-leaf delete patches only the hub side.
        let p = idx.patched(1, &[], &[(3, 0)]);
        assert_eq!(p.contains(0, 3), Some(false));
        assert_eq!(p.contains(3, 0), None);
    }

    #[test]
    fn threshold_is_strict_and_extremes_behave() {
        let g = gen::complete(10);
        // Every vertex has degree 9: threshold 9 (strict) indexes nothing,
        // threshold 8 indexes everything.
        assert_eq!(HubBitmapIndex::build(&g, 9).num_hubs(), 0);
        let all = HubBitmapIndex::build(&g, 8);
        assert_eq!(all.num_hubs(), 10);
        assert!(g.vertices().all(|v| all.is_hub(v)));
        assert!(all.memory_bytes() > 0);
    }

    #[test]
    fn empty_graph_builds_empty_index() {
        let g = crate::GraphBuilder::new(0).build();
        let idx = HubBitmapIndex::build(&g, 0);
        assert_eq!(idx.num_hubs(), 0);
        assert_eq!(idx.stride(), 0);
    }
}
