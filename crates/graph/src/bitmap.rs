//! Hub-bitmap neighbor index: dense bitmap rows for high-degree vertices.
//!
//! GPU matchers that beat sorted-list intersection on dense graphs do it by
//! re-encoding *hub* neighborhoods (vertices whose degree exceeds a
//! threshold) as fixed-stride bitmaps over vertex ids, so membership is one
//! word probe and hub∩hub intersection is a stream of word ANDs (gMatch's
//! fine-grained set ops, GSI's vertex encoding). This module precomputes
//! that index once per graph:
//!
//! * every vertex with `degree > threshold` becomes a **hub** and gets a
//!   dense hub id via `hub_of` (a `vertex → hub id` remap, `NOT_HUB` for
//!   the rest), so the row storage scales with the number of hubs, not the
//!   number of vertices;
//! * each hub's row is `stride = ceil(n / 64)` words; bit `u & 63` of word
//!   `u >> 6` is set iff the hub is adjacent to vertex `u`. All rows share
//!   one flat `Vec<u64>` (row `h` at `rows[h * stride ..][..stride]`).
//!
//! Under degree ordering hubs occupy the smallest vertex ids, so `hub_of`
//! is a short dense prefix in practice. The index is derived data: it never
//! affects match results, only which set-operation algorithm the host picks
//! (see `stmatch-core`'s `setops` and DESIGN.md §4f).

use crate::csr::{Graph, VertexId};

/// `hub_of` marker for vertices below the degree threshold.
const NOT_HUB: u32 = u32::MAX;

/// Tests bit `v` of a fixed-stride bitmap row. O(1): one shift, one mask.
#[inline]
pub fn word_probe(bits: &[u64], v: VertexId) -> bool {
    (bits[(v >> 6) as usize] >> (v & 63)) & 1 == 1
}

/// Precomputed bitmap rows for every hub vertex of one [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubBitmapIndex {
    /// Degree threshold used at build time: hubs satisfy
    /// `degree > threshold` (strict).
    threshold: usize,
    /// Words per row: `ceil(num_vertices / 64)`.
    stride: usize,
    /// Vertex id → dense hub id, [`NOT_HUB`] for non-hubs.
    hub_of: Vec<u32>,
    /// Flat row storage: `num_hubs × stride` words.
    rows: Vec<u64>,
}

impl HubBitmapIndex {
    /// Builds the index for `g`, promoting every vertex with
    /// `degree > threshold` to a hub.
    pub fn build(g: &Graph, threshold: usize) -> HubBitmapIndex {
        let n = g.num_vertices();
        let stride = n.div_ceil(64);
        let mut hub_of = vec![NOT_HUB; n];
        let mut num_hubs = 0u32;
        for v in g.vertices() {
            if g.degree(v) > threshold {
                hub_of[v as usize] = num_hubs;
                num_hubs += 1;
            }
        }
        let mut rows = vec![0u64; num_hubs as usize * stride];
        for v in g.vertices() {
            let h = hub_of[v as usize];
            if h == NOT_HUB {
                continue;
            }
            let row = &mut rows[h as usize * stride..][..stride];
            for &u in g.neighbors(v) {
                row[(u >> 6) as usize] |= 1u64 << (u & 63);
            }
        }
        HubBitmapIndex {
            threshold,
            stride,
            hub_of,
            rows,
        }
    }

    /// The build-time degree threshold (hubs are strictly above it).
    #[inline]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Words per bitmap row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of hub vertices indexed.
    #[inline]
    pub fn num_hubs(&self) -> usize {
        self.rows.len().checked_div(self.stride).unwrap_or(0)
    }

    /// True if `v` has a bitmap row.
    #[inline]
    pub fn is_hub(&self, v: VertexId) -> bool {
        self.hub_of[v as usize] != NOT_HUB
    }

    /// The bitmap row of `v` (`stride` words), or `None` for non-hubs.
    #[inline]
    pub fn row(&self, v: VertexId) -> Option<&[u64]> {
        match self.hub_of[v as usize] {
            NOT_HUB => None,
            h => Some(&self.rows[h as usize * self.stride..][..self.stride]),
        }
    }

    /// O(1) adjacency probe against `v`'s row; `None` if `v` is not a hub.
    #[inline]
    pub fn contains(&self, v: VertexId, u: VertexId) -> Option<bool> {
        self.row(v).map(|bits| word_probe(bits, u))
    }

    /// In-memory footprint in bytes (remap + rows).
    pub fn memory_bytes(&self) -> usize {
        self.hub_of.len() * std::mem::size_of::<u32>()
            + self.rows.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn rows_reproduce_neighbor_lists() {
        let g = gen::preferential_attachment(150, 5, 3).degree_ordered();
        let idx = HubBitmapIndex::build(&g, 8);
        assert!(idx.num_hubs() > 0, "threshold 8 must yield hubs");
        assert_eq!(idx.stride(), 150usize.div_ceil(64));
        for v in g.vertices() {
            match idx.row(v) {
                Some(bits) => {
                    assert!(g.degree(v) > 8);
                    let decoded: Vec<VertexId> =
                        g.vertices().filter(|&u| word_probe(bits, u)).collect();
                    assert_eq!(decoded, g.neighbors(v), "row mismatch at hub {v}");
                    let pop: u32 = bits.iter().map(|w| w.count_ones()).sum();
                    assert_eq!(pop as usize, g.degree(v));
                }
                None => assert!(g.degree(v) <= 8),
            }
        }
    }

    #[test]
    fn contains_matches_has_edge_for_hubs() {
        let g = gen::preferential_attachment(90, 4, 9).degree_ordered();
        let idx = HubBitmapIndex::build(&g, 6);
        for v in g.vertices() {
            for u in g.vertices() {
                if let Some(hit) = idx.contains(v, u) {
                    assert_eq!(hit, g.has_edge(v, u), "probe mismatch ({v},{u})");
                }
            }
        }
    }

    #[test]
    fn threshold_is_strict_and_extremes_behave() {
        let g = gen::complete(10);
        // Every vertex has degree 9: threshold 9 (strict) indexes nothing,
        // threshold 8 indexes everything.
        assert_eq!(HubBitmapIndex::build(&g, 9).num_hubs(), 0);
        let all = HubBitmapIndex::build(&g, 8);
        assert_eq!(all.num_hubs(), 10);
        assert!(g.vertices().all(|v| all.is_hub(v)));
        assert!(all.memory_bytes() > 0);
    }

    #[test]
    fn empty_graph_builds_empty_index() {
        let g = crate::GraphBuilder::new(0).build();
        let idx = HubBitmapIndex::build(&g, 0);
        assert_eq!(idx.num_hubs(), 0);
        assert_eq!(idx.stride(), 0);
    }
}
