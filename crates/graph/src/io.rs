//! Graph file loaders and writers.
//!
//! Two formats are supported:
//!
//! * **SNAP edge list** (`.txt`): one `u v` pair per line, `#` comments —
//!   the format of the paper's datasets (WikiVote, Enron, …).
//! * **`.lg` labeled graph** (as used by the STMatch artifact and many graph
//!   mining systems): `v <id> <label>` and `e <u> <v> [elabel]` lines.

use crate::{Graph, GraphBuilder, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that could not be parsed, with its 1-based line number.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a SNAP-style edge list from a reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new(0);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<VertexId, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                line: idx + 1,
                message: format!("missing {what}"),
            })?
            .parse::<VertexId>()
            .map_err(|e| IoError::Parse {
                line: idx + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "source vertex")?;
        let v = parse(it.next(), "target vertex")?;
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Loads a SNAP edge-list file.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Parses an `.lg` labeled graph from a reader.
pub fn read_lg<R: Read>(reader: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new(0);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('t') {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        let bad = |message: String| IoError::Parse {
            line: idx + 1,
            message,
        };
        match toks[0] {
            "v" => {
                if toks.len() < 3 {
                    return Err(bad("vertex line needs `v <id> <label>`".into()));
                }
                let id: VertexId = toks[1].parse().map_err(|e| bad(format!("bad id: {e}")))?;
                let label: u32 = toks[2]
                    .parse()
                    .map_err(|e| bad(format!("bad label: {e}")))?;
                builder.set_label(id, label);
            }
            "e" => {
                if toks.len() < 3 {
                    return Err(bad("edge line needs `e <u> <v>`".into()));
                }
                let u: VertexId = toks[1].parse().map_err(|e| bad(format!("bad u: {e}")))?;
                let v: VertexId = toks[2].parse().map_err(|e| bad(format!("bad v: {e}")))?;
                builder.add_edge(u, v);
            }
            other => return Err(bad(format!("unknown record type `{other}`"))),
        }
    }
    Ok(builder.build())
}

/// Loads an `.lg` file.
pub fn load_lg(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_lg(file)
}

/// Writes a graph in `.lg` format.
pub fn write_lg<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "t # {}", g.name())?;
    for v in g.vertices() {
        writeln!(w, "v {} {}", v, g.label(v))?;
    }
    for (u, v) in g.edges() {
        writeln!(w, "e {u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_edge_list_with_comments() {
        let text = "# snap header\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn lg_roundtrip() {
        let text = "t # demo\nv 0 1\nv 1 2\nv 2 1\ne 0 1\ne 1 2\n";
        let g = read_lg(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.label(1), 2);
        let mut out = Vec::new();
        write_lg(&g, &mut out).unwrap();
        let g2 = read_lg(out.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn lg_rejects_unknown_record() {
        assert!(read_lg("x 1 2\n".as_bytes()).is_err());
    }
}
