//! Criterion mirror of Table III: labeled matching, STMatch vs GSI-like vs
//! Dryadic-like.

use stmatch_baselines::{dryadic, gsi};
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::gen;
use stmatch_pattern::catalog;
use stmatch_testkit::bench::Criterion;
use stmatch_testkit::{criterion_group, criterion_main};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn bench_labeled(c: &mut Criterion) {
    let g = gen::assign_random_labels(&gen::rmat(9, 4, 11).degree_ordered(), 10, 2022);
    for qi in [9usize, 14, 16] {
        let q = catalog::paper_query(qi).with_random_labels(10, qi as u64);
        let mut group = c.benchmark_group(format!("table3_q{qi}"));
        group.bench_function("stmatch", |b| {
            let engine = Engine::new(EngineConfig::full().with_grid(grid()));
            b.iter(|| engine.run(&g, &q).unwrap().count)
        });
        group.bench_function("gsi", |b| {
            let cfg = gsi::GsiConfig {
                grid: grid(),
                ..gsi::GsiConfig::default()
            };
            b.iter(|| gsi::run(&g, &q, cfg).unwrap().count)
        });
        group.bench_function("dryadic", |b| {
            let cfg = dryadic::DryadicConfig {
                threads: 1,
                ..dryadic::DryadicConfig::default()
            };
            b.iter(|| dryadic::run(&g, &q, cfg).count)
        });
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_labeled
}
criterion_main!(benches);
