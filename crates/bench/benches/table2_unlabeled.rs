//! Criterion mirror of Table II: STMatch vs the cuTS-like baseline vs the
//! Dryadic-like CPU baseline on unlabeled queries, at micro scale.

use stmatch_baselines::{cuts, dryadic};
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::gen;
use stmatch_pattern::catalog;
use stmatch_testkit::bench::{BenchmarkId, Criterion};
use stmatch_testkit::{criterion_group, criterion_main};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn bench_systems(c: &mut Criterion) {
    let g = gen::rmat(8, 4, 7).degree_ordered();
    for qi in [8usize, 16, 24] {
        let q = catalog::paper_query(qi);
        let mut group = c.benchmark_group(format!("table2_q{qi}"));
        group.bench_function(BenchmarkId::new("stmatch", qi), |b| {
            let engine = Engine::new(EngineConfig::full().with_grid(grid()));
            b.iter(|| engine.run(&g, &q).unwrap().count)
        });
        group.bench_function(BenchmarkId::new("cuts", qi), |b| {
            let cfg = cuts::CutsConfig {
                grid: grid(),
                ..cuts::CutsConfig::default()
            };
            b.iter(|| cuts::run(&g, &q, cfg).unwrap().count)
        });
        group.bench_function(BenchmarkId::new("dryadic", qi), |b| {
            let cfg = dryadic::DryadicConfig {
                threads: 1,
                ..dryadic::DryadicConfig::default()
            };
            b.iter(|| dryadic::run(&g, &q, cfg).count)
        });
        group.finish();
    }
}

fn bench_vertex_induced(c: &mut Criterion) {
    let g = gen::rmat(8, 4, 7).degree_ordered();
    let q = catalog::paper_query(8);
    let mut group = c.benchmark_group("table2b_q8_induced");
    group.bench_function("stmatch", |b| {
        let engine = Engine::new(EngineConfig::full().with_grid(grid()).induced(true));
        b.iter(|| engine.run(&g, &q).unwrap().count)
    });
    group.bench_function("dryadic", |b| {
        let cfg = dryadic::DryadicConfig {
            threads: 1,
            induced: true,
            ..dryadic::DryadicConfig::default()
        };
        b.iter(|| dryadic::run(&g, &q, cfg).count)
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_systems, bench_vertex_induced
}
criterion_main!(benches);
