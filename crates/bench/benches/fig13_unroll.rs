//! Criterion mirror of Fig. 13: runtime and (via the harness) lane
//! utilization across unroll sizes.

use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::gen;
use stmatch_pattern::catalog;
use stmatch_testkit::bench::{BenchmarkId, Criterion};
use stmatch_testkit::{criterion_group, criterion_main};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn bench_unroll(c: &mut Criterion) {
    let g = gen::assign_random_labels(&gen::rmat(9, 4, 3).degree_ordered(), 10, 2022);
    let q = catalog::paper_query(14).with_random_labels(10, 14);
    let mut group = c.benchmark_group("fig13_unroll_q14");
    for unroll in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(unroll), &unroll, |b, &u| {
            let engine = Engine::new(EngineConfig::full().with_grid(grid()).with_unroll(u));
            b.iter(|| engine.run(&g, &q).unwrap().count)
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_unroll
}
criterion_main!(benches);
