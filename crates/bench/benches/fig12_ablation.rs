//! Criterion mirror of Fig. 12: the naive / localsteal / local+global /
//! unroll+local+global ablation on a labeled size-6 query.

use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::gen;
use stmatch_pattern::catalog;
use stmatch_testkit::bench::Criterion;
use stmatch_testkit::{criterion_group, criterion_main};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn bench_ablation(c: &mut Criterion) {
    let g = gen::assign_random_labels(&gen::rmat(9, 5, 5).degree_ordered(), 10, 2022);
    let q = catalog::paper_query(16).with_random_labels(10, 16);
    let configs: [(&str, EngineConfig); 4] = [
        ("naive", EngineConfig::naive()),
        ("localsteal", EngineConfig::local_steal_only()),
        ("local_global", EngineConfig::local_global_steal()),
        ("unroll_local_global", EngineConfig::full()),
    ];
    let mut group = c.benchmark_group("fig12_ablation_q16");
    for (name, cfg) in configs {
        group.bench_function(name, |b| {
            let engine = Engine::new(cfg.with_grid(grid()));
            b.iter(|| engine.run(&g, &q).unwrap().count)
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ablation
}
criterion_main!(benches);
