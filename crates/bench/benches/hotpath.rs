//! The hot-path wall-time bench (PR 2): q1/q6/q8 on the seeded PA graph,
//! steal-free full-hot-path config (see `stmatch_bench::hotpath`).
//!
//! Timing lines go to stdout as JSON (and to `TESTKIT_BENCH_JSON` when
//! set); one extra JSON line per workload records the deterministic
//! behaviour metrics (count, total_instructions, lane_utilization) so a
//! `BENCH_PR2.json` snapshot carries both speed and behaviour.

use std::io::Write as _;
use stmatch_bench::hotpath;
use stmatch_core::Engine;
use stmatch_testkit::bench::Criterion;
use stmatch_testkit::{criterion_group, criterion_main};

fn bench_hotpath(c: &mut Criterion) {
    let g = hotpath::graph();
    let mut group = c.benchmark_group("hotpath");
    for qi in hotpath::QUERIES {
        let q = hotpath::query(qi);
        let engine = Engine::new(hotpath::config());
        let plan = engine.compile(&q);
        group.bench_function(format!("q{qi}"), |b| {
            b.iter(|| engine.run_plan(&g, &plan).unwrap().count)
        });
        // One extra (untimed) run for the behaviour metrics.
        let out = engine.run_plan(&g, &plan).unwrap();
        let json = format!(
            "{{\"name\":\"hotpath/q{qi}/metrics\",\"count\":{},\
             \"total_instructions\":{},\"lane_utilization\":{}}}",
            out.count,
            out.total_instructions(),
            out.metrics.lane_utilization()
        );
        println!("{json}");
        if let Ok(path) = std::env::var("TESTKIT_BENCH_JSON") {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(f, "{json}");
            }
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hotpath
}
criterion_main!(benches);
