//! Micro-benchmarks of the warp set operations: the combined (unrolled)
//! operation of Fig. 8 versus one-set-at-a-time processing.

use stmatch_core::setops;
use stmatch_gpusim::{Grid, GridConfig};
use stmatch_graph::{gen, VertexId};
use stmatch_pattern::{LabelMask, OpKind};
use stmatch_testkit::bench::{BenchmarkId, Criterion};
use stmatch_testkit::{criterion_group, criterion_main};

fn one_warp_grid() -> Grid {
    Grid::new(GridConfig {
        num_blocks: 1,
        warps_per_block: 1,
        shared_mem_per_block: 0,
    })
    .unwrap()
}

fn bench_intersection_sizes(c: &mut Criterion) {
    let g = gen::complete(2);
    let mut group = c.benchmark_group("intersect_single");
    for size in [8usize, 32, 128, 512] {
        let a: Vec<VertexId> = (0..size as VertexId).map(|v| v * 2).collect();
        let b: Vec<VertexId> = (0..size as VertexId).map(|v| v * 3).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            let grid = one_warp_grid();
            bench.iter(|| {
                grid.launch(|w| {
                    let mut outs = vec![Vec::new()];
                    setops::apply_op(
                        w,
                        &g,
                        &[&a],
                        &[&b],
                        OpKind::Intersect,
                        LabelMask::ALL,
                        &mut outs,
                    );
                })
            });
        });
    }
    group.finish();
}

fn bench_combined_vs_single(c: &mut Criterion) {
    let g = gen::complete(2);
    let sets: Vec<Vec<VertexId>> = (0..8)
        .map(|s| (0..8).map(|v| s * 64 + v * 4).collect())
        .collect();
    let operand: Vec<VertexId> = (0..512).collect();
    let mut group = c.benchmark_group("fig8_combined_setop");
    group.bench_function("one_at_a_time", |bench| {
        let grid = one_warp_grid();
        bench.iter(|| {
            grid.launch(|w| {
                for s in &sets {
                    let mut outs = vec![Vec::new()];
                    setops::apply_op(
                        w,
                        &g,
                        &[s.as_slice()],
                        &[operand.as_slice()],
                        OpKind::Intersect,
                        LabelMask::ALL,
                        &mut outs,
                    );
                }
            })
        });
    });
    group.bench_function("combined_8_slots", |bench| {
        let grid = one_warp_grid();
        bench.iter(|| {
            grid.launch(|w| {
                let ins: Vec<&[VertexId]> = sets.iter().map(|v| v.as_slice()).collect();
                let ops: Vec<&[VertexId]> = vec![operand.as_slice(); 8];
                let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); 8];
                setops::apply_op(
                    w,
                    &g,
                    &ins,
                    &ops,
                    OpKind::Intersect,
                    LabelMask::ALL,
                    &mut outs,
                );
            })
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_intersection_sizes, bench_combined_vs_single
}
criterion_main!(benches);
