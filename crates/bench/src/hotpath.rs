//! The hot-path benchmark workloads (PR 2's allocation-free claim path).
//!
//! Three paper queries — q1 (5-path, unroll-heavy shallow work), q6
//! (bowtie, mixed intersect chains), q8 (5-clique, deep intersection
//! chains) — on one seeded preferential-attachment graph with the hub
//! skew of the paper's datasets. The engine config keeps the full hot
//! path active (unroll 8, code motion) but disables both stealing levels:
//! steal timing is host-scheduler-dependent and would perturb both the
//! wall-time medians and the fixed-cost-model instruction counters, while
//! the claim/`compute_sets`/set-op path — the thing this bench watches —
//! is identical with or without stealing.
//!
//! The recorded [`GOLDEN`] values pin behaviour: wall time may (should)
//! drop across host-side optimizations, but match counts, total SIMT
//! instructions, and lane utilization are deterministic for this
//! steal-free config and must not drift (see `ci.sh`'s hotpath smoke
//! phase and `--bin hotpath_check`).

use stmatch_core::{Engine, EngineConfig, MatchOutcome};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};

/// Queries of the hotpath suite (paper indices).
pub const QUERIES: [usize; 3] = [1, 6, 8];

/// Vertices of the dense clique workload graph (PR 5's bitmap stressor).
pub const CLIQUE_N: usize = 256;

/// Edges of the clique workload graph: average degree 100, so every
/// vertex clears [`BITMAP_THRESHOLD`] and every intersection pits two
/// ~100-element hub lists against each other while survivors shrink
/// geometrically per level — the regime where one 4-word bitmap merge
/// replaces a ~200-step element merge.
pub const CLIQUE_M: usize = CLIQUE_N * 50;

/// 5-clique count on [`clique_graph`], pinned from the classic
/// (bitmap-off) engine and cross-checked against the bitmap paths by
/// `--bin bitmap_check` (which also keeps an analytic `C(32, 5)` leg on
/// `K_32` so the pin itself is anchored to closed-form ground truth).
pub const CLIQUE_COUNT: u64 = 766_243;

/// Hub threshold the bitmap bench legs attach to their graphs. Low enough
/// that the PA fixture's hub tail and every K64 vertex get bitmap rows;
/// the disabled-engine legs ignore the attached index entirely.
pub const BITMAP_THRESHOLD: usize = 16;

/// The seeded hub-skewed data graph all three workloads run on.
pub fn graph() -> Graph {
    gen::preferential_attachment(420, 8, 7).degree_ordered()
}

/// The dense clique workload graph: a seeded dense Erdős–Rényi instance
/// where every vertex is a hub, so the 5-clique query (`q8`) runs its
/// whole intersection cascade in bitmap word waves when routing is
/// enabled (the level-2 sets merge hub rows, and sealed arena result
/// rows keep levels 3+ in the bitmap domain).
pub fn clique_graph() -> Graph {
    gen::erdos_renyi(CLIQUE_N, CLIQUE_M, 7).degree_ordered()
}

/// Steal-free full-hot-path engine config (see module docs).
pub fn config() -> EngineConfig {
    let mut cfg = EngineConfig::default().with_grid(GridConfig {
        num_blocks: 1,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    });
    cfg.local_steal = false;
    cfg.global_steal = false;
    cfg
}

/// One workload's pinned behaviour: `(query, count, total_instructions)`.
/// Lane utilization is derived and checked to 1e-9.
#[derive(Clone, Copy, Debug)]
pub struct Golden {
    pub query: usize,
    pub count: u64,
    pub total_instructions: u64,
    pub lane_utilization: f64,
}

/// Recorded behaviour of the three workloads (deterministic for the
/// steal-free config). Regenerate with `--bin hotpath_check -- --print`
/// **only** when an intentional cost-model or planner change lands, and
/// say so in the commit message.
pub const GOLDEN: [Golden; 3] = [
    Golden {
        query: 1,
        count: 54844163,
        total_instructions: 7230441,
        lane_utilization: 0.5700081870303623,
    },
    Golden {
        query: 6,
        count: 559194,
        total_instructions: 2169011,
        lane_utilization: 0.7525314958812046,
    },
    Golden {
        query: 8,
        count: 769,
        total_instructions: 35769,
        lane_utilization: 0.43357732239411234,
    },
];

/// The query pattern for one suite entry.
pub fn query(qi: usize) -> Pattern {
    catalog::paper_query(qi)
}

/// Runs one workload once and returns its outcome.
pub fn run_once(graph: &Graph, qi: usize) -> MatchOutcome {
    let engine = Engine::new(config());
    engine.run(graph, &query(qi)).unwrap()
}

/// Checks one outcome against its golden row; returns an error string
/// describing the first drift found.
pub fn check(qi: usize, out: &MatchOutcome) -> Result<(), String> {
    let golden = GOLDEN
        .iter()
        .find(|g| g.query == qi)
        .ok_or_else(|| format!("q{qi} not in GOLDEN"))?;
    if out.count != golden.count {
        return Err(format!(
            "q{qi} count drifted: got {}, golden {}",
            out.count, golden.count
        ));
    }
    if out.total_instructions() != golden.total_instructions {
        return Err(format!(
            "q{qi} total_instructions drifted: got {}, golden {}",
            out.total_instructions(),
            golden.total_instructions
        ));
    }
    let util = out.metrics.lane_utilization();
    if (util - golden.lane_utilization).abs() > 1e-9 {
        return Err(format!(
            "q{qi} lane_utilization drifted: got {util}, golden {}",
            golden.lane_utilization
        ));
    }
    Ok(())
}
