//! CI smoke gate for batch-dynamic incremental matching (`ci.sh` phase
//! `smoke:delta`).
//!
//! Four legs over the pinned q1/q6 goldens on the 48-vertex hub-skewed
//! fixture plus a larger scaling fixture:
//!
//! * **off** — the delta knob defaults off, and flipping it on must leave
//!   ordinary full runs bit-identical: golden counts and identical
//!   simulated instruction totals with the knob in either position;
//! * **stream** — seeded update streams must reconcile exactly: the
//!   running count seeded from a full run and folded through each batch's
//!   [`MatchDelta`] equals full recomputation on the post-batch snapshot
//!   after every batch;
//! * **service** — a delta-enabled [`MatchService`] must deliver exact
//!   per-batch deltas to a watcher through `apply_batch` while one-shot
//!   submissions against the moving graph stay exact;
//! * **timing** — an interleaved delta-vs-recompute stream on the
//!   1024-vertex preferential-attachment fixture, recorded to
//!   `BENCH_PR10.json` (or `--out=<path>`). The gate compares **simulated
//!   SIMT instructions** — the simulator's work measure, as in the PR 8
//!   scaling curve — and fails if the amortized per-batch delta work is
//!   not at least 10x below one full recount at batch size 16.
//!
//! Every stream is seeded; a failure prints the stream seed so the exact
//! batch sequence replays locally.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use stmatch_core::{
    DeltaPlans, Engine, EngineConfig, MatchService, QueryOptions, ServiceConfig, WatchEvent,
};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::{gen, DeltaOverlay, EdgeOp, Graph};
use stmatch_pattern::{catalog, Pattern};
use stmatch_testkit::rng::SplitMix64;

/// `(query, pinned clean count)` — same fixture and goldens as
/// `faults_check` and `shard_check`.
const GOLDEN: [(usize, u64); 2] = [(1, 119531), (6, 2884)];

/// Per-leg wall cap; anything near it means a launch hung.
const WALL_CAP: Duration = Duration::from_secs(60);

/// Stream seed for the exactness legs, printed on failure.
const STREAM_SEED: u64 = 0xd17a_00c1;

/// Minimum amortized instruction speedup over recompute at batch 16.
const SPEEDUP_FLOOR: f64 = 10.0;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    }
}

fn fixture() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn main() {
    let mut out_path = String::from("BENCH_PR10.json");
    for arg in std::env::args().skip(1) {
        if let Some(p) = arg.strip_prefix("--out=") {
            out_path = p.to_string();
        } else {
            eprintln!("delta_check: unknown argument {arg:?} (usage: delta_check [--out=<path>])");
            std::process::exit(2);
        }
    }
    let mut ok = run_off();
    ok &= run_stream();
    ok &= run_service();
    ok &= run_timing(&out_path);
    if ok {
        println!("delta_check: all legs OK");
    } else {
        eprintln!("delta_check: FAILED (reproduce: STREAM_SEED=0x{STREAM_SEED:x})");
        std::process::exit(1);
    }
}

fn report(leg: &str, errs: &[String], detail: impl Fn() -> String) -> bool {
    if errs.is_empty() {
        println!("delta {leg}: OK ({})", detail());
        true
    } else {
        for e in errs {
            eprintln!("delta {leg} DRIFT: {e}");
        }
        false
    }
}

/// One seeded batch of `ops` random edge toggles against the overlay's
/// current state (same discipline as `tests/delta_oracle.rs`).
fn seeded_batch(overlay: &DeltaOverlay, rng: &mut SplitMix64, ops: usize) -> Vec<EdgeOp> {
    let n = overlay.num_vertices() as u32;
    let mut out: Vec<EdgeOp> = Vec::with_capacity(ops);
    while out.len() < ops {
        let u = (rng.next_u64() % n as u64) as u32;
        let v = (rng.next_u64() % n as u64) as u32;
        if u == v {
            continue;
        }
        let mut present = overlay.has_edge(u, v);
        for op in &out {
            let (a, b) = (op.u.min(op.v), op.u.max(op.v));
            if (a, b) == (u.min(v), u.max(v)) {
                present = op.insert;
            }
        }
        out.push(if present {
            EdgeOp::delete(u, v)
        } else {
            EdgeOp::insert(u, v)
        });
    }
    out
}

/// Off leg: the knob defaults off, and enabling it must not perturb
/// ordinary full runs — identical counts *and* instruction totals.
/// Stealing is disabled for the comparison, as in the hotpath gate:
/// steal timing is host-scheduler-dependent and would make instruction
/// totals race run to run (counts are exact either way).
fn run_off() -> bool {
    let mut ok = true;
    if EngineConfig::default().delta.enabled {
        eprintln!("delta off DRIFT: EngineConfig::default().delta.enabled is true");
        ok = false;
    }
    let g = fixture();
    let mut cfg = EngineConfig::default().with_grid(grid());
    cfg.local_steal = false;
    cfg.global_steal = false;
    let off = Engine::new(cfg);
    let on = Engine::new(cfg.with_delta(true));
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        let t = Instant::now();
        let a = off.run(&g, &q).expect("off-leg launch");
        let b = on.run(&g, &q).expect("knob-on launch");
        let wall = t.elapsed();
        let mut errs = Vec::new();
        if a.count != golden {
            errs.push(format!("knob-off count {} != golden {golden}", a.count));
        }
        if b.count != golden {
            errs.push(format!("knob-on count {} != golden {golden}", b.count));
        }
        let (ia, ib) = (
            a.metrics.total().simt_instructions,
            b.metrics.total().simt_instructions,
        );
        if ia != ib {
            errs.push(format!(
                "instruction totals diverge with the knob: off {ia} vs on {ib}"
            ));
        }
        if wall > WALL_CAP {
            errs.push(format!("wall {wall:?} exceeded the {WALL_CAP:?} cap"));
        }
        ok &= report(&format!("q{qi} off"), &errs, || {
            format!("count {}, {ia} instructions either way", a.count)
        });
    }
    ok
}

/// Stream leg: q1/q6 seeded update streams reconcile against full
/// recomputation after every batch.
fn run_stream() -> bool {
    let engine = Engine::new(EngineConfig::default().with_grid(grid()).with_delta(true));
    let mut ok = true;
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        let plans = engine.compile_delta(&q);
        let base = fixture();
        let mut running = engine.run(&base, &q).expect("base count").count as i64;
        if running != golden as i64 {
            eprintln!("delta q{qi} stream DRIFT: base count {running} != golden {golden}");
            ok = false;
        }
        let mut overlay = DeltaOverlay::new(base);
        let mut rng = SplitMix64::new(STREAM_SEED ^ qi as u64);
        let mut errs = Vec::new();
        let t = Instant::now();
        for step in 0..3 {
            let pre = overlay.snapshot();
            let ops = seeded_batch(&overlay, &mut rng, 8);
            let batch = overlay.apply(&ops);
            if step == 1 {
                overlay.compact();
            }
            let post = overlay.snapshot();
            let delta = engine
                .run_delta_plans(&pre, &post, &batch, &plans)
                .expect("delta launch");
            running += delta.net();
            let full = engine.run(&post, &q).expect("recompute").count as i64;
            if running != full {
                errs.push(format!(
                    "step {step}: running {running} != recompute {full} \
                     (batch {batch:?}, delta {delta:?})"
                ));
            }
        }
        let wall = t.elapsed();
        if wall > WALL_CAP {
            errs.push(format!("wall {wall:?} exceeded the {WALL_CAP:?} cap"));
        }
        ok &= report(&format!("q{qi} stream"), &errs, || {
            format!(
                "3 batches x 8 ops reconciled, final count {running}, {:.0}ms",
                wall.as_secs_f64() * 1e3
            )
        });
    }
    ok
}

/// Service leg: watcher deltas off `apply_batch` reconcile, and one-shot
/// submissions against the moving graph stay exact.
fn run_service() -> bool {
    let cfg = ServiceConfig::new(EngineConfig::default().with_grid(grid()).with_delta(true));
    let service = MatchService::new(Arc::new(fixture()), cfg);
    let q = catalog::triangle();
    let events: Arc<Mutex<Vec<WatchEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let _watch = service.submit_watch(&q, move |ev| sink.lock().unwrap().push(ev));
    let oracle = Engine::new(EngineConfig::default().with_grid(grid()));
    let mut running = service
        .submit(&q, QueryOptions::default())
        .expect("base submit")
        .count as i64;
    let mut shadow = DeltaOverlay::new((*service.current_graph()).clone());
    let mut rng = SplitMix64::new(STREAM_SEED ^ 0x5e41);
    let mut errs = Vec::new();
    let t = Instant::now();
    for step in 0..3 {
        let ops = seeded_batch(&shadow, &mut rng, 6);
        shadow.apply(&ops);
        let applied = service.apply_batch(&ops);
        let ev = {
            let evs = events.lock().unwrap();
            evs.last().cloned()
        };
        let Some(ev) = ev else {
            errs.push(format!("step {step}: no watch event delivered"));
            break;
        };
        if ev.batch != applied {
            errs.push(format!(
                "step {step}: watch event batch {:?} != applied {applied:?}",
                ev.batch
            ));
        }
        match &ev.delta {
            Ok(delta) => running += delta.net(),
            Err(e) => errs.push(format!("step {step}: watch delta failed: {e}")),
        }
        let now = service.current_graph();
        let full = oracle.run(&now, &q).expect("oracle recompute").count as i64;
        if running != full {
            errs.push(format!(
                "step {step}: cumulative watch count {running} != recompute {full}"
            ));
        }
        let one_shot = service
            .submit(&q, QueryOptions::default())
            .expect("one-shot submit")
            .count as i64;
        if one_shot != full {
            errs.push(format!(
                "step {step}: one-shot count {one_shot} != recompute {full} on the new topology"
            ));
        }
    }
    let wall = t.elapsed();
    if wall > WALL_CAP {
        errs.push(format!("wall {wall:?} exceeded the {WALL_CAP:?} cap"));
    }
    report("service", &errs, || {
        format!(
            "3 batches watched + one-shots exact, final count {running}, {:.0}ms",
            wall.as_secs_f64() * 1e3
        )
    })
}

/// One interleaved stream at a given batch size: every batch is processed
/// twice — once through the delta engine (metered) and once by full
/// recomputation (the exactness oracle *and* the timing baseline).
struct TimingRow {
    batch: usize,
    batches: usize,
    delta_instr: f64,
    full_instr: f64,
    delta_wall_ms: f64,
    full_wall_ms: f64,
}

impl TimingRow {
    fn speedup(&self) -> f64 {
        self.full_instr / self.delta_instr.max(1.0)
    }
}

fn measure_stream(
    g: &Graph,
    engine: &Engine,
    q: &Pattern,
    plans: &DeltaPlans,
    batch_size: usize,
    batches: usize,
    seed: u64,
) -> Result<TimingRow, String> {
    let mut running = engine
        .run(g, q)
        .map_err(|e| format!("base run: {e}"))?
        .count as i64;
    let mut overlay = DeltaOverlay::new(g.clone());
    let mut rng = SplitMix64::new(seed);
    let (mut d_instr, mut f_instr) = (0u64, 0u64);
    let (mut d_wall, mut f_wall) = (Duration::ZERO, Duration::ZERO);
    for step in 0..batches {
        let pre = overlay.snapshot();
        let ops = seeded_batch(&overlay, &mut rng, batch_size);
        let batch = overlay.apply(&ops);
        let post = overlay.snapshot();
        let t = Instant::now();
        let (delta, instr) = engine
            .run_delta_plans_metered(&pre, &post, &batch, plans)
            .map_err(|e| format!("delta launch: {e}"))?;
        d_wall += t.elapsed();
        d_instr += instr;
        running += delta.net();
        let t = Instant::now();
        let full = engine
            .run(&post, q)
            .map_err(|e| format!("recompute: {e}"))?;
        f_wall += t.elapsed();
        f_instr += full.metrics.total().simt_instructions;
        if running != full.count as i64 {
            return Err(format!(
                "batch {batch_size} step {step}: running {running} != recompute {} \
                 (delta {delta:?})",
                full.count
            ));
        }
    }
    Ok(TimingRow {
        batch: batch_size,
        batches,
        delta_instr: d_instr as f64 / batches as f64,
        full_instr: f_instr as f64 / batches as f64,
        delta_wall_ms: d_wall.as_secs_f64() * 1e3 / batches as f64,
        full_wall_ms: f_wall.as_secs_f64() * 1e3 / batches as f64,
    })
}

/// Timing leg on the 1024-vertex PA fixture: amortized per-batch delta
/// work vs one full recount, at batch sizes 1 / 16 / 256. (Per-edge delta
/// cost is a small constant plus the touched endpoints' degrees; the
/// fixture is sized so one full recount dwarfs a 16-edge batch, the
/// regime the O(batch)-vs-O(graph) claim is about. At batch 256 on this
/// graph the batch is a sizable fraction of the edge set and recompute
/// catches up — the curve records that crossover honestly.)
fn run_timing(out_path: &str) -> bool {
    let g = gen::preferential_attachment(1024, 4, 9).degree_ordered();
    let engine = Engine::new(EngineConfig::default().with_grid(grid()).with_delta(true));
    let q = catalog::triangle();
    let plans = engine.compile_delta(&q);
    let mut ok = true;
    let mut rows = Vec::new();
    for (batch_size, batches) in [(1usize, 12usize), (16, 6), (256, 2)] {
        let t = Instant::now();
        match measure_stream(&g, &engine, &q, &plans, batch_size, batches, STREAM_SEED) {
            Ok(row) => {
                println!(
                    "delta timing batch={}: {:.0} delta instr vs {:.0} full instr per batch \
                     ({:.1}x work reduction; wall {:.2}ms vs {:.2}ms)",
                    row.batch,
                    row.delta_instr,
                    row.full_instr,
                    row.speedup(),
                    row.delta_wall_ms,
                    row.full_wall_ms,
                );
                if batch_size == 16 && row.speedup() < SPEEDUP_FLOOR {
                    eprintln!(
                        "delta timing DRIFT: batch-16 speedup {:.1}x below the {SPEEDUP_FLOOR}x \
                         floor — delta work no longer scales with the batch",
                        row.speedup()
                    );
                    ok = false;
                }
                rows.push(row);
            }
            Err(e) => {
                eprintln!("delta timing DRIFT: {e}");
                ok = false;
            }
        }
        if t.elapsed() > WALL_CAP {
            eprintln!("delta timing DRIFT: batch={batch_size} exceeded the {WALL_CAP:?} cap");
            ok = false;
        }
    }
    let curve = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"batch\": {}, \"batches\": {}, \"delta_instr_per_batch\": {:.1}, \
                 \"full_instr_per_batch\": {:.1}, \"speedup_instr\": {:.2}, \
                 \"delta_wall_ms_per_batch\": {:.3}, \"full_wall_ms_per_batch\": {:.3} }}",
                r.batch,
                r.batches,
                r.delta_instr,
                r.full_instr,
                r.speedup(),
                r.delta_wall_ms,
                r.full_wall_ms,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"delta_amortized\",\n  \"unix_time\": {unix},\n  \
         \"config\": {{\n    \"fixture\": \"preferential_attachment(1024, 4, 9) degree-ordered\",\n    \
         \"pattern\": \"triangle\",\n    \"grid\": \"2 blocks x 2 warps (delta launches on the delta sub-grid)\",\n    \
         \"stream_seed\": \"0x{STREAM_SEED:x}\",\n    \
         \"note\": \"interleaved stream: every batch runs the delta engine and a full recount; instr = total simulated SIMT instructions, the simulator's work measure (host wall on the simulator is launch-scheduling bound)\"\n  }},\n  \
         \"results\": {{\n    \"speedup_floor_at_batch_16\": {SPEEDUP_FLOOR},\n    \
         \"curve\": [\n{curve}\n    ]\n  }}\n}}\n",
        unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    );
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("delta timing: failed to write {out_path}: {e}");
        return false;
    }
    println!("delta timing: wrote {out_path}");
    ok
}
