//! CI gate for the `simt-check` concurrency analysis layer (`ci.sh` phase
//! `smoke:check`).
//!
//! Default mode runs q1 and q6 on the golden fixture — clean and under the
//! seeded fault plan — with every checker enabled, prints any diagnostics,
//! and exits 1 if an error-severity finding fires or a count drifts: the
//! zero-false-positive contract, enforced on every CI run.
//!
//! `--mutate=lock-drop` / `--mutate=lock-invert` / `--mutate=rail-drop`
//! replay the seeded concurrency bugs of `stmatch_core::steal::mutation`,
//! and `--mutate=cache-drop` replays `stmatch_core::service::mutation`'s
//! untracked plan-cache insert; each exits **1 when the checker catches
//! the bug** (printing the diagnostics and their reproduce lines) and 0
//! if the mutation escaped. CI inverts the exit code: a silent checker
//! fails the build.
//!
//! `SIMT_CHECK=races,deadlock,divergence` (also `all` / `none`) selects
//! which checkers run; the reproduce line printed with every diagnostic
//! uses the same syntax.

use std::time::{Duration, Instant};

use simt_check::{CheckConfig, Diagnostic, Severity};
use stmatch_core::steal::{mutation, Board, ShardRail};
use stmatch_core::{Engine, EngineConfig, FaultPlan};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::gen;
use stmatch_pattern::catalog;

/// `(query, pinned clean count)` — same fixture and goldens as
/// `faults_check`.
const GOLDEN: [(usize, u64); 2] = [(1, 119531), (6, 2884)];

/// Per-run wall cap: the instrumented runs take tens of milliseconds;
/// anything near the cap means the instrumentation deadlocked the engine.
const WALL_CAP: Duration = Duration::from_secs(60);

const FAULT_SEED: u64 = 0x1d;

fn main() {
    let mut mutate: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.strip_prefix("--mutate=") {
            Some(m @ ("lock-drop" | "lock-invert" | "cache-drop" | "rail-drop")) => {
                mutate = Some(m.to_string())
            }
            _ => {
                eprintln!(
                    "simt_check: unknown argument {arg:?} (usage: simt_check \
                     [--mutate=lock-drop|--mutate=lock-invert|--mutate=cache-drop|\
                     --mutate=rail-drop])"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = match CheckConfig::from_env("SIMT_CHECK") {
        Some(Ok(c)) => c,
        Some(Err(e)) => {
            eprintln!("simt_check: {e}");
            std::process::exit(2);
        }
        None => CheckConfig::all(),
    };
    match mutate {
        Some(m) => run_mutation(&m, cfg),
        None => run_clean_gate(cfg),
    }
}

fn print_diags(diags: &[Diagnostic]) {
    for d in diags {
        println!("{}", d.render());
    }
}

/// Clean + seeded-fault runs must produce zero error diagnostics.
fn run_clean_gate(cfg: CheckConfig) {
    simt_check::enable(cfg);
    simt_check::set_reproduce(format!(
        "SIMT_CHECK={} cargo run --release -p stmatch-bench --bin simt_check",
        cfg.spec()
    ));
    let grid = GridConfig {
        num_blocks: 2,
        warps_per_block: 4,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    };
    let ecfg = EngineConfig::full().with_grid(grid);
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let plan = FaultPlan::seeded(FAULT_SEED, grid.total_warps(), 1, 1);

    let mut failed = false;
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        for (label, fault) in [("clean", None), ("faulty", Some(plan.clone()))] {
            let mut engine = Engine::new(ecfg);
            if let Some(p) = fault {
                engine = engine.with_fault_plan(p);
            }
            let t = Instant::now();
            let out = engine.run(&g, &q).expect("launch");
            let wall = t.elapsed();
            if out.count != golden {
                eprintln!(
                    "check q{qi} {label}: count {} != golden {golden}",
                    out.count
                );
                failed = true;
            }
            if wall > WALL_CAP {
                eprintln!("check q{qi} {label}: took {wall:?} (cap {WALL_CAP:?})");
                failed = true;
            }
        }
    }
    // Sharded sweep: four grids trading work over the ShardRail (rank 8),
    // clean and under a seeded whole-shard kill. The checker must stay
    // silent while the cross-shard steal and requeue paths run hot.
    let scfg = EngineConfig::full()
        .with_grid(grid)
        .with_shard(true)
        .with_shards(4);
    let kill = FaultPlan::seeded_shard_kill(FAULT_SEED, 4, 1);
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        for (label, fault) in [("sharded", None), ("shard-kill", Some(kill.clone()))] {
            let mut engine = Engine::new(scfg);
            if let Some(p) = fault {
                engine = engine.with_fault_plan(p);
            }
            let t = Instant::now();
            let out = engine.run_sharded(&g, &q).expect("sharded launch");
            let wall = t.elapsed();
            if out.outcome.count != golden {
                eprintln!(
                    "check q{qi} {label}: count {} != golden {golden}",
                    out.outcome.count
                );
                failed = true;
            }
            if wall > WALL_CAP {
                eprintln!("check q{qi} {label}: took {wall:?} (cap {WALL_CAP:?})");
                failed = true;
            }
        }
    }
    let diags = simt_check::drain();
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    print_diags(&diags);
    if errors > 0 {
        eprintln!(
            "check: {errors} error diagnostic(s) on clean/faulty/sharded runs (false positives)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "check: OK (q1/q6 clean+faulty+sharded under SIMT_CHECK={}, {} warning(s), 0 errors)",
        cfg.spec(),
        diags.len() - errors
    );
}

/// Replays one seeded mutation; exit 1 = caught (CI inverts), 0 = escaped.
fn run_mutation(which: &str, cfg: CheckConfig) {
    simt_check::enable(cfg);
    simt_check::set_reproduce(format!(
        "SIMT_CHECK={} cargo run --release -p stmatch-bench --bin simt_check -- --mutate={which}",
        cfg.spec()
    ));
    match which {
        "lock-drop" => {
            // A worker seeds the mirror under the tracked lock; the host
            // thread then claims with the acquisition deleted. Thread
            // spawn/join is invisible to the checker, so only the lock
            // could have ordered the two accesses — and the mutation
            // dropped it.
            let board = Board::new(1, 2, 2, (0, 100), 10);
            std::thread::scope(|s| {
                s.spawn(|| {
                    board.mirror(0).lock().size[0] = 4;
                });
            });
            let _ = mutation::claim_shallow_without_lock(&board, 0, 0);
        }
        "lock-invert" => {
            // One legitimate push records slot → mirror; the inverted
            // push then closes the cycle.
            let board = Board::new(2, 1, 2, (0, 100), 10);
            board.mark_idle(1);
            board.mirror(0).lock().size[0] = 4;
            assert!(board.try_push_global(0), "legitimate push must land");
            assert!(board.try_claim_global(1).is_some());
            board.mark_idle(1);
            let _ = mutation::push_global_inverted(&board, 0);
        }
        "rail-drop" => {
            // A worker claims from the rail under the tracked lock
            // (rank 8); the host thread then claims with the acquisition
            // deleted. As with lock-drop, thread join is invisible to the
            // checker, so only the rail lock could have ordered the two
            // accesses to the `rail[id]` shadow cell.
            let rail = ShardRail::new(&[0, 50, 100], 10, true);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _ = rail.claim(0);
                });
            });
            let _ = mutation::rail_claim_without_lock(&rail);
        }
        "cache-drop" => {
            // A blocking submit makes a service worker write the plan
            // cache under the tracked lock; the untracked insert that
            // follows has no happens-before edge to it (the mpsc reply is
            // invisible to the checker) — a data race on plan-cache[id].
            let svc = stmatch_core::MatchService::new(
                std::sync::Arc::new(gen::preferential_attachment(48, 4, 3).degree_ordered()),
                stmatch_core::ServiceConfig::new(EngineConfig::full().with_grid(GridConfig {
                    num_blocks: 2,
                    warps_per_block: 4,
                    shared_mem_per_block: SharedBudget::RTX3090_BYTES,
                }))
                .with_workers(1),
            );
            let out = svc
                .submit(&catalog::paper_query(8), Default::default())
                .expect("seeding query");
            assert_eq!(out.count, 4, "seeding query must stay at golden");
            stmatch_core::service::mutation::cache_insert_without_lock(
                &svc,
                &catalog::paper_query(7),
            );
        }
        _ => unreachable!("argument parser bounds the mutation names"),
    }
    let diags = simt_check::drain();
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    print_diags(&diags);
    if errors > 0 {
        println!("mutation {which}: caught ({errors} error diagnostic(s))");
        std::process::exit(1);
    }
    println!("mutation {which}: ESCAPED — the checker stayed silent");
}
