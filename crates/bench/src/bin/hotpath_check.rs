//! CI smoke gate for the hot path: runs the three `hotpath` workloads
//! once each and fails (exit 1) if match counts, total SIMT instructions,
//! or lane utilization drift from the values recorded in
//! [`stmatch_bench::hotpath::GOLDEN`]. Wall time is *not* checked — this
//! gate pins simulated behaviour, not host speed.
//!
//! `--print` emits the current values as a `GOLDEN` table, for
//! regeneration after an intentional cost-model change.

use stmatch_bench::hotpath;

fn main() {
    let print = std::env::args().any(|a| a == "--print");
    let g = hotpath::graph();
    let mut failed = false;
    for qi in hotpath::QUERIES {
        let t = std::time::Instant::now();
        let out = hotpath::run_once(&g, qi);
        let wall = t.elapsed().as_secs_f64() * 1e3;
        if print {
            println!(
                "    Golden {{\n        query: {qi},\n        count: {},\n        \
                 total_instructions: {},\n        lane_utilization: {},\n    }},",
                out.count,
                out.total_instructions(),
                out.metrics.lane_utilization()
            );
            eprintln!("q{qi}: {wall:.1}ms wall");
            continue;
        }
        match hotpath::check(qi, &out) {
            Ok(()) => println!(
                "hotpath q{qi}: OK (count {}, {} instr, util {:.4}, {wall:.1}ms)",
                out.count,
                out.total_instructions(),
                out.metrics.lane_utilization()
            ),
            Err(e) => {
                eprintln!("hotpath DRIFT: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
