//! CI smoke gate for the static plan verifier (`ci.sh` phase
//! `smoke:verify`).
//!
//! Default mode runs two legs:
//!
//! * **clean** — every catalog paper query (q1..q24), compiled for both
//!   fixture graphs in edge-induced, vertex-induced, and labeled form,
//!   must verify with *zero* diagnostics and a usable resource
//!   certificate (no false positives, the verifier's prime directive);
//! * **dynamic** — a golden subset actually runs with verification on
//!   (and, in a second pass, with certificate capacity hints shaping the
//!   arenas): counts must stay on the pinned goldens, certified
//!   spill-free plans must record zero `spill_events`, and the runtime
//!   `peak_slab_cells` must stay under the certificate's bound.
//!
//! `--mutate=dead-set|drop-bound|shard-overlap` runs one seeded plan
//! mutation instead: the verifier must catch it *by name* — the leg
//! prints the diagnostic (with its deterministic `reproduce:` line) and
//! exits nonzero, which `ci.sh` inverts and greps. A mutation the
//! verifier misses exits zero, failing the inverted gate.

use stmatch_core::shard::{self, ShardPlan};
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::{gen, Graph};
use stmatch_pattern::catalog;
use stmatch_pattern::plan::{mutation, MatchPlan, PlanOptions};
use stmatch_plan_verify::{verify_plan, DiagKind, GraphProfile};

/// `(query, edge-induced golden)` on the unlabeled fixture — the subset
/// the dynamic leg runs end-to-end (a path, a general shape, and the
/// cascade that exercises tier-1 specialization and shaped arenas).
const GOLDEN: [(usize, u64); 3] = [(1, 119531), (6, 2884), (8, 4)];

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    }
}

fn unlabeled() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn labeled() -> Graph {
    gen::assign_random_labels(&gen::rmat(6, 4, 11).degree_ordered(), 10, 2022)
}

fn main() {
    let mut mutate: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if let Some(m) = arg.strip_prefix("--mutate=") {
            mutate = Some(m.to_string());
        } else {
            eprintln!(
                "verify_check: unknown argument {arg:?} \
                 (usage: verify_check [--mutate=dead-set|drop-bound|shard-overlap])"
            );
            std::process::exit(2);
        }
    }
    let ok = match mutate.as_deref() {
        None => run_clean() && run_dynamic(),
        Some(m) => run_mutation(m),
    };
    if !ok {
        std::process::exit(1);
    }
}

/// Zero-false-positive sweep: q1..q24 × both fixtures × all plan modes.
fn run_clean() -> bool {
    let mut ok = true;
    let fixtures = [("unlabeled", unlabeled()), ("labeled", labeled())];
    for (fname, g) in &fixtures {
        let prof = GraphProfile::of(g);
        for qi in 1..=24 {
            let mut errs = Vec::new();
            let mut bound = 0u64;
            for induced in [false, true] {
                // Labeled verification pairs the labeled fixture with the
                // labeled query derivation the Table 3 harness uses.
                let q = if *fname == "labeled" {
                    catalog::paper_query(qi).with_random_labels(10, qi as u64)
                } else {
                    catalog::paper_query(qi)
                };
                let plan = MatchPlan::compile(
                    &q,
                    PlanOptions {
                        induced,
                        ..PlanOptions::default()
                    },
                );
                let repro = "cargo run -p stmatch-bench --bin verify_check";
                let v = verify_plan(&plan, &prof, 4096, repro);
                for d in &v.diagnostics {
                    errs.push(format!("induced={induced}: false positive: {d}"));
                }
                if !v.cert.spill_free {
                    errs.push(format!(
                        "induced={induced}: 4096-cell slabs not certified spill-free \
                         on a {}-max-degree fixture",
                        prof.max_degree
                    ));
                }
                if v.liveness.is_none() {
                    errs.push(format!("induced={induced}: liveness pass missing"));
                }
                bound = bound.max(v.cert.peak_cells(8));
            }
            ok &= report(&format!("q{qi} {fname}"), "clean", &errs, || {
                format!("0 diagnostics, peak bound {bound} cells @ unroll 8")
            });
        }
    }
    ok
}

/// Runs the golden subset with verification on, auditing the certificate
/// against runtime spill/peak counters, then re-runs with capacity hints
/// applied and checks counts stay pinned.
fn run_dynamic() -> bool {
    let g = unlabeled();
    let prof = GraphProfile::of(&g);
    let mut ok = true;
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        let plan = MatchPlan::compile(&q, PlanOptions::default());
        let slab_cap = 4096usize.min(prof.max_degree.max(1));
        let v = verify_plan(
            &plan,
            &prof,
            slab_cap,
            "cargo run -p stmatch-bench --bin verify_check",
        );
        let mut errs = Vec::new();
        if !v.is_clean() {
            errs.push(format!(
                "{} diagnostics on a clean plan",
                v.diagnostics.len()
            ));
        }
        let base_cfg = EngineConfig::default().with_grid(grid()).with_verify(true);
        let out = Engine::new(base_cfg).run(&g, &q).expect("verified launch");
        if out.count != golden {
            errs.push(format!("verified count {} != golden {golden}", out.count));
        }
        if v.cert.spill_free && out.spill_events != 0 {
            errs.push(format!(
                "{} spills under a spill-free certificate",
                out.spill_events
            ));
        }
        let bound = v.cert.peak_cells(base_cfg.unroll);
        if out.peak_slab_cells > bound {
            errs.push(format!(
                "runtime peak {} exceeds certified bound {bound}",
                out.peak_slab_cells
            ));
        }
        if out.peak_slab_cells == 0 && out.count > 0 {
            errs.push("peak tracking recorded nothing on a matching run".to_string());
        }
        // Hints pass: shaped arenas must not move counts or spill.
        let hint_cfg = EngineConfig::default()
            .with_grid(grid())
            .with_compile(true)
            .with_verify_hints();
        let hinted = Engine::new(hint_cfg).run(&g, &q).expect("hinted launch");
        if hinted.count != golden {
            errs.push(format!("hinted count {} != golden {golden}", hinted.count));
        }
        if v.cert.spill_free && hinted.spill_events != 0 {
            errs.push(format!(
                "{} spills after applying certificate capacity hints",
                hinted.spill_events
            ));
        }
        ok &= report(&format!("q{qi}"), "dynamic", &errs, || {
            format!(
                "count {}, peak {}/{} cells, {} spills",
                out.count, out.peak_slab_cells, bound, out.spill_events
            )
        });
    }
    ok
}

/// One seeded mutation: print the named diagnostic and exit nonzero when
/// the verifier catches it (ci.sh inverts and greps this output).
fn run_mutation(which: &str) -> bool {
    let g = unlabeled();
    let prof = GraphProfile::of(&g);
    let repro = format!("cargo run -p stmatch-bench --bin verify_check -- --mutate={which}");
    let diags = match which {
        "dead-set" => {
            let mut plan = MatchPlan::compile(&catalog::paper_query(6), PlanOptions::default());
            let set = mutation::insert_dead_set(&mut plan);
            println!("verify mutate dead-set: inserted dead set {set} into q6");
            let v = verify_plan(&plan, &prof, 4096, &repro);
            let named = v
                .diagnostics
                .iter()
                .any(|d| matches!(d.kind, DiagKind::DeadSet { set: s, .. } if s == set));
            if !named {
                eprintln!("verify mutate dead-set: diagnostics never name set {set}");
                return true; // missed: exit 0, failing the inverted gate
            }
            v.diagnostics
        }
        "drop-bound" => {
            let mut plan = MatchPlan::compile(&catalog::paper_query(8), PlanOptions::default());
            let Some((level, pos)) = mutation::drop_symmetry_bound(&mut plan) else {
                eprintln!("verify mutate drop-bound: K5 plan carried no bounds to drop");
                return true;
            };
            println!(
                "verify mutate drop-bound: dropped q8 symmetry bound at level {level} \
                 against position {pos}"
            );
            let v = verify_plan(&plan, &prof, 4096, &repro);
            let named = v.diagnostics.iter().any(|d| {
                matches!(
                    d.kind,
                    DiagKind::MissingSymmetryBound { level: l, pos: p, .. }
                        if l == level && p == pos
                )
            });
            if !named {
                eprintln!(
                    "verify mutate drop-bound: diagnostics never name level {level} pos {pos}"
                );
                return true;
            }
            v.diagnostics
        }
        "shard-overlap" => {
            let mut splan = ShardPlan::work_aware(&g, 4);
            let Some((dup, orphan)) = shard::mutation::overlap_cut(&mut splan) else {
                eprintln!("verify mutate shard-overlap: plan too small to mutate");
                return true;
            };
            println!(
                "verify mutate shard-overlap: duplicated vertex {dup} across the first \
                 cut, orphaning vertex {orphan}"
            );
            let diags = splan.verify_cover(g.num_vertices(), &repro);
            let overlap_named = diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::ShardOverlap { vertex, .. } if vertex == dup));
            let gap_named = diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::ShardGap { vertex } if vertex == orphan));
            if !overlap_named || !gap_named {
                eprintln!(
                    "verify mutate shard-overlap: diagnostics never name vertex {dup} \
                     (overlap) and vertex {orphan} (gap)"
                );
                return true;
            }
            diags
        }
        other => {
            eprintln!("verify_check: unknown mutation {other:?}");
            std::process::exit(2);
        }
    };
    for d in &diags {
        println!("verify CAUGHT: {d}");
    }
    false // caught: exit 1; ci.sh inverts this into a pass
}

fn report(what: &str, leg: &str, errs: &[String], detail: impl Fn() -> String) -> bool {
    if errs.is_empty() {
        println!("verify {what} {leg}: OK ({})", detail());
        true
    } else {
        for e in errs {
            eprintln!("verify {what} {leg} DRIFT: {e}");
        }
        false
    }
}
