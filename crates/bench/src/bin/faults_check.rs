//! CI smoke gate for fault tolerance (`ci.sh` phase `smoke:faults`): runs
//! q1 and q6 on the 48-vertex hub-skewed fixture under a seeded fault
//! plan (one warp panic + one warp stall over a 2×4 grid) and fails
//! (exit 1) if either count drifts from the clean run or from the pinned
//! goldens, if containment leaks an escaped panic, if requeued work is
//! left stranded, or if the faulty runs blow a generous wall-clock cap
//! (a containment bug that deadlocks survivors shows up as a hang; the
//! cap turns it into a fast failure).
//!
//! Reproduce a failure locally with the printed `FAULT_SEED=0x…` line:
//! the seed fully determines the fault schedule.

use std::time::{Duration, Instant};
use stmatch_core::{Engine, EngineConfig, FaultPlan};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::gen;
use stmatch_pattern::catalog;

/// `(query, pinned clean count)` — regenerate only with an intentional
/// fixture change, and say so in the commit message.
const GOLDEN: [(usize, u64); 2] = [(1, 119531), (6, 2884)];

/// Per-query wall cap. The clean runs take milliseconds; the injected
/// stall adds tens of ms; anything near the cap means survivors hung.
const WALL_CAP: Duration = Duration::from_secs(60);

/// Default seed, chosen (and pinned by CI) because its panic victim
/// reliably receives work on this fixture: the gate then proves real
/// containment — death observed, count still exact — on every run. With
/// an overridden `FAULT_SEED` the victim may race to no work, so the
/// death expectation only applies to the default seed.
const DEFAULT_SEED: u64 = 0x1d;

fn main() {
    let (seed, default_seed) = match std::env::var("FAULT_SEED") {
        Ok(s) => {
            let t = s.trim().trim_start_matches("0x").trim_start_matches("0X");
            let seed = u64::from_str_radix(t, 16).unwrap_or_else(|e| {
                eprintln!("faults_check: bad FAULT_SEED {s:?}: {e}");
                std::process::exit(2);
            });
            (seed, false)
        }
        Err(_) => (DEFAULT_SEED, true),
    };
    let grid = GridConfig {
        num_blocks: 2,
        warps_per_block: 4,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    };
    let cfg = EngineConfig::full().with_grid(grid);
    let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
    let plan = FaultPlan::seeded(seed, grid.total_warps(), 1, 1);
    let reproduce = plan.reproduce_line().unwrap_or_default().to_string();

    let mut failed = false;
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        let clean = Engine::new(cfg).run(&g, &q).expect("clean launch");
        let t = Instant::now();
        let faulty = Engine::new(cfg)
            .with_fault_plan(plan.clone())
            .run(&g, &q)
            .expect("faulty launch");
        let wall = t.elapsed();
        let mut errs = Vec::new();
        if clean.count != golden {
            errs.push(format!("clean count {} != golden {golden}", clean.count));
        }
        if faulty.count != clean.count {
            errs.push(format!(
                "faulty count {} != clean {}",
                faulty.count, clean.count
            ));
        }
        if faulty.timed_out {
            errs.push("faulty run marked timed_out".into());
        }
        if wall > WALL_CAP {
            errs.push(format!("faulty run took {wall:?} (cap {WALL_CAP:?})"));
        }
        let (deaths, salvages) = match &faulty.fault {
            Some(r) => {
                if !r.fully_recovered() {
                    errs.push(format!(
                        "not fully recovered: {} unrecovered, {} escaped",
                        r.unrecovered, r.escaped_panics
                    ));
                }
                (r.deaths.len(), r.salvage_launches)
            }
            None => (0, 0),
        };
        if default_seed && deaths == 0 {
            errs.push("default-seed panic never fired: the gate exercised nothing".into());
        }
        if errs.is_empty() {
            println!(
                "faults q{qi}: OK (count {}, {deaths} deaths, {salvages} salvages, \
                 {:.1}ms, {reproduce})",
                faulty.count,
                wall.as_secs_f64() * 1e3
            );
        } else {
            for e in errs {
                eprintln!("faults q{qi} DRIFT: {e}");
            }
            eprintln!("faults q{qi}: reproduce with {reproduce}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
