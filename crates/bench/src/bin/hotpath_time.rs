//! Wall-time probe for the hotpath workloads, one measurement per line.
//!
//! `hotpath_time <query|clique> <reps> [--bitmap] [--ab]` runs the given
//! workload — a paper-query index on the pinned hotpath graph, or
//! `clique` for the 5-clique query on the dense K64 graph — `<reps>`
//! times and prints each run's wall time in milliseconds followed by the
//! match count:
//!
//! * bare: `<ms> <count>` per line, hub-bitmap routing off (the exact
//!   output shape `tools/bench_pr2.sh` consumed, so old baselines stay
//!   comparable);
//! * `--bitmap`: same lines with bitmap routing enabled;
//! * `--ab`: interleaves one routing-off and one routing-on run per rep
//!   (`off <ms> <count>` / `on <ms> <count>` lines), cancelling host
//!   noise the way the PR 2 protocol interleaved baseline/post binaries.
//!   Both legs share one graph with the index attached — the disabled
//!   engine ignores it, so the off leg measures the pre-bitmap path.

use stmatch_bench::hotpath;
use stmatch_core::Engine;

fn main() {
    let usage = "usage: hotpath_time <query|clique> <reps> [--bitmap] [--ab]";
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pos = args.iter().filter(|a| !a.starts_with("--"));
    let workload = pos.next().expect(usage).as_str();
    let reps: usize = pos.next().expect(usage).parse().unwrap();
    let bitmap = args.iter().any(|a| a == "--bitmap");
    let ab = args.iter().any(|a| a == "--ab");

    let (mut g, qi) = if workload == "clique" {
        (hotpath::clique_graph(), 8)
    } else {
        (hotpath::graph(), workload.parse().unwrap())
    };
    if bitmap || ab {
        g = g.with_hub_bitmap(hotpath::BITMAP_THRESHOLD);
    }
    let q = hotpath::query(qi);

    let off = Engine::new(hotpath::config());
    let on = Engine::new(hotpath::config().with_hub_bitmap(true));
    let plan = off.compile(&q);

    let timed = |engine: &Engine, prefix: &str| {
        let t = std::time::Instant::now();
        let out = engine.run_plan(&g, &plan).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("{prefix}{ms:.3} {}", out.count);
    };
    for _ in 0..reps {
        if ab {
            timed(&off, "off ");
            timed(&on, "on ");
        } else if bitmap {
            timed(&on, "");
        } else {
            timed(&off, "");
        }
    }
}
