//! Wall-time probe for the hotpath workloads, one measurement per line.
//!
//! `hotpath_time <query|clique> <reps> [--bitmap] [--ab]` runs the given
//! workload — a paper-query index on the pinned hotpath graph, or
//! `clique` for the 5-clique query on the dense K64 graph — `<reps>`
//! times and prints each run's wall time in milliseconds followed by the
//! match count:
//!
//! * bare: `<ms> <count>` per line, hub-bitmap routing off (the exact
//!   output shape `tools/bench_pr2.sh` consumed, so old baselines stay
//!   comparable);
//! * `--bitmap`: same lines with bitmap routing enabled;
//! * `--ab`: interleaves one routing-off and one routing-on run per rep
//!   (`off <ms> <count>` / `on <ms> <count>` lines), cancelling host
//!   noise the way the PR 2 protocol interleaved baseline/post binaries.
//!   Both legs share one graph with the index attached — the disabled
//!   engine ignores it, so the off leg measures the pre-bitmap path.
//! * `--tiers`: interleaves three compilation legs per rep — `base`
//!   (plan walking), `bc` (tier-0 bytecode dispatch, specialization
//!   pinned off), `spec` (tier-1 shape-specialized bodies, promotion
//!   forced via `tier_up_after = 0`) — on one shared graph and plan.
//!   The `spec` leg holds a persistent [`stmatch_core::CompiledPlan`]
//!   across reps, the way the resident service serves a promoted cache
//!   entry; `bc` recompiles per run (the one-shot path). This is the
//!   measurement protocol behind `BENCH_PR7.json`.

use stmatch_bench::hotpath;
use stmatch_core::{CompiledPlan, Engine};

fn main() {
    let usage = "usage: hotpath_time <query|clique> <reps> [--bitmap] [--ab] [--tiers]";
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pos = args.iter().filter(|a| !a.starts_with("--"));
    let workload = pos.next().expect(usage).as_str();
    let reps: usize = pos.next().expect(usage).parse().unwrap();
    let bitmap = args.iter().any(|a| a == "--bitmap");
    let ab = args.iter().any(|a| a == "--ab");
    let tiers = args.iter().any(|a| a == "--tiers");

    let (mut g, qi) = if workload == "clique" {
        (hotpath::clique_graph(), 8)
    } else {
        (hotpath::graph(), workload.parse().unwrap())
    };
    if bitmap || ab {
        g = g.with_hub_bitmap(hotpath::BITMAP_THRESHOLD);
    }
    let q = hotpath::query(qi);

    let off = Engine::new(hotpath::config());
    let plan = off.compile(&q);

    if tiers {
        let mut bc_cfg = hotpath::config();
        bc_cfg.compile.enabled = true;
        bc_cfg.compile.specialize = false;
        let bc = Engine::new(bc_cfg);
        let mut spec_cfg = hotpath::config();
        spec_cfg.compile.enabled = true;
        spec_cfg.compile.tier_up_after = 0;
        let spec = Engine::new(spec_cfg);
        let resident = CompiledPlan::lower(&plan, spec_cfg.compile).expect("hotpath plans lower");
        for _ in 0..reps {
            for (engine, prefix, compiled) in [
                (&off, "base ", None),
                (&bc, "bc ", None),
                (&spec, "spec ", Some(&resident)),
            ] {
                let t = std::time::Instant::now();
                let out = match compiled {
                    Some(c) => engine.run_plan_compiled(&g, &plan, c).unwrap(),
                    None => engine.run_plan(&g, &plan).unwrap(),
                };
                let ms = t.elapsed().as_secs_f64() * 1e3;
                println!("{prefix}{ms:.3} {}", out.count);
            }
        }
        return;
    }

    let on = Engine::new(hotpath::config().with_hub_bitmap(true));
    let timed = |engine: &Engine, prefix: &str| {
        let t = std::time::Instant::now();
        let out = engine.run_plan(&g, &plan).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("{prefix}{ms:.3} {}", out.count);
    };
    for _ in 0..reps {
        if ab {
            timed(&off, "off ");
            timed(&on, "on ");
        } else if bitmap {
            timed(&on, "");
        } else {
            timed(&off, "");
        }
    }
}
