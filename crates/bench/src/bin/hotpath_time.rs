//! Wall-time probe for the hotpath workloads, one measurement per line.
//!
//! `hotpath_time <query> <reps>` runs paper query `<query>` on the pinned
//! hotpath graph `<reps>` times and prints each run's wall time in
//! milliseconds. Deliberately restricted to APIs that exist on every
//! revision of the engine, so the identical source builds in a baseline
//! worktree — `tools/bench_pr2.sh` interleaves the two binaries to cancel
//! host noise when producing `BENCH_PR2.json`.

use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::gen;
use stmatch_pattern::catalog;

fn main() {
    let mut args = std::env::args().skip(1);
    let query: usize = args
        .next()
        .expect("usage: hotpath_time <query> <reps>")
        .parse()
        .unwrap();
    let reps: usize = args
        .next()
        .expect("usage: hotpath_time <query> <reps>")
        .parse()
        .unwrap();

    let g = gen::preferential_attachment(420, 8, 7).degree_ordered();
    let q = catalog::paper_query(query);

    let cfg = EngineConfig {
        grid: GridConfig {
            num_blocks: 1,
            warps_per_block: 2,
            shared_mem_per_block: 100 * 1024,
        },
        local_steal: false,
        global_steal: false,
        ..EngineConfig::default()
    };

    let engine = Engine::new(cfg);
    let plan = engine.compile(&q);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        let out = engine.run_plan(&g, &plan).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("{ms:.3} {}", out.count);
    }
}
