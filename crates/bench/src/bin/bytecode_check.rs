//! CI smoke gate for plan-bytecode compilation and the specialization
//! tiers: runs q1/q6/q8 on the hotpath graph and q8 on the dense ER
//! clique workload, once with compilation **off**, once **on** with a
//! profile threshold the cascades cross mid-run, and once with forced
//! specialization (`tier_up_after == 0`), and fails (exit 1) unless
//!
//! * the off legs reproduce the pinned behaviour exactly — the full
//!   [`stmatch_bench::hotpath::GOLDEN`] rows for the PA workloads
//!   (count, instructions, utilization: a disabled knob must be
//!   invisible) and the pinned clique count — with no tier reported;
//! * every compiled leg is *metric-bit-identical* to its off leg: same
//!   count, same total SIMT instructions, same lane utilization (the
//!   bytecode interpreter and the tier-1 bodies replace plan walking,
//!   not the cost-model-visible set operations);
//! * tier routing lands exactly where the policy says: under profiling,
//!   the q8 cascades reach tier 1 (their claim loops cross the
//!   threshold) while q1 (path: never auto-promoted) and q6 (general:
//!   no tier-1 body) stay on tier 0; under forced specialization, q1
//!   and q8 serve tier 1 and only q6 remains bytecode-dispatched.
//!
//! The final `bytecode_check totals:` line is grepped by `ci.sh`'s
//! `smoke:bytecode` phase — nonzero specialized traffic proves the
//! tier-1 bodies actually ran rather than silently falling back.

use stmatch_bench::hotpath;
use stmatch_core::{Engine, EngineConfig, MatchOutcome};

/// Profile threshold for the tier-up leg: low enough that every q8
/// workload's claim loop crosses it mid-run, high enough to exercise the
/// counter batching rather than promote on the first flush.
const TIER_UP_AFTER: u64 = 256;

fn compiled_config(tier_up_after: u64) -> EngineConfig {
    let mut cfg = hotpath::config();
    cfg.compile.enabled = true;
    cfg.compile.tier_up_after = tier_up_after;
    cfg
}

/// One workload row: (name, graph, query, pinned count (None = GOLDEN
/// row), expected tier under profiling, expected tier under forced spec).
type Workload<'g> = (
    &'g str,
    &'g stmatch_graph::Graph,
    usize,
    Option<u64>,
    u8,
    u8,
);

fn main() {
    let pa = hotpath::graph();
    let er = hotpath::clique_graph();
    let suite: [Workload; 4] = [
        ("q1", &pa, 1, None, 0, 1),
        ("q6", &pa, 6, None, 0, 0),
        ("q8", &pa, 8, None, 1, 1),
        ("clique", &er, 8, Some(hotpath::CLIQUE_COUNT), 1, 1),
    ];

    let mut failed = false;
    let mut fail = |msg: String| {
        eprintln!("bytecode_check DRIFT: {msg}");
        failed = true;
    };
    let metrics_match = |leg: &MatchOutcome, off: &MatchOutcome| -> Result<(), String> {
        if leg.count != off.count {
            return Err(format!("count {} != {}", leg.count, off.count));
        }
        if leg.total_instructions() != off.total_instructions() {
            return Err(format!(
                "instructions {} != {}",
                leg.total_instructions(),
                off.total_instructions()
            ));
        }
        let (lu, ou) = (
            leg.metrics.total().lane_utilization(),
            off.metrics.total().lane_utilization(),
        );
        if lu != ou {
            return Err(format!("lane utilization {lu} != {ou}"));
        }
        Ok(())
    };

    let (mut specialized_runs, mut tier0_runs) = (0u64, 0u64);
    for (name, g, qi, pinned, wanted_profiled, wanted_forced) in suite {
        let q = hotpath::query(qi);

        let off = Engine::new(hotpath::config()).run(g, &q).unwrap();
        match pinned {
            // PA workloads: the disabled leg must be bit-identical to the
            // pre-compilation GOLDEN row.
            None => {
                if let Err(e) = hotpath::check(qi, &off) {
                    fail(format!("{name} off-leg: {e}"));
                }
            }
            Some(want) if off.count != want => {
                fail(format!("{name} off-leg count {} != {want}", off.count));
            }
            Some(_) => {}
        }
        if off.served_tier.is_some() {
            fail(format!(
                "{name} off-leg reported tier {:?} with compilation off",
                off.served_tier
            ));
        }

        for (leg, cfg, wanted) in [
            ("profiled", compiled_config(TIER_UP_AFTER), wanted_profiled),
            ("forced", compiled_config(0), wanted_forced),
        ] {
            let on = Engine::new(cfg).run(g, &q).unwrap();
            if let Err(e) = metrics_match(&on, &off) {
                fail(format!("{name} {leg}-leg: {e}"));
            }
            if on.served_tier != Some(wanted) {
                fail(format!(
                    "{name} {leg}-leg routed to tier {:?}, expected Some({wanted})",
                    on.served_tier
                ));
            }
            match on.served_tier {
                Some(1) => specialized_runs += 1,
                Some(_) => tier0_runs += 1,
                None => {}
            }
            println!(
                "bytecode {name} {leg}: count={} instr={} tier={:?}",
                on.count,
                on.total_instructions(),
                on.served_tier
            );
        }
    }
    println!("bytecode_check totals: specialized_runs={specialized_runs} tier0_runs={tier0_runs}");
    if failed {
        std::process::exit(1);
    }
}
