//! `probe` — quick timing exploration utility.
//!
//! Prints STMatch timing, simulated cycles, utilization and load-balance
//! numbers for a few representative queries on each dataset stand-in.
//! Useful when retuning dataset scales or engine defaults; the full
//! reproduction lives in the `repro` binary.

use std::io::Write;
use std::time::{Duration, Instant};
use stmatch_core::{Engine, EngineConfig};
use stmatch_graph::datasets::Dataset;
use stmatch_pattern::catalog;

fn main() {
    let out = std::io::stdout();
    let timeout: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    for ds in Dataset::ALL {
        let g = ds.load();
        println!(
            "{}: |V|={} |E|={} maxdeg={}",
            ds.name(),
            g.num_vertices(),
            g.num_edges(),
            g.max_degree()
        );
        for qi in [1usize, 2, 8, 11, 16, 24] {
            let q = catalog::paper_query(qi);
            print!("  q{qi:<3}... ");
            out.lock().flush().unwrap();
            let t = Instant::now();
            let o = Engine::new(EngineConfig::default())
                .with_timeout(Duration::from_secs(timeout))
                .run(&g, &q)
                .unwrap();
            println!(
                "{:>7.2}s  count={:<12} {:>8.2} Mcyc  util={:>5.1}%  imb={:>5.2}{}",
                t.elapsed().as_secs_f64(),
                o.count,
                o.simulated_cycles() as f64 / 1e6,
                o.metrics.lane_utilization() * 100.0,
                o.metrics.load_imbalance(),
                if o.timed_out { "  TIMEOUT" } else { "" }
            );
        }
    }
}
