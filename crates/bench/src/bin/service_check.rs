//! CI gate + stress bench for the resident [`MatchService`] (`ci.sh`
//! phase `smoke:service`).
//!
//! Default mode re-proves the service's core contracts in seconds and
//! exits 1 on any violation:
//!
//! * cold and plan-cache-hit submissions reproduce the pinned golden
//!   counts of `tests/golden_counts.rs`;
//! * under the deterministic naive schedule, a cache-hit warm run is
//!   *metric*-exact against the one-shot cold `Engine::run` (identical
//!   instruction totals and launch shape);
//! * a query carrying injected warp deaths recovers to the exact count
//!   with a `FaultReport`, while concurrent healthy queries stay exact;
//! * an expired deadline fails per-query without poisoning the pool.
//!
//! `--stress` runs the many-clients soak: 8 client threads × 25 queries
//! each, every submission a randomly relabeled isomorphic copy of a
//! golden query, counts verified under load — with plan compilation on,
//! so resident cascades tier up while their cache entries are being hit
//! — and writes throughput, p50/p95 latency, and the tier counters to
//! `BENCH_PR6.json` (or `--out=<path>`).

use std::sync::Arc;
use std::time::{Duration, Instant};
use stmatch_core::{
    Engine, EngineConfig, FaultPlan, MatchService, QueryOptions, ServiceConfig, ServiceError,
};
use stmatch_gpusim::GridConfig;
use stmatch_graph::{gen, Graph};
use stmatch_pattern::{catalog, Pattern};
use stmatch_testkit::rng::{Rng, SmallRng};

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: 100 * 1024,
    }
}

fn fixture() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

/// `(query, edge-induced golden)` — the cheap rows of
/// `tests/golden_counts.rs`, big enough to exercise stealing, small
/// enough to run hundreds of times.
const GOLDEN: &[(usize, u64)] = &[
    (1, 119531),
    (4, 34587),
    (6, 2884),
    (7, 88),
    (8, 4),
    (10, 31430),
    (11, 967),
    (14, 621),
    (15, 3),
    (21, 1294),
    (22, 78),
];

fn main() {
    let mut stress = false;
    let mut out_path = String::from("BENCH_PR6.json");
    for arg in std::env::args().skip(1) {
        if arg == "--stress" {
            stress = true;
        } else if let Some(p) = arg.strip_prefix("--out=") {
            out_path = p.to_string();
        } else {
            eprintln!(
                "service_check: unknown argument {arg:?} \
                 (usage: service_check [--stress] [--out=<path>])"
            );
            std::process::exit(2);
        }
    }
    let mut failed = false;
    failed |= !gate_counts();
    failed |= !gate_metric_exact();
    failed |= !gate_faults_and_deadlines();
    if stress {
        failed |= !run_stress(&out_path);
    }
    if failed {
        eprintln!("service_check: FAILED");
        std::process::exit(1);
    }
    println!("service_check: OK");
}

/// Cold + cache-hit counts against the goldens, plus cache accounting.
fn gate_counts() -> bool {
    let svc = MatchService::new(
        Arc::new(fixture()),
        ServiceConfig::new(EngineConfig::default().with_grid(grid())).with_workers(2),
    );
    let mut ok = true;
    for &(qi, want) in GOLDEN {
        let q = catalog::paper_query(qi);
        for leg in ["cold", "hit"] {
            match svc.submit(&q, QueryOptions::default()) {
                Ok(out) if out.count == want => {}
                Ok(out) => {
                    eprintln!("counts q{qi} {leg}: got {} want {want}", out.count);
                    ok = false;
                }
                Err(e) => {
                    eprintln!("counts q{qi} {leg}: error {e}");
                    ok = false;
                }
            }
        }
    }
    let stats = svc.cache_stats();
    if stats.hits != GOLDEN.len() as u64 {
        eprintln!(
            "counts: expected {} cache hits, saw {}",
            GOLDEN.len(),
            stats.hits
        );
        ok = false;
    }
    println!(
        "gate:counts OK ({} queries cold+hit, cache {} hits / {} misses / {} entries)",
        GOLDEN.len(),
        stats.hits,
        stats.misses,
        stats.entries
    );
    ok
}

/// Cache-hit warm runs must be metric-exact against the cold engine
/// under the deterministic naive schedule.
fn gate_metric_exact() -> bool {
    let cfg = EngineConfig::naive().with_grid(grid());
    let graph = fixture();
    let svc = MatchService::new(Arc::new(fixture()), ServiceConfig::new(cfg).with_workers(1));
    let mut ok = true;
    for qi in [4usize, 6, 10] {
        let q = catalog::paper_query(qi);
        let oracle = Engine::new(cfg).run(&graph, &q).expect("oracle run");
        let _prime = svc.submit(&q, QueryOptions::default()).expect("prime");
        let warm = svc.submit(&q, QueryOptions::default()).expect("warm");
        let same = warm.count == oracle.count
            && warm.total_instructions() == oracle.total_instructions()
            && warm.num_sets == oracle.num_sets
            && warm.stack_bytes == oracle.stack_bytes
            && warm.shared_bytes_per_block == oracle.shared_bytes_per_block
            && warm.spill_events == oracle.spill_events;
        if !same {
            eprintln!(
                "metric q{qi}: warm (count {}, instr {}) != oracle (count {}, instr {})",
                warm.count,
                warm.total_instructions(),
                oracle.count,
                oracle.total_instructions()
            );
            ok = false;
        }
    }
    println!("gate:metric OK (naive-schedule cache-hit runs metric-exact vs cold Engine::run)");
    ok
}

/// Fault and deadline isolation: per-query failure, shared pool intact.
fn gate_faults_and_deadlines() -> bool {
    let svc = MatchService::new(
        Arc::new(fixture()),
        ServiceConfig::new(EngineConfig::default().with_grid(grid())).with_workers(2),
    );
    let q = catalog::paper_query(6);
    let golden = 2884u64;
    let mut ok = true;

    // Fault leg: panic *every* warp at its first claim. Targeting one
    // warp is schedule-dependent in release — the fixture is small
    // enough that a fast warp can drain all chunks before its siblings
    // ever claim — but *some* warp always claims first, so this plan
    // guarantees at least one death, and the salvage relaunch (injection
    // disabled) recovers the exact count.
    let mut death_plan = FaultPlan::new();
    for w in 0..grid().total_warps() {
        death_plan = death_plan.panic_at(w, 1);
    }
    let faulty = svc.enqueue(
        &q,
        QueryOptions {
            fault_plan: Some(death_plan),
            ..QueryOptions::default()
        },
    );
    let healthy = svc.enqueue(&q, QueryOptions::default());
    match faulty.wait() {
        Ok(out) => {
            let report = out.fault.as_ref();
            if out.count != golden || report.is_none_or(|r| r.deaths.is_empty()) {
                eprintln!(
                    "fault leg: count {} (want {golden}), report {report:?}",
                    out.count
                );
                ok = false;
            }
        }
        Err(e) => {
            eprintln!("fault leg: error {e}");
            ok = false;
        }
    }
    match healthy.wait() {
        Ok(out) if out.count == golden && out.fault.is_none() => {}
        other => {
            eprintln!("fault leg neighbour: {other:?}");
            ok = false;
        }
    }

    // Deadline leg: every warp stalled past a short deadline.
    let mut plan = FaultPlan::new();
    for w in 0..grid().total_warps() {
        plan = plan.stall_at(w, 1, Duration::from_millis(250));
    }
    let opts = QueryOptions {
        deadline: Some(Duration::from_millis(40)),
        fault_plan: Some(plan),
        ..QueryOptions::default()
    };
    match svc.submit(&q, opts) {
        Err(ServiceError::DeadlineExceeded { partial: Some(out) }) if out.timed_out => {}
        other => {
            eprintln!("deadline leg: expected mid-run expiry, got {other:?}");
            ok = false;
        }
    }
    // The pool survives both storms.
    match svc.submit(&q, QueryOptions::default()) {
        Ok(out) if out.count == golden => {}
        other => {
            eprintln!("post-storm query: {other:?}");
            ok = false;
        }
    }
    println!("gate:faults OK (deaths recovered exactly, deadline failed per-query, pool intact)");
    ok
}

/// A uniformly random vertex relabeling (isomorphic by construction).
fn relabel(p: &Pattern, rng: &mut SmallRng) -> Pattern {
    let n = p.size();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        perm.swap(i, j);
    }
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if p.has_edge(u, v) {
                edges.push((perm[u], perm[v]));
            }
        }
    }
    Pattern::new(n, &edges)
}

/// Many-clients soak: throughput + latency percentiles, counts verified
/// under load, results recorded to `out_path`.
fn run_stress(out_path: &str) -> bool {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 25;
    let workers = 4usize;
    let batch_max = 8usize;
    // The soak runs with plan compilation on (default profile threshold):
    // resident cascades tier up under load while isomorphic relabelings
    // keep hitting their promoted cache entries, and the tier counters
    // land in the JSON below. Counts stay pinned to the same goldens as
    // the compile-off gates above.
    let mut engine_cfg = EngineConfig::default().with_grid(grid());
    engine_cfg.compile.enabled = true;
    let svc = MatchService::new(
        Arc::new(fixture()),
        ServiceConfig::new(engine_cfg)
            .with_workers(workers)
            .with_batch_max(batch_max),
    );
    let svc_ref = &svc;
    let wall = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5052_3600 + c as u64);
                    let mut latencies = Vec::with_capacity(PER_CLIENT);
                    let mut mismatches = 0usize;
                    for _ in 0..PER_CLIENT {
                        let (qi, want) = GOLDEN[rng.gen_range(0..GOLDEN.len())];
                        let p = relabel(&catalog::paper_query(qi), &mut rng);
                        let t = Instant::now();
                        let out = svc_ref.submit(&p, QueryOptions::default());
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        match out {
                            Ok(o) if o.count == want => {}
                            Ok(o) => {
                                eprintln!("stress q{qi}: got {} want {want}", o.count);
                                mismatches += 1;
                            }
                            Err(e) => {
                                eprintln!("stress q{qi}: error {e}");
                                mismatches += 1;
                            }
                        }
                    }
                    (latencies, mismatches)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let mut latencies: Vec<f64> = results
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let mismatches: usize = results.iter().map(|(_, m)| m).sum();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let total = latencies.len();
    let stats = svc.cache_stats();
    let throughput = total as f64 / (wall_ms / 1e3);
    println!(
        "stress: {total} queries / {CLIENTS} clients in {wall_ms:.0} ms \
         ({throughput:.1} q/s, p50 {:.2} ms, p95 {:.2} ms, {mismatches} mismatches, \
         cache {}/{} hit, {} tier-ups, {} specialized)",
        pct(0.50),
        pct(0.95),
        stats.hits,
        stats.hits + stats.misses,
        stats.tier_ups,
        stats.specialized_hits,
    );
    let json = format!(
        "{{\n  \"bench\": \"service_stress\",\n  \"unix_time\": {unix},\n  \
         \"config\": {{\n    \"grid\": \"2x2 warps, 100 KiB shared\",\n    \
         \"workers\": {workers},\n    \"batch_max\": {batch_max},\n    \
         \"clients\": {CLIENTS},\n    \"queries_per_client\": {PER_CLIENT},\n    \
         \"note\": \"each submission is a random vertex relabeling of a golden paper query (edge-induced, unlabeled PA(48,4,3) fixture)\"\n  }},\n  \
         \"results\": {{\n    \"total_queries\": {total},\n    \
         \"wall_ms\": {wall_ms:.1},\n    \"throughput_qps\": {throughput:.1},\n    \
         \"latency_ms\": {{ \"p50\": {p50:.3}, \"p95\": {p95:.3}, \"max\": {max:.3} }},\n    \
         \"count_mismatches\": {mismatches},\n    \
         \"plan_cache\": {{ \"hits\": {hits}, \"misses\": {misses}, \"entries\": {entries}, \
         \"tier_ups\": {tier_ups}, \"tier0_served\": {tier0}, \"specialized_hits\": {spec} }}\n  }}\n}}\n",
        unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        p50 = pct(0.50),
        p95 = pct(0.95),
        max = latencies[latencies.len() - 1],
        hits = stats.hits,
        misses = stats.misses,
        entries = stats.entries,
        tier_ups = stats.tier_ups,
        tier0 = stats.tier0_served,
        spec = stats.specialized_hits,
    );
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("stress: failed to write {out_path}: {e}");
        return false;
    }
    println!("stress: wrote {out_path}");
    mismatches == 0
}
