//! CI smoke gate for sharded multi-grid execution (`ci.sh` phase
//! `smoke:shard`).
//!
//! Default mode runs three legs over the pinned q1/q6 goldens on the
//! 48-vertex hub-skewed fixture:
//!
//! * **off** — sharding disabled (the default config) must stay
//!   bit-identical to the baseline: golden counts across repeated runs,
//!   zero shard-rail metrics, no fault bookkeeping;
//! * **on** — a clean 4-shard run must land the same goldens with
//!   nothing left on the rail;
//! * **kill** — seeded whole-shard deaths (1-of-4 and 3-of-4) must keep
//!   counts exact, fully recover the dead shards' work over the rail
//!   (nonzero requeue/steal traffic), and print the deterministic
//!   `FAULT_SEED=0x…` reproduce line.
//!
//! `--scaling` additionally runs the 1/2/4/8/16-shard efficiency sweep on
//! a larger skewed preferential-attachment fixture and records the curve
//! to `BENCH_PR8.json` (or `--out=<path>`), failing if counts drift
//! across shard counts or the work-aware split loses to the contiguous
//! baseline on bottleneck time.
//!
//! Reproduce a kill-leg failure locally with the printed `FAULT_SEED=0x…`
//! line: the seed fully determines which shards die and when.

use std::time::{Duration, Instant};
use stmatch_core::{Engine, EngineConfig, FaultPlan, ShardPlan};
use stmatch_gpusim::{GridConfig, SharedBudget};
use stmatch_graph::{gen, stats, Graph};
use stmatch_pattern::catalog;

/// `(query, pinned clean count)` — same fixture and goldens as
/// `faults_check`.
const GOLDEN: [(usize, u64); 2] = [(1, 119531), (6, 2884)];

/// Per-leg wall cap; anything near it means a shard hung on the rail.
const WALL_CAP: Duration = Duration::from_secs(60);

/// Default kill seed, pinned by CI because its victims reliably die on
/// this fixture (the gate then proves real recovery — shard death
/// observed, count still exact). With an overridden `FAULT_SEED` the
/// victims may race to no work, so the death expectation only applies to
/// the default seed.
const DEFAULT_SEED: u64 = 0x8a1d;

fn grid() -> GridConfig {
    GridConfig {
        num_blocks: 2,
        warps_per_block: 2,
        shared_mem_per_block: SharedBudget::RTX3090_BYTES,
    }
}

fn fixture() -> Graph {
    gen::preferential_attachment(48, 4, 3).degree_ordered()
}

fn main() {
    let mut scaling = false;
    let mut out_path = String::from("BENCH_PR8.json");
    for arg in std::env::args().skip(1) {
        if arg == "--scaling" {
            scaling = true;
        } else if let Some(p) = arg.strip_prefix("--out=") {
            out_path = p.to_string();
        } else {
            eprintln!(
                "shard_check: unknown argument {arg:?} \
                 (usage: shard_check [--scaling] [--out=<path>])"
            );
            std::process::exit(2);
        }
    }
    let (seed, default_seed) = match std::env::var("FAULT_SEED") {
        Ok(s) => {
            let t = s.trim().trim_start_matches("0x").trim_start_matches("0X");
            let seed = u64::from_str_radix(t, 16).unwrap_or_else(|e| {
                eprintln!("shard_check: bad FAULT_SEED {s:?}: {e}");
                std::process::exit(2);
            });
            (seed, false)
        }
        Err(_) => (DEFAULT_SEED, true),
    };
    let mut failed = !run_gate(seed, default_seed);
    if scaling {
        failed |= !run_scaling(&out_path);
    }
    if failed {
        std::process::exit(1);
    }
}

/// The off / on / kill legs over the pinned goldens.
fn run_gate(seed: u64, default_seed: bool) -> bool {
    let g = fixture();
    let mut ok = true;

    // --- Off leg: the knob default must leave the engine untouched. ---
    let off_cfg = EngineConfig::default().with_grid(grid());
    assert!(!off_cfg.shard.enabled, "sharding must be off by default");
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        let mut errs = Vec::new();
        let mut counts = Vec::new();
        for _ in 0..2 {
            let out = Engine::new(off_cfg).run(&g, &q).expect("off-leg launch");
            if out.metrics.total().shard_steal_receives != 0 {
                errs.push("shard-rail metric nonzero with sharding off".to_string());
            }
            if out.fault.is_some() {
                errs.push("fault bookkeeping attached to a clean run".to_string());
            }
            counts.push(out.count);
        }
        if counts.iter().any(|&c| c != golden) {
            errs.push(format!("counts {counts:?} != golden {golden}"));
        }
        if counts[0] != counts[1] {
            errs.push(format!("repeat runs disagree: {counts:?}"));
        }
        ok &= report(qi, "off", &errs, || format!("count {}", counts[0]));
    }

    // --- On leg: clean 4-shard run, same goldens, rail drained. ---
    let on_cfg = EngineConfig::default()
        .with_grid(grid())
        .with_shard(true)
        .with_shards(4);
    for (qi, golden) in GOLDEN {
        let q = catalog::paper_query(qi);
        let t = Instant::now();
        let out = Engine::new(on_cfg)
            .run_sharded(&g, &q)
            .expect("on-leg launch");
        let wall = t.elapsed();
        let mut errs = Vec::new();
        if out.outcome.count != golden {
            errs.push(format!(
                "sharded count {} != golden {golden}",
                out.outcome.count
            ));
        }
        if !out.unfinished.is_empty() {
            errs.push(format!("{} ranges left on the rail", out.unfinished.len()));
        }
        if out.rail.shard_deaths != 0 {
            errs.push("shard deaths on a clean run".to_string());
        }
        if wall > WALL_CAP {
            errs.push(format!("took {wall:?} (cap {WALL_CAP:?})"));
        }
        ok &= report(qi, "on", &errs, || {
            format!(
                "count {}, {} cross-steals, {:.1}ms",
                out.outcome.count,
                out.rail.cross_steals,
                wall.as_secs_f64() * 1e3
            )
        });
    }

    // --- Kill legs: seeded shard deaths must recover exactly. ---
    let mut deaths_total = 0usize;
    let mut requeue_total = 0u64;
    for kills in [1usize, 3] {
        let plan = FaultPlan::seeded_shard_kill(seed, 4, kills);
        let reproduce = plan
            .shard_reproduce_line()
            .expect("seeded kill plans carry a reproduce line");
        for (qi, golden) in GOLDEN {
            let q = catalog::paper_query(qi);
            let t = Instant::now();
            let out = Engine::new(on_cfg)
                .with_fault_plan(plan.clone())
                .run_sharded(&g, &q)
                .expect("kill-leg launch");
            let wall = t.elapsed();
            let mut errs = Vec::new();
            if out.outcome.count != golden {
                errs.push(format!("count {} != golden {golden}", out.outcome.count));
            }
            if out.outcome.timed_out {
                errs.push("kill-leg run marked timed_out".to_string());
            }
            if wall > WALL_CAP {
                errs.push(format!("took {wall:?} (cap {WALL_CAP:?})"));
            }
            let deaths = match &out.outcome.fault {
                Some(r) => {
                    if !r.fully_recovered() {
                        errs.push(format!(
                            "not fully recovered: {} unrecovered, {} escaped",
                            r.unrecovered, r.escaped_panics
                        ));
                    }
                    if !r.deaths.is_empty() && out.reproduce.is_none() {
                        errs.push("shard-death report lacks a reproduce line".to_string());
                    }
                    r.deaths.len()
                }
                None => 0,
            };
            deaths_total += deaths;
            requeue_total += out.rail.requeue_pushes
                + out.rail.requeue_claims
                + out.outcome.metrics.total().shard_steal_receives;
            ok &= report(qi, &format!("kill{kills}"), &errs, || {
                format!(
                    "count {}, {deaths} deaths, {} shard-deaths, {} requeue-claims, \
                     {:.1}ms, {reproduce}",
                    out.outcome.count,
                    out.rail.shard_deaths,
                    out.rail.requeue_claims,
                    wall.as_secs_f64() * 1e3
                )
            });
        }
    }
    if default_seed && deaths_total == 0 {
        eprintln!("shard kill DRIFT: default-seed kills never fired: the gate exercised nothing");
        ok = false;
    }
    if default_seed && requeue_total == 0 {
        eprintln!("shard kill DRIFT: no work ever crossed the rail under the default seed");
        ok = false;
    }
    ok
}

fn report(qi: usize, leg: &str, errs: &[String], detail: impl Fn() -> String) -> bool {
    if errs.is_empty() {
        println!("shard q{qi} {leg}: OK ({})", detail());
        true
    } else {
        for e in errs {
            eprintln!("shard q{qi} {leg} DRIFT: {e}");
        }
        false
    }
}

/// One scaling measurement: bottleneck cycles of a sharded triangle count.
fn measure(g: &Graph, shards: usize, work_aware: bool, cross_steal: bool) -> (u64, u64, f64) {
    let mut cfg = EngineConfig::default()
        .with_grid(GridConfig {
            num_blocks: 1,
            warps_per_block: 2,
            shared_mem_per_block: SharedBudget::RTX3090_BYTES,
        })
        .with_shard(true)
        .with_shards(shards);
    cfg.shard.work_aware = work_aware;
    cfg.shard.cross_steal = cross_steal;
    let t = Instant::now();
    let out = Engine::new(cfg)
        .run_sharded(g, &catalog::triangle())
        .expect("scaling launch");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    (out.outcome.count, out.outcome.simulated_cycles(), wall_ms)
}

/// 1/2/4/8/16-shard efficiency sweep on a 256-vertex skewed fixture,
/// recorded to `out_path`. Bottleneck time is `simulated_cycles()` — the
/// slowest warp of any shard — so the curve measures load balance, not
/// host scheduling noise.
fn run_scaling(out_path: &str) -> bool {
    let g = gen::preferential_attachment(256, 4, 9).degree_ordered();
    let weights = stats::level0_weights(&g);
    let base_count = measure(&g, 1, true, true).0;
    let mut ok = base_count > 0;
    let base_cycles = measure(&g, 1, false, false).1;
    let mut rows = Vec::new();
    let mut aware_16 = 0u64;
    let mut contig_16 = 0u64;
    for shards in [1usize, 2, 4, 8, 16] {
        // Pure partition comparison: cross-steal off, so the bottleneck
        // is exactly the heaviest shard's work.
        let (c_contig, cyc_contig, _) = measure(&g, shards, false, false);
        let (c_aware, cyc_aware, _) = measure(&g, shards, true, false);
        // Shipping config: work-aware + cross-steal, for the efficiency
        // curve the rail actually delivers.
        let (c_ship, cyc_ship, wall_ms) = measure(&g, shards, true, true);
        for (label, c) in [
            ("contiguous", c_contig),
            ("aware", c_aware),
            ("ship", c_ship),
        ] {
            if c != base_count {
                eprintln!("scaling x{shards} {label}: count {c} != baseline {base_count}");
                ok = false;
            }
        }
        if shards == 16 {
            aware_16 = cyc_aware;
            contig_16 = cyc_contig;
        }
        let spread = |p: &ShardPlan| {
            let loads = p.shard_loads(&weights);
            let max = loads.iter().copied().max().unwrap_or(0);
            let mean = loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64;
            max as f64 / mean.max(1.0)
        };
        let efficiency = base_cycles as f64 / (shards as f64 * cyc_aware as f64);
        println!(
            "scaling x{shards}: contiguous {cyc_contig} cyc, work-aware {cyc_aware} cyc, \
             +steal {cyc_ship} cyc, efficiency {efficiency:.3}, wall {wall_ms:.0}ms"
        );
        rows.push(format!(
            "    {{ \"shards\": {shards}, \"bottleneck_cycles\": {{ \"contiguous\": {cyc_contig}, \
             \"work_aware\": {cyc_aware}, \"work_aware_steal\": {cyc_ship} }}, \
             \"efficiency_work_aware\": {efficiency:.4}, \
             \"load_spread\": {{ \"contiguous\": {:.3}, \"work_aware\": {:.3} }}, \
             \"wall_ms\": {wall_ms:.1} }}",
            spread(&ShardPlan::contiguous(&g, shards)),
            spread(&ShardPlan::work_aware(&g, shards)),
        ));
    }
    if aware_16 >= contig_16 {
        eprintln!(
            "scaling: work-aware bottleneck {aware_16} >= contiguous {contig_16} at 16 shards \
             — the LPT split stopped paying for itself"
        );
        ok = false;
    }
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"unix_time\": {unix},\n  \
         \"config\": {{\n    \"fixture\": \"preferential_attachment(256, 4, 9) degree-ordered\",\n    \
         \"pattern\": \"triangle\",\n    \"grid_per_shard\": \"1 block x 2 warps\",\n    \
         \"note\": \"bottleneck_cycles = max per-warp simt instructions over every shard; cross-steal off isolates the partitioner, work_aware_steal is the shipping config\"\n  }},\n  \
         \"results\": {{\n    \"count\": {base_count},\n    \"baseline_cycles\": {base_cycles},\n    \
         \"curve\": [\n{curve}\n    ]\n  }}\n}}\n",
        unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        curve = rows.join(",\n"),
    );
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("scaling: failed to write {out_path}: {e}");
        return false;
    }
    println!("scaling: wrote {out_path}");
    ok
}
