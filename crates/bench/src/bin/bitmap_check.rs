//! CI smoke gate for hub-bitmap routing: runs q1/q6 on the hotpath
//! graph, the 5-clique query on the dense ER clique workload, and the
//! same query on `K_32` (whose `C(32, 5)` count is closed-form), once
//! with bitmap routing **off** and once **on**, and fails (exit 1)
//! unless
//!
//! * the off legs reproduce the pinned behaviour exactly — for q1/q6 the
//!   full [`stmatch_bench::hotpath::GOLDEN`] row (count, instructions,
//!   utilization: the attached-but-disabled index must be invisible), for
//!   the clique legs their pinned/analytic counts — with zero bitmap
//!   counters;
//! * the on legs produce the identical match counts;
//! * the on legs route through the bitmap paths exactly where expected:
//!   nonzero probe or merge counters on every workload with
//!   hub-operand set ops (a silent fallback to the classic ladder would
//!   pass the count checks while benchmarking nothing), and zero on q1,
//!   whose 5-path plan is pure neighbor materializations with no
//!   intersect/difference ops for a bitmap to serve.
//!
//! The final `bitmap_check totals:` line is grepped by `ci.sh`'s
//! `smoke:bitmap` phase.

use stmatch_bench::hotpath;
use stmatch_core::Engine;
use stmatch_graph::gen;

fn main() {
    let pa = hotpath::graph().with_hub_bitmap(hotpath::BITMAP_THRESHOLD);
    let er = hotpath::clique_graph().with_hub_bitmap(hotpath::BITMAP_THRESHOLD);
    let k32 = gen::complete(32).with_hub_bitmap(hotpath::BITMAP_THRESHOLD);
    // (name, graph, query, pinned count (None = GOLDEN row), bitmap
    // activity expected on the on leg)
    let suite: [(&str, &stmatch_graph::Graph, usize, Option<u64>, bool); 4] = [
        ("q1", &pa, 1, None, false),
        ("q6", &pa, 6, None, true),
        ("clique", &er, 8, Some(hotpath::CLIQUE_COUNT), true),
        ("k32", &k32, 8, Some(201_376), true), // C(32, 5)
    ];

    let mut failed = false;
    let mut fail = |msg: String| {
        eprintln!("bitmap_check DRIFT: {msg}");
        failed = true;
    };
    let (mut probe_words, mut merge_words, mut merge_waves) = (0u64, 0u64, 0u64);
    for (name, g, qi, pinned, expect_bitmap) in suite {
        let q = hotpath::query(qi);

        let off = Engine::new(hotpath::config()).run(g, &q).unwrap();
        match pinned {
            // PA workloads: the disabled leg must be bit-identical to the
            // pre-bitmap GOLDEN row, index attached or not.
            None => {
                if let Err(e) = hotpath::check(qi, &off) {
                    fail(format!("{name} off-leg: {e}"));
                }
            }
            Some(want) if off.count != want => {
                fail(format!("{name} off-leg count {} != {want}", off.count));
            }
            Some(_) => {}
        }
        let t = off.metrics.total();
        if t.bitmap_probe_words + t.bitmap_merge_words + t.bitmap_merge_waves != 0 {
            fail(format!("{name} off-leg moved bitmap counters"));
        }

        let on = Engine::new(hotpath::config().with_hub_bitmap(true))
            .run(g, &q)
            .unwrap();
        if on.count != off.count {
            fail(format!(
                "{name} on-leg count {} != off-leg {}",
                on.count, off.count
            ));
        }
        let t = on.metrics.total();
        let routed = t.bitmap_probe_words + t.bitmap_merge_words > 0;
        if expect_bitmap && !routed {
            fail(format!("{name} on-leg never took a bitmap path"));
        }
        if !expect_bitmap && routed {
            fail(format!(
                "{name} on-leg took a bitmap path (plan has no set ops)"
            ));
        }
        probe_words += t.bitmap_probe_words;
        merge_words += t.bitmap_merge_words;
        merge_waves += t.bitmap_merge_waves;
        println!(
            "bitmap {name}: count={} off_instr={} on_instr={} probe_words={} \
             merge_words={} merge_waves={}",
            on.count,
            off.total_instructions(),
            on.total_instructions(),
            t.bitmap_probe_words,
            t.bitmap_merge_words,
            t.bitmap_merge_waves
        );
    }
    println!(
        "bitmap_check totals: probe_words={probe_words} merge_words={merge_words} \
         merge_waves={merge_waves}"
    );
    if failed {
        std::process::exit(1);
    }
}
