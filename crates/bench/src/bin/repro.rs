//! The reproduction driver: regenerates every table and figure of the
//! paper on the dataset stand-ins.
//!
//! ```text
//! repro [--timeout SECS] [--full] [--queries LIST] <experiment>...
//!
//! experiments:
//!   table1      dataset statistics (Table I)
//!   table2a     unlabeled edge-induced matching (Table II a)
//!   table2b     unlabeled vertex-induced matching (Table II b)
//!   table3      labeled edge-induced matching (Table III)
//!   fig11       multi-device scaling
//!   fig12       work-stealing / unrolling ablation
//!   fig13       lane utilization vs unroll size
//!   codemotion  §VIII-C code-motion ablation
//!   sweep       StopLevel/DetectLevel sensitivity
//!   all         everything above
//!
//! flags:
//!   --timeout SECS   per-cell wall-clock budget (default 2; '-' cells)
//!   --full           run the complete q1..q24 list instead of the quick
//!                    subset (expect many '-' cells at stand-in scale)
//!   --queries LIST   comma-separated query indices, e.g. 1,8,16,24
//! ```

use std::time::Duration;
use stmatch_bench::harness::RunParams;
use stmatch_bench::{figures, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = RunParams::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut queries: Option<Vec<usize>> = None;
    let mut full = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timeout" => {
                let secs: u64 = it
                    .next()
                    .expect("--timeout needs seconds")
                    .parse()
                    .expect("--timeout takes an integer");
                params.timeout = Duration::from_secs(secs);
            }
            "--full" => full = true,
            "--queries" => {
                let list = it.next().expect("--queries needs a list");
                queries = Some(
                    list.split(',')
                        .map(|s| s.trim().parse().expect("query index"))
                        .collect(),
                );
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                print_help();
                std::process::exit(2);
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    if experiments.is_empty() {
        print_help();
        return;
    }
    let queries = queries.unwrap_or_else(|| {
        if full {
            tables::all_queries()
        } else {
            tables::quick_queries()
        }
    });
    let size6: Vec<usize> = queries
        .iter()
        .copied()
        .filter(|q| (9..=16).contains(q))
        .collect();
    let size6 = if size6.is_empty() {
        vec![11, 14, 15, 16]
    } else {
        size6
    };

    println!(
        "repro: timeout {:?}/cell, grid {}x{} warps, queries {:?}",
        params.timeout, params.grid.num_blocks, params.grid.warps_per_block, queries
    );
    println!("('-' = exceeded budget, like the paper's 8h timeouts; 'x' = device OOM)");

    for exp in &experiments {
        match exp.as_str() {
            "table1" => tables::table1(),
            "table2a" => tables::table2a(&params, &queries),
            "table2b" => tables::table2b(&params, &queries),
            "table3" => tables::table3(&params, &queries),
            "fig11" => figures::fig11(&params, &size6),
            "fig12" => figures::fig12(&params, &size6),
            "fig13" => figures::fig13(&params, &size6),
            "codemotion" => figures::codemotion(&params, &size6),
            "sweep" => figures::sweep(&params),
            "all" => {
                tables::table1();
                tables::table2a(&params, &queries);
                tables::table2b(&params, &queries);
                tables::table3(&params, &queries);
                figures::fig11(&params, &size6);
                figures::fig12(&params, &size6);
                figures::fig13(&params, &size6);
                figures::codemotion(&params, &size6);
                figures::sweep(&params);
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                print_help();
                std::process::exit(2);
            }
        }
    }
}

fn print_help() {
    println!(
        "usage: repro [--timeout SECS] [--full] [--queries LIST] <experiment>...\n\
         experiments: table1 table2a table2b table3 fig11 fig12 fig13 codemotion sweep all"
    );
}
