//! Regeneration of the paper's tables.

use crate::harness::{self, geomean, print_table, Cell, QueryPlans, RunParams};
use stmatch_graph::datasets::Dataset;
use stmatch_graph::{Graph, GraphStats};
use stmatch_pattern::{catalog, Pattern};

/// Number of labels for the labeled experiments. The paper assigns ten
/// labels to graphs whose average degrees are 28–76; our stand-ins are
/// 10–100x smaller with average degrees 8–40, so ten labels would leave
/// fewer than one candidate per level and the labeled runs would measure
/// only constant overheads. Four labels preserve the paper's per-level
/// selectivity (avg degree / labels ≈ 3–8 candidates surviving per level).
pub const NUM_LABELS: u32 = 4;

/// Seed for label assignment.
pub const LABEL_SEED: u64 = 2022;

/// Table I: dataset statistics for the stand-ins.
pub fn table1() {
    let rows: Vec<Vec<String>> = Dataset::ALL
        .iter()
        .map(|d| {
            let s = GraphStats::of(&d.load());
            vec![
                s.name.clone(),
                s.num_vertices.to_string(),
                s.num_edges.to_string(),
                s.max_degree.to_string(),
                s.median_degree.to_string(),
                format!("{:.4}%", s.frac_above_threshold * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table I: graph datasets (synthetic stand-ins)",
        &[
            "graph", "#nodes", "#edges", "max deg", "med deg", "deg>4096",
        ],
        &rows,
    );
}

/// Table II(a): unlabeled edge-induced matching — STMatch vs cuTS-like vs
/// Dryadic-like on the WikiVote/Enron/MiCo stand-ins.
pub fn table2a(p: &RunParams, queries: &[usize]) {
    for ds in Dataset::TABLE2 {
        let g = ds.load();
        let mut rows = Vec::new();
        let mut st_vs_cuts = Vec::new();
        let mut st_vs_dry_ms = Vec::new();
        for &qi in queries {
            let q = catalog::paper_query(qi);
            let plans = QueryPlans::compile(&q, false);
            let st = harness::run_stmatch(&g, &plans, false, p);
            let cu = harness::run_cuts(&g, &plans, false, p);
            let dr = harness::run_dryadic(&g, &plans, false, p);
            check_counts(&g, qi, &[("stmatch", &st), ("cuts", &cu), ("dryadic", &dr)]);
            st_vs_cuts.push(cu.sim_speedup_over(&st));
            st_vs_dry_ms.push(dr.est_speedup_over(&st));
            rows.push(vec![
                format!("q{qi}"),
                st.est_text(),
                st.sim_text(),
                cu.est_text(),
                cu.sim_text(),
                dr.ms_text(),
                dr.est_text(),
                fmt_opt(cu.sim_speedup_over(&st)),
                fmt_opt(dr.est_speedup_over(&st)),
                st.count.to_string(),
            ]);
        }
        print_table(
            &format!("Table II(a): unlabeled edge-induced, {}", ds.name()),
            &[
                "query",
                "STM est-ms",
                "STM Mcyc",
                "cuTS est-ms",
                "cuTS Mcyc",
                "Dry ms(1c)",
                "Dry est-ms",
                "vs cuTS x",
                "vs Dry x",
                "count",
            ],
            &rows,
        );
        summary(&format!("{} STMatch vs cuTS (sim)", ds.name()), st_vs_cuts);
        summary(
            &format!("{} STMatch vs Dryadic (est)", ds.name()),
            st_vs_dry_ms,
        );
    }
}

/// Table II(b): unlabeled vertex-induced matching — STMatch vs Dryadic.
pub fn table2b(p: &RunParams, queries: &[usize]) {
    for ds in Dataset::TABLE2 {
        let g = ds.load();
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for &qi in queries {
            let q = catalog::paper_query(qi);
            let plans = QueryPlans::compile(&q, true);
            let st = harness::run_stmatch(&g, &plans, true, p);
            let dr = harness::run_dryadic(&g, &plans, true, p);
            check_counts(&g, qi, &[("stmatch", &st), ("dryadic", &dr)]);
            speedups.push(dr.est_speedup_over(&st));
            rows.push(vec![
                format!("q{qi}"),
                st.est_text(),
                st.sim_text(),
                dr.ms_text(),
                dr.est_text(),
                fmt_opt(dr.est_speedup_over(&st)),
                st.count.to_string(),
            ]);
        }
        print_table(
            &format!("Table II(b): unlabeled vertex-induced, {}", ds.name()),
            &[
                "query",
                "STM est-ms",
                "STM Mcyc",
                "Dry ms(1c)",
                "Dry est-ms",
                "vs Dry x",
                "count",
            ],
            &rows,
        );
        summary(&format!("{} STMatch vs Dryadic (est)", ds.name()), speedups);
    }
}

/// Table III: labeled edge-induced matching — STMatch vs GSI-like vs
/// Dryadic-like, ten random labels on data and query graphs.
pub fn table3(p: &RunParams, queries: &[usize]) {
    let datasets = [
        Dataset::WikiVote,
        Dataset::Enron,
        Dataset::Youtube,
        Dataset::MiCo,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Friendster,
    ];
    for ds in datasets {
        let g = ds.load_labeled(NUM_LABELS, LABEL_SEED);
        let mut rows = Vec::new();
        let mut st_vs_gsi = Vec::new();
        let mut st_vs_dry = Vec::new();
        for &qi in queries {
            let q = catalog::paper_query(qi).with_random_labels(NUM_LABELS, qi as u64);
            let plans = QueryPlans::compile(&q, false);
            let st = harness::run_stmatch(&g, &plans, false, p);
            let gs = harness::run_gsi(&g, &plans, false, p);
            let dr = harness::run_dryadic(&g, &plans, false, p);
            check_counts(&g, qi, &[("stmatch", &st), ("gsi", &gs), ("dryadic", &dr)]);
            st_vs_gsi.push(gs.sim_speedup_over(&st));
            st_vs_dry.push(dr.est_speedup_over(&st));
            rows.push(vec![
                format!("q{qi}"),
                st.est_text(),
                st.sim_text(),
                gs.est_text(),
                gs.sim_text(),
                dr.ms_text(),
                dr.est_text(),
                fmt_opt(gs.sim_speedup_over(&st)),
                fmt_opt(dr.est_speedup_over(&st)),
                st.count.to_string(),
            ]);
        }
        print_table(
            &format!("Table III: labeled edge-induced, {}", ds.name()),
            &[
                "query",
                "STM est-ms",
                "STM Mcyc",
                "GSI est-ms",
                "GSI Mcyc",
                "Dry ms(1c)",
                "Dry est-ms",
                "vs GSI x",
                "vs Dry x",
                "count",
            ],
            &rows,
        );
        summary(&format!("{} STMatch vs GSI (sim)", ds.name()), st_vs_gsi);
        summary(
            &format!("{} STMatch vs Dryadic (est)", ds.name()),
            st_vs_dry,
        );
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into())
}

fn summary(what: &str, ratios: Vec<Option<f64>>) {
    match geomean(ratios.into_iter()) {
        Some(g) => println!("  geomean speedup [{what}]: {g:.2}x"),
        None => println!("  geomean speedup [{what}]: n/a (no commonly-completed cells)"),
    }
}

/// Asserts that every completed system agrees on the count; timed-out or
/// OOM cells are exempt (their counts are partial).
fn check_counts(g: &Graph, qi: usize, cells: &[(&str, &Cell)]) {
    use crate::harness::CellStatus::Done;
    let done: Vec<_> = cells.iter().filter(|(_, c)| c.status == Done).collect();
    if let Some((first_name, first)) = done.first() {
        for (name, c) in &done[1..] {
            assert_eq!(
                c.count,
                first.count,
                "count mismatch on {} q{qi}: {name}={} vs {first_name}={}",
                g.name(),
                c.count,
                first.count
            );
        }
    }
}

/// The paper's full query list (q1..q24).
pub fn all_queries() -> Vec<usize> {
    (1..=24).collect()
}

/// A trimmed query list for quick runs: the size-5 set plus the dense
/// size-6/7 queries that finish fast at stand-in scale.
pub fn quick_queries() -> Vec<usize> {
    vec![1, 2, 3, 4, 5, 6, 7, 8, 11, 14, 15, 16, 22, 23, 24]
}

/// Self-check helper used by the integration tests: runs one cell of every
/// table flavour at tiny scale.
pub fn smoke(p: &RunParams) -> (Cell, Cell, Cell, Cell) {
    let g = Dataset::WikiVote.load();
    let q: Pattern = catalog::paper_query(8);
    let plans = QueryPlans::compile(&q, false);
    let st = harness::run_stmatch(&g, &plans, false, p);
    let cu = harness::run_cuts(&g, &plans, false, p);
    let gl = Dataset::WikiVote.load_labeled(NUM_LABELS, LABEL_SEED);
    let lq = catalog::paper_query(8).with_random_labels(NUM_LABELS, 8);
    let lplans = QueryPlans::compile(&lq, false);
    let gs = harness::run_gsi(&gl, &lplans, false, p);
    let dr = harness::run_dryadic(&g, &plans, false, p);
    (st, cu, gs, dr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::CellStatus;

    #[test]
    fn smoke_all_tables() {
        let p = RunParams::default();
        let (st, cu, _gs, dr) = smoke(&p);
        assert_eq!(st.status, CellStatus::Done);
        assert_eq!(st.count, cu.count);
        assert_eq!(st.count, dr.count);
    }

    #[test]
    fn query_lists_are_sane() {
        assert_eq!(all_queries().len(), 24);
        assert!(quick_queries().iter().all(|q| (1..=24).contains(q)));
    }
}
