//! Benchmark harness regenerating every table and figure of the paper.
//!
//! The `repro` binary (`cargo run --release -p stmatch-bench --bin repro`)
//! drives the modules here:
//!
//! * [`harness`] — per-cell runners for the four systems with a shared
//!   wall-clock budget, and the cell/table formatting ('−' for timeout,
//!   '×' for device OOM, exactly like the paper's tables).
//! * [`tables`] — Table I (dataset statistics), Table II(a) unlabeled
//!   edge-induced, Table II(b) unlabeled vertex-induced, Table III labeled.
//! * [`figures`] — Fig. 11 (multi-device scaling), Fig. 12 (work-stealing /
//!   unrolling ablation), Fig. 13 (lane utilization vs unroll size), the
//!   §VIII-C code-motion ablation, and a StopLevel/DetectLevel sweep.
//!
//! Because the substrate is a software-simulated GPU on a host CPU,
//! cross-system comparisons use *simulated cycles* (slowest-warp SIMT
//! instructions, plus launch overhead for the level-synchronous baselines)
//! alongside wall time. See DESIGN.md §1 and EXPERIMENTS.md.

pub mod figures;
pub mod harness;
pub mod hotpath;
pub mod tables;
