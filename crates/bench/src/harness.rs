//! Per-cell system runners and table formatting.

use std::time::Duration;
use stmatch_baselines::{cuts, dryadic, gsi};
use stmatch_core::{Engine, EngineConfig};
use stmatch_gpusim::GridConfig;
use stmatch_graph::Graph;
use stmatch_pattern::{MatchPlan, Pattern, PlanOptions};

/// Warp-issue rate of the paper's RTX 3090 in GHz. Converts simulated
/// cycles (slowest-warp SIMT instructions) into the estimated milliseconds
/// a real GPU would spend issuing that warp's instruction stream.
pub const GPU_GHZ: f64 = 1.4;

/// Core count of the paper's CPU platform (dual Xeon Gold 6226R). Scales
/// the CPU baseline's measured wall time to an estimated all-cores time
/// assuming perfect scaling — generous to the baseline.
pub const PAPER_CPU_CORES: f64 = 32.0;

/// How a cell finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Completed within budget.
    Done,
    /// Hit the wall-clock budget (paper's '−').
    TimedOut,
    /// Exhausted device memory (paper's '×').
    Oom,
}

/// One table cell: a (system, graph, query) measurement.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Wall-clock milliseconds spent (up to the budget).
    pub ms: f64,
    /// Simulated mega-cycles (slowest warp; `None` for CPU systems).
    pub sim_mcycles: Option<f64>,
    /// Matches found (partial when not `Done`).
    pub count: u64,
    pub status: CellStatus,
    /// Estimated milliseconds at paper-scale hardware: simulated cycles at
    /// [`GPU_GHZ`] for the simulated-GPU systems, measured wall time scaled
    /// to [`PAPER_CPU_CORES`] for the CPU baseline. See EXPERIMENTS.md for
    /// the normalization rationale.
    pub est_ms: Option<f64>,
}

impl Cell {
    /// Paper-style cell text: milliseconds, '−' on timeout, '×' on OOM.
    pub fn ms_text(&self) -> String {
        match self.status {
            CellStatus::Done => format!("{:.1}", self.ms),
            CellStatus::TimedOut => "-".to_string(),
            CellStatus::Oom => "x".to_string(),
        }
    }

    /// Simulated-cycle cell text (Mcycles).
    pub fn sim_text(&self) -> String {
        match (self.status, self.sim_mcycles) {
            (CellStatus::Oom, _) => "x".to_string(),
            (CellStatus::TimedOut, _) => "-".to_string(),
            (_, Some(mc)) => format!("{mc:.2}"),
            (_, None) => "n/a".to_string(),
        }
    }

    /// Ratio of this cell's simulated cycles over another's (speedup of
    /// `other` over `self` in simulated time). `None` unless both are done.
    pub fn sim_speedup_over(&self, other: &Cell) -> Option<f64> {
        if self.status != CellStatus::Done || other.status != CellStatus::Done {
            return None;
        }
        Some(self.sim_mcycles? / other.sim_mcycles?)
    }

    /// Estimated-time cell text.
    pub fn est_text(&self) -> String {
        match (self.status, self.est_ms) {
            (CellStatus::Oom, _) => "x".to_string(),
            (CellStatus::TimedOut, _) => "-".to_string(),
            (_, Some(ms)) => format!("{ms:.2}"),
            (_, None) => "n/a".to_string(),
        }
    }

    /// Speedup of `other` over `self` in estimated paper-scale time.
    pub fn est_speedup_over(&self, other: &Cell) -> Option<f64> {
        if self.status != CellStatus::Done || other.status != CellStatus::Done {
            return None;
        }
        let (a, b) = (self.est_ms?, other.est_ms?);
        if b <= 0.0 {
            return None;
        }
        Some(a / b)
    }
}

/// Shared run parameters for one experiment invocation.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// Per-cell wall-clock budget.
    pub timeout: Duration,
    /// Grid geometry for the simulated-GPU systems.
    pub grid: GridConfig,
    /// Device-memory budget for the subgraph-centric baselines.
    pub baseline_memory: usize,
    /// Threads for the CPU baseline.
    pub cpu_threads: usize,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            timeout: Duration::from_secs(2),
            grid: GridConfig {
                num_blocks: 4,
                warps_per_block: 4,
                shared_mem_per_block: 100 * 1024,
            },
            baseline_memory: 64 << 20,
            cpu_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Compiles the plan variants one query needs (shared across systems, as
/// the paper uses the same matching order for all systems).
pub struct QueryPlans {
    /// Code-motion plan for STMatch and Dryadic.
    pub motion: MatchPlan,
    /// Code-motion-free plan for the subgraph-centric baselines.
    pub naive: MatchPlan,
}

impl QueryPlans {
    pub fn compile(pattern: &Pattern, induced: bool) -> QueryPlans {
        QueryPlans {
            motion: MatchPlan::compile(
                pattern,
                PlanOptions {
                    induced,
                    code_motion: true,
                    symmetry_breaking: true,
                },
            ),
            naive: MatchPlan::compile(
                pattern,
                PlanOptions {
                    induced,
                    code_motion: false,
                    symmetry_breaking: true,
                },
            ),
        }
    }
}

/// Runs STMatch (full configuration) on one cell.
pub fn run_stmatch(g: &Graph, plans: &QueryPlans, induced: bool, p: &RunParams) -> Cell {
    run_stmatch_cfg(g, plans, default_stmatch_cfg(induced, p), p)
}

/// The full-system STMatch configuration used by the tables.
pub fn default_stmatch_cfg(induced: bool, p: &RunParams) -> EngineConfig {
    let mut cfg = EngineConfig::full().with_grid(p.grid);
    cfg.induced = induced;
    cfg
}

/// Runs STMatch with an explicit configuration (used by the ablations).
pub fn run_stmatch_cfg(g: &Graph, plans: &QueryPlans, cfg: EngineConfig, p: &RunParams) -> Cell {
    let engine = Engine::new(cfg).with_timeout(p.timeout);
    let plan = if cfg.code_motion {
        &plans.motion
    } else {
        &plans.naive
    };
    match engine.run_plan(g, plan) {
        Ok(out) => {
            let mc = out.simulated_cycles() as f64 / 1e6;
            Cell {
                ms: out.elapsed_ms(),
                sim_mcycles: Some(mc),
                count: out.count,
                status: if out.timed_out {
                    CellStatus::TimedOut
                } else {
                    CellStatus::Done
                },
                est_ms: Some(mc / GPU_GHZ),
            }
        }
        Err(_) => Cell {
            ms: 0.0,
            sim_mcycles: None,
            count: 0,
            status: CellStatus::Oom,
            est_ms: None,
        },
    }
}

/// Runs the cuTS-like baseline on one cell.
pub fn run_cuts(g: &Graph, plans: &QueryPlans, induced: bool, p: &RunParams) -> Cell {
    let cfg = cuts::CutsConfig {
        grid: p.grid,
        memory_limit: p.baseline_memory,
        induced,
        symmetry_breaking: true,
        batch_roots: 4096,
        timeout: Some(p.timeout),
    };
    match cuts::run_plan(g, &plans.naive, cfg) {
        Ok(out) => {
            let mc = out.simulated_cycles as f64 / 1e6;
            Cell {
                ms: out.elapsed_ms(),
                sim_mcycles: Some(mc),
                count: out.count,
                status: if out.timed_out {
                    CellStatus::TimedOut
                } else {
                    CellStatus::Done
                },
                est_ms: Some(mc / GPU_GHZ),
            }
        }
        Err(_) => Cell {
            ms: 0.0,
            sim_mcycles: None,
            count: 0,
            status: CellStatus::Oom,
            est_ms: None,
        },
    }
}

/// Runs the GSI-like baseline on one cell.
pub fn run_gsi(g: &Graph, plans: &QueryPlans, induced: bool, p: &RunParams) -> Cell {
    let cfg = gsi::GsiConfig {
        grid: p.grid,
        memory_limit: p.baseline_memory,
        induced,
        symmetry_breaking: true,
        timeout: Some(p.timeout),
    };
    match gsi::run_plan(g, &plans.naive, cfg) {
        Ok(out) => {
            let mc = out.simulated_cycles as f64 / 1e6;
            Cell {
                ms: out.elapsed_ms(),
                sim_mcycles: Some(mc),
                count: out.count,
                status: if out.timed_out {
                    CellStatus::TimedOut
                } else {
                    CellStatus::Done
                },
                est_ms: Some(mc / GPU_GHZ),
            }
        }
        Err(_) => Cell {
            ms: 0.0,
            sim_mcycles: None,
            count: 0,
            status: CellStatus::Oom,
            est_ms: None,
        },
    }
}

/// Runs the Dryadic-like CPU baseline on one cell.
pub fn run_dryadic(g: &Graph, plans: &QueryPlans, induced: bool, p: &RunParams) -> Cell {
    let cfg = dryadic::DryadicConfig {
        threads: p.cpu_threads,
        induced,
        code_motion: true,
        symmetry_breaking: true,
        chunk_size: 16,
        timeout: Some(p.timeout),
    };
    let out = dryadic::run_plan(g, &plans.motion, cfg);
    Cell {
        ms: out.elapsed_ms(),
        sim_mcycles: None,
        count: out.count,
        status: if out.timed_out {
            CellStatus::TimedOut
        } else {
            CellStatus::Done
        },
        est_ms: Some(out.elapsed_ms() * p.cpu_threads as f64 / PAPER_CPU_CORES),
    }
}

/// Prints an aligned text table: a header and rows of equal arity.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<&str>| {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}"));
        }
        line
    };
    println!("{}", fmt_row(header.to_vec()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row.iter().map(|s| s.as_str()).collect()));
    }
}

/// Geometric mean of an iterator of ratios, ignoring `None`s. `None` when
/// nothing survives.
pub fn geomean(ratios: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let vals: Vec<f64> = ratios.flatten().filter(|r| *r > 0.0).collect();
    if vals.is_empty() {
        None
    } else {
        Some((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn params() -> RunParams {
        RunParams {
            timeout: Duration::from_secs(5),
            grid: GridConfig {
                num_blocks: 2,
                warps_per_block: 2,
                shared_mem_per_block: 100 * 1024,
            },
            ..RunParams::default()
        }
    }

    #[test]
    fn all_systems_agree_on_one_cell() {
        let g = gen::erdos_renyi(40, 150, 4);
        let q = catalog::paper_query(6);
        let plans = QueryPlans::compile(&q, false);
        let p = params();
        let st = run_stmatch(&g, &plans, false, &p);
        let cu = run_cuts(&g, &plans, false, &p);
        let gs = run_gsi(&g, &plans, false, &p);
        let dr = run_dryadic(&g, &plans, false, &p);
        assert_eq!(st.status, CellStatus::Done);
        assert_eq!(st.count, cu.count);
        assert_eq!(st.count, gs.count);
        assert_eq!(st.count, dr.count);
    }

    #[test]
    fn timeout_cells_render_dash() {
        let c = Cell {
            ms: 1.0,
            sim_mcycles: Some(1.0),
            count: 5,
            status: CellStatus::TimedOut,
            est_ms: Some(1.0),
        };
        assert_eq!(c.ms_text(), "-");
        assert_eq!(c.sim_text(), "-");
        let o = Cell {
            ms: 0.0,
            sim_mcycles: None,
            count: 0,
            status: CellStatus::Oom,
            est_ms: None,
        };
        assert_eq!(o.ms_text(), "x");
    }

    #[test]
    fn speedup_requires_both_done() {
        let done = Cell {
            ms: 1.0,
            sim_mcycles: Some(8.0),
            count: 1,
            status: CellStatus::Done,
            est_ms: Some(8.0),
        };
        let fast = Cell {
            ms: 1.0,
            sim_mcycles: Some(2.0),
            count: 1,
            status: CellStatus::Done,
            est_ms: Some(2.0),
        };
        assert_eq!(done.sim_speedup_over(&fast), Some(4.0));
        let timeout = Cell {
            status: CellStatus::TimedOut,
            ..fast.clone()
        };
        assert_eq!(done.sim_speedup_over(&timeout), None);
    }

    #[test]
    fn geomean_basics() {
        assert!(geomean(std::iter::empty()).is_none());
        let g = geomean([Some(2.0), Some(8.0), None].into_iter()).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }
}
