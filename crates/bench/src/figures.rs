//! Regeneration of the paper's figures and ablations.

use crate::harness::{self, print_table, QueryPlans, RunParams};
use crate::tables::{LABEL_SEED, NUM_LABELS};

/// Label count for the ablation figures. Fig. 12's scheduling effects only
/// show when per-query work dwarfs the fixed launch/steal overheads; at
/// stand-in scale the tables' 4-label setting leaves the size-6 queries
/// too light (< 0.1 Mcycles), so the ablations use 2 labels — still
/// labeled matching, with enough surviving candidates per level for the
/// load-balance effects the figure is about.
pub const ABLATION_LABELS: u32 = 2;
use stmatch_core::{multi, Engine, EngineConfig};
use stmatch_graph::datasets::Dataset;
use stmatch_pattern::catalog;

/// Fig. 11: multi-device scaling. Labeled and unlabeled size-6 queries on
/// the LiveJournal/Orkut/MiCo stand-ins, 1/2/4 devices; speedup is the
/// single-device simulated time over the bottleneck device's simulated
/// time.
pub fn fig11(p: &RunParams, queries: &[usize]) {
    for labeled in [false, true] {
        for ds in [Dataset::LiveJournal, Dataset::Orkut, Dataset::MiCo] {
            let g = if labeled {
                ds.load_labeled(NUM_LABELS, LABEL_SEED)
            } else {
                ds.load()
            };
            let mut rows = Vec::new();
            for &qi in queries {
                let mut q = catalog::paper_query(qi);
                if labeled {
                    q = q.with_random_labels(NUM_LABELS, qi as u64);
                }
                let cfg = harness::default_stmatch_cfg(false, p);
                let engine = Engine::new(cfg).with_timeout(p.timeout);
                let mut cycles = Vec::new();
                let mut counts = Vec::new();
                let mut timed_out = false;
                for devices in [1usize, 2, 4] {
                    match multi::run_multi_device(&engine, &g, &q, devices) {
                        Ok(out) => {
                            timed_out |= out.devices.iter().any(|d| d.timed_out);
                            cycles.push(out.simulated_cycles());
                            counts.push(out.count);
                        }
                        Err(_) => {
                            cycles.push(0);
                            counts.push(0);
                        }
                    }
                }
                if timed_out {
                    rows.push(vec![format!("q{qi}"), "-".into(), "-".into(), "-".into()]);
                    continue;
                }
                assert!(
                    counts.windows(2).all(|w| w[0] == w[1]),
                    "device partitioning changed the count for q{qi}"
                );
                let base = cycles[0] as f64;
                rows.push(vec![
                    format!("q{qi}"),
                    "1.00".into(),
                    format!("{:.2}", base / cycles[1] as f64),
                    format!("{:.2}", base / cycles[2] as f64),
                ]);
            }
            print_table(
                &format!(
                    "Fig 11: multi-device speedup (simulated), {} {}",
                    ds.name(),
                    if labeled { "labeled" } else { "unlabeled" }
                ),
                &["query", "1 dev", "2 dev", "4 dev"],
                &rows,
            );
        }
    }
}

/// Fig. 12: the work-stealing / unrolling ablation on labeled size-6
/// queries. Reports simulated time per configuration, speedup over naive,
/// and the busy-fraction (occupancy) annotation the paper profiles.
pub fn fig12(p: &RunParams, queries: &[usize]) {
    let datasets = [
        Dataset::Enron,
        Dataset::Youtube,
        Dataset::MiCo,
        Dataset::LiveJournal,
    ];
    let configs: [(&str, EngineConfig); 4] = [
        ("naive", EngineConfig::naive()),
        ("localsteal", EngineConfig::local_steal_only()),
        ("local+global", EngineConfig::local_global_steal()),
        ("unroll+l+g", EngineConfig::full()),
    ];
    for ds in datasets {
        let g = ds.load_labeled(ABLATION_LABELS, LABEL_SEED);
        let mut rows = Vec::new();
        for &qi in queries {
            let q = catalog::paper_query(qi).with_random_labels(ABLATION_LABELS, qi as u64);
            let plans = QueryPlans::compile(&q, false);
            let mut row = vec![format!("q{qi}")];
            let mut naive_cycles: Option<f64> = None;
            for (name, cfg) in &configs {
                let mut cfg = cfg.with_grid(p.grid);
                cfg.induced = false;
                let cell = harness::run_stmatch_cfg(&g, &plans, cfg, p);
                let _ = name;
                match (cell.status, cell.sim_mcycles) {
                    (crate::harness::CellStatus::Done, Some(mc)) => {
                        if naive_cycles.is_none() {
                            naive_cycles = Some(mc);
                        }
                        let speedup = naive_cycles.unwrap() / mc;
                        row.push(format!("{mc:.2} ({speedup:.2}x)"));
                    }
                    _ => row.push("-".into()),
                }
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Fig 12: ablation, labeled size-6 queries, {} [Mcyc (speedup)]",
                ds.name()
            ),
            &["query", "naive", "localsteal", "local+global", "unroll+l+g"],
            &rows,
        );
    }
}

/// Fig. 13: SIMT lane utilization vs unroll size.
pub fn fig13(p: &RunParams, queries: &[usize]) {
    let ds = Dataset::Enron;
    let g = ds.load_labeled(ABLATION_LABELS, LABEL_SEED);
    let mut rows = Vec::new();
    for &qi in queries {
        let q = catalog::paper_query(qi).with_random_labels(ABLATION_LABELS, qi as u64);
        let plans = QueryPlans::compile(&q, false);
        let mut row = vec![format!("q{qi}")];
        for unroll in [1usize, 2, 4, 8] {
            let cfg = harness::default_stmatch_cfg(false, p).with_unroll(unroll);
            let engine = Engine::new(cfg).with_timeout(p.timeout);
            match engine.run_plan(&g, &plans.motion) {
                Ok(out) => row.push(format!("{:.1}%", out.metrics.lane_utilization() * 100.0)),
                Err(_) => row.push("-".into()),
            }
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Fig 13: lane utilization vs unroll size, {} labeled",
            ds.name()
        ),
        &["query", "u=1", "u=2", "u=4", "u=8"],
        &rows,
    );
}

/// §VIII-C: "If we disable code motion, the naive baseline will be about
/// 3x slower." Total SIMT instructions with and without code motion.
pub fn codemotion(p: &RunParams, queries: &[usize]) {
    let g = Dataset::Enron.load_labeled(ABLATION_LABELS, LABEL_SEED);
    let mut rows = Vec::new();
    for &qi in queries {
        let q = catalog::paper_query(qi).with_random_labels(ABLATION_LABELS, qi as u64);
        let plans = QueryPlans::compile(&q, false);
        let mut with_cfg = EngineConfig::naive().with_grid(p.grid);
        with_cfg.code_motion = true;
        let mut without_cfg = with_cfg;
        without_cfg.code_motion = false;
        let with = harness::run_stmatch_cfg(&g, &plans, with_cfg, p);
        let without = harness::run_stmatch_cfg(&g, &plans, without_cfg, p);
        let ratio = match (
            with.sim_mcycles,
            without.sim_mcycles,
            with.status,
            without.status,
        ) {
            (
                Some(a),
                Some(b),
                crate::harness::CellStatus::Done,
                crate::harness::CellStatus::Done,
            ) => {
                format!("{:.2}x", b / a)
            }
            _ => "-".into(),
        };
        rows.push(vec![
            format!("q{qi}"),
            with.sim_text(),
            without.sim_text(),
            ratio,
        ]);
    }
    print_table(
        "Code-motion ablation (naive engine, Enron-s labeled) [Mcyc]",
        &["query", "with motion", "without", "slowdown w/o"],
        &rows,
    );
}

/// Bonus ablation: sensitivity to StopLevel and DetectLevel.
pub fn sweep(p: &RunParams) {
    let g = Dataset::MiCo.load();
    let q = catalog::paper_query(16);
    let plans = QueryPlans::compile(&q, false);
    let mut rows = Vec::new();
    for stop in [1usize, 2, 3] {
        for detect in [1usize, 2] {
            if detect > stop {
                continue;
            }
            let mut cfg = EngineConfig::full().with_grid(p.grid);
            cfg.stop_level = stop;
            cfg.detect_level = detect;
            let cell = harness::run_stmatch_cfg(&g, &plans, cfg, p);
            rows.push(vec![
                stop.to_string(),
                detect.to_string(),
                cell.sim_text(),
                cell.ms_text(),
            ]);
        }
    }
    print_table(
        "StopLevel/DetectLevel sweep (q16 labeled, MiCo-s)",
        &["StopLevel", "DetectLevel", "Mcyc", "ms"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use stmatch_gpusim::GridConfig;

    fn quick() -> RunParams {
        RunParams {
            timeout: Duration::from_secs(2),
            grid: GridConfig {
                num_blocks: 2,
                warps_per_block: 2,
                shared_mem_per_block: 100 * 1024,
            },
            ..RunParams::default()
        }
    }

    #[test]
    fn fig13_runs_on_one_query() {
        fig13(&quick(), &[16]);
    }

    #[test]
    fn codemotion_runs_on_one_query() {
        codemotion(&quick(), &[16]);
    }
}
