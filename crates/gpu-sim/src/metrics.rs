//! Instrumentation: per-warp counters and grid-level aggregation.

/// Counters accumulated by one warp during a kernel.
///
/// The SIMT counters are maintained by [`crate::Warp`]'s vector primitives;
/// the steal/match counters are incremented by the matching engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarpMetrics {
    /// SIMT instructions issued (waves).
    pub simt_instructions: u64,
    /// Lane slots issued (`32 ×` waves).
    pub issued_lane_slots: u64,
    /// Lane slots that did useful work.
    pub active_lane_slots: u64,
    /// Local (intra-block) steal attempts.
    pub local_steal_attempts: u64,
    /// Successful local steals.
    pub local_steals: u64,
    /// Tasks pushed to idle blocks (global stealing, target side).
    pub global_steal_pushes: u64,
    /// Tasks received from other blocks (global stealing, stealer side).
    pub global_steal_receives: u64,
    /// Work items reclaimed from dead warps (fault recovery path).
    pub requeue_claims: u64,
    /// Chunk ranges or reclaimed payloads pulled over the cross-shard work
    /// rail from another shard (sharded execution only).
    pub shard_steal_receives: u64,
    /// Matches emitted by this warp.
    pub matches_found: u64,
    /// Hub-bitmap membership probes (one O(1) word test per streamed
    /// element routed through `BitmapProbe`).
    pub bitmap_probe_words: u64,
    /// Bitmap words streamed by word-parallel merges (`BitmapMerge` and
    /// fused bitmap chains): one per word AND/ANDN.
    pub bitmap_merge_words: u64,
    /// SIMT waves issued by word-parallel merges (32 words per wave).
    pub bitmap_merge_waves: u64,
    /// Nanoseconds spent doing useful matching work.
    pub busy_nanos: u64,
    /// Nanoseconds spent idle (spinning for work).
    pub idle_nanos: u64,
}

impl WarpMetrics {
    /// Fraction of issued lane slots that were active (Fig. 13's
    /// "thread utilization"). 1.0 when nothing was issued.
    pub fn lane_utilization(&self) -> f64 {
        if self.issued_lane_slots == 0 {
            1.0
        } else {
            self.active_lane_slots as f64 / self.issued_lane_slots as f64
        }
    }

    /// Merges another warp's counters into this one.
    pub fn merge(&mut self, other: &WarpMetrics) {
        self.simt_instructions += other.simt_instructions;
        self.issued_lane_slots += other.issued_lane_slots;
        self.active_lane_slots += other.active_lane_slots;
        self.local_steal_attempts += other.local_steal_attempts;
        self.local_steals += other.local_steals;
        self.global_steal_pushes += other.global_steal_pushes;
        self.global_steal_receives += other.global_steal_receives;
        self.requeue_claims += other.requeue_claims;
        self.shard_steal_receives += other.shard_steal_receives;
        self.matches_found += other.matches_found;
        self.bitmap_probe_words += other.bitmap_probe_words;
        self.bitmap_merge_words += other.bitmap_merge_words;
        self.bitmap_merge_waves += other.bitmap_merge_waves;
        self.busy_nanos += other.busy_nanos;
        self.idle_nanos += other.idle_nanos;
    }
}

/// Aggregated results of one grid launch.
#[derive(Clone, Debug, Default)]
pub struct GridMetrics {
    /// Per-warp counters, indexed by global warp id.
    pub warps: Vec<WarpMetrics>,
    /// Wall-clock time of the launch in nanoseconds.
    pub elapsed_nanos: u64,
    /// Number of kernel launches this metrics object covers (subgraph-
    /// centric baselines launch once per extension step).
    pub kernel_launches: u64,
    /// Warp panics contained by [`crate::Grid::launch_contained`] (0 for
    /// healthy runs and for plain [`crate::Grid::launch`]).
    pub contained_panics: u64,
}

impl GridMetrics {
    /// Sum of all warp counters.
    pub fn total(&self) -> WarpMetrics {
        let mut acc = WarpMetrics::default();
        for w in &self.warps {
            acc.merge(w);
        }
        acc
    }

    /// Grid-wide SIMT lane utilization.
    pub fn lane_utilization(&self) -> f64 {
        self.total().lane_utilization()
    }

    /// Total matches across warps.
    pub fn matches(&self) -> u64 {
        self.total().matches_found
    }

    /// Load imbalance: max warp busy time over mean warp busy time.
    /// 1.0 is perfectly balanced; large values are the outer-loop
    /// parallelization problem the paper's work stealing attacks.
    pub fn load_imbalance(&self) -> f64 {
        let busies: Vec<u64> = self.warps.iter().map(|w| w.busy_nanos).collect();
        let max = busies.iter().copied().max().unwrap_or(0);
        let sum: u64 = busies.iter().sum();
        if sum == 0 || busies.is_empty() {
            return 1.0;
        }
        let mean = sum as f64 / busies.len() as f64;
        max as f64 / mean
    }

    /// Fraction of warp time spent busy rather than spinning — the
    /// occupancy signal the paper profiles with Nsight for Fig. 12.
    pub fn busy_fraction(&self) -> f64 {
        let t = self.total();
        let denom = t.busy_nanos + t.idle_nanos;
        if denom == 0 {
            1.0
        } else {
            t.busy_nanos as f64 / denom as f64
        }
    }

    /// Merges metrics from another launch (for multi-launch baselines and
    /// multi-device runs).
    pub fn merge(&mut self, other: &GridMetrics) {
        if self.warps.len() < other.warps.len() {
            self.warps.resize(other.warps.len(), WarpMetrics::default());
        }
        for (mine, theirs) in self.warps.iter_mut().zip(&other.warps) {
            mine.merge(theirs);
        }
        self.elapsed_nanos += other.elapsed_nanos;
        self.kernel_launches += other.kernel_launches;
        self.contained_panics += other.contained_panics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp_with(busy: u64, idle: u64, active: u64, issued: u64) -> WarpMetrics {
        WarpMetrics {
            busy_nanos: busy,
            idle_nanos: idle,
            active_lane_slots: active,
            issued_lane_slots: issued,
            ..WarpMetrics::default()
        }
    }

    #[test]
    fn utilization_of_empty_metrics_is_one() {
        assert_eq!(WarpMetrics::default().lane_utilization(), 1.0);
        assert_eq!(GridMetrics::default().lane_utilization(), 1.0);
    }

    #[test]
    fn grid_totals_and_utilization() {
        let g = GridMetrics {
            warps: vec![warp_with(0, 0, 8, 32), warp_with(0, 0, 24, 32)],
            elapsed_nanos: 1,
            kernel_launches: 1,
            ..Default::default()
        };
        assert_eq!(g.total().active_lane_slots, 32);
        assert!((g.lane_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_detects_skew() {
        let balanced = GridMetrics {
            warps: vec![warp_with(100, 0, 0, 0), warp_with(100, 0, 0, 0)],
            ..Default::default()
        };
        assert!((balanced.load_imbalance() - 1.0).abs() < 1e-12);
        let skewed = GridMetrics {
            warps: vec![warp_with(300, 0, 0, 0), warp_with(100, 0, 0, 0)],
            ..Default::default()
        };
        assert!((skewed.load_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn busy_fraction() {
        let g = GridMetrics {
            warps: vec![warp_with(75, 25, 0, 0)],
            ..Default::default()
        };
        assert!((g.busy_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_bitmap_counters() {
        let mut a = WarpMetrics {
            bitmap_probe_words: 3,
            bitmap_merge_words: 10,
            bitmap_merge_waves: 1,
            ..WarpMetrics::default()
        };
        a.merge(&WarpMetrics {
            bitmap_probe_words: 7,
            bitmap_merge_words: 22,
            bitmap_merge_waves: 2,
            ..WarpMetrics::default()
        });
        assert_eq!(a.bitmap_probe_words, 10);
        assert_eq!(a.bitmap_merge_words, 32);
        assert_eq!(a.bitmap_merge_waves, 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = GridMetrics {
            warps: vec![warp_with(1, 0, 1, 32)],
            elapsed_nanos: 10,
            kernel_launches: 1,
            ..Default::default()
        };
        let b = GridMetrics {
            warps: vec![warp_with(2, 0, 3, 32), warp_with(5, 0, 0, 0)],
            elapsed_nanos: 20,
            kernel_launches: 2,
            contained_panics: 1,
        };
        a.merge(&b);
        assert_eq!(a.warps.len(), 2);
        assert_eq!(a.warps[0].busy_nanos, 3);
        assert_eq!(a.elapsed_nanos, 30);
        assert_eq!(a.kernel_launches, 3);
        assert_eq!(a.contained_panics, 1);
    }
}
