//! Memory accounting: global-memory budgets (OOM reproduction) and
//! per-block shared-memory budgets (launch-failure reproduction).

use std::sync::atomic::{AtomicUsize, Ordering};

/// A hard out-of-memory failure, as hit by the subgraph-centric baselines
/// on dense graphs (the '×' entries of Table II).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    pub requested: usize,
    pub in_use: usize,
    pub limit: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} B with {} B of {} B in use",
            self.requested, self.in_use, self.limit
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks device global-memory consumption against a hard limit.
///
/// Thread-safe: warps allocate concurrently. Peak usage is recorded so the
/// bench harness can report the memory advantage of the stack-based design
/// over materializing partial subgraphs.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: usize) -> MemoryBudget {
        MemoryBudget {
            limit,
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> MemoryBudget {
        Self::new(usize::MAX)
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Attempts to allocate `bytes`; fails when the limit would be crossed.
    pub fn try_alloc(&self, bytes: usize) -> Result<(), OutOfMemory> {
        // Relaxed everywhere: `used` is a pure quota counter — no data is
        // published under it, the CAS itself guarantees the limit is never
        // crossed, and callers that need their allocation visible to other
        // threads hand it over through a lock or thread join.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(bytes).ok_or(OutOfMemory {
                requested: bytes,
                in_use: cur,
                limit: self.limit,
            })?;
            if next > self.limit {
                return Err(OutOfMemory {
                    requested: bytes,
                    in_use: cur,
                    limit: self.limit,
                });
            }
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    // Relaxed is legitimate for `peak` because fetch_max is
                    // monotone and atomic per update: concurrent maxima
                    // cannot lose the true high-water mark, only observe it
                    // late, and `peak()` is read for reporting after the
                    // launch has joined (a real happens-before edge) — a
                    // momentarily stale read mid-run is advisory only.
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `bytes` previously allocated.
    ///
    /// Hardened against unpaired releases: a plain `fetch_sub` would wrap
    /// `used` past zero and every later `try_alloc` would spuriously OOM
    /// (or worse, succeed against a wrapped count). The decrement is
    /// checked: an underflow panics in debug builds, and in release builds
    /// saturates to zero and files a `budget-underflow` diagnostic with
    /// simt-check when any checker is enabled.
    pub fn free(&self, bytes: usize) {
        // Relaxed for the same reason as `try_alloc`: the counter is a
        // quota, not a publication point.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = cur.checked_sub(bytes) else {
                if simt_check::any_on() {
                    simt_check::report_misuse(
                        "budget-underflow",
                        format!(
                            "MemoryBudget::free({bytes}) underflows the usage counter \
                             (only {cur} B in use) — unpaired or double free"
                        ),
                    );
                }
                debug_assert!(false, "freeing more than allocated: {bytes} > {cur}");
                self.used.store(0, Ordering::Relaxed);
                return;
            };
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently in use.
    pub fn in_use(&self) -> usize {
        // Relaxed: advisory snapshot; exactness is only needed after a
        // join, which already orders it.
        self.used.load(Ordering::Relaxed)
    }

    /// Highest usage observed.
    pub fn peak(&self) -> usize {
        // Relaxed: see the fetch_max in `try_alloc` — monotone statistic,
        // read after join.
        self.peak.load(Ordering::Relaxed)
    }
}

/// Per-threadblock shared-memory budget, consumed at launch-planning time.
///
/// An engine lays out its per-block shared structures (the `Csize`, `iter`,
/// `uiter` arrays of the warp stacks, the compact plan encoding, steal
/// metadata) against this budget; overflow aborts the launch like CUDA's
/// `cudaErrorLaunchOutOfResources`. The default capacity matches the 100 KB
/// opt-in maximum of the RTX 3090 the paper evaluates on.
#[derive(Clone, Debug)]
pub struct SharedBudget {
    capacity: usize,
    used: usize,
    allocations: Vec<(String, usize)>,
}

/// Shared-memory overflow at launch time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedOverflow {
    pub what: String,
    pub requested: usize,
    pub used: usize,
    pub capacity: usize,
}

impl std::fmt::Display for SharedOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared memory overflow allocating `{}`: {} B requested, {}/{} B used",
            self.what, self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for SharedOverflow {}

impl SharedBudget {
    /// RTX 3090 opt-in shared memory per block.
    pub const RTX3090_BYTES: usize = 100 * 1024;

    /// A budget with the given capacity.
    pub fn new(capacity: usize) -> SharedBudget {
        SharedBudget {
            capacity,
            used: 0,
            allocations: Vec::new(),
        }
    }

    /// Reserves `bytes` for a named structure.
    pub fn try_alloc(&mut self, what: &str, bytes: usize) -> Result<(), SharedOverflow> {
        if self.used + bytes > self.capacity {
            return Err(SharedOverflow {
                what: what.to_string(),
                requested: bytes,
                used: self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.allocations.push((what.to_string(), bytes));
        Ok(())
    }

    /// Bytes reserved so far.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The named allocations made so far (for diagnostics).
    pub fn allocations(&self) -> &[(String, usize)] {
        &self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let b = MemoryBudget::new(100);
        b.try_alloc(60).unwrap();
        assert_eq!(b.in_use(), 60);
        assert!(b.try_alloc(50).is_err());
        b.free(60);
        b.try_alloc(100).unwrap();
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn oom_reports_details() {
        let b = MemoryBudget::new(10);
        let err = b.try_alloc(11).unwrap_err();
        assert_eq!(err.requested, 11);
        assert_eq!(err.limit, 10);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn concurrent_allocs_respect_limit() {
        let b = std::sync::Arc::new(MemoryBudget::new(1000));
        let successes: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let b = b.clone();
                    s.spawn(move || (0..100).filter(|_| b.try_alloc(10).is_ok()).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(successes, 100); // exactly 1000/10 allocations succeed
        assert_eq!(b.in_use(), 1000);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "freeing more than allocated")]
    fn unpaired_free_panics_in_debug() {
        let b = MemoryBudget::new(100);
        b.try_alloc(10).unwrap();
        b.free(11);
    }

    #[test]
    fn free_saturates_instead_of_wrapping() {
        // In release builds (no debug_assert) an unpaired free must clamp
        // to zero rather than wrap `used` to huge values that would make
        // every later allocation spuriously OOM. Exercise the saturation
        // arithmetic through the same checked_sub the hardened free() uses.
        assert_eq!(5usize.checked_sub(7), None);
        let b = MemoryBudget::new(100);
        b.try_alloc(60).unwrap();
        b.free(60);
        assert_eq!(b.in_use(), 0);
        b.try_alloc(100).unwrap();
        assert_eq!(b.in_use(), 100);
    }

    #[test]
    fn shared_budget_overflow() {
        let mut s = SharedBudget::new(64);
        s.try_alloc("Csize", 40).unwrap();
        let err = s.try_alloc("iter", 40).unwrap_err();
        assert_eq!(err.used, 40);
        assert_eq!(s.allocations().len(), 1);
        s.try_alloc("iter", 24).unwrap();
        assert_eq!(s.used(), 64);
    }
}
