//! A software GPU execution model.
//!
//! This crate is the substrate substitution for the CUDA runtime the paper
//! targets (see DESIGN.md §1): it preserves the *execution model* that
//! STMatch's design decisions are about, without the silicon:
//!
//! * [`Warp`] — the smallest scheduling unit: 32 SIMT lanes executed as
//!   vector waves with per-lane activity accounting, plus the warp
//!   primitives (`ballot`, `popc`, exclusive scan) used by the combined set
//!   operation of Fig. 8.
//! * Threadblocks group warps around a byte-budgeted shared-memory arena
//!   ([`SharedBudget`]); exceeding it fails the launch, exactly like CUDA —
//!   which is what motivates the paper's merged multi-label sets.
//! * [`Grid`] — maps every warp onto its own OS thread, so inter-warp load
//!   imbalance, spin-waiting and work-stealing traffic are *measured*, not
//!   modelled.
//! * [`MemoryBudget`] — global-memory accounting with hard out-of-memory
//!   failures, used to reproduce the subgraph-centric baselines' OOM
//!   behaviour ('×' entries of Table II).
//! * [`WarpMetrics`]/[`GridMetrics`] — instrumentation: lane-slot
//!   utilization (Fig. 13), warp occupancy, steal counters, kernel-launch
//!   counts.

pub mod grid;
pub mod memory;
pub mod metrics;
pub mod warp;

pub use grid::{describe_panic, Grid, GridConfig, LaunchError, WarmGrid, WarpPanic};
pub use memory::{MemoryBudget, OutOfMemory, SharedBudget};
pub use metrics::{GridMetrics, WarpMetrics};
pub use warp::{Warp, WARP_SIZE};
