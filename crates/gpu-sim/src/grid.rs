//! Grid launch: mapping warps onto OS threads.

use crate::memory::SharedOverflow;
use crate::metrics::GridMetrics;
use crate::warp::Warp;
use std::time::Instant;

/// Grid geometry for a kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridConfig {
    /// Number of threadblocks.
    pub num_blocks: usize,
    /// Warps per threadblock.
    pub warps_per_block: usize,
    /// Shared-memory capacity per block in bytes.
    pub shared_mem_per_block: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        // A modest default grid: enough warps to expose load imbalance and
        // stealing, few enough OS threads to run well on a laptop. The
        // paper's 82 SMs x 32 warps would oversubscribe a host CPU by 100x.
        GridConfig {
            num_blocks: 4,
            warps_per_block: 4,
            shared_mem_per_block: crate::memory::SharedBudget::RTX3090_BYTES,
        }
    }
}

impl GridConfig {
    /// Total warps in the grid.
    pub fn total_warps(&self) -> usize {
        self.num_blocks * self.warps_per_block
    }
}

/// Errors failing a launch before any warp runs.
#[derive(Debug)]
pub enum LaunchError {
    /// A per-block shared-memory budget was exceeded (CUDA:
    /// `cudaErrorLaunchOutOfResources`).
    SharedMemory(SharedOverflow),
    /// Device global memory was exhausted while preparing the launch.
    GlobalMemory(crate::memory::OutOfMemory),
    /// The grid geometry is unusable (zero blocks/warps).
    BadGeometry(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SharedMemory(e) => write!(f, "launch failed: {e}"),
            LaunchError::GlobalMemory(e) => write!(f, "launch failed: {e}"),
            LaunchError::BadGeometry(m) => write!(f, "launch failed: {m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<SharedOverflow> for LaunchError {
    fn from(e: SharedOverflow) -> Self {
        LaunchError::SharedMemory(e)
    }
}

impl From<crate::memory::OutOfMemory> for LaunchError {
    fn from(e: crate::memory::OutOfMemory) -> Self {
        LaunchError::GlobalMemory(e)
    }
}

/// A launchable grid.
///
/// [`Grid::launch`] runs one kernel closure per warp, each on its own OS
/// thread, and aggregates per-warp metrics. The closure receives a mutable
/// [`Warp`] carrying its identity and counters; all cross-warp state (warp
/// stacks, idle bitmaps, global steal slots) lives in the engine and is
/// shared through the closure's environment, mirroring how a CUDA kernel
/// addresses shared and global memory.
#[derive(Clone, Copy, Debug)]
pub struct Grid {
    config: GridConfig,
}

impl Grid {
    /// Creates a grid with the given geometry.
    pub fn new(config: GridConfig) -> Result<Grid, LaunchError> {
        if config.num_blocks == 0 || config.warps_per_block == 0 {
            return Err(LaunchError::BadGeometry(format!(
                "grid {}x{} has no warps",
                config.num_blocks, config.warps_per_block
            )));
        }
        Ok(Grid { config })
    }

    /// The grid geometry.
    pub fn config(&self) -> GridConfig {
        self.config
    }

    /// Launches `kernel` on every warp concurrently and waits for all warps
    /// to finish (one "kernel launch" in CUDA terms — the `kernel_launches`
    /// counter in the returned metrics is 1).
    pub fn launch<F>(&self, kernel: F) -> GridMetrics
    where
        F: Fn(&mut Warp) + Sync,
    {
        let start = Instant::now();
        let total = self.config.total_warps();
        let wpb = self.config.warps_per_block;
        let warps = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..total)
                .map(|id| {
                    let kernel = &kernel;
                    scope.spawn(move || {
                        let mut warp = Warp::new(id, id / wpb, id % wpb);
                        kernel(&mut warp);
                        warp.into_metrics()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("warp thread panicked"))
                .collect::<Vec<_>>()
        });
        GridMetrics {
            warps,
            elapsed_nanos: start.elapsed().as_nanos() as u64,
            kernel_launches: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn rejects_empty_geometry() {
        assert!(Grid::new(GridConfig {
            num_blocks: 0,
            warps_per_block: 4,
            shared_mem_per_block: 0,
        })
        .is_err());
    }

    #[test]
    fn launch_runs_every_warp_once() {
        let grid = Grid::new(GridConfig {
            num_blocks: 3,
            warps_per_block: 2,
            shared_mem_per_block: 1024,
        })
        .unwrap();
        let counter = AtomicU64::new(0);
        let metrics = grid.launch(|warp| {
            counter.fetch_add(1, Ordering::Relaxed);
            warp.metrics_mut().matches_found = warp.id() as u64;
        });
        assert_eq!(counter.load(Ordering::Relaxed), 6);
        assert_eq!(metrics.warps.len(), 6);
        assert_eq!(metrics.matches(), (0..6).sum::<usize>() as u64);
        assert_eq!(metrics.kernel_launches, 1);
    }

    #[test]
    fn warp_identities_are_consistent() {
        let grid = Grid::new(GridConfig {
            num_blocks: 2,
            warps_per_block: 3,
            shared_mem_per_block: 1024,
        })
        .unwrap();
        grid.launch(|warp| {
            assert_eq!(warp.block(), warp.id() / 3);
            assert_eq!(warp.index_in_block(), warp.id() % 3);
        });
    }

    #[test]
    fn warps_run_concurrently() {
        // All warps must be alive at once (spin-wait semantics depend on
        // it): have every warp wait until all warps have arrived.
        let grid = Grid::new(GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let arrived = AtomicU64::new(0);
        grid.launch(|_warp| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
        });
    }
}
