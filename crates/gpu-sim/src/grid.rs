//! Grid launch: mapping warps onto OS threads.

use crate::memory::SharedOverflow;
use crate::metrics::GridMetrics;
use crate::warp::Warp;
use std::time::Instant;

/// Grid geometry for a kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridConfig {
    /// Number of threadblocks.
    pub num_blocks: usize,
    /// Warps per threadblock.
    pub warps_per_block: usize,
    /// Shared-memory capacity per block in bytes.
    pub shared_mem_per_block: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        // A modest default grid: enough warps to expose load imbalance and
        // stealing, few enough OS threads to run well on a laptop. The
        // paper's 82 SMs x 32 warps would oversubscribe a host CPU by 100x.
        GridConfig {
            num_blocks: 4,
            warps_per_block: 4,
            shared_mem_per_block: crate::memory::SharedBudget::RTX3090_BYTES,
        }
    }
}

impl GridConfig {
    /// Total warps in the grid.
    pub fn total_warps(&self) -> usize {
        self.num_blocks * self.warps_per_block
    }
}

/// Errors failing a launch before any warp runs.
#[derive(Clone, Debug)]
pub enum LaunchError {
    /// A per-block shared-memory budget was exceeded (CUDA:
    /// `cudaErrorLaunchOutOfResources`).
    SharedMemory(SharedOverflow),
    /// Device global memory was exhausted while preparing the launch.
    GlobalMemory(crate::memory::OutOfMemory),
    /// The grid geometry is unusable (zero blocks/warps).
    BadGeometry(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SharedMemory(e) => write!(f, "launch failed: {e}"),
            LaunchError::GlobalMemory(e) => write!(f, "launch failed: {e}"),
            LaunchError::BadGeometry(m) => write!(f, "launch failed: {m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<SharedOverflow> for LaunchError {
    fn from(e: SharedOverflow) -> Self {
        LaunchError::SharedMemory(e)
    }
}

impl From<crate::memory::OutOfMemory> for LaunchError {
    fn from(e: crate::memory::OutOfMemory) -> Self {
        LaunchError::GlobalMemory(e)
    }
}

/// A launchable grid.
///
/// [`Grid::launch`] runs one kernel closure per warp, each on its own OS
/// thread, and aggregates per-warp metrics. The closure receives a mutable
/// [`Warp`] carrying its identity and counters; all cross-warp state (warp
/// stacks, idle bitmaps, global steal slots) lives in the engine and is
/// shared through the closure's environment, mirroring how a CUDA kernel
/// addresses shared and global memory.
#[derive(Clone, Copy, Debug)]
pub struct Grid {
    config: GridConfig,
}

impl Grid {
    /// Creates a grid with the given geometry.
    pub fn new(config: GridConfig) -> Result<Grid, LaunchError> {
        if config.num_blocks == 0 || config.warps_per_block == 0 {
            return Err(LaunchError::BadGeometry(format!(
                "grid {}x{} has no warps",
                config.num_blocks, config.warps_per_block
            )));
        }
        Ok(Grid { config })
    }

    /// The grid geometry.
    pub fn config(&self) -> GridConfig {
        self.config
    }

    /// Launches `kernel` on every warp concurrently and waits for all warps
    /// to finish (one "kernel launch" in CUDA terms — the `kernel_launches`
    /// counter in the returned metrics is 1).
    ///
    /// A panicking warp propagates: the launch itself panics once every
    /// warp thread has been joined. Fault-tolerant callers should use
    /// [`Grid::launch_contained`] instead.
    pub fn launch<F>(&self, kernel: F) -> GridMetrics
    where
        F: Fn(&mut Warp) + Sync,
    {
        let (metrics, panics) = self.launch_contained(kernel);
        if let Some(p) = panics.first() {
            panic!("warp thread panicked: warp {}: {}", p.warp, p.message);
        }
        metrics
    }

    /// [`Grid::launch`] with per-warp panic containment: each warp body
    /// runs under `catch_unwind`, a panicking warp's counters survive (it
    /// stops contributing work but its metrics up to the panic are kept),
    /// and the launch always returns — the hardware analogue of one SM
    /// faulting without resetting the device. The returned [`WarpPanic`]
    /// records (one per dead warp, in warp-id order) carry the panic
    /// payload rendered as a string; `GridMetrics::contained_panics`
    /// counts them.
    ///
    /// Containment is a backstop, not a recovery protocol: any cross-warp
    /// state the closure shares (queues, counters, locks) is the caller's
    /// responsibility to repair — see `stmatch-core`'s engine, which
    /// performs its own containment with work requeue *inside* the
    /// closure and uses this layer only against escaped panics.
    pub fn launch_contained<F>(&self, kernel: F) -> (GridMetrics, Vec<WarpPanic>)
    where
        F: Fn(&mut Warp) + Sync,
    {
        let start = Instant::now();
        let total = self.config.total_warps();
        let wpb = self.config.warps_per_block;
        // Launch fork point for the race checker: everything the launching
        // thread did so far happens-before every warp body.
        simt_check::launch_begin();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..total)
                .map(|id| {
                    let kernel = &kernel;
                    scope.spawn(move || {
                        simt_check::register_warp(id);
                        let mut warp = Warp::new(id, id / wpb, id % wpb);
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            kernel(&mut warp)
                        }));
                        // The exit hook runs after catch_unwind, so even a
                        // contained (e.g. fault-injected) warp publishes its
                        // clock to the join point — dead warps must not look
                        // racy to salvage relaunches.
                        simt_check::warp_exit();
                        let panic = caught.err().map(|payload| WarpPanic {
                            warp: id,
                            message: describe_panic(payload.as_ref()),
                        });
                        (warp.into_metrics(), panic)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("warp thread died outside catch_unwind"))
                .collect::<Vec<_>>()
        });
        // Join point: every warp's history happens-before whatever the
        // launching thread does next (leftover preload, metrics, goldens).
        simt_check::launch_end();
        let mut warps = Vec::with_capacity(total);
        let mut panics = Vec::new();
        for (m, p) in results {
            warps.push(m);
            panics.extend(p);
        }
        let metrics = GridMetrics {
            warps,
            elapsed_nanos: start.elapsed().as_nanos() as u64,
            kernel_launches: 1,
            contained_panics: panics.len() as u64,
        };
        (metrics, panics)
    }
}

/// One launch's work order for a warm worker: the kernel to run plus the
/// channel to report completion on. The kernel reference is lifetime-erased
/// (see the safety argument in [`WarmGrid::launch_contained`]).
enum Job {
    Run(
        &'static (dyn Fn(&mut Warp) + Sync),
        std::sync::mpsc::Sender<(usize, crate::metrics::WarpMetrics, Option<WarpPanic>)>,
    ),
    Exit,
}

/// A grid with a persistent thread pool: one OS thread per warp, kept warm
/// across launches.
///
/// [`Grid::launch_contained`] spawns and joins `total_warps` OS threads on
/// every call — fine for a one-shot run, pure overhead for a resident
/// service that launches thousands of kernels against the same geometry.
/// `WarmGrid` pays the spawn cost once; each launch is a message round-trip
/// per warp. The launch contract is identical to
/// [`Grid::launch_contained`]: per-warp panic containment, per-warp metrics
/// in warp-id order, and the same race-checker fork/join events (each
/// worker re-registers its warp identity per launch).
pub struct WarmGrid {
    config: GridConfig,
    senders: Vec<std::sync::mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WarmGrid {
    /// Spawns the worker pool for `config` (one thread per warp).
    pub fn new(config: GridConfig) -> Result<WarmGrid, LaunchError> {
        // Same geometry validation as Grid::new.
        let _ = Grid::new(config)?;
        let total = config.total_warps();
        let wpb = config.warps_per_block;
        let mut senders = Vec::with_capacity(total);
        let mut handles = Vec::with_capacity(total);
        for id in 0..total {
            let (tx, rx) = std::sync::mpsc::channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("warm-warp-{id}"))
                .spawn(move || {
                    for job in rx {
                        match job {
                            Job::Run(kernel, done) => {
                                simt_check::register_warp(id);
                                let mut warp = Warp::new(id, id / wpb, id % wpb);
                                let caught =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        kernel(&mut warp)
                                    }));
                                simt_check::warp_exit();
                                let panic = caught.err().map(|payload| WarpPanic {
                                    warp: id,
                                    message: describe_panic(payload.as_ref()),
                                });
                                // A dropped receiver means the launcher is
                                // gone (poisoned/unwinding); nothing to do.
                                let _ = done.send((id, warp.into_metrics(), panic));
                            }
                            Job::Exit => break,
                        }
                    }
                })
                .expect("failed to spawn warm warp thread");
            senders.push(tx);
            handles.push(handle);
        }
        Ok(WarmGrid {
            config,
            senders,
            handles,
        })
    }

    /// The grid geometry.
    pub fn config(&self) -> GridConfig {
        self.config
    }

    /// Runs `kernel` once per warp on the warm pool and blocks until every
    /// warp has reported back. Same contract as
    /// [`Grid::launch_contained`].
    pub fn launch_contained(
        &self,
        kernel: &(dyn Fn(&mut Warp) + Sync),
    ) -> (GridMetrics, Vec<WarpPanic>) {
        let start = Instant::now();
        let total = self.config.total_warps();
        // Launch fork point, as in Grid::launch_contained: everything the
        // launching thread did so far happens-before every warp body.
        simt_check::launch_begin();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        // SAFETY: the workers only hold this reference while executing the
        // Job we send below, and this function does not return until every
        // worker has sent its completion message for this launch — each
        // worker sends *after* its last use of the reference, and the
        // `recv` loop below blocks on exactly `total` such messages. So the
        // erased reference never outlives the borrow it came from.
        let kernel: &'static (dyn Fn(&mut Warp) + Sync) = unsafe { std::mem::transmute(kernel) };
        for tx in &self.senders {
            tx.send(Job::Run(kernel, done_tx.clone()))
                .expect("warm warp worker exited prematurely");
        }
        drop(done_tx);
        let mut results: Vec<Option<(crate::metrics::WarpMetrics, Option<WarpPanic>)>> =
            (0..total).map(|_| None).collect();
        for _ in 0..total {
            let (id, m, p) = done_rx
                .recv()
                .expect("warm warp worker died outside catch_unwind");
            results[id] = Some((m, p));
        }
        // Join point, as in Grid::launch_contained.
        simt_check::launch_end();
        let mut warps = Vec::with_capacity(total);
        let mut panics = Vec::new();
        for r in results {
            let (m, p) = r.expect("every warp reports exactly once");
            warps.push(m);
            panics.extend(p);
        }
        let metrics = GridMetrics {
            warps,
            elapsed_nanos: start.elapsed().as_nanos() as u64,
            kernel_launches: 1,
            contained_panics: panics.len() as u64,
        };
        (metrics, panics)
    }
}

impl Drop for WarmGrid {
    fn drop(&mut self) {
        for tx in &self.senders {
            // A worker that already exited (send fails) needs no Exit.
            let _ = tx.send(Job::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Record of one warp whose kernel closure panicked during a
/// [`Grid::launch_contained`] run.
#[derive(Clone, Debug)]
pub struct WarpPanic {
    /// Global warp id of the dead warp.
    pub warp: usize,
    /// The panic payload, rendered (`&str` / `String` payloads verbatim;
    /// anything else as an opaque marker).
    pub message: String,
}

/// Renders a caught panic payload for reporting.
pub fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn rejects_empty_geometry() {
        assert!(Grid::new(GridConfig {
            num_blocks: 0,
            warps_per_block: 4,
            shared_mem_per_block: 0,
        })
        .is_err());
    }

    #[test]
    fn launch_runs_every_warp_once() {
        let grid = Grid::new(GridConfig {
            num_blocks: 3,
            warps_per_block: 2,
            shared_mem_per_block: 1024,
        })
        .unwrap();
        let counter = AtomicU64::new(0);
        let metrics = grid.launch(|warp| {
            counter.fetch_add(1, Ordering::Relaxed);
            warp.metrics_mut().matches_found = warp.id() as u64;
        });
        assert_eq!(counter.load(Ordering::Relaxed), 6);
        assert_eq!(metrics.warps.len(), 6);
        assert_eq!(metrics.matches(), (0..6).sum::<usize>() as u64);
        assert_eq!(metrics.kernel_launches, 1);
    }

    #[test]
    fn warp_identities_are_consistent() {
        let grid = Grid::new(GridConfig {
            num_blocks: 2,
            warps_per_block: 3,
            shared_mem_per_block: 1024,
        })
        .unwrap();
        grid.launch(|warp| {
            assert_eq!(warp.block(), warp.id() / 3);
            assert_eq!(warp.index_in_block(), warp.id() % 3);
        });
    }

    #[test]
    fn contained_launch_survives_warp_panics_and_keeps_metrics() {
        let grid = Grid::new(GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let (metrics, panics) = grid.launch_contained(|warp| {
            warp.metrics_mut().matches_found = 10 + warp.id() as u64;
            if warp.id() == 2 {
                panic!("injected: warp {} down", warp.id());
            }
        });
        // The dead warp's pre-panic counters survive.
        assert_eq!(metrics.warps.len(), 4);
        assert_eq!(metrics.matches(), 10 + 11 + 12 + 13);
        assert_eq!(metrics.contained_panics, 1);
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].warp, 2);
        assert!(panics[0].message.contains("warp 2 down"), "{panics:?}");
    }

    #[test]
    fn plain_launch_propagates_warp_panics() {
        let grid = Grid::new(GridConfig {
            num_blocks: 1,
            warps_per_block: 2,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let res = std::panic::catch_unwind(|| {
            grid.launch(|warp| {
                if warp.id() == 1 {
                    panic!("boom");
                }
            })
        });
        assert!(res.is_err(), "launch must re-raise contained panics");
    }

    #[test]
    fn warm_grid_matches_cold_launch_semantics() {
        let cfg = GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: 1024,
        };
        let warm = WarmGrid::new(cfg).unwrap();
        // Several launches on the same pool: every warp runs once per
        // launch, metrics arrive in warp-id order, panics are contained.
        for round in 0..3u64 {
            let (metrics, panics) = warm.launch_contained(&|warp: &mut Warp| {
                warp.metrics_mut().matches_found = round * 100 + warp.id() as u64;
                if round == 1 && warp.id() == 3 {
                    panic!("injected: warm warp down");
                }
            });
            assert_eq!(metrics.warps.len(), 4);
            for (i, w) in metrics.warps.iter().enumerate() {
                assert_eq!(w.matches_found, round * 100 + i as u64);
            }
            if round == 1 {
                assert_eq!(metrics.contained_panics, 1);
                assert_eq!(panics.len(), 1);
                assert_eq!(panics[0].warp, 3);
            } else {
                assert_eq!(metrics.contained_panics, 0, "pool poisoned by round 1");
                assert!(panics.is_empty());
            }
        }
    }

    #[test]
    fn warm_grid_rejects_empty_geometry() {
        assert!(WarmGrid::new(GridConfig {
            num_blocks: 1,
            warps_per_block: 0,
            shared_mem_per_block: 0,
        })
        .is_err());
    }

    #[test]
    fn warps_run_concurrently() {
        // All warps must be alive at once (spin-wait semantics depend on
        // it): have every warp wait until all warps have arrived.
        let grid = Grid::new(GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let arrived = AtomicU64::new(0);
        grid.launch(|_warp| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
        });
    }
}
