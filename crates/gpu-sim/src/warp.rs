//! The warp: 32 SIMT lanes with activity accounting and warp primitives.

use crate::metrics::WarpMetrics;

/// Number of lanes per warp, as on every current NVIDIA GPU.
pub const WARP_SIZE: usize = 32;

/// A warp executing a kernel.
///
/// Lanes are simulated *sequentially within the warp's OS thread*: a
/// 32-lane vector operation is executed as a loop, while the metrics count
/// how many lane slots were issued versus how many did useful work — the
/// SIMT-utilization signal behind Fig. 13 of the paper. Divergence and
/// underfull waves therefore cost exactly what they cost on hardware in
/// *accounting* terms, while inter-warp effects (load imbalance, stealing,
/// spinning) are real because each warp owns a thread.
pub struct Warp {
    /// Global warp id within the grid.
    id: usize,
    /// Threadblock index.
    block: usize,
    /// Index of this warp within its block.
    lane_in_block: usize,
    metrics: WarpMetrics,
    /// Current active-lane mask for the simt-check divergence lints: a
    /// [`Warp::wave`] narrows it, the [`Warp::ballot`] closing the wave
    /// reconverges it to all lanes. Only maintained while the divergence
    /// checker is enabled; never read by metrics (checker-off runs stay
    /// bit-identical).
    div_mask: u32,
}

impl Warp {
    pub(crate) fn new(id: usize, block: usize, lane_in_block: usize) -> Warp {
        Warp {
            id,
            block,
            lane_in_block,
            metrics: WarpMetrics::default(),
            div_mask: u32::MAX,
        }
    }

    /// Global warp id.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The block this warp belongs to.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// This warp's index within its block.
    #[inline]
    pub fn index_in_block(&self) -> usize {
        self.lane_in_block
    }

    /// Mutable access to this warp's metric counters.
    #[inline]
    pub fn metrics_mut(&mut self) -> &mut WarpMetrics {
        &mut self.metrics
    }

    /// Read access to this warp's metric counters.
    #[inline]
    pub fn metrics(&self) -> &WarpMetrics {
        &self.metrics
    }

    pub(crate) fn into_metrics(self) -> WarpMetrics {
        self.metrics
    }

    /// Executes a data-parallel operation over `n` work items in waves of
    /// [`WARP_SIZE`]: issues `ceil(n/32)` SIMT instructions (`n` active lane
    /// slots out of `32 * ceil(n/32)` issued).
    ///
    /// This is the primitive behind parallel copies and the per-lane binary
    /// searches of `getCandidates`.
    #[inline]
    pub fn simt_for<F: FnMut(usize)>(&mut self, n: usize, mut f: F) {
        if n == 0 {
            return;
        }
        let waves = n.div_ceil(WARP_SIZE);
        self.metrics.simt_instructions += waves as u64;
        self.metrics.issued_lane_slots += (waves * WARP_SIZE) as u64;
        self.metrics.active_lane_slots += n as u64;
        for i in 0..n {
            f(i);
        }
    }

    /// Executes one wave with an explicit active-lane mask; `f` is called
    /// only for active lanes. Returns nothing — combine with [`Warp::ballot`]
    /// for predicate waves.
    ///
    /// Divergence lint: the wave narrows the warp's current mask to
    /// `active` and records per-call-site occupancy; the closing `ballot`
    /// reconverges. Sustained sub-warp occupancy at one site is reported by
    /// `simt_check::drain`.
    #[inline]
    #[track_caller]
    pub fn wave<F: FnMut(usize)>(&mut self, active: u32, mut f: F) {
        self.metrics.simt_instructions += 1;
        self.metrics.issued_lane_slots += WARP_SIZE as u64;
        self.metrics.active_lane_slots += u64::from(active.count_ones());
        if simt_check::divergence_on() {
            simt_check::diverge::on_wave(std::panic::Location::caller(), active, self.id);
            self.div_mask = active;
        }
        let mut m = active;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            f(lane);
        }
    }

    /// `__ballot_sync`: collects one predicate bit per lane. The caller
    /// supplies the bits (lanes are simulated in-thread); the warp accounts
    /// one SIMT instruction.
    ///
    /// Divergence lint: predicate bits naming lanes inactive under a
    /// divergent mask are the software analogue of `__ballot_sync` with
    /// non-participating lanes — undefined behavior on hardware, a hard
    /// diagnostic here. The ballot reconverges the warp (all lanes active)
    /// and, when race checking is on, advances the warp's epoch clock — a
    /// ballot is the warp-synchronous point the paper's Fig. 8 waves pivot
    /// on.
    #[inline]
    #[track_caller]
    pub fn ballot(&mut self, bits: u32) -> u32 {
        self.metrics.simt_instructions += 1;
        if simt_check::divergence_on() {
            simt_check::diverge::on_ballot(
                std::panic::Location::caller(),
                bits,
                self.div_mask,
                self.id,
            );
            self.div_mask = u32::MAX;
        }
        simt_check::epoch_advance();
        bits
    }

    /// `__popc`: population count (free on hardware, counted as one
    /// instruction here for symmetry).
    #[inline]
    pub fn popc(&mut self, mask: u32) -> u32 {
        mask.count_ones()
    }

    /// Exclusive prefix sum over one value per lane, as a warp-level scan
    /// (`log2(32)` shuffle instructions on hardware). `vals` is replaced by
    /// its exclusive prefix sums; the total is returned.
    ///
    /// Divergence lint: the scan is a full-warp cooperative primitive;
    /// issuing it while diverged is a hard diagnostic.
    #[track_caller]
    pub fn exclusive_scan(&mut self, vals: &mut [u32; WARP_SIZE]) -> u32 {
        if simt_check::divergence_on() {
            simt_check::diverge::on_scan(std::panic::Location::caller(), self.div_mask, self.id);
        }
        self.metrics.simt_instructions += 5; // log2(32) shuffle steps
        self.metrics.issued_lane_slots += (5 * WARP_SIZE) as u64;
        self.metrics.active_lane_slots += (5 * WARP_SIZE) as u64;
        let mut acc = 0u32;
        for v in vals.iter_mut() {
            let next = acc + *v;
            *v = acc;
            acc = next;
        }
        acc
    }

    /// `__shfl_sync`: every lane reads `values[src_lane]`. Returns the
    /// broadcast value; accounts one SIMT instruction.
    ///
    /// Divergence lint: reading from a lane inactive under a divergent mask
    /// yields garbage on hardware — a hard diagnostic here.
    #[inline]
    #[track_caller]
    pub fn shfl<T: Copy>(&mut self, values: &[T; WARP_SIZE], src_lane: usize) -> T {
        debug_assert!(src_lane < WARP_SIZE);
        self.metrics.simt_instructions += 1;
        if simt_check::divergence_on() {
            simt_check::diverge::on_shfl(
                std::panic::Location::caller(),
                src_lane,
                self.div_mask,
                self.id,
            );
        }
        values[src_lane]
    }

    /// Number of 1-bits in `mask` strictly below `lane` — the
    /// `__popc(mask & ((1 << lane) - 1))` idiom used for output compaction
    /// in the combined set operation (Fig. 8).
    #[inline]
    pub fn rank_in_mask(&self, mask: u32, lane: usize) -> u32 {
        (mask & ((1u32 << lane) - 1)).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_warp() -> Warp {
        Warp::new(3, 1, 3)
    }

    #[test]
    fn identity_accessors() {
        let w = test_warp();
        assert_eq!(w.id(), 3);
        assert_eq!(w.block(), 1);
        assert_eq!(w.index_in_block(), 3);
    }

    #[test]
    fn simt_for_accounts_waves() {
        let mut w = test_warp();
        let mut sum = 0usize;
        w.simt_for(40, |i| sum += i);
        assert_eq!(sum, (0..40).sum::<usize>());
        let m = w.metrics();
        assert_eq!(m.simt_instructions, 2); // ceil(40/32)
        assert_eq!(m.issued_lane_slots, 64);
        assert_eq!(m.active_lane_slots, 40);
    }

    #[test]
    fn simt_for_zero_is_free() {
        let mut w = test_warp();
        w.simt_for(0, |_| panic!("must not run"));
        assert_eq!(w.metrics().simt_instructions, 0);
    }

    #[test]
    fn utilization_reflects_small_sets() {
        // An 8-element set op uses 8/32 of a wave — the underutilization
        // that motivates loop unrolling in the paper.
        let mut w = test_warp();
        w.simt_for(8, |_| {});
        let m = w.metrics();
        assert!((m.lane_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wave_runs_only_active_lanes() {
        let mut w = test_warp();
        let mut lanes = Vec::new();
        w.wave(0b1010_0001, |lane| lanes.push(lane));
        assert_eq!(lanes, vec![0, 5, 7]);
        assert_eq!(w.metrics().active_lane_slots, 3);
        assert_eq!(w.metrics().issued_lane_slots, 32);
    }

    #[test]
    fn exclusive_scan_matches_reference() {
        let mut w = test_warp();
        let mut vals = [0u32; WARP_SIZE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as u32;
        }
        let total = w.exclusive_scan(&mut vals);
        assert_eq!(total, (0..32).sum::<u32>());
        assert_eq!(vals[0], 0);
        assert_eq!(vals[5], (0..5).sum::<u32>());
    }

    #[test]
    fn rank_in_mask_counts_lower_bits() {
        let w = test_warp();
        let mask = 0b1011_0110u32;
        assert_eq!(w.rank_in_mask(mask, 0), 0);
        assert_eq!(w.rank_in_mask(mask, 3), 2);
        assert_eq!(w.rank_in_mask(mask, 8), 5);
    }

    #[test]
    fn shfl_broadcasts_one_lane() {
        let mut w = test_warp();
        let mut vals = [0u32; WARP_SIZE];
        vals[7] = 99;
        assert_eq!(w.shfl(&vals, 7), 99);
        assert_eq!(w.shfl(&vals, 0), 0);
        assert_eq!(w.metrics().simt_instructions, 2);
    }

    #[test]
    fn ballot_passes_bits_through() {
        let mut w = test_warp();
        assert_eq!(w.ballot(0xF0F0), 0xF0F0);
        assert_eq!(w.popc(0xF0F0), 8);
    }
}
