//! A Dryadic-like CPU engine: nested-loop backtracking with loop-invariant
//! code motion, parallelized over outer-loop chunks.
//!
//! This is the workspace's stand-in for the paper's state-of-the-art CPU
//! comparator (Dryadic, [16]). It executes the same compiled
//! [`MatchPlan`] as the STMatch engine — including lifted intermediate
//! sets — but as plain recursive CPU code: scalar binary-search set
//! operations, no warps, no stealing (threads share an atomic chunk
//! counter over the outermost loop, Dryadic's first-two-level
//! distribution collapsed to level 0 + chunking).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::plan::Base;
use stmatch_pattern::symmetry::Bound;
use stmatch_pattern::{LabelMask, MatchPlan, OpKind, Pattern, PlanOptions};

/// Configuration for the CPU engine.
#[derive(Clone, Copy, Debug)]
pub struct DryadicConfig {
    /// Worker threads (the paper runs Dryadic with 64).
    pub threads: usize,
    /// Vertex-induced vs edge-induced.
    pub induced: bool,
    /// Loop-invariant code motion on/off (Dryadic's signature optimization).
    pub code_motion: bool,
    /// Count each subgraph once.
    pub symmetry_breaking: bool,
    /// Outer-loop chunk size per claim.
    pub chunk_size: usize,
    /// Optional wall-clock budget; the run is cancelled cooperatively when
    /// it passes and the outcome is flagged `timed_out`.
    pub timeout: Option<std::time::Duration>,
}

impl Default for DryadicConfig {
    fn default() -> Self {
        DryadicConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            induced: false,
            code_motion: true,
            symmetry_breaking: true,
            chunk_size: 16,
            timeout: None,
        }
    }
}

/// Result of a CPU run.
#[derive(Clone, Debug)]
pub struct DryadicOutcome {
    /// Matches found.
    pub count: u64,
    /// Wall-clock nanoseconds.
    pub elapsed_nanos: u64,
    /// Total set-op element operations (binary searches + copies) — the
    /// machine-independent work metric used for cross-system comparisons.
    pub element_ops: u64,
    /// True when the run hit its wall-clock budget (partial count).
    pub timed_out: bool,
}

impl DryadicOutcome {
    /// Wall-clock milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_nanos as f64 / 1e6
    }
}

/// Runs `pattern` over `graph` with the CPU engine.
pub fn run(graph: &Graph, pattern: &Pattern, cfg: DryadicConfig) -> DryadicOutcome {
    let plan = MatchPlan::compile(
        pattern,
        PlanOptions {
            induced: cfg.induced,
            code_motion: cfg.code_motion,
            symmetry_breaking: cfg.symmetry_breaking,
        },
    );
    run_plan(graph, &plan, cfg)
}

/// Runs a pre-compiled plan (the bench harness compiles once per query and
/// hands the same plan to every system).
pub fn run_plan(graph: &Graph, plan: &MatchPlan, cfg: DryadicConfig) -> DryadicOutcome {
    let start = Instant::now();
    let deadline = cfg.timeout.map(|t| start + t);
    let next = AtomicUsize::new(0);
    let total_count = AtomicU64::new(0);
    let total_ops = AtomicU64::new(0);
    let abort = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..cfg.threads.max(1) {
            s.spawn(|| {
                let mut worker = Worker::new(graph, plan, deadline, &abort);
                loop {
                    let lo = next.fetch_add(cfg.chunk_size, Ordering::Relaxed);
                    if lo >= graph.num_vertices() || abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let hi = (lo + cfg.chunk_size).min(graph.num_vertices());
                    for v in lo..hi {
                        worker.try_root(v as VertexId);
                    }
                }
                total_count.fetch_add(worker.count, Ordering::Relaxed);
                total_ops.fetch_add(worker.ops, Ordering::Relaxed);
            });
        }
    });
    DryadicOutcome {
        count: total_count.load(Ordering::Relaxed),
        elapsed_nanos: start.elapsed().as_nanos() as u64,
        element_ops: total_ops.load(Ordering::Relaxed),
        timed_out: abort.load(Ordering::Relaxed),
    }
}

/// Per-thread matching state.
struct Worker<'a> {
    g: &'a Graph,
    plan: &'a MatchPlan,
    k: usize,
    /// One slab per set id (no unroll dimension on CPU).
    sets: Vec<Vec<VertexId>>,
    matched: Vec<VertexId>,
    count: u64,
    ops: u64,
    deadline: Option<Instant>,
    abort: &'a std::sync::atomic::AtomicBool,
    tick: u32,
}

impl<'a> Worker<'a> {
    fn new(
        g: &'a Graph,
        plan: &'a MatchPlan,
        deadline: Option<Instant>,
        abort: &'a std::sync::atomic::AtomicBool,
    ) -> Self {
        Worker {
            g,
            plan,
            k: plan.num_levels(),
            sets: vec![Vec::new(); plan.num_sets()],
            matched: vec![0; plan.num_levels()],
            count: 0,
            ops: 0,
            deadline,
            abort,
            tick: 0,
        }
    }

    /// Cooperative cancellation: clock check every few thousand extends.
    #[inline]
    fn cancelled(&mut self) -> bool {
        self.tick = self.tick.wrapping_add(1);
        if self.tick.is_multiple_of(4096) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.abort.store(true, Ordering::Relaxed);
                }
            }
            self.abort.load(Ordering::Relaxed)
        } else if self.tick.is_multiple_of(64) {
            self.abort.load(Ordering::Relaxed)
        } else {
            false
        }
    }

    fn try_root(&mut self, v: VertexId) {
        self.ops += 1;
        if let Some(lbl) = self.plan.level_label(0) {
            if self.g.label(v) != lbl {
                return;
            }
        }
        self.matched[0] = v;
        if self.k == 1 {
            self.count += 1;
            return;
        }
        self.extend(1);
    }

    /// Enters `level`: computes its sets, then iterates the candidate set.
    fn extend(&mut self, level: usize) {
        if self.cancelled() {
            return;
        }
        self.compute_sets(level);
        let cid = self.plan.candidate_set(level).expect("level >= 1") as usize;
        if level == self.k - 1 {
            // Count instead of iterating at the last level.
            let bounds = self.plan.bounds(level);
            let residual = self.plan.residual_label_check(level);
            let mut local = 0u64;
            for &v in &self.sets[cid] {
                if residual.is_some_and(|l| self.g.label(v) != l) {
                    continue;
                }
                if valid(&self.matched, bounds, level, v) {
                    local += 1;
                }
            }
            self.ops += self.sets[cid].len() as u64;
            self.count += local;
            return;
        }
        let residual = self.plan.residual_label_check(level);
        let len = self.sets[cid].len();
        for i in 0..len {
            let v = self.sets[cid][i];
            self.ops += 1;
            if residual.is_some_and(|l| self.g.label(v) != l) {
                continue;
            }
            if valid(&self.matched, self.plan.bounds(level), level, v) {
                self.matched[level] = v;
                self.extend(level + 1);
            }
        }
    }

    /// Evaluates every set scheduled at `level` (scalar chain evaluation).
    fn compute_sets(&mut self, level: usize) {
        for sid in self.plan.sets_at_level(level) {
            let def = &self.plan.sets()[sid];
            let mut buf = std::mem::take(&mut self.sets[sid]);
            buf.clear();
            match def.base {
                Base::Neighbors(pos) => {
                    let src = self.g.neighbors(self.matched[pos as usize]);
                    let mask = if def.ops.is_empty() {
                        def.mask
                    } else {
                        LabelMask::ALL
                    };
                    self.ops += src.len() as u64;
                    if mask.is_all() {
                        buf.extend_from_slice(src);
                    } else {
                        let g = self.g;
                        buf.extend(src.iter().copied().filter(|&v| mask.allows(g.label(v))));
                    }
                    let ops = def.ops.clone();
                    self.apply_chain(&ops, def.mask, &mut buf);
                }
                Base::Set(dep) => {
                    let op = *def.ops.first().expect("set base carries an op");
                    let operand = self.g.neighbors(self.matched[op.pos as usize]);
                    let mask = if def.ops.len() == 1 {
                        def.mask
                    } else {
                        LabelMask::ALL
                    };
                    let input = &self.sets[dep as usize];
                    self.ops += input.len() as u64;
                    scalar_op(self.g, input, operand, op.kind, mask, &mut buf);
                    let rest = def.ops[1..].to_vec();
                    self.apply_chain(&rest, def.mask, &mut buf);
                }
            }
            self.sets[sid] = buf;
        }
    }

    /// Applies remaining chained ops in place.
    fn apply_chain(
        &mut self,
        ops: &[stmatch_pattern::plan::ChainOp],
        final_mask: LabelMask,
        buf: &mut Vec<VertexId>,
    ) {
        let mut scratch: Vec<VertexId> = Vec::with_capacity(buf.len());
        for (i, op) in ops.iter().enumerate() {
            let mask = if i + 1 == ops.len() {
                final_mask
            } else {
                LabelMask::ALL
            };
            let operand = self.g.neighbors(self.matched[op.pos as usize]);
            self.ops += buf.len() as u64;
            scratch.clear();
            scalar_op(self.g, buf, operand, op.kind, mask, &mut scratch);
            std::mem::swap(buf, &mut scratch);
        }
    }
}

/// Scalar intersection/difference with label filtering.
fn scalar_op(
    g: &Graph,
    input: &[VertexId],
    operand: &[VertexId],
    kind: OpKind,
    mask: LabelMask,
    out: &mut Vec<VertexId>,
) {
    out.reserve(input.len());
    for &v in input {
        let found = operand.binary_search(&v).is_ok();
        let keep = match kind {
            OpKind::Intersect => found,
            OpKind::Difference => !found,
        };
        if keep && (mask.is_all() || mask.allows(g.label(v))) {
            out.push(v);
        }
    }
}

/// Injectivity + symmetry bounds against the matched prefix.
#[inline]
fn valid(matched: &[VertexId], bounds: &[(usize, Bound)], level: usize, v: VertexId) -> bool {
    for &m in &matched[..level] {
        if m == v {
            return false;
        }
    }
    for &(pos, b) in bounds {
        let ok = match b {
            Bound::Less => v < matched[pos],
            Bound::Greater => v > matched[pos],
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{self, RefOptions};
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn cfg(induced: bool) -> DryadicConfig {
        DryadicConfig {
            threads: 2,
            induced,
            ..DryadicConfig::default()
        }
    }

    #[test]
    fn triangles_in_k6() {
        let g = gen::complete(6);
        assert_eq!(run(&g, &catalog::triangle(), cfg(false)).count, 20);
    }

    #[test]
    fn agrees_with_oracle_on_paper_queries() {
        let g = gen::erdos_renyi(32, 110, 5);
        for i in [1, 2, 5, 7, 8, 11, 14, 16, 20, 23] {
            let q = catalog::paper_query(i);
            for induced in [false, true] {
                let want = reference::count(
                    &g,
                    &q,
                    RefOptions {
                        induced,
                        symmetry_breaking: true,
                    },
                );
                assert_eq!(
                    run(&g, &q, cfg(induced)).count,
                    want,
                    "q{i} induced={induced}"
                );
            }
        }
    }

    #[test]
    fn labeled_agrees_with_oracle() {
        let g = gen::assign_random_labels(&gen::erdos_renyi(30, 100, 8), 4, 2);
        for i in [3, 6, 9, 15] {
            let q = catalog::paper_query(i).with_random_labels(4, i as u64);
            let want = reference::count(&g, &q, RefOptions::default());
            assert_eq!(run(&g, &q, cfg(false)).count, want, "q{i}");
        }
    }

    #[test]
    fn code_motion_toggle_preserves_counts_and_reduces_work() {
        let g = gen::erdos_renyi(60, 400, 4);
        let q = catalog::paper_query(16); // K6: deep intersect chains
        let with = run(
            &g,
            &q,
            DryadicConfig {
                code_motion: true,
                threads: 1,
                ..cfg(false)
            },
        );
        let without = run(
            &g,
            &q,
            DryadicConfig {
                code_motion: false,
                threads: 1,
                ..cfg(false)
            },
        );
        assert_eq!(with.count, without.count);
        assert!(
            with.element_ops < without.element_ops,
            "code motion must reduce work: {} vs {}",
            with.element_ops,
            without.element_ops
        );
    }

    #[test]
    fn thread_counts_agree() {
        let g = gen::preferential_attachment(80, 3, 7);
        let q = catalog::paper_query(6);
        let one = run(
            &g,
            &q,
            DryadicConfig {
                threads: 1,
                ..cfg(false)
            },
        );
        let four = run(
            &g,
            &q,
            DryadicConfig {
                threads: 4,
                ..cfg(false)
            },
        );
        assert_eq!(one.count, four.count);
        assert_eq!(one.element_ops, four.element_ops);
    }
}
