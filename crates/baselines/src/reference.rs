//! The reference oracle: plain recursive backtracking (Algorithm 1 of the
//! paper), with per-pair adjacency checks instead of set operations.
//!
//! Deliberately naive — its only job is to be obviously correct so the
//! engines can be validated against it on small inputs.

use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::order::MatchOrder;
use stmatch_pattern::symmetry::{bounds_for_order, Bound};
use stmatch_pattern::Pattern;

/// Matching semantics for the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefOptions {
    /// Vertex-induced (true) or edge-induced (false).
    pub induced: bool,
    /// Count each subgraph once (true) or each embedding (false).
    pub symmetry_breaking: bool,
}

impl Default for RefOptions {
    fn default() -> Self {
        RefOptions {
            induced: false,
            symmetry_breaking: true,
        }
    }
}

/// Counts matches of `p` in `g` by brute-force backtracking.
pub fn count(g: &Graph, p: &Pattern, opts: RefOptions) -> u64 {
    let mut out = 0u64;
    enumerate(g, p, opts, |_| out += 1);
    out
}

/// Enumerates matches of `p` in `g`, invoking `emit` with the embedding
/// (data vertex per order position) for each one.
pub fn enumerate<F: FnMut(&[VertexId])>(g: &Graph, p: &Pattern, opts: RefOptions, mut emit: F) {
    let order = MatchOrder::greedy(p);
    let bounds = if opts.symmetry_breaking {
        bounds_for_order(p, &order)
    } else {
        vec![Vec::new(); p.size()]
    };
    let mut matched: Vec<VertexId> = Vec::with_capacity(p.size());
    for v in g.vertices() {
        if admissible(g, p, &order, &bounds, &matched, v, opts) {
            matched.push(v);
            recurse(g, p, &order, &bounds, &mut matched, opts, &mut emit);
            matched.pop();
        }
    }
}

fn recurse<F: FnMut(&[VertexId])>(
    g: &Graph,
    p: &Pattern,
    order: &MatchOrder,
    bounds: &[Vec<(usize, Bound)>],
    matched: &mut Vec<VertexId>,
    opts: RefOptions,
    emit: &mut F,
) {
    let l = matched.len();
    if l == p.size() {
        emit(matched);
        return;
    }
    // Iterate over the neighbor list of the first matched backward neighbor
    // (the matching order guarantees one exists for l >= 1).
    let anchor = order
        .backward_positions(l)
        .next()
        .expect("connected matching order");
    let anchor_vertex = matched[anchor];
    for &v in g.neighbors(anchor_vertex) {
        if admissible(g, p, order, bounds, matched, v, opts) {
            matched.push(v);
            recurse(g, p, order, bounds, matched, opts, emit);
            matched.pop();
        }
    }
}

/// Full per-candidate admissibility check: label, injectivity, adjacency
/// (both directions in induced mode), and symmetry bounds.
fn admissible(
    g: &Graph,
    p: &Pattern,
    order: &MatchOrder,
    bounds: &[Vec<(usize, Bound)>],
    matched: &[VertexId],
    v: VertexId,
    opts: RefOptions,
) -> bool {
    let l = matched.len();
    let u = order.vertex_at(l);
    if p.is_labeled() && g.label(v) != p.label(u) {
        return false;
    }
    for (pos, &m) in matched.iter().enumerate() {
        if m == v {
            return false;
        }
        let pattern_edge = p.has_edge(u, order.vertex_at(pos));
        let data_edge = g.has_edge(v, m);
        if pattern_edge && !data_edge {
            return false;
        }
        if opts.induced && !pattern_edge && data_edge {
            return false;
        }
    }
    for &(pos, bound) in &bounds[l] {
        let ok = match bound {
            Bound::Less => v < matched[pos],
            Bound::Greater => v > matched[pos],
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::{datasets::toy, gen};
    use stmatch_pattern::{catalog, symmetry};

    fn embeddings(g: &Graph, p: &Pattern, induced: bool) -> u64 {
        count(
            g,
            p,
            RefOptions {
                induced,
                symmetry_breaking: false,
            },
        )
    }

    fn unique(g: &Graph, p: &Pattern, induced: bool) -> u64 {
        count(
            g,
            p,
            RefOptions {
                induced,
                symmetry_breaking: true,
            },
        )
    }

    #[test]
    fn triangles_in_complete_graphs() {
        for n in 3..=7 {
            let g = gen::complete(n);
            let t = catalog::triangle();
            // Unique triangles: C(n,3); embeddings: n*(n-1)*(n-2).
            let c3 = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(unique(&g, &t, false), c3);
            assert_eq!(embeddings(&g, &t, false), c3 * 6);
        }
    }

    #[test]
    fn k4_embeddings_in_k6() {
        let g = gen::complete(6);
        let q = catalog::clique(4);
        // P(6,4) = 360 embeddings; C(6,4) = 15 unique.
        assert_eq!(embeddings(&g, &q, false), 360);
        assert_eq!(unique(&g, &q, false), 15);
    }

    #[test]
    fn induced_vs_edge_induced_squares() {
        // K4 contains C(4 choose 4-cycles): edge-induced squares = 3
        // unique; vertex-induced squares = 0 (every 4 vertices have chords).
        let g = gen::complete(4);
        let sq = catalog::square();
        assert_eq!(unique(&g, &sq, false), 3);
        assert_eq!(unique(&g, &sq, true), 0);
    }

    #[test]
    fn squares_in_grid() {
        // A 3x3 grid has exactly 4 unit squares and no larger 4-cycles.
        let g = gen::grid(3, 3);
        let sq = catalog::square();
        assert_eq!(unique(&g, &sq, true), 4);
        assert_eq!(unique(&g, &sq, false), 4);
    }

    #[test]
    fn wedges_in_star() {
        // A star with k leaves has C(k,2) wedges (center = middle).
        let g = gen::star(6);
        assert_eq!(unique(&g, &catalog::wedge(), false), 15);
    }

    #[test]
    fn symmetry_factor_matches_automorphism_count() {
        let g = gen::erdos_renyi(24, 60, 11);
        for p in [
            catalog::triangle(),
            catalog::square(),
            catalog::diamond(),
            catalog::star3(),
            catalog::paper_query(6),
        ] {
            let aut = symmetry::automorphism_count(&p) as u64;
            for induced in [false, true] {
                let e = embeddings(&g, &p, induced);
                let u = unique(&g, &p, induced);
                assert_eq!(e, u * aut, "{} induced={induced}", p.name());
            }
        }
    }

    #[test]
    fn labels_restrict_matches() {
        // Triangle in K3: labels must match.
        let g = gen::complete(3).relabeled(vec![0, 1, 2]);
        let t = catalog::triangle();
        let ok = t.clone().with_labels(&[0, 1, 2]);
        let bad = t.with_labels(&[0, 0, 1]);
        assert_eq!(
            count(&g, &ok, RefOptions::default()),
            1,
            "one labeled triangle"
        );
        assert_eq!(count(&g, &bad, RefOptions::default()), 0);
    }

    #[test]
    fn house_contains_itself() {
        let g = toy::house();
        let p = Pattern::from_graph(&g);
        assert_eq!(unique(&g, &p, true), 1);
    }

    #[test]
    fn bowtie_triangle_count() {
        let g = toy::bowtie();
        assert_eq!(unique(&g, &catalog::triangle(), false), 2);
    }

    #[test]
    fn enumerate_yields_valid_embeddings() {
        let g = gen::erdos_renyi(16, 40, 3);
        let p = catalog::paper_query(2); // C5
        let order = MatchOrder::greedy(&p);
        let mut seen = 0u64;
        enumerate(
            &g,
            &p,
            RefOptions {
                induced: false,
                symmetry_breaking: true,
            },
            |m| {
                seen += 1;
                assert_eq!(m.len(), 5);
                for i in 0..5 {
                    for j in (i + 1)..5 {
                        assert_ne!(m[i], m[j], "injective");
                        if p.has_edge(order.vertex_at(i), order.vertex_at(j)) {
                            assert!(g.has_edge(m[i], m[j]), "edges preserved");
                        }
                    }
                }
            },
        );
        assert_eq!(seen, unique(&g, &p, false));
    }
}
