//! Baseline pattern-matching systems.
//!
//! Four comparators for the STMatch engine:
//!
//! * [`reference`] — a trivially-correct recursive enumerator used as the
//!   test oracle. It shares no set-operation machinery with the engines
//!   (adjacency is checked edge-by-edge), so agreement is meaningful.
//! * [`dryadic`] — a Dryadic-like multicore CPU engine: nested-loop
//!   backtracking over the compiled [`stmatch_pattern::MatchPlan`] (with
//!   code motion), parallelized over first-level chunks with a shared work
//!   queue. This is the paper's state-of-the-art CPU comparator.
//! * [`cuts`] — a cuTS-like subgraph-centric engine on the simulated GPU:
//!   level-synchronous expansion with materialized partial subgraphs, one
//!   kernel launch per extension step, and a device-memory budget that
//!   makes it fail with OOM on dense inputs (the '×' entries of Table II).
//! * [`gsi`] — a GSI-like BFS join engine for labeled matching with a
//!   partial-subgraph table.

pub mod cuts;
pub mod dryadic;
pub mod gsi;
pub mod reference;
