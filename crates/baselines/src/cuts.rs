//! A cuTS-like subgraph-centric engine on the simulated GPU.
//!
//! cuTS [30] is the state-of-the-art subgraph-isomorphism system the paper
//! compares against. Its defining properties, all reproduced here:
//!
//! * **Subgraph-centric, level-synchronous**: partial embeddings are
//!   materialized and extended one pattern vertex at a time, with a kernel
//!   launch (and grid-wide synchronization) per extension step.
//! * **Trie-compressed storage**: embeddings are stored as
//!   `(parent, vertex)` nodes per level, sharing prefixes — cuTS's compact
//!   trie data structure.
//! * **Hybrid BFS/DFS**: the outer-loop roots are processed in batches
//!   sized to the device-memory budget; a batch that still overflows is
//!   halved and retried, and a single root that overflows aborts with OOM
//!   (the '×' entries of Table II).
//! * **No loop hierarchy**: because the computation is driven by
//!   individual subgraphs, loop-invariant code motion is impossible — each
//!   extension re-evaluates the whole constraint chain of its level
//!   (compiled with `code_motion = false`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use stmatch_core::setops;
use stmatch_gpusim::{Grid, GridConfig, GridMetrics, MemoryBudget, OutOfMemory, Warp};
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::plan::Base;
use stmatch_pattern::symmetry::Bound;
use stmatch_pattern::{LabelMask, MatchPlan, Pattern, PlanOptions};

/// Simulated cost of one kernel launch, in SIMT instructions. A real launch
/// plus grid synchronization costs ~5 µs of fixed overhead; at ~1 GHz warp
/// issue that is a few thousand instruction slots.
pub const LAUNCH_OVERHEAD_CYCLES: u64 = 4096;

/// Configuration of the cuTS-like engine.
#[derive(Clone, Copy, Debug)]
pub struct CutsConfig {
    /// Grid geometry per kernel launch.
    pub grid: GridConfig,
    /// Device-memory budget for the materialized trie, in bytes.
    pub memory_limit: usize,
    /// Vertex-induced vs edge-induced (cuTS itself is edge-induced only).
    pub induced: bool,
    /// Count each subgraph once.
    pub symmetry_breaking: bool,
    /// Initial number of roots per hybrid batch.
    pub batch_roots: usize,
    /// Optional wall-clock budget; passing it cancels the run cooperatively
    /// and flags the outcome `timed_out`.
    pub timeout: Option<std::time::Duration>,
}

impl Default for CutsConfig {
    fn default() -> Self {
        CutsConfig {
            grid: GridConfig::default(),
            memory_limit: 1 << 30,
            induced: false,
            symmetry_breaking: true,
            batch_roots: 4096,
            timeout: None,
        }
    }
}

/// Result of a cuTS-like run.
#[derive(Clone, Debug)]
pub struct CutsOutcome {
    /// Matches found.
    pub count: u64,
    /// Aggregated metrics over all kernel launches.
    pub metrics: GridMetrics,
    /// Simulated time: Σ over launches of (slowest warp's instructions +
    /// launch overhead).
    pub simulated_cycles: u64,
    /// Peak device memory used by the embedding trie.
    pub peak_memory: usize,
    /// True when the run hit its wall-clock budget (partial count).
    pub timed_out: bool,
}

impl CutsOutcome {
    /// Wall-clock milliseconds across all launches.
    pub fn elapsed_ms(&self) -> f64 {
        self.metrics.elapsed_nanos as f64 / 1e6
    }
}

/// One trie node: an embedding extension `(parent at previous level, v)`.
#[derive(Clone, Copy, Debug)]
struct TrieNode {
    parent: u32,
    vertex: VertexId,
}

const NODE_BYTES: usize = std::mem::size_of::<TrieNode>();

/// Runs `pattern` over `graph`, or fails with device OOM.
pub fn run(graph: &Graph, pattern: &Pattern, cfg: CutsConfig) -> Result<CutsOutcome, OutOfMemory> {
    let plan = MatchPlan::compile(
        pattern,
        PlanOptions {
            induced: cfg.induced,
            // Subgraph-centric systems lose the loop hierarchy: no motion.
            code_motion: false,
            symmetry_breaking: cfg.symmetry_breaking,
        },
    );
    run_plan(graph, &plan, cfg)
}

/// Runs a pre-compiled plan. The plan should be compiled without code
/// motion to model cuTS faithfully (see [`run`]).
pub fn run_plan(
    graph: &Graph,
    plan: &MatchPlan,
    cfg: CutsConfig,
) -> Result<CutsOutcome, OutOfMemory> {
    let start = Instant::now();
    let deadline = cfg.timeout.map(|t| start + t);
    let mut timed_out = false;
    let memory = MemoryBudget::new(cfg.memory_limit);
    let grid = Grid::new(cfg.grid).expect("non-empty grid");
    let mut agg = GridMetrics::default();
    let mut sim_cycles = 0u64;
    let mut count = 0u64;

    // Level-0 roots, label-filtered.
    let roots: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| plan.level_label(0).is_none_or(|l| graph.label(v) == l))
        .collect();
    if plan.num_levels() == 1 {
        let elapsed = start.elapsed().as_nanos() as u64;
        return Ok(CutsOutcome {
            count: roots.len() as u64,
            metrics: GridMetrics {
                warps: Vec::new(),
                elapsed_nanos: elapsed,
                ..GridMetrics::default()
            },
            simulated_cycles: 0,
            peak_memory: 0,
            timed_out: false,
        });
    }

    // Hybrid BFS/DFS: batches of roots, halved on OOM.
    let mut next_root = 0usize;
    let mut batch_size = cfg.batch_roots.max(1);
    while next_root < roots.len() {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            timed_out = true;
            break;
        }
        let batch_end = (next_root + batch_size).min(roots.len());
        match run_batch(
            graph,
            plan,
            &grid,
            &memory,
            &roots[next_root..batch_end],
            &mut agg,
            &mut sim_cycles,
            deadline,
        ) {
            Ok(batch_count) => {
                count += batch_count;
                next_root = batch_end;
            }
            Err(oom) => {
                if batch_size == 1 {
                    return Err(oom);
                }
                batch_size = (batch_size / 2).max(1);
            }
        }
    }
    // A batch whose launch was truncated by the deadline has produced a
    // partial count; the clock being past the deadline is the witness.
    timed_out |= deadline.is_some_and(|d| Instant::now() >= d);
    agg.elapsed_nanos = start.elapsed().as_nanos() as u64;
    Ok(CutsOutcome {
        count,
        metrics: agg,
        simulated_cycles: sim_cycles,
        peak_memory: memory.peak(),
        timed_out,
    })
}

/// Extends one root batch level-synchronously to completion. Frees its trie
/// memory before returning (hybrid DFS behaviour).
#[allow(clippy::too_many_arguments)] // one call site; the args are the launch context
fn run_batch(
    graph: &Graph,
    plan: &MatchPlan,
    grid: &Grid,
    memory: &MemoryBudget,
    roots: &[VertexId],
    agg: &mut GridMetrics,
    sim_cycles: &mut u64,
    deadline: Option<Instant>,
) -> Result<u64, OutOfMemory> {
    let k = plan.num_levels();
    // levels[l] = trie nodes at level l; level 0 parents are u32::MAX.
    let mut levels: Vec<Vec<TrieNode>> = Vec::with_capacity(k - 1);
    let mut allocated = 0usize;
    memory.try_alloc(roots.len() * NODE_BYTES)?;
    allocated += roots.len() * NODE_BYTES;
    levels.push(
        roots
            .iter()
            .map(|&v| TrieNode {
                parent: u32::MAX,
                vertex: v,
            })
            .collect(),
    );

    let mut total = 0u64;
    for l in 1..k {
        let frontier = levels.last().expect("frontier exists");
        if frontier.is_empty() {
            break;
        }
        let last = l == k - 1;
        // One kernel launch: warps claim frontier chunks and extend them.
        let cursor = AtomicUsize::new(0);
        let matches = AtomicU64::new(0);
        let results: Vec<std::sync::Mutex<Vec<TrieNode>>> = (0..grid.config().total_warps())
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        let oom_hit = AtomicU64::new(0);
        let levels_ref = &levels;
        let metrics = grid.launch(|warp| {
            let t = Instant::now();
            let frontier = levels_ref.last().expect("frontier");
            let mut out: Vec<TrieNode> = Vec::new();
            let mut prefix = vec![0 as VertexId; k];
            let mut scratch = [Vec::new(), Vec::new()];
            'work: loop {
                let at = cursor.fetch_add(32, Ordering::Relaxed);
                if at >= frontier.len()
                    || oom_hit.load(Ordering::Relaxed) != 0
                    || deadline.is_some_and(|d| Instant::now() >= d)
                {
                    break;
                }
                let chunk = &frontier[at..(at + 32).min(frontier.len())];
                for (i, node) in chunk.iter().enumerate() {
                    let node_idx = (at + i) as u32;
                    // Recover the matched prefix by walking parents — the
                    // per-subgraph cost of losing the loop hierarchy.
                    walk_prefix(levels_ref, l - 1, *node, &mut prefix);
                    warp.simt_for(l, |_| {});
                    extend_one(graph, plan, warp, l, &prefix, &mut scratch);
                    warp.simt_for(scratch[0].len(), |_| {});
                    let residual = plan.residual_label_check(l);
                    if last {
                        let mut c = 0u64;
                        for &v in &scratch[0] {
                            if residual.is_some_and(|lbl| graph.label(v) != lbl) {
                                continue;
                            }
                            if valid(&prefix, plan.bounds(l), l, v) {
                                c += 1;
                            }
                        }
                        matches.fetch_add(c, Ordering::Relaxed);
                    } else {
                        let before = out.len();
                        for &v in &scratch[0] {
                            if residual.is_some_and(|lbl| graph.label(v) != lbl) {
                                continue;
                            }
                            if valid(&prefix, plan.bounds(l), l, v) {
                                out.push(TrieNode {
                                    parent: node_idx,
                                    vertex: v,
                                });
                            }
                        }
                        // Materialization traffic: two words per trie node
                        // stored to global memory — the cost the
                        // stack-based design avoids.
                        warp.simt_for(2 * (out.len() - before), |_| {});
                        // Device allocation in page-sized bursts.
                        if out.len() >= 1024 {
                            if memory.try_alloc(out.len() * NODE_BYTES).is_err() {
                                oom_hit.store(1, Ordering::Relaxed);
                                break 'work;
                            }
                            results[warp.id()]
                                .lock()
                                .expect("own-warp result lock")
                                .append(&mut out);
                        }
                    }
                }
            }
            if !out.is_empty() {
                if memory.try_alloc(out.len() * NODE_BYTES).is_err() {
                    oom_hit.store(1, Ordering::Relaxed);
                } else {
                    results[warp.id()]
                        .lock()
                        .expect("own-warp result lock")
                        .append(&mut out);
                }
            }
            warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
        });
        *sim_cycles += metrics
            .warps
            .iter()
            .map(|w| w.simt_instructions)
            .max()
            .unwrap_or(0)
            + LAUNCH_OVERHEAD_CYCLES;
        agg.merge(&metrics);
        total += matches.load(Ordering::Relaxed);

        let produced: usize = results
            .iter()
            .map(|r| r.lock().expect("own-warp result lock").len() * NODE_BYTES)
            .sum();
        if oom_hit.load(Ordering::Relaxed) != 0 {
            // Free what this batch allocated and report OOM upward.
            memory.free(allocated + produced);
            return Err(OutOfMemory {
                requested: NODE_BYTES * 1024,
                in_use: memory.in_use(),
                limit: memory.limit(),
            });
        }
        if last {
            break;
        }
        allocated += produced;
        let mut next: Vec<TrieNode> = Vec::new();
        for r in &results {
            next.append(&mut r.lock().expect("own-warp result lock"));
        }
        levels.push(next);
    }
    memory.free(allocated);
    Ok(total)
}

/// Walks trie parents to recover the matched prefix for `node` at `level`.
fn walk_prefix(levels: &[Vec<TrieNode>], level: usize, node: TrieNode, prefix: &mut [VertexId]) {
    prefix[level] = node.vertex;
    let mut cur = node;
    let mut l = level;
    while l > 0 {
        let parent = levels[l - 1][cur.parent as usize];
        prefix[l - 1] = parent.vertex;
        cur = parent;
        l -= 1;
    }
}

/// Evaluates the candidate chain of `level` for one embedding (the full
/// chain each time: no code motion). Result lands in `scratch[0]`.
fn extend_one(
    graph: &Graph,
    plan: &MatchPlan,
    warp: &mut Warp,
    level: usize,
    prefix: &[VertexId],
    scratch: &mut [Vec<VertexId>; 2],
) {
    let cid = plan.candidate_set(level).expect("level >= 1") as usize;
    let def = &plan.sets()[cid];
    let Base::Neighbors(pos) = def.base else {
        panic!("cuTS-like engine requires a code-motion-free plan");
    };
    let src = graph.neighbors(prefix[pos as usize]);
    let base_mask = if def.ops.is_empty() {
        def.mask
    } else {
        LabelMask::ALL
    };
    {
        let (a, _b) = scratch.split_at_mut(1);
        setops::materialize_base(warp, graph, &[src], base_mask, &mut a[..1]);
    }
    for (i, op) in def.ops.iter().enumerate() {
        let mask = if i + 1 == def.ops.len() {
            def.mask
        } else {
            LabelMask::ALL
        };
        let operand = graph.neighbors(prefix[op.pos as usize]);
        let (a, b) = scratch.split_at_mut(1);
        {
            let input: &[VertexId] = &a[0];
            setops::apply_op(
                warp,
                graph,
                &[input],
                &[operand],
                op.kind,
                mask,
                &mut b[..1],
            );
        }
        scratch.swap(0, 1);
    }
}

/// Injectivity + symmetry bounds.
#[inline]
fn valid(prefix: &[VertexId], bounds: &[(usize, Bound)], level: usize, v: VertexId) -> bool {
    for &m in &prefix[..level] {
        if m == v {
            return false;
        }
    }
    for &(pos, b) in bounds {
        let ok = match b {
            Bound::Less => v < prefix[pos],
            Bound::Greater => v > prefix[pos],
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{self, RefOptions};
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn cfg() -> CutsConfig {
        CutsConfig {
            grid: GridConfig {
                num_blocks: 2,
                warps_per_block: 2,
                shared_mem_per_block: 100 * 1024,
            },
            ..CutsConfig::default()
        }
    }

    #[test]
    fn triangles_in_k6() {
        let g = gen::complete(6);
        let out = run(&g, &catalog::triangle(), cfg()).unwrap();
        assert_eq!(out.count, 20);
        // Level-synchronous: one launch per extension step.
        assert_eq!(out.metrics.kernel_launches, 2);
    }

    #[test]
    fn agrees_with_oracle() {
        let g = gen::erdos_renyi(32, 110, 5);
        for i in [1, 4, 6, 8, 12, 16] {
            let q = catalog::paper_query(i);
            let want = reference::count(&g, &q, RefOptions::default());
            let got = run(&g, &q, cfg()).unwrap().count;
            assert_eq!(got, want, "q{i}");
        }
    }

    #[test]
    fn vertex_induced_agrees_with_oracle() {
        let g = gen::erdos_renyi(28, 90, 6);
        let q = catalog::paper_query(3);
        let want = reference::count(
            &g,
            &q,
            RefOptions {
                induced: true,
                symmetry_breaking: true,
            },
        );
        let mut c = cfg();
        c.induced = true;
        assert_eq!(run(&g, &q, c).unwrap().count, want);
    }

    #[test]
    fn tight_memory_fails_with_oom() {
        // Dense graph + tiny budget: the materialized trie cannot fit even
        // for a single root.
        let g = gen::complete(24);
        let mut c = cfg();
        c.memory_limit = 512;
        c.batch_roots = 64;
        match run(&g, &catalog::paper_query(8), c) {
            Err(oom) => assert_eq!(oom.limit, 512),
            Ok(out) => panic!("expected OOM, got count {}", out.count),
        }
    }

    #[test]
    fn hybrid_batching_survives_moderate_budgets() {
        // A budget too small for pure BFS but fine batch-by-batch.
        let g = gen::erdos_renyi(64, 512, 3);
        let q = catalog::paper_query(8); // K5
        let want = reference::count(&g, &q, RefOptions::default());
        let mut c = cfg();
        c.memory_limit = 64 * 1024;
        c.batch_roots = 8;
        let out = run(&g, &q, c).unwrap();
        assert_eq!(out.count, want);
        assert!(out.peak_memory <= 64 * 1024);
        // Hybrid mode costs extra launches compared to pure BFS.
        assert!(out.metrics.kernel_launches > 4);
    }

    #[test]
    fn launch_overhead_accumulates_in_sim_time() {
        let g = gen::erdos_renyi(40, 140, 9);
        let q = catalog::paper_query(1);
        let out = run(&g, &q, cfg()).unwrap();
        assert!(out.simulated_cycles >= out.metrics.kernel_launches * LAUNCH_OVERHEAD_CYCLES);
    }
}
