//! A GSI-like BFS join engine for labeled matching on the simulated GPU.
//!
//! GSI [32] extends partial subgraphs breadth-first with one kernel launch
//! per query vertex, storing *full embedding rows* in a prealloc-combine
//! table. Compared to the cuTS-like engine this means:
//!
//! * rows of `l` vertex ids per partial embedding (no trie compression),
//! * pure BFS — the whole frontier is materialized at every step, so
//!   dense or large graphs exhaust device memory (the paper: "GSI fails
//!   for all queries on MiCo, LiveJournal, Orkut and Friendster"),
//! * label filtering drives candidate generation (GSI targets labeled
//!   matching).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use stmatch_core::setops;
use stmatch_gpusim::{Grid, GridConfig, GridMetrics, MemoryBudget, OutOfMemory, Warp};
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::plan::Base;
use stmatch_pattern::symmetry::Bound;
use stmatch_pattern::{LabelMask, MatchPlan, Pattern, PlanOptions};

/// Configuration of the GSI-like engine.
#[derive(Clone, Copy, Debug)]
pub struct GsiConfig {
    /// Grid geometry per kernel launch.
    pub grid: GridConfig,
    /// Device-memory budget for embedding tables, in bytes.
    pub memory_limit: usize,
    /// Vertex-induced vs edge-induced.
    pub induced: bool,
    /// Count each subgraph once.
    pub symmetry_breaking: bool,
    /// Optional wall-clock budget; passing it cancels the run cooperatively
    /// and flags the outcome `timed_out`.
    pub timeout: Option<std::time::Duration>,
}

impl Default for GsiConfig {
    fn default() -> Self {
        GsiConfig {
            grid: GridConfig::default(),
            memory_limit: 1 << 30,
            induced: false,
            symmetry_breaking: true,
            timeout: None,
        }
    }
}

/// Result of a GSI-like run.
#[derive(Clone, Debug)]
pub struct GsiOutcome {
    /// Matches found.
    pub count: u64,
    /// Aggregated metrics over all kernel launches.
    pub metrics: GridMetrics,
    /// Simulated time (Σ per-launch slowest warp + launch overhead).
    pub simulated_cycles: u64,
    /// Peak table memory.
    pub peak_memory: usize,
    /// True when the run hit its wall-clock budget (partial count).
    pub timed_out: bool,
}

impl GsiOutcome {
    /// Wall-clock milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.metrics.elapsed_nanos as f64 / 1e6
    }
}

/// Runs `pattern` over `graph`, or fails with device OOM.
pub fn run(graph: &Graph, pattern: &Pattern, cfg: GsiConfig) -> Result<GsiOutcome, OutOfMemory> {
    let plan = MatchPlan::compile(
        pattern,
        PlanOptions {
            induced: cfg.induced,
            code_motion: false, // subgraph-centric: no loop hierarchy
            symmetry_breaking: cfg.symmetry_breaking,
        },
    );
    run_plan(graph, &plan, cfg)
}

/// Runs a pre-compiled (code-motion-free) plan.
pub fn run_plan(
    graph: &Graph,
    plan: &MatchPlan,
    cfg: GsiConfig,
) -> Result<GsiOutcome, OutOfMemory> {
    let start = Instant::now();
    let deadline = cfg.timeout.map(|t| start + t);
    let mut timed_out = false;
    let memory = MemoryBudget::new(cfg.memory_limit);
    let grid = Grid::new(cfg.grid).expect("non-empty grid");
    let k = plan.num_levels();
    let mut agg = GridMetrics::default();
    let mut sim_cycles = 0u64;

    // Level-0 table: label-filtered roots, one row each.
    let roots: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| plan.level_label(0).is_none_or(|l| graph.label(v) == l))
        .collect();
    if k == 1 {
        return Ok(GsiOutcome {
            count: roots.len() as u64,
            metrics: GridMetrics {
                warps: Vec::new(),
                elapsed_nanos: start.elapsed().as_nanos() as u64,
                ..GridMetrics::default()
            },
            simulated_cycles: 0,
            peak_memory: 0,
            timed_out: false,
        });
    }
    // table: row-major `width` (= level) vertices per embedding.
    let mut table: Vec<VertexId> = roots;
    memory.try_alloc(table.len() * 4)?;
    let mut table_bytes = table.len() * 4;

    let mut count = 0u64;
    for l in 1..k {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            timed_out = true;
            break;
        }
        let width = l;
        let rows = table.len() / width;
        if rows == 0 {
            break;
        }
        let last = l == k - 1;
        let cursor = AtomicUsize::new(0);
        let matches = AtomicU64::new(0);
        let oom_hit = AtomicU64::new(0);
        let results: Vec<std::sync::Mutex<Vec<VertexId>>> = (0..grid.config().total_warps())
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        let table_ref = &table;
        let metrics = grid.launch(|warp| {
            let t = Instant::now();
            let mut out: Vec<VertexId> = Vec::new();
            let mut scratch = [Vec::new(), Vec::new()];
            'work: loop {
                let at = cursor.fetch_add(32, Ordering::Relaxed);
                if at >= rows
                    || oom_hit.load(Ordering::Relaxed) != 0
                    || deadline.is_some_and(|d| Instant::now() >= d)
                {
                    break;
                }
                for row in at..(at + 32).min(rows) {
                    let prefix = &table_ref[row * width..(row + 1) * width];
                    // Row fetch from the global-memory table.
                    warp.simt_for(width, |_| {});
                    extend_row(graph, plan, warp, l, prefix, &mut scratch);
                    warp.simt_for(scratch[0].len(), |_| {});
                    let residual = plan.residual_label_check(l);
                    if last {
                        let mut c = 0u64;
                        for &v in &scratch[0] {
                            if residual.is_some_and(|lbl| graph.label(v) != lbl) {
                                continue;
                            }
                            if valid(prefix, plan.bounds(l), v) {
                                c += 1;
                            }
                        }
                        matches.fetch_add(c, Ordering::Relaxed);
                    } else {
                        let before = out.len();
                        for &v in &scratch[0] {
                            if residual.is_some_and(|lbl| graph.label(v) != lbl) {
                                continue;
                            }
                            if valid(prefix, plan.bounds(l), v) {
                                out.extend_from_slice(prefix);
                                out.push(v);
                            }
                        }
                        // Materialization traffic: a full row per emitted
                        // embedding stored to global memory.
                        warp.simt_for(out.len() - before, |_| {});
                        if out.len() >= 4096 {
                            if memory.try_alloc(out.len() * 4).is_err() {
                                oom_hit.store(1, Ordering::Relaxed);
                                break 'work;
                            }
                            results[warp.id()]
                                .lock()
                                .expect("own-warp result lock")
                                .append(&mut out);
                        }
                    }
                }
            }
            if !out.is_empty() {
                if memory.try_alloc(out.len() * 4).is_err() {
                    oom_hit.store(1, Ordering::Relaxed);
                } else {
                    results[warp.id()]
                        .lock()
                        .expect("own-warp result lock")
                        .append(&mut out);
                }
            }
            warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
        });
        sim_cycles += metrics
            .warps
            .iter()
            .map(|w| w.simt_instructions)
            .max()
            .unwrap_or(0)
            + crate::cuts::LAUNCH_OVERHEAD_CYCLES;
        agg.merge(&metrics);
        count += matches.load(Ordering::Relaxed);

        let produced: usize = results
            .iter()
            .map(|r| r.lock().expect("own-warp result lock").len() * 4)
            .sum();
        if oom_hit.load(Ordering::Relaxed) != 0 {
            memory.free(table_bytes + produced);
            return Err(OutOfMemory {
                requested: 4096 * 4,
                in_use: memory.in_use(),
                limit: memory.limit(),
            });
        }
        if last {
            break;
        }
        // Pure BFS: swap in the next table, free the previous one.
        let mut next: Vec<VertexId> = Vec::new();
        for r in &results {
            next.append(&mut r.lock().expect("own-warp result lock"));
        }
        memory.free(table_bytes);
        table_bytes = produced;
        table = next;
    }
    memory.free(table_bytes);
    // A level whose launch was truncated by the deadline produced a partial
    // frontier or count.
    timed_out |= deadline.is_some_and(|d| Instant::now() >= d);
    agg.elapsed_nanos = start.elapsed().as_nanos() as u64;
    Ok(GsiOutcome {
        count,
        metrics: agg,
        simulated_cycles: sim_cycles,
        peak_memory: memory.peak(),
        timed_out,
    })
}

/// Candidate generation for one row: full chain evaluation (no motion).
fn extend_row(
    graph: &Graph,
    plan: &MatchPlan,
    warp: &mut Warp,
    level: usize,
    prefix: &[VertexId],
    scratch: &mut [Vec<VertexId>; 2],
) {
    let cid = plan.candidate_set(level).expect("level >= 1") as usize;
    let def = &plan.sets()[cid];
    let Base::Neighbors(pos) = def.base else {
        panic!("GSI-like engine requires a code-motion-free plan");
    };
    let src = graph.neighbors(prefix[pos as usize]);
    let base_mask = if def.ops.is_empty() {
        def.mask
    } else {
        LabelMask::ALL
    };
    {
        let (a, _) = scratch.split_at_mut(1);
        setops::materialize_base(warp, graph, &[src], base_mask, &mut a[..1]);
    }
    for (i, op) in def.ops.iter().enumerate() {
        let mask = if i + 1 == def.ops.len() {
            def.mask
        } else {
            LabelMask::ALL
        };
        let operand = graph.neighbors(prefix[op.pos as usize]);
        let (a, b) = scratch.split_at_mut(1);
        {
            let input: &[VertexId] = &a[0];
            setops::apply_op(
                warp,
                graph,
                &[input],
                &[operand],
                op.kind,
                mask,
                &mut b[..1],
            );
        }
        scratch.swap(0, 1);
    }
}

/// Injectivity + symmetry bounds against a full row prefix.
#[inline]
fn valid(prefix: &[VertexId], bounds: &[(usize, Bound)], v: VertexId) -> bool {
    if prefix.contains(&v) {
        return false;
    }
    for &(pos, b) in bounds {
        let ok = match b {
            Bound::Less => v < prefix[pos],
            Bound::Greater => v > prefix[pos],
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{self, RefOptions};
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn cfg() -> GsiConfig {
        GsiConfig {
            grid: GridConfig {
                num_blocks: 2,
                warps_per_block: 2,
                shared_mem_per_block: 100 * 1024,
            },
            ..GsiConfig::default()
        }
    }

    #[test]
    fn labeled_triangles_agree_with_oracle() {
        let g = gen::assign_random_labels(&gen::erdos_renyi(40, 200, 4), 3, 5);
        let q = catalog::triangle().with_random_labels(3, 1);
        let want = reference::count(&g, &q, RefOptions::default());
        assert_eq!(run(&g, &q, cfg()).unwrap().count, want);
    }

    #[test]
    fn labeled_paper_queries_agree() {
        let g = gen::assign_random_labels(&gen::erdos_renyi(30, 100, 8), 4, 2);
        for i in [2, 5, 10, 16] {
            let q = catalog::paper_query(i).with_random_labels(4, i as u64);
            let want = reference::count(&g, &q, RefOptions::default());
            assert_eq!(run(&g, &q, cfg()).unwrap().count, want, "q{i}");
        }
    }

    #[test]
    fn unlabeled_also_works() {
        let g = gen::complete(7);
        assert_eq!(run(&g, &catalog::k4(), cfg()).unwrap().count, 35);
    }

    #[test]
    fn pure_bfs_ooms_where_hybrid_survives() {
        // Budget that the cuTS-like hybrid survives but pure BFS does not:
        // a dense ER graph whose triangle table alone exceeds the budget.
        let g = gen::erdos_renyi(128, 2048, 3);
        let q = catalog::paper_query(8);
        let mut gc = cfg();
        gc.memory_limit = 48 * 1024;
        assert!(run(&g, &q, gc).is_err(), "GSI-like must OOM at 48 KiB");
        let mut cc = crate::cuts::CutsConfig {
            memory_limit: 48 * 1024,
            batch_roots: 8,
            ..crate::cuts::CutsConfig::default()
        };
        cc.grid = gc.grid;
        assert!(crate::cuts::run(&g, &q, cc).is_ok());
    }

    #[test]
    fn launches_once_per_level() {
        let g = gen::erdos_renyi(30, 90, 2);
        let out = run(&g, &catalog::paper_query(8), cfg()).unwrap();
        assert_eq!(out.metrics.kernel_launches, 4); // K5: levels 1..=4
    }
}
