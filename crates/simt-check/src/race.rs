//! Shadow-cell data-race detection.
//!
//! Every instrumented piece of shared state maps to one [`Cell`]. The
//! shadow store keeps, per cell, the epoch/site/thread of the last write
//! and of the most recent read by each thread. [`note_write`] /
//! [`note_read`] compare the accessor's vector clock against those records:
//! a conflicting access the accessor has *not* observed (no happens-before
//! path through an instrumented lock or launch fork/join) is a data race.
//!
//! Shadow-cell layout (also documented in DESIGN.md §4e):
//!
//! | cell            | guards                                        |
//! |-----------------|-----------------------------------------------|
//! | `board[i].mirror[w]` | warp `w`'s stealable mirror stack (`MirrorState`) on board instance `i` |
//! | `board[i].slot[b]`   | block `b`'s global steal slot payload on board instance `i` |
//! | `board[i].requeue`   | board instance `i`'s reclaimed-work queue |
//! | `arena[a].set[s]` | set slab `s` of stack-arena instance `a`     |
//! | `plan-cache[s]` | the canonical-form plan cache of service instance `s` |
//! | `tier-state[p]` | compiled plan `p`'s execution tier + tier-up counter |
//! | `rail[r]`       | the cross-shard work rail of sharded run instance `r` |
//!
//! Board/arena/service instance ids come from [`crate::next_object_id`],
//! so two concurrently live boards (e.g. two service pool workers
//! launching at once) never alias each other's cells.

use crate::{with_my_clock, Severity};
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{LazyLock, Mutex};

/// Identity of one instrumented shared-state cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Cell {
    kind: CellKind,
    a: u32,
    b: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum CellKind {
    Mirror,
    GlobalSlot,
    Requeue,
    ArenaSet,
    PlanCache,
    TierState,
    Rail,
}

impl Cell {
    /// Warp `w`'s mirror stack on board instance `board`
    /// (from [`crate::next_object_id`]).
    pub fn mirror(board: u32, w: usize) -> Cell {
        Cell {
            kind: CellKind::Mirror,
            a: board,
            b: w as u32,
        }
    }

    /// Block `b`'s global steal slot on board instance `board`.
    pub fn global_slot(board: u32, b: usize) -> Cell {
        Cell {
            kind: CellKind::GlobalSlot,
            a: board,
            b: b as u32,
        }
    }

    /// Board instance `board`'s requeue queue.
    pub fn requeue(board: u32) -> Cell {
        Cell {
            kind: CellKind::Requeue,
            a: board,
            b: 0,
        }
    }

    /// Set slab `set` of arena instance `arena_id`
    /// (from [`crate::next_object_id`]).
    pub fn arena(arena_id: u32, set: usize) -> Cell {
        Cell {
            kind: CellKind::ArenaSet,
            a: arena_id,
            b: set as u32,
        }
    }

    /// The canonical-form plan cache of service instance `service`
    /// (from [`crate::next_object_id`]).
    pub fn plan_cache(service: u32) -> Cell {
        Cell {
            kind: CellKind::PlanCache,
            a: service,
            b: 0,
        }
    }

    /// The execution-tier state (current tier + tier-up counter) of
    /// compiled plan instance `plan` (from [`crate::next_object_id`]).
    /// Written only under the `PlanTierUp` lock; the claim loop's
    /// fast-path tier *reads* are relaxed atomic loads and deliberately
    /// un-instrumented — they are racy-by-design snapshots, not accesses
    /// the shadow store should flag.
    pub fn tier_state(plan: u32) -> Cell {
        Cell {
            kind: CellKind::TierState,
            a: plan,
            b: 0,
        }
    }

    /// The cross-shard work rail of sharded run instance `rail_id`
    /// (from [`crate::next_object_id`]).
    pub fn rail(rail_id: u32) -> Cell {
        Cell {
            kind: CellKind::Rail,
            a: rail_id,
            b: 0,
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            CellKind::Mirror => write!(f, "board[{}].mirror[{}]", self.a, self.b),
            CellKind::GlobalSlot => write!(f, "board[{}].slot[{}]", self.a, self.b),
            CellKind::Requeue => write!(f, "board[{}].requeue", self.a),
            CellKind::ArenaSet => write!(f, "arena[{}].set[{}]", self.a, self.b),
            CellKind::PlanCache => write!(f, "plan-cache[{}]", self.a),
            CellKind::TierState => write!(f, "tier-state[{}]", self.a),
            CellKind::Rail => write!(f, "rail[{}]", self.a),
        }
    }
}

/// One recorded access: who, when, where.
#[derive(Clone, Debug)]
struct Access {
    slot: u32,
    epoch: u32,
    site: String,
    who: String,
}

#[derive(Default)]
struct Shadow {
    last_write: Option<Access>,
    /// Most recent read per thread slot (`slot -> Access`).
    reads: HashMap<u32, Access>,
}

static SHADOW: LazyLock<Mutex<HashMap<Cell, Shadow>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

pub(crate) fn reset() {
    SHADOW.lock().unwrap().clear();
}

fn site_of(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

fn race_report(cell: Cell, kind: &str, prior: &Access, site: &str, who: &str) {
    let key = format!("{cell}:{}:{}", prior.site, site);
    crate::report(
        Severity::Error,
        "race",
        key,
        format!(
            "data race on {cell}: {kind} at {site} ({who}) is unordered with \
             the access at {} ({}) — no happens-before edge (lock or launch \
             fork/join) connects the two sites",
            prior.site, prior.who
        ),
    );
}

/// Records a write access to `cell` at the caller's source location and
/// checks it against the shadow state. Use for any access that mutates the
/// protected state (instrumented lock acquisitions conservatively count as
/// writes: two lock holders of the *same* lock are ordered through the lock
/// clock, so this only fires when an access bypasses the lock).
#[inline] // the checker-off fast path must inline into the hot claim loops
#[track_caller]
pub fn note_write(cell: Cell) {
    if !crate::races_on() {
        return;
    }
    note_write_impl(cell, Location::caller());
}

/// [`note_write`] with an explicit (already-captured) source location, for
/// instrumentation wrappers that forward their own caller's site.
#[inline]
pub fn note_write_at(cell: Cell, loc: &'static Location<'static>) {
    if !crate::races_on() {
        return;
    }
    note_write_impl(cell, loc);
}

#[cold]
fn note_write_impl(cell: Cell, loc: &'static Location<'static>) {
    let site = site_of(loc);
    let who = crate::describe_self();
    with_my_clock(|slot, clock| {
        let mut shadow = SHADOW.lock().unwrap();
        let entry = shadow.entry(cell).or_default();
        if let Some(w) = &entry.last_write {
            if w.slot != slot && !clock.dominates(w.slot, w.epoch) {
                race_report(cell, "write", w, &site, &who);
            }
        }
        for r in entry.reads.values() {
            if r.slot != slot && !clock.dominates(r.slot, r.epoch) {
                race_report(cell, "write", r, &site, &who);
            }
        }
        entry.last_write = Some(Access {
            slot,
            epoch: clock.get(slot),
            site,
            who,
        });
        entry.reads.clear();
    });
}

/// Records a read access to `cell` at the caller's source location and
/// checks it against the last write.
#[inline] // the checker-off fast path must inline into the arena read path
#[track_caller]
pub fn note_read(cell: Cell) {
    if !crate::races_on() {
        return;
    }
    note_read_impl(cell, Location::caller());
}

#[cold]
fn note_read_impl(cell: Cell, loc: &'static Location<'static>) {
    let site = site_of(loc);
    let who = crate::describe_self();
    with_my_clock(|slot, clock| {
        let mut shadow = SHADOW.lock().unwrap();
        let entry = shadow.entry(cell).or_default();
        if let Some(w) = &entry.last_write {
            if w.slot != slot && !clock.dominates(w.slot, w.epoch) {
                race_report(cell, "read", w, &site, &who);
            }
        }
        entry.reads.insert(
            slot,
            Access {
                slot,
                epoch: clock.get(slot),
                site,
                who,
            },
        );
    });
}
