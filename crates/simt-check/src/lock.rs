//! Lock-order deadlock analysis and the instrumented lock guard.
//!
//! Every instrumented mutex belongs to a [`LockClass`] with a declared
//! rank. The rule (the static hierarchy, declared next to the locks in
//! `core/src/steal.rs` and mirrored in [`DECLARED_HIERARCHY`]): **a thread
//! may only acquire a lock of strictly greater rank than every lock it
//! already holds.** Any schedule that obeys the rule is deadlock-free.
//!
//! Independently of the declared ranks, each observed nesting `A held while
//! acquiring B` adds a class-level edge `A -> B` to a runtime acquisition
//! graph; a cycle in that graph is reported with the call sites that
//! created each edge. The rank check catches a violation on its first
//! occurrence; the cycle check proves that two observed orders actually
//! close a loop.
//!
//! [`tracked_lock`] also feeds the race detector: the acquired lock acts as
//! a happens-before sync object (acquire joins the thread clock from the
//! lock clock; release publishes the thread clock into it). The release
//! event fires *before* the mutex actually unlocks — see the field order in
//! [`Tracked`].

use crate::clock::VClock;
use crate::{with_my_clock, Severity};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::panic::Location;
use std::sync::{LazyLock, Mutex, MutexGuard, PoisonError};

/// The classes of instrumented locks, with their declared ranks.
///
/// See the hierarchy table in `core/src/steal.rs` (the authoritative,
/// code-adjacent copy) and DESIGN.md §4e.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockClass {
    /// The match service's mutable graph state (`service::Inner::delta`):
    /// the delta overlay, current snapshot, and watcher registry. Ranked
    /// below everything: `apply_batch` holds it only to fold a batch and
    /// clone out snapshots/watchers (never across a launch), and workers
    /// take it alone to fetch the current snapshot before admission work.
    ServiceGraph,
    /// The match service's admission queue (`service::Inner::queue`).
    /// Service locks rank *below* every engine lock: they are never held
    /// across a kernel launch, while engine locks are taken deep inside
    /// one — so "service before engine" is the only safe order.
    ServiceAdmission,
    /// A compiled plan's tier-transition lock (`compile::CompiledPlan`).
    /// Ranked below the plan cache: tier-ups fire from kernel claim loops
    /// holding nothing, while stat sweeps clone entries *out* of the cache
    /// before reading tier state — so this lock is never requested while
    /// `ServicePlanCache` is held.
    PlanTierUp,
    /// The match service's canonical-form plan cache (`service::Inner::cache`).
    ServicePlanCache,
    /// A pool worker's reusable-arena pool (`pool::ArenaPool`).
    ServiceArenaPool,
    /// The cross-shard work rail (`shard::ShardRail::state`). Ranked below
    /// every per-board lock: a shard queries the rail from its claim loop
    /// holding nothing, and the death path releases the local requeue guard
    /// before pushing reclaimed payloads onto the rail — so the rail is
    /// never requested while a board lock is held.
    ShardRail,
    /// Per-block global steal slot (`Board::slots[b]`).
    GlobalSlot,
    /// The engine-wide reclaimed-work queue (`Board::requeue`).
    Requeue,
    /// Per-warp stealable mirror stack (`Mirror::state`).
    Mirror,
    /// The engine's death-record log (recovery path).
    DeathLog,
    /// The enumeration result collector.
    Collector,
}

impl LockClass {
    /// Declared rank: acquisitions must be in strictly increasing rank.
    pub fn rank(self) -> u32 {
        match self {
            LockClass::ServiceGraph => 1,
            LockClass::ServiceAdmission => 2,
            LockClass::PlanTierUp => 3,
            LockClass::ServicePlanCache => 4,
            LockClass::ServiceArenaPool => 6,
            LockClass::ShardRail => 8,
            LockClass::GlobalSlot => 10,
            LockClass::Requeue => 20,
            LockClass::Mirror => 30,
            LockClass::DeathLog => 40,
            LockClass::Collector => 50,
        }
    }

    /// Human-readable class name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LockClass::ServiceGraph => "ServiceGraph",
            LockClass::ServiceAdmission => "ServiceAdmission",
            LockClass::PlanTierUp => "PlanTierUp",
            LockClass::ServicePlanCache => "ServicePlanCache",
            LockClass::ServiceArenaPool => "ServiceArenaPool",
            LockClass::ShardRail => "ShardRail",
            LockClass::GlobalSlot => "GlobalSlot",
            LockClass::Requeue => "Requeue",
            LockClass::Mirror => "Mirror",
            LockClass::DeathLog => "DeathLog",
            LockClass::Collector => "Collector",
        }
    }

    fn all() -> [LockClass; 11] {
        [
            LockClass::ServiceGraph,
            LockClass::ServiceAdmission,
            LockClass::PlanTierUp,
            LockClass::ServicePlanCache,
            LockClass::ServiceArenaPool,
            LockClass::ShardRail,
            LockClass::GlobalSlot,
            LockClass::Requeue,
            LockClass::Mirror,
            LockClass::DeathLog,
            LockClass::Collector,
        ]
    }
}

/// The declared hierarchy, lowest rank first — rendered into diagnostics so
/// a violation message carries the rule it broke.
pub const DECLARED_HIERARCHY: &str = "ServiceGraph(1) < ServiceAdmission(2) < PlanTierUp(3) < \
     ServicePlanCache(4) < ServiceArenaPool(6) < ShardRail(8) < GlobalSlot(10) < \
     Requeue(20) < Mirror(30) < DeathLog(40) < Collector(50)";

thread_local! {
    /// Locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<(LockClass, usize, String)>> = const { RefCell::new(Vec::new()) };
}

struct OrderGraph {
    /// Observed class-level nesting edges: `(outer, inner) -> (site that
    /// held outer, site that acquired inner)`.
    edges: BTreeMap<(LockClass, LockClass), (String, String)>,
}

static ORDER: LazyLock<Mutex<OrderGraph>> = LazyLock::new(|| {
    Mutex::new(OrderGraph {
        edges: BTreeMap::new(),
    })
});

/// Per-(class, index) lock clocks for the race detector's happens-before
/// edges.
static LOCK_CLOCKS: LazyLock<Mutex<HashMap<(LockClass, usize), VClock>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

pub(crate) fn reset() {
    ORDER.lock().unwrap().edges.clear();
    LOCK_CLOCKS.lock().unwrap().clear();
    // HELD is thread-local and self-balancing (guards pop on drop); live
    // guards across an enable() boundary keep their entries, which is the
    // conservative choice.
}

fn site_of(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

/// Looks for a cycle through `start` in the observed edge graph and, if one
/// exists, renders it (`A -> B at <site> -> ... -> A`).
fn find_cycle(graph: &OrderGraph, start: LockClass) -> Option<String> {
    // The class alphabet is tiny (see LockClass::all), so a depth-first
    // walk over all simple paths is plenty.
    fn dfs(
        graph: &OrderGraph,
        start: LockClass,
        here: LockClass,
        path: &mut Vec<LockClass>,
    ) -> bool {
        for next in LockClass::all() {
            if !graph.edges.contains_key(&(here, next)) {
                continue;
            }
            if next == start {
                path.push(next);
                return true;
            }
            if path.contains(&next) {
                continue;
            }
            path.push(next);
            if dfs(graph, start, next, path) {
                return true;
            }
            path.pop();
        }
        false
    }
    let mut path = vec![start];
    if !dfs(graph, start, start, &mut path) {
        return None;
    }
    let mut rendered = String::new();
    for pair in path.windows(2) {
        let (outer, inner) = (pair[0], pair[1]);
        let (held_at, acquired_at) = &graph.edges[&(outer, inner)];
        rendered.push_str(&format!(
            "{} -> {} (held at {held_at}, acquired at {acquired_at}); ",
            outer.name(),
            inner.name()
        ));
    }
    rendered.pop();
    rendered.pop();
    Some(rendered)
}

fn on_acquire_intent(class: LockClass, index: usize, loc: &'static Location<'static>) {
    let site = site_of(loc);
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        let mut order = ORDER.lock().unwrap();
        for (outer, outer_idx, outer_site) in held.iter() {
            order
                .edges
                .entry((*outer, class))
                .or_insert_with(|| (outer_site.clone(), site.clone()));
            if *outer == class && *outer_idx == index {
                crate::report(
                    Severity::Error,
                    "lock-cycle",
                    format!("recursive:{}:{index}:{site}", class.name()),
                    format!(
                        "recursive acquisition of {}[{index}] at {site} while already \
                         held (acquired at {outer_site}) — self-deadlock ({})",
                        class.name(),
                        crate::describe_self()
                    ),
                );
                continue;
            }
            if class.rank() <= outer.rank() {
                // A rank violation. If the opposite order has also been
                // observed, report the closed cycle (names both sites);
                // otherwise report the hierarchy violation itself.
                if let Some(cycle) = find_cycle(&order, class) {
                    crate::report(
                        Severity::Error,
                        "lock-cycle",
                        format!("cycle:{}:{}", outer.name(), class.name()),
                        format!(
                            "lock-order cycle: acquiring {}[{index}] at {site} while \
                             holding {}[{outer_idx}] (acquired at {outer_site}) closes \
                             the cycle {cycle} — declared hierarchy is {DECLARED_HIERARCHY}",
                            class.name(),
                            outer.name()
                        ),
                    );
                } else {
                    crate::report(
                        Severity::Error,
                        "lock-order",
                        format!("order:{}:{}:{site}", outer.name(), class.name()),
                        format!(
                            "lock-order violation: acquiring {}[{index}] (rank {}) at \
                             {site} while holding {}[{outer_idx}] (rank {}, acquired at \
                             {outer_site}) — declared hierarchy is {DECLARED_HIERARCHY}",
                            class.name(),
                            class.rank(),
                            outer.name(),
                            outer.rank()
                        ),
                    );
                }
            }
        }
        held.push((class, index, site));
    });
}

fn on_release(class: LockClass, index: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held
            .iter()
            .rposition(|(c, i, _)| *c == class && *i == index)
        {
            held.remove(pos);
        }
    });
}

/// RAII token that emits the checker's release events. Declared as the
/// *first* field of [`Tracked`] so it drops before the inner `MutexGuard`:
/// the release event (publishing the holder's clock into the lock clock)
/// must be visible to the checker before any other thread can acquire the
/// mutex, otherwise a well-locked successor would look racy.
struct ReleaseToken {
    class: LockClass,
    index: usize,
    deadlock: bool,
    races: bool,
}

impl Drop for ReleaseToken {
    fn drop(&mut self) {
        if self.races {
            with_my_clock(|slot, clock| {
                let mut clocks = LOCK_CLOCKS.lock().unwrap();
                clocks
                    .entry((self.class, self.index))
                    .or_default()
                    .join(clock);
                clock.tick(slot);
            });
        }
        if self.deadlock {
            on_release(self.class, self.index);
        }
    }
}

/// An instrumented `MutexGuard`: derefs to the protected data, emits
/// acquire/release events for the deadlock and race checkers, and recovers
/// from poisoning (a poisoned instrumented lock means a warp died while
/// holding it; the engine's containment protocol repairs the protected
/// state, so propagating the poison would only turn one contained fault
/// into a cascade — same contract as `Mirror::lock`).
pub struct Tracked<'a, T> {
    // Field order is load-bearing: the token must be declared before
    // `guard` so Rust's declaration-order drop runs the release event while
    // the mutex is still held. (Underscore name: the field is only ever
    // "read" by its Drop impl.)
    _token: Option<ReleaseToken>,
    guard: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for Tracked<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for Tracked<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Locks `m` with checker instrumentation.
///
/// Event order: acquisition *intent* is checked against the held-lock stack
/// before blocking (a thread about to deadlock still reports the order
/// violation); the happens-before join from the lock clock happens after
/// the mutex is actually held. With all checkers off this compiles down to
/// `m.lock()` plus two relaxed flag loads.
#[inline] // checkers off: this must cost `m.lock()` plus two flag loads, inlined
#[track_caller]
pub fn tracked_lock<'a, T>(m: &'a Mutex<T>, class: LockClass, index: usize) -> Tracked<'a, T> {
    let deadlock = crate::deadlock_on();
    let races = crate::races_on();
    if deadlock {
        on_acquire_intent(class, index, Location::caller());
    }
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    if races {
        with_my_clock(|_, clock| {
            if let Some(lc) = LOCK_CLOCKS.lock().unwrap().get(&(class, index)) {
                clock.join(lc);
            }
        });
    }
    let token = (deadlock || races).then_some(ReleaseToken {
        class,
        index,
        deadlock,
        races,
    });
    Tracked {
        _token: token,
        guard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These unit tests mutate process-global checker state; the `serial`
    // guard keeps them (and only them — this is the only test binary in
    // the crate that enables checkers) from interleaving.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn increasing_rank_order_is_clean() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        crate::enable(crate::CheckConfig::all());
        let slot = Mutex::new(0u32);
        let mirror = Mutex::new(0u32);
        {
            let _a = tracked_lock(&slot, LockClass::GlobalSlot, 0);
            let _b = tracked_lock(&mirror, LockClass::Mirror, 1);
        }
        let diags = crate::drain();
        crate::disable();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn inverted_order_reports_violation_then_cycle() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        crate::enable(crate::CheckConfig::all());
        let slot = Mutex::new(0u32);
        let mirror = Mutex::new(0u32);
        {
            let _a = tracked_lock(&slot, LockClass::GlobalSlot, 0);
            let _b = tracked_lock(&mirror, LockClass::Mirror, 1);
        }
        {
            let _b = tracked_lock(&mirror, LockClass::Mirror, 1);
            let _a = tracked_lock(&slot, LockClass::GlobalSlot, 0);
        }
        let diags = crate::drain();
        crate::disable();
        assert!(
            diags.iter().any(|d| d.code == "lock-cycle"
                && d.message.contains("cycle")
                && d.message.contains("GlobalSlot")
                && d.message.contains("Mirror")),
            "{diags:?}"
        );
    }

    #[test]
    fn recursive_acquisition_is_reported() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        crate::enable(crate::CheckConfig::all());
        // Intent is recorded before blocking, so the diagnostic fires even
        // though actually re-locking would deadlock; use intent + manual
        // release to simulate.
        super::on_acquire_intent(LockClass::Mirror, 3, Location::caller());
        super::on_acquire_intent(LockClass::Mirror, 3, Location::caller());
        super::on_release(LockClass::Mirror, 3);
        super::on_release(LockClass::Mirror, 3);
        let diags = crate::drain();
        crate::disable();
        assert!(
            diags
                .iter()
                .any(|d| d.code == "lock-cycle" && d.message.contains("recursive")),
            "{diags:?}"
        );
    }
}
