//! Vector clocks.
//!
//! A [`VClock`] maps thread slots (process-unique, never reused) to epoch
//! counters. Thread `t`'s own component `clock[t]` is its current epoch;
//! joining another clock imports everything that clock has observed. The
//! race detector's happens-before question is always "does the accessor's
//! clock dominate the recorded access epoch?" — [`VClock::dominates`].

/// A grow-on-demand vector clock. Missing components read as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    epochs: Vec<u32>,
}

impl VClock {
    /// The empty clock (all components 0).
    pub const fn new() -> VClock {
        VClock { epochs: Vec::new() }
    }

    /// The epoch of `slot` as observed by this clock.
    pub fn get(&self, slot: u32) -> u32 {
        self.epochs.get(slot as usize).copied().unwrap_or(0)
    }

    /// Advances `slot`'s component by one.
    pub fn tick(&mut self, slot: u32) {
        let i = slot as usize;
        if i >= self.epochs.len() {
            self.epochs.resize(i + 1, 0);
        }
        self.epochs[i] += 1;
    }

    /// Component-wise maximum: after `a.join(b)`, `a` has observed
    /// everything `a` or `b` had observed.
    pub fn join(&mut self, other: &VClock) {
        if other.epochs.len() > self.epochs.len() {
            self.epochs.resize(other.epochs.len(), 0);
        }
        for (mine, theirs) in self.epochs.iter_mut().zip(&other.epochs) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether this clock has observed `(slot, epoch)` — i.e. the recorded
    /// access happens-before the accessor holding this clock.
    pub fn dominates(&self, slot: u32, epoch: u32) -> bool {
        self.get(slot) >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn dominates_is_per_component() {
        let mut a = VClock::new();
        a.tick(0);
        assert!(a.dominates(0, 1));
        assert!(!a.dominates(0, 2));
        assert!(!a.dominates(5, 1));
        assert!(a.dominates(5, 0));
    }
}
