//! simt-check: concurrency-correctness analysis for the software GPU.
//!
//! Three checkers, all off by default and zero-cost when off (every public
//! hook opens with a relaxed load of one `AtomicU8` and returns):
//!
//! 1. **Vector-clock data-race detection** ([`race`]): instrumented shared
//!    state (Board mirrors, global steal slots, the requeue queue, stack
//!    arena set slabs) is mapped to *shadow cells*. Each OS thread — the
//!    host plus one per simulated warp — carries a vector clock;
//!    happens-before edges come from instrumented lock acquire/release
//!    ([`lock::tracked_lock`]) and launch fork/join ([`launch_begin`] /
//!    [`register_warp`] / [`warp_exit`] / [`launch_end`]). An access whose
//!    clock does not dominate the cell's last conflicting access epoch is a
//!    data race; the diagnostic names both racing sites.
//!
//! 2. **Lock-order deadlock analysis** ([`lock`]): every instrumented lock
//!    belongs to a [`lock::LockClass`] with a declared rank (the static
//!    hierarchy table lives in `core/src/steal.rs` and is mirrored in
//!    [`lock::DECLARED_HIERARCHY`]). Acquiring a lock whose rank does not
//!    exceed the rank of a lock already held is a hierarchy violation;
//!    independently, class-level acquisition edges are accumulated into a
//!    runtime graph and any cycle is reported with the call sites that
//!    created each edge.
//!
//! 3. **SIMT divergence lints** ([`diverge`]): the software warp tracks its
//!    current active-lane mask. A ballot/shfl/scan that involves lanes
//!    inactive under a divergent mask mirrors real-GPU undefined behavior
//!    (`__ballot_sync` with non-participating lanes) and is a hard
//!    diagnostic. Per call site, wave occupancy is accumulated and
//!    sustained sub-warp utilization is reported as a warning.
//!
//! Checkers are process-global (enable once, run a scenario, [`drain`]).
//! Tests that enable them must serialize against each other; the
//! workspace's `tests/simt_check.rs` does so behind a single mutex.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Mutex;

pub mod clock;
pub mod diverge;
pub mod lock;
pub mod race;

use clock::VClock;

// ---------------------------------------------------------------------------
// Checker flags
// ---------------------------------------------------------------------------

const F_RACES: u8 = 1 << 0;
const F_DEADLOCK: u8 = 1 << 1;
const F_DIVERGENCE: u8 = 1 << 2;

/// Which checkers a scenario enables, plus divergence-lint thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckConfig {
    /// Vector-clock data-race detection over shadow cells.
    pub races: bool,
    /// Lock-order hierarchy + runtime acquisition-graph cycle analysis.
    pub deadlock: bool,
    /// Ballot-mask contract + sub-warp utilization lints.
    pub divergence: bool,
    /// A wave call site is only eligible for the sub-warp-utilization
    /// warning once it has issued at least this many waves (one-off partial
    /// tail waves are normal).
    pub util_min_waves: u64,
    /// Utilization (active lane slots / issued lane slots) at or below
    /// which a sustained wave site is flagged.
    pub util_threshold: f64,
}

impl CheckConfig {
    /// All checkers on, default thresholds.
    pub fn all() -> CheckConfig {
        CheckConfig {
            races: true,
            deadlock: true,
            divergence: true,
            util_min_waves: 8,
            util_threshold: 0.5,
        }
    }

    /// All checkers off (the process default).
    pub fn off() -> CheckConfig {
        CheckConfig {
            races: false,
            deadlock: false,
            divergence: false,
            util_min_waves: 8,
            util_threshold: 0.5,
        }
    }

    /// Parses a checker list like `races,deadlock,divergence` (also accepts
    /// `all` / `none`). Unknown names are an error so typos in reproduce
    /// lines fail loudly.
    pub fn parse(spec: &str) -> Result<CheckConfig, String> {
        let mut cfg = CheckConfig::off();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part {
                "races" => cfg.races = true,
                "deadlock" => cfg.deadlock = true,
                "divergence" => cfg.divergence = true,
                "all" => {
                    cfg.races = true;
                    cfg.deadlock = true;
                    cfg.divergence = true;
                }
                "none" => {}
                other => return Err(format!("unknown checker {other:?} in {spec:?}")),
            }
        }
        Ok(cfg)
    }

    /// Reads a [`CheckConfig`] from an environment variable (the reproduce
    /// lines use `SIMT_CHECK=races,deadlock,divergence`). `None` when the
    /// variable is unset.
    pub fn from_env(var: &str) -> Option<Result<CheckConfig, String>> {
        std::env::var(var).ok().map(|v| CheckConfig::parse(&v))
    }

    /// Renders the enabled-checker list in the form `parse` accepts —
    /// the `SIMT_CHECK=` value of a reproduce line.
    pub fn spec(&self) -> String {
        let mut parts = Vec::new();
        if self.races {
            parts.push("races");
        }
        if self.deadlock {
            parts.push("deadlock");
        }
        if self.divergence {
            parts.push("divergence");
        }
        if parts.is_empty() {
            parts.push("none");
        }
        parts.join(",")
    }
}

/// The single global flag byte. Every instrumentation hook in `gpu-sim` and
/// `core` gates on one relaxed load of this static, so a disabled checker
/// costs one predictable branch per hook — the "zero-cost no-op statics"
/// contract. `hotpath_check` verifies metrics stay bit-identical with
/// checkers off.
static FLAGS: AtomicU8 = AtomicU8::new(0);

/// Sub-warp utilization thresholds, fixed at `enable` time.
/// (bits 0..63: min_waves, stored separately for simplicity.)
static UTIL_MIN_WAVES: Mutex<u64> = Mutex::new(8);
static UTIL_THRESHOLD_MILLI: AtomicU32 = AtomicU32::new(500);

/// Enables the given checkers and clears all analysis state (shadow cells,
/// lock graph, wave-site stats, pending diagnostics). Thread clocks of
/// live threads are *not* reset — clocks are monotone, so stale entries can
/// only over-approximate happens-before, never invent a race.
pub fn enable(cfg: CheckConfig) {
    reset_state();
    *UTIL_MIN_WAVES.lock().unwrap() = cfg.util_min_waves;
    UTIL_THRESHOLD_MILLI.store(
        (cfg.util_threshold * 1000.0).round() as u32,
        Ordering::Relaxed,
    );
    let mut bits = 0;
    if cfg.races {
        bits |= F_RACES;
    }
    if cfg.deadlock {
        bits |= F_DEADLOCK;
    }
    if cfg.divergence {
        bits |= F_DIVERGENCE;
    }
    FLAGS.store(bits, Ordering::SeqCst);
}

/// Turns every checker off (instrumentation hooks return to no-ops).
/// Pending diagnostics survive until the next [`drain`] or [`enable`].
pub fn disable() {
    FLAGS.store(0, Ordering::SeqCst);
}

#[inline(always)]
pub fn races_on() -> bool {
    FLAGS.load(Ordering::Relaxed) & F_RACES != 0
}

#[inline(always)]
pub fn deadlock_on() -> bool {
    FLAGS.load(Ordering::Relaxed) & F_DEADLOCK != 0
}

#[inline(always)]
pub fn divergence_on() -> bool {
    FLAGS.load(Ordering::Relaxed) & F_DIVERGENCE != 0
}

#[inline(always)]
pub fn any_on() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

fn reset_state() {
    race::reset();
    lock::reset();
    diverge::reset();
    let mut sink = SINK.lock().unwrap();
    sink.diags.clear();
    sink.seen.clear();
    sink.errors = 0;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// Diagnostic severity: `Error` fails a gate, `Warning` is advisory
/// (sub-warp utilization).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One checker finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable machine-grepable code: `race`, `lock-cycle`, `lock-order`,
    /// `ballot-mask`, `shfl-mask`, `scan-mask`, `subwarp-util`,
    /// `budget-underflow`.
    pub code: &'static str,
    pub message: String,
    /// Deterministic reproduce line (set via [`set_reproduce`]).
    pub reproduce: Option<String>,
}

impl Diagnostic {
    /// Renders the diagnostic the way the `simt_check` bin prints it.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = format!("{sev}[{}]: {}", self.code, self.message);
        if let Some(rep) = &self.reproduce {
            out.push_str(&format!("\n    reproduce: {rep}"));
        }
        out
    }
}

struct Sink {
    diags: Vec<Diagnostic>,
    /// Dedup keys so a hot loop reports each distinct finding once.
    seen: std::collections::HashSet<String>,
    errors: usize,
    reproduce: Option<String>,
}

static SINK: std::sync::LazyLock<Mutex<Sink>> = std::sync::LazyLock::new(|| {
    Mutex::new(Sink {
        diags: Vec::new(),
        seen: std::collections::HashSet::new(),
        errors: 0,
        reproduce: None,
    })
});

/// Sets the command rendered into every subsequent diagnostic's
/// `reproduce:` line. The convention (documented in the README) is
/// `SIMT_CHECK=<spec> <command>` so a reader can re-run the exact scenario.
pub fn set_reproduce(line: impl Into<String>) {
    SINK.lock().unwrap().reproduce = Some(line.into());
}

/// Files a diagnostic, deduplicating by `(code, dedup_key)`.
pub(crate) fn report(severity: Severity, code: &'static str, dedup_key: String, message: String) {
    let mut sink = SINK.lock().unwrap();
    if !sink.seen.insert(format!("{code}:{dedup_key}")) {
        return;
    }
    if severity == Severity::Error {
        sink.errors += 1;
    }
    let reproduce = sink.reproduce.clone();
    sink.diags.push(Diagnostic {
        severity,
        code,
        message,
        reproduce,
    });
}

/// Files an API-misuse diagnostic from outside the crate (e.g. the memory
/// budget's underflow guard).
pub fn report_misuse(code: &'static str, message: String) {
    report(Severity::Error, code, message.clone(), message);
}

/// Number of error-severity diagnostics filed since the last
/// [`enable`]/[`drain`].
pub fn error_count() -> usize {
    SINK.lock().unwrap().errors
}

/// Removes and returns all pending diagnostics, appending sub-warp
/// utilization warnings computed from the accumulated wave-site stats
/// (which are cleared too).
pub fn drain() -> Vec<Diagnostic> {
    let min_waves = *UTIL_MIN_WAVES.lock().unwrap();
    let threshold = UTIL_THRESHOLD_MILLI.load(Ordering::Relaxed) as f64 / 1000.0;
    for (site, waves, issued, active) in diverge::drain_sites() {
        if waves < min_waves || issued == 0 {
            continue;
        }
        let util = active as f64 / issued as f64;
        if util <= threshold {
            report(
                Severity::Warning,
                "subwarp-util",
                site.clone(),
                format!(
                    "sustained sub-warp utilization at {site}: {waves} waves, \
                     {active}/{issued} lane slots active ({:.1}%) — combine work \
                     across slots (Fig. 8) or lower the unroll factor",
                    util * 100.0
                ),
            );
        }
    }
    let mut sink = SINK.lock().unwrap();
    sink.errors = 0;
    sink.seen.clear();
    std::mem::take(&mut sink.diags)
}

// ---------------------------------------------------------------------------
// Thread registry: per-thread vector clocks and warp identity
// ---------------------------------------------------------------------------

static NEXT_SLOT: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static SLOT: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
    static WARP_ID: std::cell::Cell<i64> = const { std::cell::Cell::new(-1) };
    static CLOCK: std::cell::RefCell<VClock> = const { std::cell::RefCell::new(VClock::new()) };
}

/// This thread's clock slot, lazily assigned. Slots are never reused;
/// clocks are monotone for the life of the process.
pub(crate) fn my_slot() -> u32 {
    SLOT.with(|s| {
        let mut v = s.get();
        if v == u32::MAX {
            v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
            CLOCK.with(|c| c.borrow_mut().tick(v));
        }
        v
    })
}

/// Runs `f` with this thread's clock (slot assigned on first use).
pub(crate) fn with_my_clock<R>(f: impl FnOnce(u32, &mut VClock) -> R) -> R {
    let slot = my_slot();
    CLOCK.with(|c| f(slot, &mut c.borrow_mut()))
}

/// Advances this thread's epoch — called after releasing a lock and at warp
/// ballots/barriers so distinct synchronization intervals get distinct
/// epochs.
#[inline] // called per simulated ballot; the races-off path is one flag load
pub fn epoch_advance() {
    if !races_on() {
        return;
    }
    with_my_clock(|slot, clock| clock.tick(slot));
}

/// The simulated warp id this OS thread is running, if any (for
/// diagnostics).
pub fn current_warp() -> Option<usize> {
    let id = WARP_ID.with(|w| w.get());
    (id >= 0).then_some(id as usize)
}

pub(crate) fn describe_self() -> String {
    match current_warp() {
        Some(w) => format!("warp {w}"),
        None => "host thread".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Launch fork/join happens-before
// ---------------------------------------------------------------------------

static FORK_CLOCK: Mutex<VClock> = Mutex::new(VClock::new());
static JOIN_CLOCK: Mutex<VClock> = Mutex::new(VClock::new());

/// Called by the grid on the launching thread just before warp threads
/// spawn: merges the launcher's clock into the fork point. Joining (rather
/// than overwriting) keeps the hook correct when several launchers are in
/// flight at once — a resident service's pool workers launch concurrently,
/// and an overwrite would erase launcher A's pre-launch history just as A's
/// warps inherit the fork clock, inventing races on state A prepared (e.g.
/// `Board::preload`'s requeue write). The join is a conservative
/// over-approximation: it can only add happens-before edges, never remove
/// them, so it may mask a cross-launcher race but cannot report a false one.
pub fn launch_begin() {
    if !races_on() {
        return;
    }
    with_my_clock(|_, clock| {
        FORK_CLOCK.lock().unwrap().join(clock);
    });
}

/// Called on each warp thread as it starts: inherits the fork-point clock
/// (everything the launcher did happens-before every warp) and records the
/// warp id for diagnostics.
pub fn register_warp(warp_id: usize) {
    WARP_ID.with(|w| w.set(warp_id as i64));
    if !races_on() {
        return;
    }
    with_my_clock(|slot, clock| {
        clock.join(&FORK_CLOCK.lock().unwrap());
        clock.tick(slot);
    });
}

/// Called on each warp thread after its kernel body returns (or is caught
/// panicking): contributes its clock to the join point. Injected fault
/// panics are contained before this hook, so a dead warp still publishes
/// its clock — that is what keeps salvage relaunches and post-join state
/// reads race-free in the checker's eyes.
pub fn warp_exit() {
    WARP_ID.with(|w| w.set(-1));
    if !races_on() {
        return;
    }
    with_my_clock(|_, clock| {
        JOIN_CLOCK.lock().unwrap().join(clock);
    });
}

/// Called by the grid on the launching thread after all warp threads have
/// been joined: every warp's history happens-before everything the launcher
/// does next (leftover preloading, metrics aggregation, golden checks).
pub fn launch_end() {
    if !races_on() {
        return;
    }
    with_my_clock(|slot, clock| {
        clock.join(&JOIN_CLOCK.lock().unwrap());
        clock.tick(slot);
    });
}

// ---------------------------------------------------------------------------
// Object identity for instrumented containers
// ---------------------------------------------------------------------------

static NEXT_OBJECT: AtomicU32 = AtomicU32::new(0);

/// Allocates a process-unique id for an instrumented container (e.g. a
/// stack arena), so shadow cells from different instances never alias.
pub fn next_object_id() -> u32 {
    NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
}

// Re-export the workhorse types at the crate root: instrumentation sites
// read better as `simt_check::tracked_lock(...)` / `simt_check::Cell::...`.
pub use lock::{tracked_lock, LockClass, Tracked};
pub use race::{note_read, note_write, note_write_at, Cell};
