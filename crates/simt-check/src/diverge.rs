//! SIMT divergence lints.
//!
//! The software warp (`stmatch-gpu-sim`'s `Warp`) tracks a current
//! active-lane mask: a `wave(active, ..)` narrows the mask to `active`, the
//! `ballot` that closes the wave reconverges it to all 32 lanes. The lints
//! enforce the CUDA `__ballot_sync` contract on that state machine:
//!
//! * `ballot(bits)` with `bits` naming lanes inactive under a divergent
//!   mask is undefined behavior on hardware (non-participating lanes in a
//!   sync intrinsic) — hard diagnostic, listing the offending lanes.
//! * `exclusive_scan` is a full-warp cooperative primitive; invoking it
//!   while diverged is the same class of UB — hard diagnostic.
//! * `shfl` reading from a source lane that is inactive under a divergent
//!   mask yields garbage on hardware — hard diagnostic.
//!
//! Separately, every `wave` call site accumulates occupancy statistics
//! (waves issued, lane slots issued vs active); [`crate::drain`] turns
//! sustained sub-warp utilization into warnings keyed by call site.

use crate::Severity;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{LazyLock, Mutex};

const FULL_MASK: u32 = u32::MAX;

#[derive(Default)]
struct SiteStats {
    waves: u64,
    issued: u64,
    active: u64,
}

static SITES: LazyLock<Mutex<HashMap<String, SiteStats>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

pub(crate) fn reset() {
    SITES.lock().unwrap().clear();
}

/// Drains the per-site wave stats as `(site, waves, issued, active)`.
pub(crate) fn drain_sites() -> Vec<(String, u64, u64, u64)> {
    let mut sites = SITES.lock().unwrap();
    let mut out: Vec<_> = sites
        .drain()
        .map(|(site, s)| (site, s.waves, s.issued, s.active))
        .collect();
    out.sort();
    out
}

fn site_of(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

fn lanes_of(mask: u32) -> String {
    let lanes: Vec<String> = (0..32)
        .filter(|l| mask & (1 << l) != 0)
        .map(|l| l.to_string())
        .collect();
    lanes.join(",")
}

/// Records a `wave(active)` issued at `loc` (the warp sets its current
/// mask to `active` alongside this call).
pub fn on_wave(loc: &'static Location<'static>, active: u32, warp: usize) {
    let _ = warp;
    let mut sites = SITES.lock().unwrap();
    let s = sites.entry(site_of(loc)).or_default();
    s.waves += 1;
    s.issued += 32;
    s.active += active.count_ones() as u64;
}

/// Checks a `ballot(bits)` against the warp's current mask `mask`.
/// Returns after filing a diagnostic if the mask contract is violated.
pub fn on_ballot(loc: &'static Location<'static>, bits: u32, mask: u32, warp: usize) {
    let stray = bits & !mask;
    if mask != FULL_MASK && stray != 0 {
        let site = site_of(loc);
        crate::report(
            Severity::Error,
            "ballot-mask",
            format!("{site}:{mask:#x}:{stray:#x}"),
            format!(
                "ballot mask contract violated at {site} (warp {warp}): ballot bits \
                 {bits:#010x} include {} lane(s) inactive under the divergent mask \
                 {mask:#010x} (lanes {}) — on hardware this is `__ballot_sync` with \
                 non-participating lanes, which is undefined behavior",
                stray.count_ones(),
                lanes_of(stray)
            ),
        );
    }
}

/// Checks an `exclusive_scan` (full-warp cooperative primitive) issued
/// under mask `mask`.
pub fn on_scan(loc: &'static Location<'static>, mask: u32, warp: usize) {
    if mask != FULL_MASK {
        let site = site_of(loc);
        crate::report(
            Severity::Error,
            "scan-mask",
            format!("{site}:{mask:#x}"),
            format!(
                "warp-cooperative scan at {site} (warp {warp}) issued while diverged \
                 (current mask {mask:#010x}, inactive lanes {}) — all 32 lanes must \
                 participate in a scan wave",
                lanes_of(!mask)
            ),
        );
    }
}

/// Checks a `shfl` reading from `src_lane` under mask `mask`.
pub fn on_shfl(loc: &'static Location<'static>, src_lane: usize, mask: u32, warp: usize) {
    if mask != FULL_MASK && src_lane < 32 && mask & (1 << src_lane) == 0 {
        let site = site_of(loc);
        crate::report(
            Severity::Error,
            "shfl-mask",
            format!("{site}:{mask:#x}:{src_lane}"),
            format!(
                "shfl at {site} (warp {warp}) reads lane {src_lane}, which is inactive \
                 under the divergent mask {mask:#010x} — on hardware the read value \
                 is undefined",
            ),
        );
    }
}
