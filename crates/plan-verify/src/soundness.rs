//! Soundness checks: does the plan actually implement the pattern?
//!
//! Three independent proofs, each reported as named diagnostics on failure:
//!
//! * **Adjacency/connectivity** — for every level `l >= 1`, the closure of
//!   its candidate chain (following `Base::Set` dependencies back to the
//!   rooting neighbor list) must intersect with *exactly* the backward
//!   pattern neighbors of `order[l]`, and in vertex-induced mode subtract
//!   exactly the backward non-neighbors. A missing intersection over-counts,
//!   a spurious one under-counts, and an empty intersection set means the
//!   level is disconnected from the matched prefix entirely.
//! * **Symmetry-break completeness** — the per-level bounds the plan
//!   carries must equal (as multisets) the bounds the orbit–stabilizer
//!   construction derives from the pattern's automorphism group for the
//!   plan's own matching order. A dropped bound multiplies counts by an
//!   orbit factor; an invented one silently discards subgraphs.
//! * **Shard coverage** — the virtual cuts of a `ShardPlan` must tile the
//!   level-0 domain exactly once: cuts monotone from `0` to `n`, and the
//!   order a permutation of the vertex universe. (Taken as plain slices so
//!   this crate needs no dependency on the engine.)

use crate::diag::{DiagKind, Diagnostic};
use stmatch_graph::VertexId;
use stmatch_pattern::plan::{Base, MatchPlan, OpKind};
use stmatch_pattern::symmetry;

/// Checks every level's candidate chain against the pattern's adjacency.
pub fn check_adjacency(plan: &MatchPlan, repro: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let pattern = plan.pattern();
    let order = plan.order();
    let sets = plan.sets();
    for l in 1..plan.num_levels() {
        let Some(cand) = plan.candidate_set(l) else {
            continue; // structural absence is caught by bytecode lowering
        };
        // Closure of the chain: walk Base::Set deps down to the rooting
        // neighbor list, collecting (position, kind) of every op.
        let mut intersects = 0u32;
        let mut differences = 0u32;
        let mut sid = cand as usize;
        loop {
            let def = &sets[sid];
            for op in &def.ops {
                match op.kind {
                    OpKind::Intersect => intersects |= 1 << op.pos,
                    OpKind::Difference => differences |= 1 << op.pos,
                }
            }
            match def.base {
                Base::Neighbors(p) => {
                    intersects |= 1 << p;
                    break;
                }
                Base::Set(d) => sid = d as usize,
            }
        }
        let u = order.vertex_at(l);
        let mut expected_int = 0u32;
        let mut expected_diff = 0u32;
        for j in 0..l {
            if pattern.has_edge(u, order.vertex_at(j)) {
                expected_int |= 1 << j;
            } else if plan.induced() {
                expected_diff |= 1 << j;
            }
        }
        if intersects == 0 {
            diags.push(Diagnostic::new(
                DiagKind::DisconnectedLevel { level: l },
                format!(
                    "plan-verify: level {l} candidate chain has no intersection \
                     with the matched prefix (disconnected level)"
                ),
                repro,
            ));
        }
        for pos in 0..l {
            let bit = 1u32 << pos;
            if expected_int & bit != 0 && intersects & bit == 0 {
                diags.push(Diagnostic::new(
                    DiagKind::MissingAdjacency { level: l, pos },
                    format!(
                        "plan-verify: level {l} never intersects position {pos} \
                         although the pattern has that edge (over-count)"
                    ),
                    repro,
                ));
            }
            if expected_int & bit == 0 && intersects & bit != 0 {
                diags.push(Diagnostic::new(
                    DiagKind::SpuriousAdjacency { level: l, pos },
                    format!(
                        "plan-verify: level {l} intersects position {pos} without \
                         a pattern edge (under-count)"
                    ),
                    repro,
                ));
            }
            if expected_diff & bit != 0 && differences & bit == 0 {
                diags.push(Diagnostic::new(
                    DiagKind::MissingDifference { level: l, pos },
                    format!(
                        "plan-verify: induced level {l} never subtracts \
                         non-neighbor position {pos} (over-count)"
                    ),
                    repro,
                ));
            }
            if expected_diff & bit == 0 && differences & bit != 0 {
                diags.push(Diagnostic::new(
                    DiagKind::SpuriousDifference { level: l, pos },
                    format!(
                        "plan-verify: level {l} subtracts position {pos} it must \
                         not (under-count)"
                    ),
                    repro,
                ));
            }
        }
    }
    diags
}

/// Checks the plan's symmetry bounds against the automorphism group.
/// Skipped (empty result) when the plan was compiled without symmetry
/// breaking — all-embedding counting carries no bounds by design.
pub fn check_symmetry(plan: &MatchPlan, repro: &str) -> Vec<Diagnostic> {
    if !plan.options().symmetry_breaking {
        return Vec::new();
    }
    let expected = symmetry::bounds_for_order(plan.pattern(), plan.order());
    let mut diags = Vec::new();
    for (l, level_bounds) in expected.iter().enumerate().take(plan.num_levels()) {
        let mut want = level_bounds.clone();
        let mut have = plan.bounds(l).to_vec();
        want.sort_unstable_by_key(|&(p, d)| (p, d == symmetry::Bound::Greater));
        have.sort_unstable_by_key(|&(p, d)| (p, d == symmetry::Bound::Greater));
        // Multiset difference in both directions.
        for &(pos, dir) in &want {
            if !remove_one(&mut have, (pos, dir)) {
                diags.push(Diagnostic::new(
                    DiagKind::MissingSymmetryBound { level: l, pos, dir },
                    format!(
                        "plan-verify: level {l} drops the symmetry bound against \
                         position {pos} ({dir:?}) required by the automorphism \
                         group (duplicate counting)"
                    ),
                    repro,
                ));
            }
        }
        for &(pos, dir) in &have {
            diags.push(Diagnostic::new(
                DiagKind::ExtraSymmetryBound { level: l, pos, dir },
                format!(
                    "plan-verify: level {l} carries an unjustified symmetry bound \
                     against position {pos} ({dir:?}) (lost subgraphs)"
                ),
                repro,
            ));
        }
    }
    diags
}

fn remove_one(v: &mut Vec<(usize, symmetry::Bound)>, item: (usize, symmetry::Bound)) -> bool {
    match v.iter().position(|&x| x == item) {
        Some(i) => {
            v.remove(i);
            true
        }
        None => false,
    }
}

/// Proves a shard split tiles the level-0 domain exactly once. `order` and
/// `cuts` are the fields of the engine's `ShardPlan`; `num_vertices` is the
/// data-graph universe size.
pub fn check_shard_cover(
    order: &[VertexId],
    cuts: &[usize],
    num_vertices: usize,
    repro: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let malformed = |cut: usize| {
        Diagnostic::new(
            DiagKind::ShardCutMalformed { cut },
            format!("plan-verify: shard cut {cut} is malformed (must run 0..=n monotonically)"),
            repro,
        )
    };
    if cuts.len() < 2 || cuts[0] != 0 {
        diags.push(malformed(0));
    }
    for c in 1..cuts.len() {
        if cuts[c] < cuts[c - 1] || cuts[c] > order.len() {
            diags.push(malformed(c));
        }
    }
    if let Some(&last) = cuts.last() {
        if last != order.len() {
            diags.push(malformed(cuts.len() - 1));
        }
    }
    // shard_of[v] = first shard that covers v (usize::MAX = uncovered).
    let shard_of_idx = |i: usize| -> usize {
        match cuts.iter().position(|&c| c > i) {
            Some(s) => s.saturating_sub(1),
            None => cuts.len().saturating_sub(2),
        }
    };
    let mut first_shard = vec![usize::MAX; num_vertices];
    for (i, &v) in order.iter().enumerate() {
        let vu = v as usize;
        if vu >= num_vertices {
            diags.push(Diagnostic::new(
                DiagKind::ShardGap { vertex: v },
                format!("plan-verify: shard order names vertex {v} outside the universe"),
                repro,
            ));
            continue;
        }
        let s = shard_of_idx(i);
        if first_shard[vu] == usize::MAX {
            first_shard[vu] = s;
        } else {
            diags.push(Diagnostic::new(
                DiagKind::ShardOverlap {
                    vertex: v,
                    first: first_shard[vu],
                    second: s,
                },
                format!(
                    "plan-verify: vertex {v} covered twice (shards {} and {s}) — \
                     its level-0 subtree would be double counted",
                    first_shard[vu]
                ),
                repro,
            ));
        }
    }
    for (vu, &s) in first_shard.iter().enumerate() {
        if s == usize::MAX {
            diags.push(Diagnostic::new(
                DiagKind::ShardGap {
                    vertex: vu as VertexId,
                },
                format!("plan-verify: vertex {vu} covered by no shard — its subtree is lost"),
                repro,
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_pattern::catalog;
    use stmatch_pattern::plan::{mutation, MatchPlan, PlanOptions};

    #[test]
    fn paper_queries_are_sound_in_every_mode() {
        for q in catalog::all_paper_queries() {
            for induced in [false, true] {
                for symmetry_breaking in [false, true] {
                    let plan = MatchPlan::compile(
                        &q,
                        PlanOptions {
                            induced,
                            symmetry_breaking,
                            ..PlanOptions::default()
                        },
                    );
                    let a = check_adjacency(&plan, "test");
                    let s = check_symmetry(&plan, "test");
                    assert!(a.is_empty(), "{}: {:?}", q.name(), a);
                    assert!(s.is_empty(), "{}: {:?}", q.name(), s);
                }
            }
        }
    }

    #[test]
    fn dropped_symmetry_bound_is_named() {
        let mut plan = MatchPlan::compile(&catalog::paper_query(8), PlanOptions::default());
        let (level, pos) = mutation::drop_symmetry_bound(&mut plan).expect("K5 carries bounds");
        let diags = check_symmetry(&plan, "test");
        assert_eq!(diags.len(), 1);
        assert!(
            matches!(
                diags[0].kind,
                DiagKind::MissingSymmetryBound { level: l, pos: p, .. } if l == level && p == pos
            ),
            "{:?}",
            diags[0]
        );
    }

    #[test]
    fn shard_cover_accepts_exact_tilings() {
        let order: Vec<VertexId> = vec![3, 1, 0, 2];
        let cuts = vec![0, 2, 4];
        assert!(check_shard_cover(&order, &cuts, 4, "test").is_empty());
    }

    #[test]
    fn shard_overlap_and_gap_are_named() {
        // Vertex 3 covered twice (shards 0 and 1), vertex 2 never.
        let order: Vec<VertexId> = vec![3, 1, 0, 3];
        let cuts = vec![0, 2, 4];
        let diags = check_shard_cover(&order, &cuts, 4, "test");
        assert!(diags.iter().any(|d| matches!(
            d.kind,
            DiagKind::ShardOverlap {
                vertex: 3,
                first: 0,
                second: 1
            }
        )));
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ShardGap { vertex: 2 })));
    }

    #[test]
    fn malformed_cuts_are_named() {
        let order: Vec<VertexId> = vec![0, 1, 2];
        assert!(!check_shard_cover(&order, &[1, 3], 3, "t").is_empty());
        assert!(!check_shard_cover(&order, &[0, 2], 3, "t").is_empty());
        assert!(check_shard_cover(&order, &[0, 3, 2, 3], 3, "t")
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ShardCutMalformed { cut: 2 })));
    }
}
