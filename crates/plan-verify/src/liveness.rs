//! Dataflow liveness over the lowered bytecode stream.
//!
//! The analysis is classic def/use over set slots, in *level space*: the
//! `last` write of set `s` at level `d` is its definition (unique, enforced
//! by [`PlanBytecode::verify`]'s `DuplicateWrite`/`MissingWrite` checks);
//! uses are every `ApplyFromSet` that names `s` as its dependency plus
//! every level that iterates `s` as its candidate. Because the kernel's
//! recursion re-enters level `d` repeatedly, a set defined at `d` and last
//! used at `u >= d` is live over the whole interval `[d, u]` — two sets can
//! legally share one physical slab iff those intervals are disjoint.
//!
//! A set with no uses at all is *dead*: the stream still computes and
//! writes it on every claim, and the arena reserves `unroll × cap` cells
//! for it per warp. Plan compilation never emits one (candidates are used
//! by construction and `fold_unshared_sets` collapses unused
//! intermediates), so a dead set in a stream is evidence of plan
//! corruption and is reported as a named diagnostic.

use crate::diag::{DiagKind, Diagnostic};
use stmatch_pattern::bytecode::{OpCode, PlanBytecode, NO_SET};

/// Liveness facts for one set slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetLiveness {
    /// Level of the set's unique `last` write.
    pub def_level: usize,
    /// Deepest level that reads the set (candidate iteration or
    /// `ApplyFromSet` dependency); `None` for dead sets.
    pub last_use_level: Option<usize>,
}

impl SetLiveness {
    /// Live interval in level space, `def..=last_use` (dead sets collapse
    /// to their definition level).
    pub fn interval(&self) -> (usize, usize) {
        (
            self.def_level,
            self.last_use_level.unwrap_or(self.def_level),
        )
    }
}

/// Result of the dataflow pass.
#[derive(Clone, Debug)]
pub struct LivenessReport {
    /// Indexed by set id.
    pub sets: Vec<SetLiveness>,
    /// Ids of sets with no uses.
    pub dead: Vec<u16>,
    /// Fewest physical slabs that could hold every live interval (greedy
    /// interval coloring) — the slot-reuse headroom `num_sets -
    /// min_slots` quantifies how much of the arena is reuse-eligible.
    pub min_slots: usize,
}

/// Runs the def/use analysis over `bc`.
pub fn analyze(bc: &PlanBytecode) -> LivenessReport {
    let n = bc.num_sets();
    let k = bc.num_levels();
    let mut def = vec![0usize; n];
    let mut last_use: Vec<Option<usize>> = vec![None; n];
    let note_use = |set: usize, level: usize, last_use: &mut Vec<Option<usize>>| {
        let slot = &mut last_use[set];
        *slot = Some(slot.map_or(level, |prev| prev.max(level)));
    };
    for level in 0..k {
        for ins in bc.instrs_at(level) {
            if ins.last {
                def[ins.dst as usize] = level;
            }
            if ins.code == OpCode::ApplyFromSet && ins.dep != NO_SET {
                note_use(ins.dep as usize, level, &mut last_use);
            }
        }
    }
    for level in 1..k {
        let (cand, _) = bc.candidate(level);
        if cand < n {
            note_use(cand, level, &mut last_use);
        }
    }
    let sets: Vec<SetLiveness> = (0..n)
        .map(|s| SetLiveness {
            def_level: def[s],
            last_use_level: last_use[s],
        })
        .collect();
    let dead: Vec<u16> = (0..n)
        .filter(|&s| last_use[s].is_none())
        .map(|s| s as u16)
        .collect();
    LivenessReport {
        min_slots: min_slots(&sets),
        sets,
        dead,
    }
}

/// Greedy interval-graph coloring: sweep intervals by start level, reuse a
/// slot whose interval ended strictly before the new start.
fn min_slots(sets: &[SetLiveness]) -> usize {
    let mut intervals: Vec<(usize, usize)> = sets.iter().map(SetLiveness::interval).collect();
    intervals.sort_unstable();
    let mut slot_ends: Vec<usize> = Vec::new();
    for (start, end) in intervals {
        match slot_ends.iter_mut().find(|e| **e < start) {
            Some(e) => *e = end,
            None => slot_ends.push(end),
        }
    }
    slot_ends.len()
}

/// Converts the report's dead sets into named diagnostics.
pub fn dead_set_diagnostics(report: &LivenessReport, repro: &str) -> Vec<Diagnostic> {
    report
        .dead
        .iter()
        .map(|&s| {
            let level = report.sets[s as usize].def_level as u8;
            Diagnostic::new(
                DiagKind::DeadSet { set: s, level },
                format!(
                    "plan-verify: dead set {s} written at level {level} is never \
                     read by any candidate iteration or dependency"
                ),
                repro,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_pattern::plan::{MatchPlan, PlanOptions};
    use stmatch_pattern::{catalog, PlanBytecode};

    fn lower(q: usize) -> PlanBytecode {
        let plan = MatchPlan::compile(&catalog::paper_query(q), PlanOptions::default());
        PlanBytecode::lower(&plan).expect("paper plans lower")
    }

    #[test]
    fn no_paper_query_has_dead_sets() {
        for q in 1..=24 {
            let bc = lower(q);
            let report = analyze(&bc);
            assert!(report.dead.is_empty(), "q{q}: dead sets {:?}", report.dead);
            assert!(report.min_slots <= bc.num_sets());
            for (s, l) in report.sets.iter().enumerate() {
                let (d, u) = l.interval();
                assert!(d <= u, "q{q} set {s}");
            }
        }
    }

    #[test]
    fn clique_cascade_intervals_chain() {
        // q8 = K5: set l-1 is defined at level l and last used at level
        // l+1 (as the next cascade step's dependency and candidate).
        let bc = lower(8);
        let report = analyze(&bc);
        assert_eq!(report.sets[0].def_level, 1);
        assert_eq!(report.sets[0].last_use_level, Some(2));
        // Overlapping chain intervals leave little reuse headroom.
        assert!(report.min_slots >= 2);
    }

    #[test]
    fn lifted_star_set_lives_to_the_last_level() {
        // q2 (star-ish 5-pattern) shares lifted sets across levels; every
        // candidate's last use is at least its deepest iterating level.
        let plan = MatchPlan::compile(&catalog::star3(), PlanOptions::default());
        let bc = PlanBytecode::lower(&plan).unwrap();
        let report = analyze(&bc);
        // One shared set iterated at levels 1..=3.
        assert_eq!(bc.num_sets(), 1);
        assert_eq!(report.sets[0].def_level, 1);
        assert_eq!(report.sets[0].last_use_level, Some(3));
        assert_eq!(report.min_slots, 1);
    }

    #[test]
    fn dead_set_mutation_is_named() {
        let mut plan = MatchPlan::compile(&catalog::paper_query(6), PlanOptions::default());
        let dead = stmatch_pattern::plan::mutation::insert_dead_set(&mut plan);
        let bc = PlanBytecode::lower(&plan).expect("mutated plan still lowers");
        let report = analyze(&bc);
        assert_eq!(report.dead, vec![dead]);
        let diags = dead_set_diagnostics(&report, "cargo test -p stmatch-plan-verify");
        assert_eq!(diags.len(), 1);
        assert!(matches!(diags[0].kind, DiagKind::DeadSet { set, .. } if set == dead));
        assert!(diags[0].message.contains(&format!("dead set {dead}")));
        assert!(diags[0].to_string().contains("reproduce:"));
    }
}
