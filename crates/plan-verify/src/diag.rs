//! Named diagnostics with deterministic reproduce lines.
//!
//! Every finding the verifier emits is a [`Diagnostic`]: a machine-matchable
//! [`DiagKind`] naming the offending level/set/vertex, a human-readable
//! message, and a `reproduce:` line that re-derives the finding from scratch
//! (the PR4/PR6/PR8 convention — a diagnostic nobody can replay is a rumor,
//! not a bug report).

use stmatch_graph::VertexId;
use stmatch_pattern::symmetry::Bound;

/// What the verifier found, with the offending locus named. Kill tests match
/// on these variants (and their fields) rather than on message text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiagKind {
    /// Set `set` (computed at `level`) is never read: no level iterates it
    /// as a candidate and no other set consumes it as a dependency. Dead
    /// sets burn `unroll × MAX_DEGREE` arena cells per warp for nothing.
    DeadSet { set: u16, level: u8 },
    /// Level `level`'s candidate chain carries no intersection with any
    /// matched prefix position — candidates would be unconstrained by
    /// connectivity, enumerating the whole vertex universe.
    DisconnectedLevel { level: usize },
    /// The pattern has edge `(order[level], order[pos])` but level `level`'s
    /// candidate chain never intersects with position `pos` — the plan
    /// over-counts.
    MissingAdjacency { level: usize, pos: usize },
    /// Level `level`'s chain intersects with position `pos` although the
    /// pattern has no such edge — the plan under-counts.
    SpuriousAdjacency { level: usize, pos: usize },
    /// Vertex-induced mode: the non-edge `(order[level], order[pos])` is
    /// never subtracted at `level`.
    MissingDifference { level: usize, pos: usize },
    /// The chain subtracts position `pos` although the pattern *has* that
    /// edge (or the plan is edge-induced and must not difference at all).
    SpuriousDifference { level: usize, pos: usize },
    /// The automorphism group requires bound `(pos, dir)` at `level` but the
    /// plan does not carry it — some subgraphs would be counted more than
    /// once.
    MissingSymmetryBound {
        level: usize,
        pos: usize,
        dir: Bound,
    },
    /// The plan carries a bound at `level` the automorphism group does not
    /// justify — some subgraphs would never be counted.
    ExtraSymmetryBound {
        level: usize,
        pos: usize,
        dir: Bound,
    },
    /// A shard cut array is malformed at index `cut` (not starting at 0,
    /// not monotone, or not ending at the domain size).
    ShardCutMalformed { cut: usize },
    /// Vertex appears in two shard slices (`first` and `second`): its
    /// level-0 subtree would be counted twice.
    ShardOverlap {
        vertex: VertexId,
        first: usize,
        second: usize,
    },
    /// Vertex appears in no shard slice: its level-0 subtree is never
    /// expanded.
    ShardGap { vertex: VertexId },
    /// The plan failed structural bytecode validation before any dataflow
    /// analysis could run.
    BytecodeReject { detail: String },
}

/// One verifier finding: the named kind plus presentation strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub kind: DiagKind,
    /// One-line human-readable description (also names the locus).
    pub message: String,
    /// Deterministic command that re-derives this diagnostic.
    pub reproduce: String,
}

impl Diagnostic {
    pub(crate) fn new(kind: DiagKind, message: String, repro: &str) -> Diagnostic {
        Diagnostic {
            kind,
            message,
            reproduce: repro.to_string(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n  reproduce: {}", self.message, self.reproduce)
    }
}
