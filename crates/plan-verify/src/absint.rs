//! Abstract interpretation of per-set candidate-list sizes.
//!
//! The abstract domain tracks, per plan set, the collection of *distinct*
//! order positions whose neighbor lists have been intersected into it
//! (following `Base::Set` dependency edges, so a code-motion chain
//! accumulates its whole prefix). The concretization argument: the matched
//! vertices at `k` distinct order positions are `k` distinct data vertices,
//! so a list contained in all `k` of their neighbor lists is no longer than
//! the *smallest* of those degrees — which is at most the `k`-th largest
//! degree in the graph. Difference ops and label masks only shrink sets and
//! are ignored (sound, conservative).
//!
//! The resulting [`ResourceCert`] bounds every slab the arena will ever
//! hold: when each per-set bound fits the configured slab capacity, no
//! [`ArenaWriter`](../../core/arena) push can ever take the spill path and
//! the certificate claims *spill-freedom* — the property a real GPU backend
//! (which has no heap to spill into) would require as a launch precondition.

use stmatch_graph::Graph;
use stmatch_pattern::plan::{Base, MatchPlan, OpKind};

/// How many of the graph's largest degrees the profile retains. Sets that
/// intersect more than this many distinct positions are bounded by the
/// deepest retained degree (still sound: the k-th largest degree is
/// non-increasing in k).
pub const TOP_DEGREES: usize = 16;

/// Degree summary of a data graph, the verifier's only knowledge of it.
/// Built once per graph (O(n) + a bounded selection) and reused across
/// every plan verified against it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphProfile {
    pub num_vertices: usize,
    pub max_degree: usize,
    /// The `min(TOP_DEGREES, n)` largest degrees, descending.
    pub top_degrees: Vec<usize>,
}

impl GraphProfile {
    /// Profiles `g` via [`stmatch_graph::stats::top_degrees`].
    pub fn of(g: &Graph) -> GraphProfile {
        let top = stmatch_graph::stats::top_degrees(g, TOP_DEGREES);
        GraphProfile {
            num_vertices: g.num_vertices(),
            max_degree: top.first().copied().unwrap_or(0),
            top_degrees: top,
        }
    }

    /// Upper bound on the size of a set contained in the neighbor lists of
    /// `k >= 1` distinct vertices: the `k`-th largest degree (clamped to the
    /// retained prefix, which only loosens the bound).
    pub fn kth_degree(&self, k: usize) -> usize {
        debug_assert!(k >= 1);
        match self.top_degrees.get(k.saturating_sub(1)) {
            Some(&d) => d,
            None => self.top_degrees.last().copied().unwrap_or(0),
        }
    }
}

/// The machine-checkable resource certificate: worst-case candidate-list
/// size per plan set, the recursion-stack depth, and whether every bound
/// fits the slab capacity the arena will be built with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceCert {
    /// `set_bounds[s]` = worst-case element count of set `s`, any claim.
    pub set_bounds: Vec<usize>,
    /// Level each set is computed at (mirrors `SetDef::level`; kept so the
    /// certificate is self-contained).
    pub set_levels: Vec<u8>,
    /// Worst-case recursion depth (= pattern size: the DFS stack of Fig. 4).
    pub stack_depth: usize,
    /// Slab capacity (cells per (set, unroll) slot) the bounds were checked
    /// against — `min(max_degree_slab, max_degree)` on the engine path.
    pub slab_cap: usize,
    /// True iff every set bound fits `slab_cap`: no arena write can take
    /// the spill path, so `MatchOutcome::spill_events` must be 0.
    pub spill_free: bool,
}

impl ResourceCert {
    /// Largest per-set bound (the binding constraint for `slab_cap`).
    pub fn max_set_bound(&self) -> usize {
        self.set_bounds.iter().copied().max().unwrap_or(0)
    }

    /// Worst-case total cells live across one warp's arena at `unroll`:
    /// every (set, slot) pair simultaneously at its bound. Runtime
    /// `MatchOutcome::peak_slab_cells` must never exceed this.
    pub fn peak_cells(&self, unroll: usize) -> u64 {
        self.set_bounds
            .iter()
            .map(|&b| b as u64 * unroll as u64)
            .sum()
    }

    /// Per-set slab capacities for the opt-in footprint hint: each set's
    /// slab shrunk to its certified bound (never above `slab_cap`, never
    /// zero so degenerate sets keep a valid slot).
    pub fn shaped_caps(&self) -> Vec<u32> {
        self.set_bounds
            .iter()
            .map(|&b| b.clamp(1, self.slab_cap.max(1)) as u32)
            .collect()
    }
}

/// Runs the abstract interpretation of `plan` against `profile`, checking
/// bounds against `slab_cap` (the per-slot cell capacity the engine will
/// size the arena with).
pub fn certify(plan: &MatchPlan, profile: &GraphProfile, slab_cap: usize) -> ResourceCert {
    let sets = plan.sets();
    // positions[s] = bitmask of distinct order positions intersected into
    // set s (MAX_PATTERN_SIZE <= 8, so u32 is roomy).
    let mut positions: Vec<u32> = Vec::with_capacity(sets.len());
    let mut set_bounds = Vec::with_capacity(sets.len());
    let mut set_levels = Vec::with_capacity(sets.len());
    for def in sets {
        let mut mask: u32 = match def.base {
            Base::Neighbors(p) => 1 << p,
            // Dependencies precede dependents, so the dep's mask is final.
            Base::Set(d) => positions[d as usize],
        };
        for op in &def.ops {
            if op.kind == OpKind::Intersect {
                mask |= 1 << op.pos;
            }
        }
        let k = mask.count_ones() as usize;
        let bound = if k == 0 {
            // Unreachable for well-formed plans (every chain roots at a
            // neighbor list); bounded by the universe to stay sound.
            profile.num_vertices
        } else {
            profile.kth_degree(k)
        };
        positions.push(mask);
        set_bounds.push(bound.min(profile.num_vertices));
        set_levels.push(def.level);
    }
    let spill_free = set_bounds.iter().all(|&b| b <= slab_cap);
    ResourceCert {
        set_bounds,
        set_levels,
        stack_depth: plan.num_levels(),
        slab_cap,
        spill_free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::gen;
    use stmatch_pattern::plan::PlanOptions;
    use stmatch_pattern::{catalog, MatchPlan};

    fn profile_of_star() -> GraphProfile {
        GraphProfile::of(&gen::star(10))
    }

    #[test]
    fn profile_retains_descending_top_degrees() {
        let p = profile_of_star();
        assert_eq!(p.num_vertices, 11);
        assert_eq!(p.max_degree, 10);
        assert_eq!(p.top_degrees[0], 10);
        assert!(p.top_degrees.windows(2).all(|w| w[0] >= w[1]));
        // k-th degree clamps past the retained prefix.
        assert_eq!(p.kth_degree(1), 10);
        assert_eq!(p.kth_degree(2), 1);
        assert_eq!(p.kth_degree(100), *p.top_degrees.last().unwrap());
    }

    #[test]
    fn clique_cascade_bounds_shrink_with_depth() {
        let g = gen::complete(20);
        let prof = GraphProfile::of(&g);
        let plan = MatchPlan::compile(&catalog::clique(5), PlanOptions::default());
        let cert = certify(&plan, &prof, 4096);
        assert!(cert.spill_free);
        assert_eq!(cert.stack_depth, 5);
        // Each deeper cascade set intersects one more distinct position, so
        // the bounds are non-increasing along the set order.
        for w in cert.set_bounds.windows(2) {
            assert!(w[0] >= w[1], "bounds not monotone: {:?}", cert.set_bounds);
        }
        assert_eq!(cert.set_bounds[0], 19); // N(v0) on K20
    }

    #[test]
    fn tight_slab_cap_denies_spill_freedom() {
        let g = gen::star(100);
        let prof = GraphProfile::of(&g);
        let plan = MatchPlan::compile(&catalog::wedge(), PlanOptions::default());
        let spacious = certify(&plan, &prof, 4096);
        assert!(spacious.spill_free);
        let tight = certify(&plan, &prof, 4);
        assert!(!tight.spill_free);
        assert_eq!(tight.max_set_bound(), 100);
        // peak_cells scales linearly in unroll.
        assert_eq!(spacious.peak_cells(8), 8 * spacious.peak_cells(1));
    }

    #[test]
    fn shaped_caps_clamp_into_slab() {
        let g = gen::star(100);
        let prof = GraphProfile::of(&g);
        let plan = MatchPlan::compile(&catalog::wedge(), PlanOptions::default());
        let cert = certify(&plan, &prof, 50);
        for &c in &cert.shaped_caps() {
            assert!((1..=50).contains(&c));
        }
    }

    #[test]
    fn bounds_are_sound_for_every_paper_query() {
        // Structural soundness check: a set's bound is at least the bound
        // of intersecting all its positions' actual neighbor lists on a
        // concrete skewed graph (here: degree diversity via rmat).
        let g = gen::rmat(6, 4, 11).degree_ordered();
        let prof = GraphProfile::of(&g);
        for q in catalog::all_paper_queries() {
            for induced in [false, true] {
                let plan = MatchPlan::compile(
                    &q,
                    PlanOptions {
                        induced,
                        ..PlanOptions::default()
                    },
                );
                let cert = certify(&plan, &prof, 4096);
                assert_eq!(cert.set_bounds.len(), plan.num_sets());
                for (sid, (&b, def)) in cert.set_bounds.iter().zip(plan.sets()).enumerate() {
                    assert!(b <= prof.max_degree, "{}: bound above Δ", q.name());
                    assert_eq!(cert.set_levels[sid], def.level, "{}", q.name());
                }
            }
        }
    }
}
