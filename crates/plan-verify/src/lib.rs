//! Static plan verification for STMatch (DESIGN.md §4j).
//!
//! STMatch's performance story rests on statically-shaped storage — the
//! `C[NUM_SETS][UNROLL][MAX_DEGREE]` warp-stack geometry of §VIII-A — yet a
//! [`MatchPlan`]/[`PlanBytecode`] pair used to be trusted blindly: slab
//! overflow surfaced as runtime spills, a corrupted plan as wrong counts.
//! This crate runs three static analyses *before* launch and turns those
//! runtime surprises into machine-checkable certificates and named
//! diagnostics:
//!
//! 1. [`absint`] — abstract interpretation of per-set candidate-list sizes
//!    over the graph's degree profile, yielding a [`ResourceCert`] that
//!    bounds slab occupancy and stack depth and certifies *spill-freedom*
//!    when every bound fits the slab capacity (the precondition a real GPU
//!    backend, which cannot heap-spill, would demand).
//! 2. [`liveness`] — def/last-use dataflow over the bytecode stream: dead
//!    sets (named diagnostics), live intervals, and slot-reuse legality.
//! 3. [`soundness`] — adjacency/connectivity of every level against the
//!    pattern, symmetry-break completeness against the automorphism group,
//!    and exactly-once shard coverage of the level-0 domain.
//!
//! Every diagnostic carries a deterministic `reproduce:` line, and the
//! sanctioned plan mutations (`stmatch_pattern::plan::mutation`, the
//! engine's shard mutation) are each caught *by name* — see the kill legs
//! of `ci.sh smoke:verify`.

pub mod absint;
pub mod diag;
pub mod liveness;
pub mod soundness;

pub use absint::{certify, GraphProfile, ResourceCert, TOP_DEGREES};
pub use diag::{DiagKind, Diagnostic};
pub use liveness::{analyze as analyze_liveness, LivenessReport, SetLiveness};
pub use soundness::{check_adjacency, check_shard_cover, check_symmetry};

use stmatch_pattern::{MatchPlan, PlanBytecode};

/// Everything one verification pass produces: the resource certificate,
/// the liveness report, and any diagnostics (empty = the plan is clean).
#[derive(Clone, Debug)]
pub struct Verification {
    pub cert: ResourceCert,
    pub liveness: Option<LivenessReport>,
    pub diagnostics: Vec<Diagnostic>,
}

impl Verification {
    /// True when no analysis raised a diagnostic.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Per-set slab capacities for the opt-in footprint hint; `None` unless
    /// the plan is clean (shrinking slabs of a suspect plan compounds the
    /// damage) and the certificate actually shrinks something.
    pub fn footprint_caps(&self) -> Option<Vec<u32>> {
        if !self.is_clean() {
            return None;
        }
        let caps = self.cert.shaped_caps();
        let cap = self.cert.slab_cap as u32;
        caps.iter().any(|&c| c < cap).then_some(caps)
    }
}

/// Runs all three analyses on `plan` against `profile`, checking resource
/// bounds at `slab_cap` cells per (set, unroll) slot. `repro` is the
/// deterministic command stamped on every diagnostic's `reproduce:` line.
///
/// The bytecode for the dataflow pass is lowered internally (lowering is
/// cheap and deterministic); a stream the lowerer itself rejects becomes a
/// [`DiagKind::BytecodeReject`] diagnostic rather than an error.
pub fn verify_plan(
    plan: &MatchPlan,
    profile: &GraphProfile,
    slab_cap: usize,
    repro: &str,
) -> Verification {
    let cert = certify(plan, profile, slab_cap);
    let mut diagnostics = Vec::new();
    let liveness = match PlanBytecode::lower(plan) {
        Ok(bc) => {
            let report = analyze_liveness(&bc);
            diagnostics.extend(liveness::dead_set_diagnostics(&report, repro));
            Some(report)
        }
        Err(e) => {
            diagnostics.push(Diagnostic::new(
                DiagKind::BytecodeReject {
                    detail: e.to_string(),
                },
                format!("plan-verify: bytecode lowering rejected the plan: {e}"),
                repro,
            ));
            None
        }
    };
    diagnostics.extend(check_adjacency(plan, repro));
    diagnostics.extend(check_symmetry(plan, repro));
    Verification {
        cert,
        liveness,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;
    use stmatch_pattern::plan::{mutation, PlanOptions};

    #[test]
    fn clean_plans_verify_clean_with_usable_certs() {
        let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
        let prof = GraphProfile::of(&g);
        for q in catalog::all_paper_queries() {
            let plan = MatchPlan::compile(&q, PlanOptions::default());
            let v = verify_plan(&plan, &prof, 4096, "test");
            assert!(v.is_clean(), "{}: {:?}", q.name(), v.diagnostics);
            assert!(v.cert.spill_free, "{}", q.name());
            assert!(v.liveness.is_some());
            // Slab already fits the max degree: nothing to shrink below a
            // cap of max_degree, but shaped caps must stay within it.
            let caps = v.cert.shaped_caps();
            assert_eq!(caps.len(), plan.num_sets());
        }
    }

    #[test]
    fn footprint_caps_appear_only_when_clean_and_shrinking() {
        let g = gen::rmat(6, 4, 11).degree_ordered();
        let prof = GraphProfile::of(&g);
        // K5 cascade on a skewed graph: deeper sets certify below Δ, so a
        // slab cap of Δ leaves room to shrink.
        let plan = MatchPlan::compile(&catalog::paper_query(8), PlanOptions::default());
        let v = verify_plan(&plan, &prof, prof.max_degree, "test");
        assert!(v.is_clean());
        let caps = v.footprint_caps().expect("cascade bounds shrink");
        assert!(caps.iter().any(|&c| (c as usize) < prof.max_degree));
        // A mutated plan never yields caps.
        let mut bad = MatchPlan::compile(&catalog::paper_query(8), PlanOptions::default());
        mutation::insert_dead_set(&mut bad);
        let vb = verify_plan(&bad, &prof, prof.max_degree, "test");
        assert!(!vb.is_clean());
        assert!(vb.footprint_caps().is_none());
    }

    #[test]
    fn mutations_are_caught_by_name_at_the_top_level() {
        let g = gen::preferential_attachment(48, 4, 3).degree_ordered();
        let prof = GraphProfile::of(&g);
        let mut plan = MatchPlan::compile(&catalog::paper_query(6), PlanOptions::default());
        let dead = mutation::insert_dead_set(&mut plan);
        let v = verify_plan(&plan, &prof, 4096, "verify_check --mutate dead-set");
        assert!(v
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::DeadSet { set, .. } if set == dead)));
        assert!(v.diagnostics[0].reproduce.contains("--mutate dead-set"));

        let mut plan = MatchPlan::compile(&catalog::paper_query(8), PlanOptions::default());
        let (level, pos) = mutation::drop_symmetry_bound(&mut plan).unwrap();
        let v = verify_plan(&plan, &prof, 4096, "test");
        assert!(v.diagnostics.iter().any(|d| matches!(
            d.kind,
            DiagKind::MissingSymmetryBound { level: l, pos: p, .. } if l == level && p == pos
        )));
    }
}
