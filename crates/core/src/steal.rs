//! Two-level work stealing (§V of the paper).
//!
//! Every warp exposes a [`Mirror`] of the *stealable* shallow region of its
//! stack — iteration cursors, remaining candidate counts, and the matched
//! vertex prefix for levels below `StopLevel`. Because candidate sets are
//! deterministic functions of the matched prefix, a stealer only needs the
//! prefix and an iteration range: it recomputes the candidate list itself
//! (the paper copies the sets instead; recomputation costs one extra
//! `getCandidates` and avoids cross-thread aliasing of the slabs — see
//! DESIGN.md).
//!
//! * **Local stealing** (§V-A, pull): an idle warp scans the mirrors of its
//!   block siblings, picks the victim with the most remaining shallow work,
//!   and takes half the remaining iterations at the shallowest level
//!   (divide-and-copy, Fig. 5).
//! * **Global stealing** (§V-B, push): an idle warp marks its bit in the
//!   per-block `is_idle` bitmap and spins; busy warps test for fully-idle
//!   blocks when claiming work at a level below `DetectLevel` and push half
//!   of their shallowest remaining range into the target block's
//!   `global_stks` slot (Fig. 6).
//!
//! # Lock hierarchy (declared, checked by simt-check)
//!
//! Every lock in the stealing/containment machinery has a class and a
//! rank; a thread only ever acquires locks in strictly increasing rank.
//! This is the authoritative table — `simt_check::LockClass` mirrors it and
//! the deadlock analyzer enforces it at runtime:
//!
//! | rank | class        | lock                                       | nests inside        |
//! |------|--------------|--------------------------------------------|---------------------|
//! | 1    | `ServiceGraph` | `service::Inner::dynamic` (delta graph state, PR 10) | — (outermost; held only to fold a batch or clone out the current snapshot/watcher list, never across a launch, a compile, or another lock) |
//! | 2    | `ServiceAdmission` | `service::Inner::queue` (admission queue) | — (outermost) |
//! | 3    | `PlanTierUp` | `compile::CompiledPlan` tier transitions (PR 7) | — (leaf: taken from claim loops and stat sweeps holding nothing) |
//! | 4    | `ServicePlanCache` | `service::Inner::cache` (canonical plan cache) | — (never held across engine locks) |
//! | 6    | `ServiceArenaPool` | `pool::ArenaPool` (reusable warp arenas) | — (never held across engine locks) |
//! | 8    | `ShardRail`  | `ShardRail::state` (cross-shard work rail) | — (leaf: queried from claim loops holding nothing; the death path releases every board lock before pushing to the rail) |
//! | 10   | `GlobalSlot` | `Board::slots[b]` (per-block steal slot)   | — (outermost engine lock) |
//! | 20   | `Requeue`    | `Board::requeue` (reclaimed-work queue)    | `GlobalSlot`        |
//! | 30   | `Mirror`     | `Mirror::state` (per-warp stealable stack) | `GlobalSlot`        |
//! | 40   | `DeathLog`   | engine death records (recovery path)       | — (leaf)            |
//! | 50   | `Collector`  | engine enumeration collector               | — (leaf)            |
//!
//! The rank-1/2/4/6 service locks (PRs 6 and 10) belong to the resident
//! `MatchService` layered *above* the engine: they rank below every
//! engine lock because a service thread may hold one while work that
//! eventually launches a grid is being admitted, but no engine code path
//! ever acquires a service lock — the service always releases its locks
//! before calling into the engine, and the hierarchy makes any future
//! violation of that rule a hard diagnostic.
//!
//! Observed nestings: [`Board::try_push_global`] holds a slot lock while
//! splitting its own mirror (10 → 30); [`Board::mark_dead`] drains a dead
//! block's slot into the requeue (10 → 20). Mirrors never nest in each
//! other (the steal scans drop each guard before locking the next), and the
//! engine's recovery/collection locks are leaves acquired with nothing
//! held.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;
use stmatch_graph::VertexId;

/// Upper bound on `StopLevel` (how deep the stealable region may reach).
pub const MAX_STOP: usize = 4;

/// The stealable shallow state of one warp's stack.
#[derive(Clone, Debug)]
pub struct MirrorState {
    /// Next unclaimed iteration index per shallow level. At level 0 these
    /// are absolute vertex ids of the warp's current chunk.
    pub iter: [usize; MAX_STOP],
    /// End of the iteration range per shallow level (`iter == size` means
    /// drained).
    pub size: [usize; MAX_STOP],
    /// Vertex currently matched at each shallow level.
    pub matched: [VertexId; MAX_STOP],
}

impl MirrorState {
    fn new() -> Self {
        MirrorState {
            iter: [0; MAX_STOP],
            size: [0; MAX_STOP],
            matched: [0; MAX_STOP],
        }
    }

    /// Remaining unclaimed iterations at `level`.
    #[inline]
    pub fn remaining(&self, level: usize) -> usize {
        self.size[level].saturating_sub(self.iter[level])
    }
}

/// A lockable mirror. Cache-line padding is deliberately omitted: mirrors
/// are locked a handful of times per shallow iteration, far off any hot
/// path.
pub struct Mirror {
    /// Board instance this mirror belongs to (shadow-cell identity for the
    /// race checker — two concurrently live boards never alias cells).
    board: u32,
    /// Global warp id this mirror belongs to within its board.
    id: usize,
    state: Mutex<MirrorState>,
}

impl Mirror {
    fn new(board: u32, id: usize) -> Self {
        Mirror {
            board,
            id,
            state: Mutex::new(MirrorState::new()),
        }
    }

    /// Locks the mirror state.
    ///
    /// Poison handling: a poisoned mirror means some warp thread panicked
    /// while holding the lock. The state is plain cursors (`iter`/`size`/
    /// `matched` arrays) with no invariant spanning multiple fields that a
    /// mid-update panic could tear — any torn write at worst re-exposes
    /// already-claimed iterations, which the claim paths re-validate under
    /// the lock. So we recover the guard instead of propagating the
    /// poison; the original panic still unwinds through the grid launch.
    /// (`simt_check::tracked_lock` applies the same recovery.)
    ///
    /// Checker instrumentation: the acquisition is tracked (class
    /// `Mirror`, rank 30) and counts as a write access to the
    /// `mirror[id]` shadow cell at the *caller's* source line — locked
    /// accesses to the same mirror are serialized through the lock's
    /// clock, so the race checker only fires when some access bypasses
    /// this method (the seeded "lock-drop" mutation, or a future bug).
    #[track_caller]
    pub fn lock(&self) -> simt_check::Tracked<'_, MirrorState> {
        let guard = simt_check::tracked_lock(&self.state, simt_check::LockClass::Mirror, self.id);
        simt_check::note_write_at(
            simt_check::Cell::mirror(self.board, self.id),
            std::panic::Location::caller(),
        );
        guard
    }
}

/// Work migrated between warps: a matched prefix plus an iteration range of
/// the (recomputable) candidate list at `target` level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StealPayload {
    /// Level whose candidate iterations were stolen.
    pub target: usize,
    /// Matched vertices at levels `0..target`.
    pub matched: Vec<VertexId>,
    /// Stolen range `lo..hi` (indices into the candidate list at `target`;
    /// absolute vertex ids when `target == 0`).
    pub lo: usize,
    /// End of the stolen range.
    pub hi: usize,
}

/// A chunk granted by the cross-shard rail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RailGrant {
    /// Start of the granted level-0 range (virtual index into the shard
    /// plan's level-0 order).
    pub lo: usize,
    /// End of the granted range.
    pub hi: usize,
    /// True when serving this claim required stealing a range from another
    /// shard (charged the cross-shard latency by the caller).
    pub stolen: bool,
}

/// Counters published by the rail, read after the sharded run joins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RailStats {
    /// Cross-shard range steals (an idle shard took half of a loaded
    /// shard's unclaimed tail).
    pub cross_steals: u64,
    /// Reclaimed payloads pushed onto the rail by dying shards.
    pub requeue_pushes: u64,
    /// Rail payloads claimed by surviving shards.
    pub requeue_claims: u64,
    /// Whole-shard deaths recorded this run.
    pub shard_deaths: u64,
}

struct RailState {
    /// Per-shard unclaimed level-0 ranges (virtual indices). A shard owns
    /// the front of its own queue; cross-shard steals move the tail half of
    /// a victim's last range.
    queues: Vec<VecDeque<(usize, usize)>>,
    /// Payloads reclaimed from dead shards, claimable by any survivor.
    requeue: Vec<StealPayload>,
    /// Shards whose grids died entirely (bookkeeping for reports; a dead
    /// shard's unclaimed ranges stay in its queue, stealable by survivors
    /// or drained by the driver's recovery rounds).
    dead: Vec<bool>,
    stats: RailStats,
}

/// The cross-shard work rail: one shared queue of level-0 ranges and
/// reclaimed payloads connecting the per-shard [`Board`]s of a sharded run.
///
/// One mutex guards the whole rail (class `ShardRail`, rank 8 — below every
/// board lock, see the module hierarchy table). A single lock avoids
/// same-class nested acquisition when a steal touches two shard queues, and
/// the rail is far off any per-iteration hot path: it is consulted once per
/// level-0 chunk, not per candidate.
pub struct ShardRail {
    /// Process-unique instance id (shadow-cell identity for the race
    /// checker).
    check_id: u32,
    chunk_size: usize,
    /// Whether idle shards may steal ranges from loaded ones. Off, the rail
    /// degenerates to per-shard dispensers plus the shared requeue.
    cross_steal: bool,
    state: Mutex<RailState>,
}

impl ShardRail {
    /// Builds a rail whose shard `s` owns the range `[cuts[s], cuts[s+1])`.
    pub fn new(cuts: &[usize], chunk_size: usize, cross_steal: bool) -> ShardRail {
        assert!(cuts.len() >= 2, "need at least one shard");
        assert!(chunk_size >= 1);
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must be sorted");
        let queues = cuts
            .windows(2)
            .map(|w| {
                if w[0] < w[1] {
                    VecDeque::from([(w[0], w[1])])
                } else {
                    VecDeque::new()
                }
            })
            .collect::<Vec<_>>();
        Self::with_queues(queues, Vec::new(), chunk_size, cross_steal)
    }

    /// Builds a rail from leftover work of a previous round (recovery
    /// relaunch): `ranges` are distributed round-robin over `shards`.
    pub fn from_parts(
        shards: usize,
        chunk_size: usize,
        cross_steal: bool,
        ranges: Vec<(usize, usize)>,
        payloads: Vec<StealPayload>,
    ) -> ShardRail {
        assert!(shards >= 1);
        let mut queues: Vec<VecDeque<(usize, usize)>> =
            (0..shards).map(|_| VecDeque::new()).collect();
        for (i, r) in ranges.into_iter().filter(|r| r.0 < r.1).enumerate() {
            queues[i % shards].push_back(r);
        }
        Self::with_queues(queues, payloads, chunk_size, cross_steal)
    }

    fn with_queues(
        queues: Vec<VecDeque<(usize, usize)>>,
        requeue: Vec<StealPayload>,
        chunk_size: usize,
        cross_steal: bool,
    ) -> ShardRail {
        let shards = queues.len();
        ShardRail {
            check_id: simt_check::next_object_id(),
            chunk_size,
            cross_steal,
            state: Mutex::new(RailState {
                queues,
                requeue,
                dead: vec![false; shards],
                stats: RailStats::default(),
            }),
        }
    }

    /// Number of shards this rail coordinates.
    pub fn num_shards(&self) -> usize {
        self.lock_state().queues.len()
    }

    /// Locks the rail state (class `ShardRail`, rank 8). Counts as a write
    /// access to the `rail` shadow cell at the caller's line.
    #[track_caller]
    fn lock_state(&self) -> simt_check::Tracked<'_, RailState> {
        let guard = simt_check::tracked_lock(&self.state, simt_check::LockClass::ShardRail, 0);
        simt_check::note_write_at(
            simt_check::Cell::rail(self.check_id),
            std::panic::Location::caller(),
        );
        guard
    }

    /// Pops one chunk off the front range of `q`.
    fn carve(q: &mut VecDeque<(usize, usize)>, chunk: usize) -> Option<(usize, usize)> {
        let (lo, hi) = q.pop_front()?;
        let mid = (lo + chunk).min(hi);
        if mid < hi {
            q.push_front((mid, hi));
        }
        Some((lo, mid))
    }

    /// Claims the next chunk for `shard`: its own queue first, then (when
    /// cross-shard stealing is on) the tail half of the most-loaded other
    /// shard's last range — Fig. 5's divide-and-copy lifted one level up,
    /// between grids instead of between warps.
    pub fn claim(&self, shard: usize) -> Option<RailGrant> {
        let mut st = self.lock_state();
        if let Some((lo, hi)) = Self::carve(&mut st.queues[shard], self.chunk_size) {
            return Some(RailGrant {
                lo,
                hi,
                stolen: false,
            });
        }
        if !self.cross_steal {
            return None;
        }
        // Victim: the shard with the most unclaimed vertices. Dead shards'
        // queues stay claimable — stealing them *is* the live recovery path.
        let victim = (0..st.queues.len())
            .filter(|&v| v != shard && !st.queues[v].is_empty())
            .max_by_key(|&v| st.queues[v].iter().map(|&(lo, hi)| hi - lo).sum::<usize>())?;
        let (lo, hi) = st.queues[victim]
            .pop_back()
            .expect("victim checked non-empty");
        // The victim keeps the front half; tiny ranges move whole.
        let keep = (hi - lo) / 2;
        let mid = lo + keep;
        if keep > 0 {
            st.queues[victim].push_back((lo, mid));
        }
        st.queues[shard].push_back((mid, hi));
        st.stats.cross_steals += 1;
        let (lo, hi) =
            Self::carve(&mut st.queues[shard], self.chunk_size).expect("just moved a range here");
        Some(RailGrant {
            lo,
            hi,
            stolen: true,
        })
    }

    /// Claims one reclaimed payload off the rail.
    pub fn pop_requeue(&self) -> Option<StealPayload> {
        let mut st = self.lock_state();
        let p = st.requeue.pop()?;
        st.stats.requeue_claims += 1;
        Some(p)
    }

    /// Returns work reclaimed from a dead shard to the rail. Called by the
    /// shard driver after that shard's grid joined — never from inside a
    /// warp, so no board lock is ever held across this acquisition.
    pub fn push_requeue(&self, payloads: Vec<StealPayload>) {
        if payloads.is_empty() {
            return;
        }
        let mut st = self.lock_state();
        st.stats.requeue_pushes += payloads.len() as u64;
        st.requeue.extend(payloads);
    }

    /// Records the death of a whole shard (every warp of its grid died).
    pub fn mark_shard_dead(&self, shard: usize) {
        let mut st = self.lock_state();
        if !st.dead[shard] {
            st.dead[shard] = true;
            st.stats.shard_deaths += 1;
        }
    }

    /// True while `shard`'s warps could still obtain work from the rail:
    /// its own queue, the shared requeue, or (with stealing on) any other
    /// shard's queue. Drives `Board::chunks_remain` — and through it the
    /// per-board termination test — for rail-attached boards.
    pub fn has_claimable(&self, shard: usize) -> bool {
        let st = self.lock_state();
        if !st.requeue.is_empty() || !st.queues[shard].is_empty() {
            return true;
        }
        self.cross_steal && st.queues.iter().any(|q| !q.is_empty())
    }

    /// Post-join drain for the driver's recovery rounds: every unclaimed
    /// range and every unclaimed payload still on the rail.
    pub fn drain_remaining(&self) -> (Vec<(usize, usize)>, Vec<StealPayload>) {
        let mut st = self.lock_state();
        let ranges: Vec<(usize, usize)> = st.queues.iter_mut().flat_map(std::mem::take).collect();
        let payloads = std::mem::take(&mut st.requeue);
        (ranges, payloads)
    }

    /// Rail counters (read after the run joins).
    pub fn stats(&self) -> RailStats {
        self.lock_state().stats
    }
}

/// Grid-wide coordination state shared by all warps of one launch.
pub struct Board {
    /// Process-unique instance id (shadow-cell identity: a resident
    /// service runs several boards concurrently, and their mirror/slot/
    /// requeue cells must not alias in the race checker).
    check_id: u32,
    mirrors: Vec<Mirror>,
    warps_per_block: usize,
    stop: usize,
    /// Per-block bitmap of idle warps (bit = warp index within block).
    is_idle: Vec<AtomicU32>,
    /// Per-block global-steal slot (`global_stks` of Fig. 6).
    slots: Vec<Mutex<Option<StealPayload>>>,
    /// Number of warps currently busy (grid starts all-busy).
    busy: AtomicUsize,
    /// Number of pushed-but-unclaimed payloads (global slots + requeue).
    pending: AtomicUsize,
    /// Live warps per block; a block whose count hits zero can never claim
    /// its global slot again, so [`Board::mark_dead`] drains it.
    alive: Vec<AtomicUsize>,
    /// Total contained warp deaths this launch.
    deaths: AtomicUsize,
    /// Work reclaimed from dead warps (and salvage preloads), claimable by
    /// any warp. Counted in `pending` so `finished()` cannot fire while a
    /// dead warp's work sits unclaimed.
    requeue: Mutex<Vec<StealPayload>>,
    /// Candidate-list spill events reported by the kernels at exit
    /// (arena slabs outgrown; see `arena`).
    spills: AtomicUsize,
    /// Max per-warp peak of live candidate cells reported by the kernels
    /// at exit — the runtime half of the static verifier's resource audit
    /// (see `arena` and `stmatch_plan_verify`).
    peak_cells: AtomicU64,
    /// Level-0 chunk dispenser: next unclaimed vertex id.
    chunk_next: AtomicUsize,
    num_vertices: usize,
    chunk_size: usize,
    /// Cooperative cancellation: set when the deadline passes; observed by
    /// every warp on its claim paths.
    abort: AtomicBool,
    /// Optional wall-clock deadline for the launch.
    deadline: Option<Instant>,
    /// Cross-shard attachment `(rail, my shard)`. When set, level-0 chunks
    /// come from the shared rail instead of this board's own dispenser
    /// (construct the board with an empty `(0, 0)` range).
    rail: Option<(Arc<ShardRail>, usize)>,
}

impl Board {
    /// Creates the board for a grid of `num_blocks × warps_per_block` warps
    /// over the level-0 vertex range `[start, end)` (a full graph uses
    /// `(0, num_vertices)`; multi-device runs partition the range).
    pub fn new(
        num_blocks: usize,
        warps_per_block: usize,
        stop: usize,
        (start, end): (usize, usize),
        chunk_size: usize,
    ) -> Board {
        assert!((1..=MAX_STOP).contains(&stop), "stop level out of range");
        assert!(chunk_size >= 1);
        assert!(start <= end);
        let total = num_blocks * warps_per_block;
        assert!(warps_per_block <= 32, "is_idle bitmap holds 32 warps");
        let check_id = simt_check::next_object_id();
        Board {
            check_id,
            mirrors: (0..total).map(|w| Mirror::new(check_id, w)).collect(),
            warps_per_block,
            stop,
            is_idle: (0..num_blocks).map(|_| AtomicU32::new(0)).collect(),
            slots: (0..num_blocks).map(|_| Mutex::new(None)).collect(),
            busy: AtomicUsize::new(total),
            pending: AtomicUsize::new(0),
            alive: (0..num_blocks)
                .map(|_| AtomicUsize::new(warps_per_block))
                .collect(),
            deaths: AtomicUsize::new(0),
            requeue: Mutex::new(Vec::new()),
            spills: AtomicUsize::new(0),
            peak_cells: AtomicU64::new(0),
            chunk_next: AtomicUsize::new(start),
            num_vertices: end,
            chunk_size,
            abort: AtomicBool::new(false),
            deadline: None,
            rail: None,
        }
    }

    /// Attaches this board to a cross-shard rail as shard `shard`. The
    /// board must have been built with an empty level-0 range — the rail
    /// replaces the local dispenser entirely.
    pub fn attach_rail(&mut self, rail: Arc<ShardRail>, shard: usize) {
        assert!(
            // Relaxed: `&mut self` means no concurrent dispenser traffic.
            self.chunk_next.load(Ordering::Relaxed) >= self.num_vertices,
            "rail-attached boards must not own a local level-0 range"
        );
        self.rail = Some((rail, shard));
    }

    /// Sets a wall-clock deadline; warps poll it via [`Board::check_deadline`]
    /// and abandon remaining work once it passes.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// True once the launch was cancelled (deadline passed).
    #[inline]
    pub fn aborted(&self) -> bool {
        // Relaxed: `abort` is a one-way advisory latch polled on claim
        // paths; observing it a few claims late only delays cancellation,
        // and no data is published under the flag.
        self.abort.load(Ordering::Relaxed)
    }

    /// Reads the clock against the deadline (called by warps every few
    /// thousand claims) and latches the abort flag when it has passed.
    pub fn check_deadline(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                // Relaxed: same advisory-latch argument as `aborted`.
                self.abort.store(true, Ordering::Relaxed);
                return true;
            }
        }
        self.aborted()
    }

    /// The mirror of warp `id`.
    pub fn mirror(&self, id: usize) -> &Mirror {
        &self.mirrors[id]
    }

    /// Locks block `b`'s global-steal slot (class `GlobalSlot`, rank 10 —
    /// the outermost lock of the hierarchy; see the module docs). Counts as
    /// a write access to the `slot[b]` shadow cell at the caller's line.
    #[track_caller]
    fn lock_slot(&self, b: usize) -> simt_check::Tracked<'_, Option<StealPayload>> {
        let guard = simt_check::tracked_lock(&self.slots[b], simt_check::LockClass::GlobalSlot, b);
        simt_check::note_write_at(
            simt_check::Cell::global_slot(self.check_id, b),
            std::panic::Location::caller(),
        );
        guard
    }

    /// Locks the reclaimed-work queue (class `Requeue`, rank 20). Counts as
    /// a write access to the `requeue` shadow cell at the caller's line.
    #[track_caller]
    fn lock_requeue(&self) -> simt_check::Tracked<'_, Vec<StealPayload>> {
        let guard = simt_check::tracked_lock(&self.requeue, simt_check::LockClass::Requeue, 0);
        simt_check::note_write_at(
            simt_check::Cell::requeue(self.check_id),
            std::panic::Location::caller(),
        );
        guard
    }

    /// The configured stop level.
    pub fn stop(&self) -> usize {
        self.stop
    }

    /// Claims the next level-0 chunk `[lo, hi)` of the vertex universe
    /// (Fig. 4's `getCandidates` at level 0).
    pub fn claim_chunk(&self) -> Option<(usize, usize)> {
        self.claim_chunk_tagged().map(|(lo, hi, _)| (lo, hi))
    }

    /// [`Board::claim_chunk`], additionally reporting whether serving the
    /// claim required a cross-shard steal (always false for boards without
    /// a rail) so the caller can charge the cross-shard latency.
    pub fn claim_chunk_tagged(&self) -> Option<(usize, usize, bool)> {
        if let Some((rail, shard)) = &self.rail {
            return rail.claim(*shard).map(|g| (g.lo, g.hi, g.stolen));
        }
        loop {
            // Relaxed CAS loop: the dispenser is a pure counter — chunk
            // ownership is established by the CAS itself and the claimed
            // range is derived from the exchanged values, not from data
            // published alongside the atomic.
            let lo = self.chunk_next.load(Ordering::Relaxed);
            if lo >= self.num_vertices {
                return None;
            }
            let hi = (lo + self.chunk_size).min(self.num_vertices);
            // Relaxed on both legs: the dispenser only hands out disjoint
            // vertex ranges; no other memory is published alongside the
            // claim, so the CAS needs atomicity, not ordering.
            if self
                .chunk_next
                .compare_exchange_weak(lo, hi, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some((lo, hi, false));
            }
        }
    }

    /// True while unclaimed level-0 chunks remain.
    pub fn chunks_remain(&self) -> bool {
        if let Some((rail, shard)) = &self.rail {
            // Rail work (own queue, stealable victims, reclaimed payloads)
            // is not counted in `pending`; the termination test sees it
            // through this branch instead.
            return rail.has_claimable(*shard);
        }
        // Relaxed: the cursor is monotone, so a stale read can only claim
        // "chunks remain" when they are already gone — the caller then
        // issues a real `claim_chunk` (CAS) and learns the truth; spurious
        // non-termination for one spin iteration, never missed work.
        self.chunk_next.load(Ordering::Relaxed) < self.num_vertices
    }

    /// Claims a payload reclaimed from a dead *shard* off the cross-shard
    /// rail (the caller already counts as busy; rail payloads are outside
    /// this board's `pending` count — see [`Board::chunks_remain`]).
    pub fn claim_rail_requeued(&self) -> Option<StealPayload> {
        let (rail, _) = self.rail.as_ref()?;
        rail.pop_requeue()
    }

    /// Marks warp `id` idle (sets its bitmap bit, decrements the busy
    /// counter).
    pub fn mark_idle(&self, id: usize) {
        let block = id / self.warps_per_block;
        let bit = 1u32 << (id % self.warps_per_block);
        // SeqCst on the idle bitmap and the busy/pending counters: the
        // termination protocol (`finished`) and the global-push detector
        // reason about a single global order of these updates across
        // *different* atomics (idle-bit set vs busy decrement vs pending
        // increment). Acquire/release alone does not order independent
        // variables; SeqCst buys the total order the proofs below rely on.
        self.is_idle[block].fetch_or(bit, Ordering::SeqCst);
        self.busy.fetch_sub(1, Ordering::SeqCst);
    }

    /// Marks warp `id` busy again (clears its bit, increments busy).
    pub fn mark_busy(&self, id: usize) {
        let block = id / self.warps_per_block;
        let bit = 1u32 << (id % self.warps_per_block);
        // SeqCst, and busy rises *before* the idle bit clears: a warp in
        // transition must look busy to `finished()` (fail-safe direction —
        // see the claim-ordering comments in try_claim_global).
        self.busy.fetch_add(1, Ordering::SeqCst);
        self.is_idle[block].fetch_and(!bit, Ordering::SeqCst);
    }

    /// Termination test for idle warps: nothing busy, nothing pending,
    /// no chunks left.
    pub fn finished(&self) -> bool {
        // SeqCst loads: both counters participate in the single total
        // order established by the SeqCst updates above, so once this
        // conjunction is observed true it is globally true (claims bump
        // busy before releasing pending, never the reverse).
        self.busy.load(Ordering::SeqCst) == 0
            && self.pending.load(Ordering::SeqCst) == 0
            && !self.chunks_remain()
    }

    /// Quick unsynchronized test whether any block sibling of `me` has
    /// stealable work (used by idle spinners to decide whether a full steal
    /// attempt is worthwhile).
    pub fn any_local_victim(&self, me: usize) -> bool {
        let block = me / self.warps_per_block;
        let base = block * self.warps_per_block;
        (base..base + self.warps_per_block).any(|w| {
            if w == me {
                return false;
            }
            let m = self.mirrors[w].lock();
            (0..self.stop).any(|l| m.remaining(l) >= 2)
        })
    }

    /// Local stealing (§V-A): picks the sibling with the most remaining
    /// shallow work and takes half of its shallowest remaining range.
    pub fn try_local_steal(&self, me: usize) -> Option<StealPayload> {
        let block = me / self.warps_per_block;
        let base = block * self.warps_per_block;
        // Pass 1: score victims. Shallower targets dominate (their subtrees
        // are larger); remaining count breaks ties.
        let mut best: Option<(usize, usize, usize)> = None; // (victim, level, remaining)
        for w in base..base + self.warps_per_block {
            if w == me {
                continue;
            }
            let m = self.mirrors[w].lock();
            for l in 0..self.stop {
                let rem = m.remaining(l);
                if rem >= 2 {
                    let better = match best {
                        None => true,
                        Some((_, bl, brem)) => l < bl || (l == bl && rem > brem),
                    };
                    if better {
                        best = Some((w, l, rem));
                    }
                    break; // shallowest level of this victim found
                }
            }
        }
        let (victim, _, _) = best?;
        // Pass 2: re-validate under the victim's lock and split.
        let mut m = self.mirrors[victim].lock();
        let level = (0..self.stop).find(|&l| m.remaining(l) >= 2)?;
        Some(Self::split(&mut m, level))
    }

    /// Divide-and-copy (Fig. 5): halves the remaining range at `level` of a
    /// locked mirror and returns the stolen tail.
    fn split(m: &mut MirrorState, level: usize) -> StealPayload {
        let rem = m.remaining(level);
        debug_assert!(rem >= 2);
        let take = rem / 2;
        m.size[level] -= take;
        StealPayload {
            target: level,
            matched: m.matched[..level].to_vec(),
            lo: m.size[level],
            hi: m.size[level] + take,
        }
    }

    /// Global-steal detection + push (§V-B): called by a busy warp (`me`)
    /// when it claims work at a level `< DetectLevel`. If some *other* block
    /// is fully idle and its slot is free, half of this warp's shallowest
    /// remaining range is pushed there. Returns true if a push happened.
    pub fn try_push_global(&self, me: usize) -> bool {
        let my_block = me / self.warps_per_block;
        let full = (1u32 << self.warps_per_block) - 1;
        for b in 0..self.is_idle.len() {
            // SeqCst: the idle-bitmap read must sit in the same total
            // order as mark_idle/mark_busy so a block observed fully idle
            // really had all warps past their busy decrement.
            if b == my_block || self.is_idle[b].load(Ordering::SeqCst) != full {
                continue;
            }
            let mut slot = self.lock_slot(b);
            if slot.is_some() {
                continue;
            }
            // Re-check liveness under the slot lock: a payload pushed to a
            // block whose last warp died would be stranded forever
            // (`mark_dead` drains the slot in the same lock order, so one
            // of the two always sees the other's effect). SeqCst: ordered
            // against mark_dead's alive decrement.
            if self.alive[b].load(Ordering::SeqCst) == 0 {
                continue;
            }
            // Split our own mirror. Mirror lock (rank 30) nests inside the
            // slot lock (rank 10) per the declared hierarchy; no other
            // path acquires them in the opposite order (the deadlock
            // checker enforces this).
            let payload = {
                let mut m = self.mirrors[me].lock();
                match (0..self.stop).find(|&l| m.remaining(l) >= 2) {
                    Some(level) => Self::split(&mut m, level),
                    None => return false,
                }
            };
            // SeqCst, and pending rises *before* the payload lands: a
            // `finished()` that observes the slot full also observes
            // pending > 0 (fail-safe: work in flight blocks termination).
            self.pending.fetch_add(1, Ordering::SeqCst);
            *slot = Some(payload);
            return true;
        }
        false
    }

    /// Claims a payload pushed to `block`'s slot, transitioning the caller
    /// busy in the same critical section.
    ///
    /// Plain grids serve only the caller's own block: `finished()` is
    /// stable there, so a pushed payload always has a live claimant in its
    /// target block. Rail-attached grids widen the scan to every block
    /// (own block first): a late rail requeue can leave a single warp in
    /// the loop after its siblings exited with their idle bits still set —
    /// the push detector then targets an *exited* block, and a payload
    /// parked on that slot would strand `pending` above zero forever,
    /// spinning the last warp on a termination test that can never pass.
    pub fn try_claim_global(&self, me: usize) -> Option<StealPayload> {
        let my_block = me / self.warps_per_block;
        let blocks = self.is_idle.len();
        let widen = self.rail.is_some();
        for b in std::iter::once(my_block).chain((0..blocks).filter(|&b| widen && b != my_block)) {
            let mut slot = self.lock_slot(b);
            if let Some(payload) = slot.take() {
                // Become busy *before* decrementing pending (SeqCst both)
                // so `finished()` can never observe both counters at zero
                // while work is in flight.
                self.mark_busy(me);
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(payload);
            }
        }
        None
    }

    // --- Fault containment and recovery ------------------------------

    /// Returns work reclaimed from a dead warp to the board. Called by the
    /// containment layer *before* [`Board::mark_dead`], while the dying
    /// warp still counts as busy — so `finished()` cannot fire between the
    /// requeue and the death bookkeeping.
    pub fn requeue_dead(&self, payloads: Vec<StealPayload>) {
        if payloads.is_empty() {
            return;
        }
        // SeqCst, pending before the queue grows: `finished()` observing
        // the requeued work also observes pending > 0.
        self.pending.fetch_add(payloads.len(), Ordering::SeqCst);
        self.lock_requeue().extend(payloads);
    }

    /// Records the death of warp `me`. `was_busy` says which side of the
    /// idle protocol the warp died on: busy warps release their busy count,
    /// idle warps release their idle bit (a dead warp must never read as
    /// idle, or its block could receive global pushes no one will claim).
    /// When the block's last live warp dies, any payload stranded in the
    /// block's global slot is moved to the requeue.
    pub fn mark_dead(&self, me: usize, was_busy: bool) {
        let block = me / self.warps_per_block;
        let bit = 1u32 << (me % self.warps_per_block);
        // SeqCst throughout: death bookkeeping joins the same total order
        // as the idle/busy/pending protocol (a dead warp must never read
        // as idle or busy to the termination test or the push detector).
        self.deaths.fetch_add(1, Ordering::SeqCst);
        self.alive[block].fetch_sub(1, Ordering::SeqCst);
        if was_busy {
            self.busy.fetch_sub(1, Ordering::SeqCst);
        }
        self.is_idle[block].fetch_and(!bit, Ordering::SeqCst);
        if self.alive[block].load(Ordering::SeqCst) == 0 {
            // Last live warp of the block: drain the global slot (pushers
            // re-check `alive` under this same lock, so no new payload can
            // land after the drain). Slot (rank 10) then requeue (rank 20)
            // — increasing rank per the declared hierarchy.
            let stranded = self.lock_slot(block).take();
            if let Some(p) = stranded {
                // Already counted in `pending`; moving it keeps the count.
                self.lock_requeue().push(p);
            }
        }
    }

    /// Contained warp deaths so far.
    pub fn death_count(&self) -> usize {
        // SeqCst: read by post-launch reporting; cheap and consistent with
        // the writer side.
        self.deaths.load(Ordering::SeqCst)
    }

    /// Claims a requeued work item from the busy phase (the caller already
    /// counts as busy).
    pub fn claim_requeued_busy(&self) -> Option<StealPayload> {
        let p = self.lock_requeue().pop()?;
        // SeqCst: the claimer is already busy, so pending may drop without
        // a busy handoff — `finished()` still cannot pass while this warp
        // works the payload.
        self.pending.fetch_sub(1, Ordering::SeqCst);
        Some(p)
    }

    /// Claims a requeued work item from the idle phase, transitioning the
    /// caller busy before releasing the pending count (same ordering as
    /// [`Board::try_claim_global`]).
    pub fn try_claim_requeued(&self, me: usize) -> Option<StealPayload> {
        let p = self.lock_requeue().pop()?;
        self.mark_busy(me);
        // SeqCst: pending participates in the global termination protocol
        // — the decrement must totally order with idle-mask publishes so
        // quiescence detection never misses an in-flight item.
        self.pending.fetch_sub(1, Ordering::SeqCst);
        Some(p)
    }

    /// Latches the abort flag unconditionally (containment failure path:
    /// survivors must exit rather than spin on broken counters).
    pub fn force_abort(&self) {
        // SeqCst (unlike the deadline latch): the containment-failure path
        // must be visible to survivors before the failing thread resumes
        // its unwind; cheap, and this path is cold by definition.
        self.abort.store(true, Ordering::SeqCst);
    }

    /// Post-launch drain: any work still requeued (every warp has
    /// returned, so no claim can race this), plus anything still parked in
    /// a global slot — a warp that pushed to an *exited* block and then
    /// died leaves its payload in the slot with no claimant, and a
    /// requeue-only drain would silently drop that work. The engine hands
    /// leftovers to a salvage relaunch or reports them unrecovered.
    pub fn take_leftovers(&self) -> Vec<StealPayload> {
        let mut out = {
            let mut q = self.lock_requeue();
            std::mem::take(&mut *q)
        };
        for b in 0..self.is_idle.len() {
            if let Some(p) = self.lock_slot(b).take() {
                out.push(p);
            }
        }
        // SeqCst: post-join bookkeeping; the thread join already ordered
        // everything, the strong ordering just keeps the counter protocol
        // uniform.
        self.pending.fetch_sub(out.len(), Ordering::SeqCst);
        out
    }

    /// Post-launch chunk cursor: where a salvage relaunch must resume the
    /// level-0 range (an all-warps-dead grid leaves chunks unclaimed).
    pub fn chunk_cursor(&self) -> usize {
        // SeqCst: read after the launch joined; strong ordering is free
        // here and makes the salvage handoff unconditional.
        self.chunk_next
            .load(Ordering::SeqCst)
            .min(self.num_vertices)
    }

    /// Seeds the requeue with leftover work from a previous launch of the
    /// same logical run (salvage relaunch).
    pub fn preload(&mut self, payloads: Vec<StealPayload>) {
        // SeqCst: runs before the relaunch spawns warps (exclusive &mut
        // access); uniform with the rest of the pending protocol.
        self.pending.fetch_add(payloads.len(), Ordering::SeqCst);
        *self.lock_requeue() = payloads;
    }

    /// Accumulates candidate-list spill events observed by a kernel.
    pub fn add_spills(&self, n: u64) {
        if n > 0 {
            // Relaxed: pure statistic, read after join for reporting.
            self.spills.fetch_add(n as usize, Ordering::Relaxed);
        }
    }

    /// Total spill events reported so far.
    pub fn spill_count(&self) -> u64 {
        // Relaxed: see add_spills.
        self.spills.load(Ordering::Relaxed) as u64
    }

    /// Max-combines one warp's peak of live candidate cells.
    pub fn add_peak(&self, n: u64) {
        if n > 0 {
            // Relaxed: pure statistic (a monotone max), read after join
            // for reporting — same contract as add_spills.
            self.peak_cells.fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Largest per-warp peak of live candidate cells reported so far.
    pub fn peak_count(&self) -> u64 {
        // Relaxed: see add_peak.
        self.peak_cells.load(Ordering::Relaxed)
    }
}

/// Seeded concurrency-bug mutations for the `simt_check` kill gate.
///
/// Each function deterministically replays the *checker-visible event
/// stream* of a classic synchronization bug without making the board
/// memory-unsafe: the raw mutex still serializes memory (safe Rust cannot
/// tear the state), but the acquire/release events the checker would need
/// to establish happens-before are missing or inverted — exactly what the
/// analyzer would observe if the real bug were introduced. The `simt_check`
/// bin's `--mutate=...` modes and `tests/simt_check.rs` assert these are
/// caught; CI fails if either ever goes silent.
#[doc(hidden)]
pub mod mutation {
    use super::*;

    /// Mutation **lock-drop**: a shallow-claim read-modify-write of a
    /// mirror with the `Mirror::lock` acquisition deleted. No acquire
    /// event reaches the checker, so the access carries no happens-before
    /// edge to any locked access of the same mirror — the race detector
    /// must report it, naming this site and the racing locked site.
    pub fn claim_shallow_without_lock(board: &Board, victim: usize, level: usize) -> Option<usize> {
        let mut m = board.mirrors[victim]
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // The access event fires at *this* line (the mutation site).
        simt_check::note_write(simt_check::Cell::mirror(board.check_id, victim));
        if m.iter[level] < m.size[level] {
            let i = m.iter[level];
            m.iter[level] += 1;
            Some(i)
        } else {
            None
        }
    }

    /// Mutation **lock-invert**: [`Board::try_push_global`] with the
    /// declared slot → mirror nesting inverted to mirror → slot. Once the
    /// legitimate order has been observed (any real global push), this
    /// closes a cycle in the acquisition graph and the deadlock analyzer
    /// must report it.
    pub fn push_global_inverted(board: &Board, me: usize) -> bool {
        let my_block = me / board.warps_per_block;
        let full = (1u32 << board.warps_per_block) - 1;
        // WRONG: mirror lock (rank 30) taken first and held across the
        // slot acquisition (rank 10).
        let mut m = board.mirrors[me].lock();
        for b in 0..board.is_idle.len() {
            // SeqCst loads/increment below: same termination-protocol
            // orderings as the correct push_global — only the lock order
            // is the seeded defect here.
            if b == my_block || board.is_idle[b].load(Ordering::SeqCst) != full {
                continue;
            }
            let mut slot = board.lock_slot(b);
            if slot.is_some() || board.alive[b].load(Ordering::SeqCst) == 0 {
                continue;
            }
            let payload = match (0..board.stop).find(|&l| m.remaining(l) >= 2) {
                Some(level) => Board::split(&mut m, level),
                None => return false,
            };
            // SeqCst: termination-protocol increment, before the slot
            // publish, exactly as in the correct push_global.
            board.pending.fetch_add(1, Ordering::SeqCst);
            *slot = Some(payload);
            return true;
        }
        false
    }

    /// Mutation **rail-drop**: a cross-shard rail claim with the
    /// `ShardRail::lock_state` acquisition deleted. No acquire event
    /// reaches the checker, so the access carries no happens-before edge to
    /// any tracked rail access — the race detector must report it, naming
    /// the `rail[id]` cell and both sites.
    pub fn rail_claim_without_lock(rail: &ShardRail) -> Option<(usize, usize)> {
        let mut st = rail.state.lock().unwrap_or_else(PoisonError::into_inner);
        // The access event fires at *this* line (the mutation site).
        simt_check::note_write(simt_check::Cell::rail(rail.check_id));
        let q = st.queues.iter_mut().find(|q| !q.is_empty())?;
        ShardRail::carve(q, rail.chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> Board {
        Board::new(2, 2, 2, (0, 100), 10)
    }

    #[test]
    fn chunks_partition_the_universe() {
        let b = board();
        let mut seen = Vec::new();
        while let Some((lo, hi)) = b.claim_chunk() {
            seen.push((lo, hi));
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(seen.first(), Some(&(0, 10)));
        assert_eq!(seen.last(), Some(&(90, 100)));
        assert!(!b.chunks_remain());
    }

    #[test]
    fn idle_busy_counters() {
        let b = board();
        assert!(!b.finished());
        for w in 0..4 {
            b.mark_idle(w);
        }
        // Chunks still remain: not finished.
        assert!(!b.finished());
        while b.claim_chunk().is_some() {}
        assert!(b.finished());
        b.mark_busy(1);
        assert!(!b.finished());
    }

    #[test]
    fn local_steal_halves_the_victim() {
        let b = board();
        {
            let mut m = b.mirror(1).lock();
            m.iter[0] = 10;
            m.size[0] = 30;
            m.matched[0] = 42;
        }
        let p = b.try_local_steal(0).expect("stealable work");
        assert_eq!(p.target, 0);
        assert!(p.matched.is_empty());
        assert_eq!((p.lo, p.hi), (20, 30));
        let m = b.mirror(1).lock();
        assert_eq!(m.remaining(0), 10);
    }

    #[test]
    fn local_steal_prefers_shallow_levels() {
        let b = board();
        {
            let mut m = b.mirror(1).lock();
            m.iter[1] = 0;
            m.size[1] = 100; // lots of deep work
            m.matched[0] = 7;
        }
        {
            // Warp 1 also has a little level-0 work — that must win.
            let mut m = b.mirror(1).lock();
            m.iter[0] = 0;
            m.size[0] = 4;
        }
        let p = b.try_local_steal(0).unwrap();
        assert_eq!(p.target, 0);
    }

    #[test]
    fn local_steal_carries_matched_prefix() {
        let b = board();
        {
            let mut m = b.mirror(1).lock();
            m.matched[0] = 99;
            m.iter[1] = 5;
            m.size[1] = 9;
        }
        let p = b.try_local_steal(0).unwrap();
        assert_eq!(p.target, 1);
        assert_eq!(p.matched, vec![99]);
        assert_eq!((p.lo, p.hi), (7, 9));
    }

    #[test]
    fn local_steal_ignores_other_blocks() {
        let b = board();
        {
            let mut m = b.mirror(3).lock(); // block 1
            m.size[0] = 50;
        }
        assert!(b.try_local_steal(0).is_none()); // warp 0 is in block 0
        assert!(b.try_local_steal(2).is_some());
    }

    #[test]
    fn global_push_requires_fully_idle_block() {
        let b = board();
        {
            let mut m = b.mirror(0).lock();
            m.size[0] = 40;
        }
        assert!(!b.try_push_global(0), "no idle block yet");
        b.mark_idle(2);
        assert!(!b.try_push_global(0), "block 1 only half idle");
        b.mark_idle(3);
        assert!(b.try_push_global(0));
        // Slot now full; a second push is refused.
        assert!(!b.try_push_global(0));
        let p = b.try_claim_global(2).unwrap();
        assert_eq!((p.lo, p.hi), (20, 40));
        assert!(b.try_claim_global(3).is_none());
    }

    #[test]
    fn pending_prevents_premature_termination() {
        let b = board();
        while b.claim_chunk().is_some() {}
        {
            let mut m = b.mirror(0).lock();
            m.size[0] = 10;
        }
        b.mark_idle(2);
        b.mark_idle(3);
        assert!(b.try_push_global(0));
        // Warps 0,1 finish; 2,3 idle; one payload pending.
        b.mark_idle(0);
        b.mark_idle(1);
        assert!(!b.finished(), "pending payload must block termination");
        let _ = b.try_claim_global(2).unwrap();
        assert!(!b.finished(), "claimer is busy now");
        b.mark_idle(2);
        assert!(b.finished());
    }

    #[test]
    fn requeue_blocks_termination_until_claimed() {
        let b = board();
        while b.claim_chunk().is_some() {}
        for w in 0..4 {
            b.mark_idle(w);
        }
        assert!(b.finished());
        b.mark_busy(0);
        b.requeue_dead(vec![StealPayload {
            target: 0,
            matched: vec![],
            lo: 3,
            hi: 7,
        }]);
        b.mark_dead(0, true);
        assert_eq!(b.death_count(), 1);
        assert!(!b.finished(), "requeued work must block termination");
        let p = b.try_claim_requeued(1).expect("claimable");
        assert_eq!((p.lo, p.hi), (3, 7));
        assert!(!b.finished(), "claimer is busy");
        b.mark_idle(1);
        assert!(b.finished());
    }

    #[test]
    fn death_of_last_block_warp_drains_global_slot() {
        let b = board();
        {
            let mut m = b.mirror(0).lock();
            m.size[0] = 40;
        }
        // Block 1 goes fully idle, receives a push...
        b.mark_idle(2);
        b.mark_idle(3);
        assert!(b.try_push_global(0));
        // ...then both of its warps die before claiming it.
        b.mark_dead(2, false);
        b.mark_dead(3, false);
        let p = b.try_claim_requeued(1).expect("stranded payload reclaimed");
        assert_eq!((p.lo, p.hi), (20, 40));
        assert!(b.try_claim_global(2).is_none(), "slot was drained");
    }

    #[test]
    fn push_skips_dead_blocks() {
        let b = board();
        {
            let mut m = b.mirror(0).lock();
            m.size[0] = 40;
        }
        b.mark_idle(2);
        b.mark_idle(3);
        b.mark_dead(2, false);
        b.mark_dead(3, false);
        assert!(!b.try_push_global(0), "dead block must not receive pushes");
    }

    #[test]
    fn dead_idle_warp_never_reads_idle() {
        let b = board();
        b.mark_idle(2);
        b.mark_dead(2, false);
        b.mark_idle(3);
        {
            let mut m = b.mirror(0).lock();
            m.size[0] = 40;
        }
        // Block 1 has one idle live warp and one dead warp: not fully
        // idle, so no push lands.
        assert!(!b.try_push_global(0));
    }

    #[test]
    fn leftovers_drain_and_preload_roundtrip() {
        let b = board();
        b.requeue_dead(vec![
            StealPayload {
                target: 1,
                matched: vec![9],
                lo: 0,
                hi: 2,
            },
            StealPayload {
                target: 0,
                matched: vec![],
                lo: 5,
                hi: 6,
            },
        ]);
        let left = b.take_leftovers();
        assert_eq!(left.len(), 2);
        assert!(b.take_leftovers().is_empty());
        let mut b2 = Board::new(2, 2, 2, (b.chunk_cursor(), 100), 10);
        b2.preload(left);
        assert!(!b2.finished());
        assert!(b2.claim_requeued_busy().is_some());
        assert!(b2.claim_requeued_busy().is_some());
        assert!(b2.claim_requeued_busy().is_none());
    }

    #[test]
    fn rail_serves_own_range_then_steals() {
        let rail = ShardRail::new(&[0, 50, 100], 10, true);
        // Shard 0 drains its own range first, chunk by chunk.
        for lo in (0..50).step_by(10) {
            let g = rail.claim(0).unwrap();
            assert_eq!((g.lo, g.hi, g.stolen), (lo, lo + 10, false));
        }
        // Next claim steals the tail half of shard 1's untouched range.
        let g = rail.claim(0).unwrap();
        assert_eq!((g.lo, g.hi, g.stolen), (75, 85, true));
        // The follow-up claim continues from the moved range, un-stolen.
        let g = rail.claim(0).unwrap();
        assert_eq!((g.lo, g.hi, g.stolen), (85, 95, false));
        assert_eq!(rail.stats().cross_steals, 1);
        // Everything is eventually claimed exactly once.
        let mut covered = [false; 100];
        for (lo, hi) in [(0, 50), (75, 95)] {
            covered[lo..hi].fill(true);
        }
        for shard in [0, 1] {
            while let Some(g) = rail.claim(shard) {
                for c in covered.iter_mut().take(g.hi).skip(g.lo) {
                    assert!(!*c, "claimed twice");
                    *c = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert!(!rail.has_claimable(0));
    }

    #[test]
    fn rail_without_cross_steal_keeps_shards_apart() {
        let rail = ShardRail::new(&[0, 50, 100], 10, false);
        while rail.claim(0).is_some() {}
        assert!(!rail.has_claimable(0), "no stealing: shard 0 is done");
        assert!(rail.has_claimable(1));
        let (ranges, payloads) = rail.drain_remaining();
        assert_eq!(ranges, vec![(50, 100)]);
        assert!(payloads.is_empty());
    }

    #[test]
    fn rail_requeue_blocks_termination_and_roundtrips() {
        let rail = ShardRail::new(&[0, 10], 10, true);
        while rail.claim(0).is_some() {}
        assert!(!rail.has_claimable(0));
        rail.mark_shard_dead(0);
        rail.push_requeue(vec![StealPayload {
            target: 0,
            matched: vec![],
            lo: 3,
            hi: 7,
        }]);
        assert!(rail.has_claimable(0), "requeued payload must be claimable");
        let p = rail.pop_requeue().unwrap();
        assert_eq!((p.lo, p.hi), (3, 7));
        let s = rail.stats();
        assert_eq!(s.requeue_pushes, 1);
        assert_eq!(s.requeue_claims, 1);
        assert_eq!(s.shard_deaths, 1);
    }

    #[test]
    fn rail_attached_board_claims_through_rail() {
        let rail = Arc::new(ShardRail::new(&[0, 20, 40], 10, true));
        let mut b0 = Board::new(2, 2, 2, (0, 0), 10);
        b0.attach_rail(rail.clone(), 0);
        assert!(b0.chunks_remain());
        assert_eq!(b0.claim_chunk_tagged(), Some((0, 10, false)));
        assert_eq!(b0.claim_chunk(), Some((10, 20)));
        // Own range drained: the next claim crosses into shard 1.
        let (lo, hi, stolen) = b0.claim_chunk_tagged().unwrap();
        assert!(stolen);
        assert!(lo >= 20 && hi <= 40);
        while b0.claim_chunk().is_some() {}
        assert!(!b0.chunks_remain());
        // A payload pushed by a dying sibling shard reaches this board.
        rail.push_requeue(vec![StealPayload {
            target: 0,
            matched: vec![],
            lo: 1,
            hi: 2,
        }]);
        assert!(b0.chunks_remain(), "rail payload must block termination");
        assert!(b0.claim_rail_requeued().is_some());
        assert!(!b0.chunks_remain());
    }

    #[test]
    fn rail_from_parts_distributes_leftovers() {
        let rail = ShardRail::from_parts(2, 5, false, vec![(0, 5), (7, 9), (9, 9)], Vec::new());
        assert_eq!(rail.num_shards(), 2);
        assert_eq!(
            rail.claim(0).map(|g| (g.lo, g.hi, g.stolen)),
            Some((0, 5, false))
        );
        assert_eq!(
            rail.claim(1).map(|g| (g.lo, g.hi, g.stolen)),
            Some((7, 9, false))
        );
        assert!(rail.claim(0).is_none(), "empty range was dropped");
    }

    #[test]
    fn concurrent_chunk_claims_never_overlap() {
        let b = std::sync::Arc::new(Board::new(1, 4, 1, (0, 10_000), 7));
        let ranges: Vec<(usize, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let b = b.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(r) = b.claim_chunk() {
                            got.push(r);
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut covered = vec![false; 10_000];
        for (lo, hi) in ranges {
            for (v, c) in covered.iter_mut().enumerate().take(hi).skip(lo) {
                assert!(!*c, "vertex {v} claimed twice");
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }
}
