//! The stack-based matching kernel (Fig. 3, unrolled per Fig. 7).
//!
//! One [`WarpKernel`] instance runs per warp. Its state is the explicit
//! call stack of the paper:
//!
//! * `storage` — the candidate sets `C[NUM_SETS][UNROLL][·]` ("global
//!   memory" slabs in the paper),
//! * `iter`/`uiter`/`batch` — the per-level loop cursors ("shared memory"
//!   in the paper),
//! * the warp's [`Mirror`](crate::steal::Mirror) — the stealable region:
//!   iteration cursors and matched prefix for levels below `StopLevel`.
//!
//! Levels below `StopLevel` claim one iteration at a time through the
//! mirror (so concurrent stealers can take the tail of the range); deeper
//! levels iterate privately and claim `UNROLL` iterations at once, whose
//! candidate-set computations are combined into shared warp waves
//! (Fig. 8). At the last level candidates are counted instead of iterated.

use crate::config::EngineConfig;
use crate::setops;
use crate::steal::{Board, StealPayload};
use stmatch_gpusim::Warp;
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::plan::Base;
use stmatch_pattern::symmetry::Bound;
use stmatch_pattern::{LabelMask, MatchPlan};

/// Candidate-set storage: one slab per (set id, unroll slot).
struct Storage {
    c: Vec<Vec<VertexId>>,
    unroll: usize,
}

impl Storage {
    fn new(num_sets: usize, unroll: usize) -> Storage {
        Storage {
            c: vec![Vec::new(); num_sets.max(1) * unroll],
            unroll,
        }
    }

    #[inline]
    fn slot(&self, set: usize, u: usize) -> &[VertexId] {
        &self.c[set * self.unroll + u]
    }

    #[inline]
    fn swap_in(&mut self, set: usize, u: usize, buf: &mut Vec<VertexId>) {
        std::mem::swap(&mut self.c[set * self.unroll + u], buf);
    }
}

/// Per-warp kernel state.
pub struct WarpKernel<'a> {
    g: &'a Graph,
    plan: &'a MatchPlan,
    cfg: &'a EngineConfig,
    board: &'a Board,
    warp_id: usize,
    /// Pattern size (number of levels).
    k: usize,
    /// Effective stop level (stealable shallow depth).
    stop: usize,
    storage: Storage,
    /// `batch[l]` = candidate vertices claimed for position `l-1` (the
    /// unroll slots of level `l`); `batch[0]` unused.
    batch: Vec<Vec<VertexId>>,
    /// Current unroll slot per level.
    uiter: Vec<usize>,
    /// Next candidate index within the current slot per level.
    iter: Vec<usize>,
    /// Vertex currently matched at each position.
    matched: Vec<VertexId>,
    /// Level at which the current work item entered (0 for chunks,
    /// `payload.target` for stolen work).
    entry: usize,
    /// Level-0 vertex mapping for multi-device partitioning: virtual index
    /// `i` denotes data vertex `l0_base + i * l0_stride`.
    l0_base: usize,
    l0_stride: usize,
    /// Ping/pong scratch buffers for chained set ops.
    ping: Vec<Vec<VertexId>>,
    pong: Vec<Vec<VertexId>>,
    /// Claimed-but-unfiltered candidates scratch.
    raw: Vec<VertexId>,
    /// Claims since the last deadline poll.
    deadline_tick: u32,
    /// When enumerating, completed embeddings are appended here, indexed
    /// by *pattern vertex* (not matching-order position).
    emit: Option<Vec<Vec<VertexId>>>,
}

impl<'a> WarpKernel<'a> {
    pub fn new(
        g: &'a Graph,
        plan: &'a MatchPlan,
        cfg: &'a EngineConfig,
        board: &'a Board,
        warp_id: usize,
    ) -> Self {
        let k = plan.num_levels();
        let unroll = cfg.unroll;
        WarpKernel {
            g,
            plan,
            cfg,
            board,
            warp_id,
            k,
            stop: board.stop(),
            storage: Storage::new(plan.num_sets(), unroll),
            batch: vec![Vec::with_capacity(unroll); k + 1],
            uiter: vec![0; k + 1],
            iter: vec![0; k + 1],
            matched: vec![0; k],
            entry: 0,
            ping: vec![Vec::new(); unroll],
            pong: vec![Vec::new(); unroll],
            raw: Vec::with_capacity(unroll),
            deadline_tick: 0,
            l0_base: 0,
            l0_stride: 1,
            emit: None,
        }
    }

    /// Switches the kernel from counting to enumerating: every match is
    /// materialized as a pattern-vertex-indexed embedding (Fig. 3's
    /// `Output`). Call [`WarpKernel::take_emitted`] after the run.
    pub fn enable_enumeration(&mut self) {
        self.emit = Some(Vec::new());
    }

    /// Drains the embeddings collected since enumeration was enabled.
    pub fn take_emitted(&mut self) -> Vec<Vec<VertexId>> {
        self.emit.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Appends the embedding `matched[0..k-1] + v` remapped from matching
    /// order to pattern vertex ids.
    fn emit_match(&mut self, v: VertexId) {
        let k = self.k;
        let order = self.plan.order();
        let mut emb = vec![0 as VertexId; k];
        for pos in 0..k - 1 {
            emb[order.vertex_at(pos)] = self.matched[pos];
        }
        emb[order.vertex_at(k - 1)] = v;
        self.emit.as_mut().expect("enumeration enabled").push(emb);
    }

    /// Configures the strided level-0 partition for multi-device runs:
    /// this kernel's virtual index `i` maps to vertex `base + i * stride`.
    pub fn set_device_partition(&mut self, base: usize, stride: usize) {
        debug_assert!(stride >= 1);
        self.l0_base = base;
        self.l0_stride = stride;
    }

    /// Periodic cooperative cancellation check on the claim paths: cheap
    /// flag read per claim, a real clock read every few thousand claims.
    #[inline]
    fn cancelled(&mut self) -> bool {
        self.deadline_tick = self.deadline_tick.wrapping_add(1);
        if self.deadline_tick % 4096 == 0 {
            self.board.check_deadline()
        } else {
            self.board.aborted()
        }
    }

    /// Installs a fresh level-0 chunk `[lo, hi)` of the vertex universe.
    pub fn install_chunk(&mut self, lo: usize, hi: usize) {
        let mut m = self.board.mirror(self.warp_id).lock();
        for l in 0..crate::steal::MAX_STOP {
            m.iter[l] = 0;
            m.size[l] = 0;
        }
        m.iter[0] = lo;
        m.size[0] = hi;
        self.entry = 0;
    }

    /// Installs stolen work: restores the matched prefix, recomputes the
    /// candidate sets of every level up to the target (they are
    /// deterministic functions of the prefix), and points the mirror at the
    /// stolen iteration range.
    pub fn install_payload(&mut self, warp: &mut Warp, p: &StealPayload) {
        debug_assert_eq!(p.matched.len(), p.target);
        self.matched[..p.target].copy_from_slice(&p.matched);
        for l in 1..=p.target {
            self.batch[l].clear();
            self.batch[l].push(p.matched[l - 1]);
            self.uiter[l] = 0;
            self.iter[l] = 0;
            let b = std::mem::take(&mut self.batch[l]);
            self.compute_sets(warp, l, &b);
            self.batch[l] = b;
        }
        let mut m = self.board.mirror(self.warp_id).lock();
        for l in 0..crate::steal::MAX_STOP {
            m.iter[l] = 0;
            m.size[l] = 0;
        }
        m.matched[..p.target].copy_from_slice(&p.matched);
        m.iter[p.target] = p.lo;
        m.size[p.target] = p.hi;
        self.entry = p.target;
    }

    /// Runs the installed work item to exhaustion, adding matches to the
    /// warp's counters.
    pub fn run(&mut self, warp: &mut Warp) {
        if self.k == 1 {
            // Degenerate single-vertex pattern: count valid level-0
            // candidates directly.
            while let Some(v) = self.claim_shallow(warp, 0) {
                warp.metrics_mut().matches_found += 1;
                if self.emit.is_some() {
                    self.emit.as_mut().unwrap().push(vec![v]);
                }
            }
            return;
        }
        let mut l = self.entry;
        loop {
            if !self.claim(warp, l) {
                if l == self.entry {
                    return;
                }
                l -= 1;
                continue;
            }
            // `claim` filled `batch[l + 1]` with valid candidates for
            // position `l`.
            self.begin_level(warp, l + 1);
            if l + 1 == self.k - 1 {
                self.count_last_level(warp);
                // Stay at level l; keep claiming.
            } else {
                l += 1;
            }
        }
    }

    /// Claims the next batch of valid candidates for position `l` into
    /// `batch[l + 1]`. Returns false when level `l` is exhausted.
    fn claim(&mut self, warp: &mut Warp, l: usize) -> bool {
        if l < self.stop {
            match self.claim_shallow(warp, l) {
                Some(v) => {
                    self.batch[l + 1].clear();
                    self.batch[l + 1].push(v);
                    true
                }
                None => false,
            }
        } else {
            self.claim_deep(warp, l)
        }
    }

    /// Shallow claim: one validity-checked candidate through the mirror.
    fn claim_shallow(&mut self, warp: &mut Warp, l: usize) -> Option<VertexId> {
        loop {
            if self.cancelled() {
                return None;
            }
            let idx = {
                let mut m = self.board.mirror(self.warp_id).lock();
                if m.iter[l] < m.size[l] {
                    let i = m.iter[l];
                    m.iter[l] += 1;
                    Some(i)
                } else {
                    None
                }
            }?;
            // §V-B detection hook: when claiming at a level below
            // DetectLevel, a busy warp offers work to fully-idle blocks.
            if self.cfg.global_steal
                && l < self.cfg.detect_level
                && self.board.try_push_global(self.warp_id)
            {
                warp.metrics_mut().global_steal_pushes += 1;
                // Fixed cost model: pushing a stack through global memory
                // costs a burst of instructions.
                warp.metrics_mut().simt_instructions += 256;
            }
            let v = if l == 0 {
                (self.l0_base + idx * self.l0_stride) as VertexId
            } else {
                self.candidate_list(l, 0)[idx]
            };
            warp.simt_for(1, |_| {});
            if self.valid(l, v) {
                return Some(v);
            }
        }
    }

    /// Deep claim: up to `UNROLL` raw iterations from the current slot,
    /// validity-filtered into `batch[l + 1]` (slots never mix: all unroll
    /// candidates share one matched path).
    fn claim_deep(&mut self, warp: &mut Warp, l: usize) -> bool {
        loop {
            if self.cancelled() {
                return false;
            }
            if self.uiter[l] >= self.batch[l].len() {
                return false;
            }
            let (cid, slot) = self.candidate_location(l, self.uiter[l]);
            let cl_len = self.storage.slot(cid, slot).len();
            if self.iter[l] >= cl_len {
                // Current slot exhausted: advance the unroll iterate, which
                // moves the matched vertex at position l-1 (Fig. 7 line 22).
                self.uiter[l] += 1;
                self.iter[l] = 0;
                if self.uiter[l] < self.batch[l].len() {
                    self.matched[l - 1] = self.batch[l][self.uiter[l]];
                }
                continue;
            }
            let start = self.iter[l];
            let take = (cl_len - start).min(self.cfg.unroll);
            self.raw.clear();
            {
                // Disjoint field borrows: raw (mut) vs storage (shared).
                let raw = &mut self.raw;
                let storage = &self.storage;
                raw.extend_from_slice(&storage.slot(cid, slot)[start..start + take]);
            }
            self.iter[l] += take;
            let raw = std::mem::take(&mut self.raw);
            self.batch[l + 1].clear();
            // Validity filtering as one warp wave over the claimed batch.
            let mut keep = [false; 32];
            {
                let g = self.g;
                let plan = self.plan;
                let matched = &self.matched;
                warp.simt_for(raw.len(), |i| {
                    keep[i] = valid_candidate(g, plan, matched, l, raw[i]);
                });
            }
            for (i, &v) in raw.iter().enumerate() {
                if keep[i] {
                    self.batch[l + 1].push(v);
                }
            }
            self.raw = raw;
            if !self.batch[l + 1].is_empty() {
                return true;
            }
        }
    }

    /// Enters level `l`: resets its cursors, fixes `matched[l-1]` to the
    /// first slot, computes all of the level's sets for every slot, and
    /// publishes the stealable state when `l` is shallow.
    fn begin_level(&mut self, warp: &mut Warp, l: usize) {
        debug_assert!(!self.batch[l].is_empty());
        self.uiter[l] = 0;
        self.iter[l] = 0;
        self.matched[l - 1] = self.batch[l][0];
        if l - 1 < self.stop {
            let mut m = self.board.mirror(self.warp_id).lock();
            m.matched[l - 1] = self.batch[l][0];
        }
        let b = std::mem::take(&mut self.batch[l]);
        self.compute_sets(warp, l, &b);
        self.batch[l] = b;
        if l < self.stop {
            let (cid, slot) = self.candidate_location(l, 0);
            let size = self.storage.slot(cid, slot).len();
            let mut m = self.board.mirror(self.warp_id).lock();
            m.iter[l] = 0;
            m.size[l] = size;
        }
    }

    /// Resolves the (set id, storage slot) of the candidate list for
    /// position `l`, slot `u`, honoring lifted (code-moved) candidate sets:
    /// a set computed at an earlier level is indexed by that level's
    /// current unroll slot.
    #[inline]
    fn candidate_location(&self, l: usize, u: usize) -> (usize, usize) {
        let cid = self
            .plan
            .candidate_set(l)
            .expect("levels >= 1 have candidate sets") as usize;
        let def_level = self.plan.sets()[cid].level as usize;
        let slot = if def_level == l {
            u
        } else {
            self.uiter[def_level]
        };
        (cid, slot)
    }

    /// The candidate list for position `l`, slot `u`.
    #[inline]
    fn candidate_list(&self, l: usize, u: usize) -> &[VertexId] {
        let (cid, slot) = self.candidate_location(l, u);
        self.storage.slot(cid, slot)
    }

    /// Computes every set of `level` for all slots of `bat`, as combined
    /// warp-wide operations (Fig. 8).
    fn compute_sets(&mut self, warp: &mut Warp, level: usize, bat: &[VertexId]) {
        let m = bat.len();
        debug_assert!(m >= 1 && m <= self.cfg.unroll);
        let g = self.g;
        let plan = self.plan;
        // Small copy of the matched prefix so no closure needs `self`.
        let mut matched = [0 as VertexId; stmatch_pattern::MAX_PATTERN_SIZE];
        matched[..self.k].copy_from_slice(&self.matched);
        let vertex_at = |pos: usize, u: usize| -> VertexId {
            if pos == level - 1 {
                bat[u]
            } else {
                matched[pos]
            }
        };
        let mut ping = std::mem::take(&mut self.ping);
        let mut pong = std::mem::take(&mut self.pong);
        for sid in plan.sets_at_level(level) {
            let def = &plan.sets()[sid];
            let mut rest: &[stmatch_pattern::plan::ChainOp] = &def.ops;
            match def.base {
                Base::Neighbors(pos) => {
                    let sources: Vec<&[VertexId]> = (0..m)
                        .map(|u| g.neighbors(vertex_at(pos as usize, u)))
                        .collect();
                    let mask = if def.ops.is_empty() {
                        def.mask
                    } else {
                        LabelMask::ALL
                    };
                    setops::materialize_base(warp, g, &sources, mask, &mut ping[..m]);
                }
                Base::Set(dep) => {
                    let dep = dep as usize;
                    let dep_level = plan.sets()[dep].level as usize;
                    let op = def.ops.first().expect("set deps carry an op");
                    let storage = &self.storage;
                    let uiter = &self.uiter;
                    let inputs: Vec<&[VertexId]> = (0..m)
                        .map(|u| {
                            let slot = if dep_level == level {
                                u
                            } else {
                                uiter[dep_level]
                            };
                            storage.slot(dep, slot)
                        })
                        .collect();
                    let operands: Vec<&[VertexId]> = (0..m)
                        .map(|u| g.neighbors(vertex_at(op.pos as usize, u)))
                        .collect();
                    let mask = if def.ops.len() == 1 {
                        def.mask
                    } else {
                        LabelMask::ALL
                    };
                    setops::apply_op(warp, g, &inputs, &operands, op.kind, mask, &mut ping[..m]);
                    rest = &def.ops[1..];
                }
            }
            for (i, op) in rest.iter().enumerate() {
                let mask = if i + 1 == rest.len() {
                    def.mask
                } else {
                    LabelMask::ALL
                };
                let inputs: Vec<&[VertexId]> = ping[..m].iter().map(|v| v.as_slice()).collect();
                let operands: Vec<&[VertexId]> = (0..m)
                    .map(|u| g.neighbors(vertex_at(op.pos as usize, u)))
                    .collect();
                setops::apply_op(warp, g, &inputs, &operands, op.kind, mask, &mut pong[..m]);
                std::mem::swap(&mut ping, &mut pong);
            }
            for (u, buf) in ping.iter_mut().enumerate().take(m) {
                self.storage.swap_in(sid, u, buf);
                buf.clear();
            }
        }
        self.ping = ping;
        self.pong = pong;
    }

    /// Last level: counts (or, when enumerating, outputs) the valid
    /// candidates of every slot instead of iterating them (Fig. 3 line 16).
    fn count_last_level(&mut self, warp: &mut Warp) {
        let l = self.k - 1;
        let slots = self.batch[l].len();
        let mut total = 0u64;
        let mut valid_tail: Vec<VertexId> = Vec::new();
        for u in 0..slots {
            self.matched[l - 1] = self.batch[l][u];
            let (cid, slot) = self.candidate_location(l, u);
            let g = self.g;
            let plan = self.plan;
            let matched = &self.matched;
            let cl = self.storage.slot(cid, slot);
            if self.emit.is_some() {
                valid_tail.clear();
                total += setops::count_with(warp, cl, |v| {
                    let ok = valid_candidate(g, plan, matched, l, v);
                    if ok {
                        valid_tail.push(v);
                    }
                    ok
                });
                let tail = std::mem::take(&mut valid_tail);
                for &v in &tail {
                    self.emit_match(v);
                }
                valid_tail = tail;
            } else {
                total += setops::count_with(warp, cl, |v| valid_candidate(g, plan, matched, l, v));
            }
        }
        warp.metrics_mut().matches_found += total;
    }

    /// Validity of candidate `v` at position `l`: label (level 0 only —
    /// deeper candidates come from label-filtered sets), injectivity, and
    /// symmetry bounds.
    #[inline]
    fn valid(&self, l: usize, v: VertexId) -> bool {
        if l == 0 {
            if let Some(lbl) = self.plan.level_label(0) {
                if self.g.label(v) != lbl {
                    return false;
                }
            }
        }
        valid_candidate(self.g, self.plan, &self.matched, l, v)
    }
}

/// Injectivity, residual-label and symmetry-bound check against the
/// matched prefix.
#[inline]
fn valid_candidate(
    g: &Graph,
    plan: &MatchPlan,
    matched: &[VertexId],
    l: usize,
    v: VertexId,
) -> bool {
    if let Some(lbl) = plan.residual_label_check(l) {
        if g.label(v) != lbl {
            return false;
        }
    }
    for &m in &matched[..l] {
        if m == v {
            return false;
        }
    }
    for &(pos, bound) in plan.bounds(l) {
        let ok = match bound {
            Bound::Less => v < matched[pos],
            Bound::Greater => v > matched[pos],
        };
        if !ok {
            return false;
        }
    }
    true
}
