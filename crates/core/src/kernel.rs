//! The stack-based matching kernel (Fig. 3, unrolled per Fig. 7).
//!
//! One [`WarpKernel`] instance runs per warp. Its state is the explicit
//! call stack of the paper:
//!
//! * `storage` — the candidate sets `C[NUM_SETS][UNROLL][·]`, one flat
//!   pre-sized slab per warp ("global memory" in the paper; see
//!   [`StackArena`]),
//! * `iter`/`uiter`/`batch` — the per-level loop cursors ("shared memory"
//!   in the paper),
//! * the warp's [`Mirror`](crate::steal::Mirror) — the stealable region:
//!   iteration cursors and matched prefix for levels below `StopLevel`.
//!
//! Levels below `StopLevel` claim one iteration at a time through the
//! mirror (so concurrent stealers can take the tail of the range); deeper
//! levels iterate privately and claim `UNROLL` iterations at once, whose
//! candidate-set computations are combined into shared warp waves
//! (Fig. 8). At the last level candidates are counted instead of iterated.
//!
//! All per-claim scratch (the unroll batches, ping/pong chain buffers, the
//! raw-claim buffer, the emit tail) is owned by the kernel and reused, and
//! set-operation outputs stream straight into the arena slabs — after the
//! first passes warm the scratch capacities, the steady-state claim loop
//! performs no heap allocation (see `tests/alloc_free.rs`).

//! ## Fault containment (transactional counting)
//!
//! The engine may run this kernel under `catch_unwind` with a
//! [`FaultPlan`] injecting panics. To keep counts exact across a warp
//! death, the kernel counts *transactionally*: matches accumulate in a
//! kernel-local `pending_matches` and only **commit** to the warp's
//! metrics at claim boundaries of the deepest shallow level — points
//! where the just-finished subtree is fully explored and the not-yet-
//! started work is fully described by the steal mirror. Between commits,
//! the single in-flight shallow iteration is recorded in `inflight`
//! (written inside the same mirror lock that claims the index, cleared
//! inside the lock that publishes the child level's range). On death,
//! [`WarpKernel::reclaim_on_death`] discards the uncommitted tally and
//! returns the mirror's remaining ranges plus the in-flight iteration as
//! [`StealPayload`]s — replaying them recounts exactly the dropped
//! subtree, nothing more. Emitted embeddings follow the same protocol
//! through a commit watermark (`emit_mark`).

use crate::arena::StackArena;
use crate::compile::{CompiledPlan, Tier};
use crate::config::{EngineConfig, MAX_UNROLL};
use crate::fault::FaultPlan;
use crate::setops;
use crate::steal::{Board, StealPayload};
use stmatch_gpusim::Warp;
use stmatch_graph::{Graph, HubBitmapIndex, VertexId};
use stmatch_pattern::bytecode::{OpCode, PlanBytecode, SpecShape};
use stmatch_pattern::plan::{Base, ChainOp};
use stmatch_pattern::symmetry::Bound;
use stmatch_pattern::{LabelMask, MatchPlan, OpKind};

/// Monomorphization table for the tier-1 shape bodies: one arm per
/// `(UNROLL, NUM_SETS)` point, keyed on the live config and plan. Unrolls
/// outside the power-of-two ladder or plans wider than the table fall back
/// to the tier-0 dispatch loop (returning `false`), which is always
/// metric-identical — specialization is a strict fast path, never a
/// semantic fork.
macro_rules! shape_dispatch {
    ($self:ident . $method:ident ($warp:ident, $level:ident, $bat:ident, $bc:ident)) => {
        shape_dispatch!(@arms $self.$method($warp, $level, $bat, $bc);
            (1, 1), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7),
            (2, 1), (2, 2), (2, 3), (2, 4), (2, 5), (2, 6), (2, 7),
            (4, 1), (4, 2), (4, 3), (4, 4), (4, 5), (4, 6), (4, 7),
            (8, 1), (8, 2), (8, 3), (8, 4), (8, 5), (8, 6), (8, 7),
            (16, 1), (16, 2), (16, 3), (16, 4), (16, 5), (16, 6), (16, 7),
            (32, 1), (32, 2), (32, 3), (32, 4), (32, 5), (32, 6), (32, 7))
    };
    (@arms $self:ident . $method:ident ($warp:ident, $level:ident, $bat:ident, $bc:ident);
     $(($u:literal, $n:literal)),+) => {
        match ($self.cfg.unroll, $bc.num_sets()) {
            $(($u, $n) => {
                $self.$method::<$u, $n>($warp, $level, $bat, $bc);
                true
            })+
            _ => false,
        }
    };
}

/// Per-warp kernel state.
pub struct WarpKernel<'a> {
    g: &'a Graph,
    plan: &'a MatchPlan,
    cfg: &'a EngineConfig,
    board: &'a Board,
    warp_id: usize,
    /// Pattern size (number of levels).
    k: usize,
    /// Effective stop level (stealable shallow depth).
    stop: usize,
    /// The warp's flat candidate-set slab (the paper's `C` array).
    storage: StackArena,
    /// `batch[l]` = candidate vertices claimed for position `l-1` (the
    /// unroll slots of level `l`); `batch[0]` unused.
    batch: Vec<Vec<VertexId>>,
    /// Current unroll slot per level.
    uiter: Vec<usize>,
    /// Next candidate index within the current slot per level.
    iter: Vec<usize>,
    /// Vertex currently matched at each position.
    matched: Vec<VertexId>,
    /// Level at which the current work item entered (0 for chunks,
    /// `payload.target` for stolen work).
    entry: usize,
    /// Level-0 vertex mapping for multi-device partitioning: virtual index
    /// `i` denotes data vertex `l0_base + i * l0_stride`.
    l0_base: usize,
    l0_stride: usize,
    /// Level-0 permutation for sharded runs: virtual index `i` (after the
    /// base/stride mapping) denotes data vertex `l0_map[i]`. `None` keeps
    /// the identity, bit-identical to pre-sharding revisions.
    l0_map: Option<&'a [VertexId]>,
    /// Anchor pins for incremental (delta) runs: `(a, b)` entries meaning
    /// "when `matched[0] == a`, the only valid level-1 candidate is `b`".
    /// Keyed by the matched vertex, not the claim index, so the pin
    /// survives work stealing (stolen payloads copy the matched prefix).
    /// `None` keeps every path bit-identical to pre-delta revisions.
    anchor: Option<&'a [(VertexId, VertexId)]>,
    /// Ping/pong scratch for multi-op set chains; the final chain op
    /// writes straight into the arena, so these only hold intermediates.
    ping: Vec<Vec<VertexId>>,
    pong: Vec<Vec<VertexId>>,
    /// Claimed-but-unfiltered candidates scratch.
    raw: Vec<VertexId>,
    /// Valid last-level candidates scratch (enumeration only).
    emit_tail: Vec<VertexId>,
    /// Claims so far (deadline polls every 4096; also the fault-injection
    /// ordinal — "die at the Nth claim").
    claims: u64,
    /// Mirror publishes so far (the fault-injection ordinal for
    /// poisoned-publish faults).
    publishes: u64,
    /// When enumerating, completed embeddings are appended here as
    /// `k`-strided records indexed by *pattern vertex* (not matching-order
    /// position).
    emit: Option<Vec<VertexId>>,
    /// Matches found since the last commit (see module docs on
    /// transactional counting).
    pending_matches: u64,
    /// `emit` length at the last commit; on death everything beyond it is
    /// discarded along with `pending_matches`.
    emit_mark: usize,
    /// The one shallow iteration claimed from the mirror but whose child
    /// range is not yet published (or, at the deepest shallow level, whose
    /// subtree is not yet committed): `(level, index)`.
    inflight: Option<(usize, usize)>,
    /// Work item being installed; authoritative over the (half-written)
    /// mirror if the warp dies mid-install.
    installing: Option<StealPayload>,
    /// Injected fault plan, if any (testing/chaos only; `None` on every
    /// production path).
    faults: Option<&'a FaultPlan>,
    /// Hub-bitmap index, present iff `cfg.hub_bitmap.enabled` (the engine
    /// resolves the graph's attached index or builds one per run). `None`
    /// keeps every set operation on the classic element paths,
    /// bit-identical to pre-bitmap revisions.
    hubs: Option<&'a HubBitmapIndex>,
    /// Compiled-plan tiers, present iff `cfg.compile.enabled` and hub
    /// routing is off (the tiers accelerate the classic element engine;
    /// see `engine::run_inner`). `None` keeps the per-claim plan walk,
    /// bit-identical to pre-compilation revisions.
    compiled: Option<&'a CompiledPlan>,
    /// Claims recorded since the last profile flush to `compiled` (always
    /// 0 when compilation is off). Batched so the shared profile counter
    /// stays off the per-claim fast path.
    unflushed: u64,
}

impl<'a> WarpKernel<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        g: &'a Graph,
        plan: &'a MatchPlan,
        cfg: &'a EngineConfig,
        board: &'a Board,
        warp_id: usize,
        faults: Option<&'a FaultPlan>,
        hubs: Option<&'a HubBitmapIndex>,
    ) -> Self {
        Self::with_arena(g, plan, cfg, board, warp_id, faults, hubs, None, None)
    }

    /// [`WarpKernel::new`] with an optional recycled [`StackArena`] (from a
    /// resident service's pool). A recycled arena is reset to this kernel's
    /// geometry before use, reusing its heap blocks — the warm-pool path
    /// that amortizes the per-warp slab allocation across queries. `None`
    /// allocates fresh, exactly as before.
    #[allow(clippy::too_many_arguments)]
    pub fn with_arena(
        g: &'a Graph,
        plan: &'a MatchPlan,
        cfg: &'a EngineConfig,
        board: &'a Board,
        warp_id: usize,
        faults: Option<&'a FaultPlan>,
        hubs: Option<&'a HubBitmapIndex>,
        recycle: Option<StackArena>,
        compiled: Option<&'a CompiledPlan>,
    ) -> Self {
        let k = plan.num_levels();
        let unroll = cfg.unroll;
        // Tight slab capacity: every candidate list descends from some
        // neighbor list through shrinking ops, so no list outgrows the
        // graph's max degree. Budget accounting still reserves the paper's
        // fixed `max_degree_slab` per slot (see `run_inner`); allocating
        // tighter just packs the slabs densely for the cache.
        let cap = cfg.max_degree_slab.min(g.max_degree().max(1));
        // Certificate-shaped slabs: a clean static verification may have
        // published per-set capacity bounds on the compiled plan. The
        // bounds are sound upper bounds on candidate-list sizes, so
        // clamping each slab to `min(bound, cap)` packs the arena tighter
        // without introducing a single new spill — a set either fit its
        // bound (≤ shaped cap) or would have spilled at `cap` anyway.
        // Bitmap-domain runs keep uniform geometry (set-bit rows assume
        // it), matching the `compiled` gating below.
        let shaped: Option<Vec<usize>> = if cfg.verify.apply_hints && hubs.is_none() {
            compiled.and_then(|c| c.footprint_hint()).map(|caps| {
                (0..plan.num_sets())
                    .map(|s| caps.get(s).map_or(cap, |&b| (b as usize).clamp(1, cap)))
                    .collect()
            })
        } else {
            None
        };
        let mut storage = match (recycle, &shaped) {
            (Some(mut arena), Some(set_caps)) => {
                arena.reset_shaped(set_caps, unroll, cap);
                arena
            }
            (Some(mut arena), None) => {
                arena.reset(plan.num_sets(), unroll, cap);
                arena
            }
            (None, Some(set_caps)) => StackArena::new_shaped(set_caps, unroll, cap),
            (None, None) => StackArena::new(plan.num_sets(), unroll, cap),
        };
        if let Some(hx) = hubs {
            // Result-row storage so bitmap-domain results cascade to
            // dependent sets; sized here (construction) to keep the claim
            // path allocation-free.
            storage.enable_set_bits(hx.stride());
        }
        WarpKernel {
            g,
            plan,
            cfg,
            board,
            warp_id,
            k,
            stop: board.stop(),
            storage,
            batch: vec![Vec::with_capacity(unroll); k + 1],
            uiter: vec![0; k + 1],
            iter: vec![0; k + 1],
            matched: vec![0; k],
            entry: 0,
            ping: vec![Vec::new(); unroll],
            pong: vec![Vec::new(); unroll],
            raw: Vec::with_capacity(unroll),
            emit_tail: Vec::new(),
            claims: 0,
            publishes: 0,
            l0_base: 0,
            l0_stride: 1,
            l0_map: None,
            anchor: None,
            emit: None,
            pending_matches: 0,
            emit_mark: 0,
            inflight: None,
            installing: None,
            faults,
            hubs,
            compiled: if hubs.is_none() { compiled } else { None },
            unflushed: 0,
        }
    }

    /// Switches the kernel from counting to enumerating: every match is
    /// materialized as a pattern-vertex-indexed embedding (Fig. 3's
    /// `Output`). Call [`WarpKernel::take_emitted`] after the run.
    pub fn enable_enumeration(&mut self) {
        self.emit = Some(Vec::new());
    }

    /// Drains the embeddings collected since enumeration was enabled, as a
    /// flat buffer of `k`-strided records.
    pub fn take_emitted(&mut self) -> Vec<VertexId> {
        self.emit_mark = 0;
        self.emit.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Appends the embedding `matched[0..k-1] + v` remapped from matching
    /// order to pattern vertex ids, as one more `k`-strided record.
    fn emit_match(&mut self, v: VertexId) {
        let k = self.k;
        let order = self.plan.order();
        let emb = self.emit.as_mut().expect("enumeration enabled");
        let base = emb.len();
        emb.resize(base + k, 0);
        for pos in 0..k - 1 {
            emb[base + order.vertex_at(pos)] = self.matched[pos];
        }
        emb[base + order.vertex_at(k - 1)] = v;
    }

    /// Configures the strided level-0 partition for multi-device runs:
    /// this kernel's virtual index `i` maps to vertex `base + i * stride`.
    pub fn set_device_partition(&mut self, base: usize, stride: usize) {
        debug_assert!(stride >= 1);
        self.l0_base = base;
        self.l0_stride = stride;
    }

    /// Installs the sharded level-0 permutation: virtual index `i` maps to
    /// data vertex `map[i]`. Chunk ranges and reclaimed payloads stay in
    /// virtual index space, so they are portable across every shard
    /// sharing the same map.
    pub fn set_level0_map(&mut self, map: &'a [VertexId]) {
        self.l0_map = Some(map);
    }

    /// Installs the anchor pins for an incremental (delta) run: with a
    /// two-endpoint level-0 map `[a, b]` and pins `[(a, b), (b, a)]`, the
    /// kernel enumerates exactly the embeddings whose first two matched
    /// positions are the anchored data edge, in both orientations (the
    /// anchored plan's order places a pattern edge at positions 0/1).
    pub fn set_anchor_pins(&mut self, pins: &'a [(VertexId, VertexId)]) {
        self.anchor = Some(pins);
    }

    /// Per-level validity context, including the level-1 anchor pin when
    /// this is an anchored run. Pins exist only at level 1, so every other
    /// level resolves exactly as before.
    #[inline]
    fn validity(&self, l: usize) -> Validity<'a> {
        let mut vy = Validity::for_kernel(self.plan, self.compiled, l);
        if l == 1 {
            vy.anchor = self.anchor;
        }
        vy
    }

    /// Periodic cooperative cancellation check on the claim paths: cheap
    /// flag read per claim, a real clock read every few thousand claims.
    /// Also the claim-ordinal fault-injection point (may panic or stall
    /// when a plan is attached).
    #[inline]
    fn cancelled(&mut self) -> bool {
        self.claims = self.claims.wrapping_add(1);
        if self.compiled.is_some() {
            self.unflushed += 1;
        }
        if let Some(f) = self.faults {
            f.at_claim(self.warp_id, self.claims);
        }
        if self.claims.is_multiple_of(4096) {
            // Piggyback the profile flush on the existing slow poll so
            // deep-level claim storms still feed the tier-up counter
            // without adding fast-path cost (commit() covers the rest).
            self.flush_profile();
            self.board.check_deadline()
        } else {
            self.board.aborted()
        }
    }

    /// Drains the local claim batch into the shared compiled-plan profile
    /// (which may promote the plan to its specialized tier). No-op when
    /// compilation is off.
    fn flush_profile(&mut self) {
        if self.unflushed != 0 {
            if let Some(c) = self.compiled {
                c.note_claims(std::mem::take(&mut self.unflushed));
            }
        }
    }

    /// Commits the open transaction: flushes the pending tally to the
    /// warp's counters, advances the emit watermark, and clears the
    /// in-flight marker (its subtree is now fully accounted for). Called
    /// at shallow claim boundaries and at run exit.
    fn commit(&mut self, warp: &mut Warp) {
        if self.pending_matches != 0 {
            warp.metrics_mut().matches_found += self.pending_matches;
            self.pending_matches = 0;
        }
        if let Some(emb) = self.emit.as_ref() {
            self.emit_mark = emb.len();
        }
        self.inflight = None;
        self.flush_profile();
    }

    /// Candidate-list spill events (slab overflows) observed so far.
    pub fn spill_events(&self) -> u64 {
        self.storage.spill_events()
    }

    /// High-water mark of live candidate cells across this warp's arena —
    /// the runtime observable audited against the static certificate's
    /// `ResourceCert::peak_cells` bound.
    pub fn peak_slab_cells(&self) -> u64 {
        self.storage.peak_slab_cells()
    }

    /// Surrenders the kernel's arena for recycling (warm-pool path),
    /// leaving a zero-capacity placeholder behind. Call only when the
    /// kernel is done running.
    pub fn take_arena(&mut self) -> StackArena {
        std::mem::replace(&mut self.storage, StackArena::new(0, 1, 0))
    }

    /// Death reclaim: rolls the open transaction back (uncommitted tally
    /// and emitted records are dropped) and returns every work item the
    /// dead warp still owned — the mirror's remaining shallow ranges, the
    /// in-flight iteration, or the item being installed — as payloads
    /// whose replay recounts exactly the dropped work. The mirror is
    /// zeroed so concurrent stealers see a drained victim.
    pub fn reclaim_on_death(&mut self) -> Vec<StealPayload> {
        self.pending_matches = 0;
        if let Some(emb) = self.emit.as_mut() {
            emb.truncate(self.emit_mark);
        }
        let mut out = Vec::new();
        let mut m = self.board.mirror(self.warp_id).lock();
        if let Some(p) = self.installing.take() {
            // Died mid-install: the mirror is half-written and the payload
            // itself is still the authoritative description of the work.
            for l in 0..crate::steal::MAX_STOP {
                m.iter[l] = 0;
                m.size[l] = 0;
            }
            self.inflight = None;
            out.push(p);
            return out;
        }
        for l in 0..self.stop {
            if m.iter[l] < m.size[l] {
                out.push(StealPayload {
                    target: l,
                    matched: m.matched[..l].to_vec(),
                    lo: m.iter[l],
                    hi: m.size[l],
                });
            }
            m.iter[l] = 0;
            m.size[l] = 0;
        }
        if let Some((l, idx)) = self.inflight.take() {
            out.push(StealPayload {
                target: l,
                matched: m.matched[..l].to_vec(),
                lo: idx,
                hi: idx + 1,
            });
        }
        out
    }

    /// Installs a fresh level-0 chunk `[lo, hi)` of the vertex universe.
    pub fn install_chunk(&mut self, lo: usize, hi: usize) {
        // `Vec::new()` does not allocate, so the marker is free on the
        // chunk path.
        self.installing = Some(StealPayload {
            target: 0,
            matched: Vec::new(),
            lo,
            hi,
        });
        let mut m = self.board.mirror(self.warp_id).lock();
        for l in 0..crate::steal::MAX_STOP {
            m.iter[l] = 0;
            m.size[l] = 0;
        }
        m.iter[0] = lo;
        m.size[0] = hi;
        self.entry = 0;
        self.installing = None;
    }

    /// Installs stolen work: restores the matched prefix, recomputes the
    /// candidate sets of every level up to the target (they are
    /// deterministic functions of the prefix), and points the mirror at the
    /// stolen iteration range.
    pub fn install_payload(&mut self, warp: &mut Warp, p: &StealPayload) {
        debug_assert_eq!(p.matched.len(), p.target);
        self.installing = Some(p.clone());
        self.matched[..p.target].copy_from_slice(&p.matched);
        for l in 1..=p.target {
            self.batch[l].clear();
            self.batch[l].push(p.matched[l - 1]);
            self.uiter[l] = 0;
            self.iter[l] = 0;
            let b = std::mem::take(&mut self.batch[l]);
            self.compute_sets_dispatch(warp, l, &b);
            self.batch[l] = b;
        }
        let mut m = self.board.mirror(self.warp_id).lock();
        for l in 0..crate::steal::MAX_STOP {
            m.iter[l] = 0;
            m.size[l] = 0;
        }
        m.matched[..p.target].copy_from_slice(&p.matched);
        m.iter[p.target] = p.lo;
        m.size[p.target] = p.hi;
        self.entry = p.target;
        self.installing = None;
    }

    /// Runs the installed work item to exhaustion, adding matches to the
    /// warp's counters.
    pub fn run(&mut self, warp: &mut Warp) {
        if self.k == 1 {
            // Degenerate single-vertex pattern: count valid level-0
            // candidates directly.
            while let Some(v) = self.claim_shallow(warp, 0) {
                self.pending_matches += 1;
                if let Some(emb) = self.emit.as_mut() {
                    emb.push(v);
                }
            }
            self.commit(warp);
            return;
        }
        let mut l = self.entry;
        loop {
            if !self.claim(warp, l) {
                if l == self.entry {
                    self.commit(warp);
                    return;
                }
                l -= 1;
                continue;
            }
            // `claim` filled `batch[l + 1]` with valid candidates for
            // position `l`.
            self.begin_level(warp, l + 1);
            if l + 1 == self.k - 1 {
                self.count_last_level(warp);
                // Stay at level l; keep claiming.
            } else {
                l += 1;
            }
        }
    }

    /// Claims the next batch of valid candidates for position `l` into
    /// `batch[l + 1]`. Returns false when level `l` is exhausted.
    fn claim(&mut self, warp: &mut Warp, l: usize) -> bool {
        if l < self.stop {
            match self.claim_shallow(warp, l) {
                Some(v) => {
                    self.batch[l + 1].clear();
                    self.batch[l + 1].push(v);
                    true
                }
                None => false,
            }
        } else {
            self.claim_deep(warp, l)
        }
    }

    /// Shallow claim: one validity-checked candidate through the mirror.
    fn claim_shallow(&mut self, warp: &mut Warp, l: usize) -> Option<VertexId> {
        // Claim boundary: the previously claimed iteration's subtree (if
        // any) is fully explored, and everything not yet started lives in
        // the mirror — commit the open transaction.
        self.commit(warp);
        loop {
            if self.cancelled() {
                return None;
            }
            let idx = {
                // This acquisition is the race checker's canonical "locked
                // access" to mirror[warp_id]: the simt_check kill gate
                // deletes exactly this kind of acquisition (see
                // `steal::mutation::claim_shallow_without_lock`) and the
                // detector must name this site as the racing partner.
                let mut m = self.board.mirror(self.warp_id).lock();
                if m.iter[l] < m.size[l] {
                    let i = m.iter[l];
                    m.iter[l] += 1;
                    // Record the in-flight iteration under the same lock
                    // that claims it: from here until the child range is
                    // published (or the subtree commits), this index exists
                    // nowhere else — on death it is requeued verbatim.
                    self.inflight = Some((l, i));
                    Some(i)
                } else {
                    None
                }
            }?;
            // §V-B detection hook: when claiming at a level below
            // DetectLevel, a busy warp offers work to fully-idle blocks.
            if self.cfg.global_steal
                && l < self.cfg.detect_level
                && self.board.try_push_global(self.warp_id)
            {
                warp.metrics_mut().global_steal_pushes += 1;
                // Fixed cost model: pushing a stack through global memory
                // costs a burst of instructions.
                warp.metrics_mut().simt_instructions += 256;
            }
            let v = if l == 0 {
                let vi = self.l0_base + idx * self.l0_stride;
                match self.l0_map {
                    Some(map) => map[vi],
                    None => vi as VertexId,
                }
            } else {
                self.candidate_list(l, 0)[idx]
            };
            warp.simt_for(1, |_| {});
            if self.valid(l, v) {
                return Some(v);
            }
        }
    }

    /// Deep claim: up to `UNROLL` raw iterations from the current slot,
    /// validity-filtered into `batch[l + 1]` (slots never mix: all unroll
    /// candidates share one matched path).
    fn claim_deep(&mut self, warp: &mut Warp, l: usize) -> bool {
        let vy = self.validity(l);
        loop {
            if self.cancelled() {
                return false;
            }
            if self.uiter[l] >= self.batch[l].len() {
                return false;
            }
            let (cid, slot) = self.candidate_location(l, self.uiter[l]);
            let cl_len = self.storage.slot(cid, slot).len();
            if self.iter[l] >= cl_len {
                // Current slot exhausted: advance the unroll iterate, which
                // moves the matched vertex at position l-1 (Fig. 7 line 22).
                self.uiter[l] += 1;
                self.iter[l] = 0;
                if self.uiter[l] < self.batch[l].len() {
                    self.matched[l - 1] = self.batch[l][self.uiter[l]];
                }
                continue;
            }
            let start = self.iter[l];
            let take = (cl_len - start).min(self.cfg.unroll);
            self.raw.clear();
            {
                // Disjoint field borrows: raw (mut) vs storage (shared).
                let raw = &mut self.raw;
                let storage = &self.storage;
                raw.extend_from_slice(&storage.slot(cid, slot)[start..start + take]);
            }
            self.iter[l] += take;
            let raw = std::mem::take(&mut self.raw);
            self.batch[l + 1].clear();
            // Validity filtering as one warp wave over the claimed batch.
            let mut keep = [false; MAX_UNROLL];
            {
                let g = self.g;
                let matched = &self.matched;
                warp.simt_for(raw.len(), |i| {
                    keep[i] = vy.check(g, matched, l, raw[i]);
                });
            }
            for (i, &v) in raw.iter().enumerate() {
                if keep[i] {
                    self.batch[l + 1].push(v);
                }
            }
            self.raw = raw;
            if !self.batch[l + 1].is_empty() {
                return true;
            }
        }
    }

    /// Enters level `l`: resets its cursors, fixes `matched[l-1]` to the
    /// first slot, computes all of the level's sets for every slot, and
    /// publishes the stealable state when `l` is shallow.
    fn begin_level(&mut self, warp: &mut Warp, l: usize) {
        debug_assert!(!self.batch[l].is_empty());
        self.uiter[l] = 0;
        self.iter[l] = 0;
        self.matched[l - 1] = self.batch[l][0];
        let b = std::mem::take(&mut self.batch[l]);
        self.compute_sets_dispatch(warp, l, &b);
        self.batch[l] = b;
        // One mirror lock publishes the whole stealable view of the level:
        // `matched[l-1]`, plus level `l`'s iteration range when `l` itself
        // is shallow. Publishing after `compute_sets` is safe: a stealer
        // targeting level `l` needs `size[l] - iter[l] >= 2`, and until
        // this store lands the previous range at `l` is fully drained
        // (`iter == size`), so no stealer can observe a half-updated view.
        if l - 1 < self.stop {
            let size = if l < self.stop {
                let (cid, slot) = self.candidate_location(l, 0);
                Some(self.storage.slot(cid, slot).len())
            } else {
                None
            };
            let mut m = self.board.mirror(self.warp_id).lock();
            m.matched[l - 1] = self.batch[l][0];
            if let Some(size) = size {
                m.iter[l] = 0;
                m.size[l] = size;
                // The published range now describes the in-flight claim's
                // entire subtree; requeueing both on death would double
                // count, so the marker dies with the publish. (When `l ==
                // stop` no range is published and the marker survives until
                // the subtree commits.)
                self.inflight = None;
            }
            self.publishes = self.publishes.wrapping_add(1);
            if let Some(f) = self.faults {
                // Publish-ordinal injection point: a panic here unwinds
                // while holding the mirror lock, poisoning it — exactly the
                // torn-publish failure `Mirror::lock`'s recovery contract
                // covers. The tracked guard's release token still fires
                // during the unwind (before the mutex unlocks), so the
                // race checker sees a clean release even on this path —
                // see `FaultPlan::at_publish`.
                f.at_publish(self.warp_id, self.publishes);
            }
        }
    }

    /// Resolves the (set id, storage slot) of the candidate list for
    /// position `l`, slot `u`, honoring lifted (code-moved) candidate sets:
    /// a set computed at an earlier level is indexed by that level's
    /// current unroll slot.
    #[inline]
    fn candidate_location(&self, l: usize, u: usize) -> (usize, usize) {
        let (cid, def_level) = match self.compiled {
            // Compiled route: the bytecode's side table resolved the
            // candidate id and definition level at lower time — one flat
            // load instead of two plan-structure derefs per claim.
            Some(c) => c.bytecode().candidate(l),
            None => {
                let cid = self
                    .plan
                    .candidate_set(l)
                    .expect("levels >= 1 have candidate sets") as usize;
                (cid, self.plan.sets()[cid].level as usize)
            }
        };
        let slot = if def_level == l {
            u
        } else {
            self.uiter[def_level]
        };
        (cid, slot)
    }

    /// The candidate list for position `l`, slot `u`.
    #[inline]
    fn candidate_list(&self, l: usize, u: usize) -> &[VertexId] {
        let (cid, slot) = self.candidate_location(l, u);
        self.storage.slot(cid, slot)
    }

    /// Computes every set of `level` for all slots of `bat`, as combined
    /// warp-wide operations (Fig. 8) streaming straight into the arena.
    ///
    /// Slot source/input/operand slices live in fixed stack arrays (no
    /// per-set `Vec` collects), and only multi-op chains touch the
    /// ping/pong scratch — a set's final operation always lands in its
    /// arena slab via [`StackArena::split_for_write`], which the plan's
    /// dependencies-precede-dependents invariant makes alias-free.
    fn compute_sets(&mut self, warp: &mut Warp, level: usize, bat: &[VertexId]) {
        let m = bat.len();
        debug_assert!(m >= 1 && m <= self.cfg.unroll);
        let g = self.g;
        let plan = self.plan;
        let tuning = self.cfg.setops;
        // Small copy of the matched prefix so no closure needs `self`.
        let mut matched = [0 as VertexId; stmatch_pattern::MAX_PATTERN_SIZE];
        matched[..self.k].copy_from_slice(&self.matched);
        let vertex_at = |pos: usize, u: usize| -> VertexId {
            if pos == level - 1 {
                bat[u]
            } else {
                matched[pos]
            }
        };
        const EMPTY: &[VertexId] = &[];
        const NO_BITS: Option<&[u64]> = None;
        let hubs = self.hubs;
        for sid in plan.sets_at_level(level) {
            let def = &plan.sets()[sid];
            let nops = def.ops.len();
            // Slots whose whole op chain runs fused in the bitmap domain
            // (base vertex and every chain operand are hubs); they skip
            // the element-stream legs and are filled after the chain tail.
            let mut fused = [false; MAX_UNROLL];
            let mut fused_any = false;
            let mut fused_pos = 0usize;
            // `rest` = chain ops still to apply after the base step; the
            // base step writes to the arena and short-circuits when it is
            // also the final step.
            let rest: &[ChainOp];
            match def.base {
                Base::Neighbors(pos) => {
                    if nops > 0 {
                        if let Some(hx) = hubs {
                            fused_pos = pos as usize;
                            for (u, f) in fused.iter_mut().enumerate().take(m) {
                                *f = hx.is_hub(vertex_at(fused_pos, u))
                                    && def
                                        .ops
                                        .iter()
                                        .all(|op| hx.is_hub(vertex_at(op.pos as usize, u)));
                                fused_any |= *f;
                            }
                        }
                    }
                    let mut sources = [EMPTY; MAX_UNROLL];
                    for (u, s) in sources.iter_mut().enumerate().take(m) {
                        if !fused[u] {
                            *s = g.neighbors(vertex_at(pos as usize, u));
                        }
                    }
                    if nops == 0 {
                        let (_, mut sink) = self.storage.split_for_write(sid, m);
                        setops::materialize_base_into(warp, g, &sources[..m], def.mask, &mut sink);
                        continue;
                    }
                    setops::materialize_base_into(
                        warp,
                        g,
                        &sources[..m],
                        LabelMask::ALL,
                        &mut self.ping[..m],
                    );
                    rest = &def.ops;
                }
                Base::Set(dep) => {
                    let dep = dep as usize;
                    let dep_def = &plan.sets()[dep];
                    let dep_level = dep_def.level as usize;
                    let op = def.ops.first().expect("set deps carry an op");
                    let mask = if nops == 1 { def.mask } else { LabelMask::ALL };
                    let mut operands = [EMPTY; MAX_UNROLL];
                    let mut operand_bits = [NO_BITS; MAX_UNROLL];
                    for (u, o) in operands.iter_mut().enumerate().take(m) {
                        let ov = vertex_at(op.pos as usize, u);
                        *o = g.neighbors(ov);
                        if let Some(hx) = hubs {
                            operand_bits[u] = hx.row(ov);
                        }
                    }
                    // Input rows exist only when the dependency set is a
                    // pure, unmasked neighbor materialization of a hub —
                    // then slot contents equal that hub's row verbatim.
                    let mut input_bits = [NO_BITS; MAX_UNROLL];
                    if let (Some(hx), Base::Neighbors(dp)) = (hubs, dep_def.base) {
                        if dep_def.ops.is_empty() && dep_def.mask.is_all() {
                            for (u, ib) in input_bits.iter_mut().enumerate().take(m) {
                                *ib = hx.row(vertex_at(dp as usize, u));
                            }
                        }
                    }
                    // Split the arena below `sid`: dependency sets are
                    // readable while `sid`'s slots are written.
                    let (read, mut sink) = self.storage.split_for_write(sid, m);
                    let mut inputs = [EMPTY; MAX_UNROLL];
                    for (u, inp) in inputs.iter_mut().enumerate().take(m) {
                        let slot = if dep_level == level {
                            u
                        } else {
                            self.uiter[dep_level]
                        };
                        *inp = read.slot(dep, slot);
                        debug_assert!(
                            input_bits[u].is_none()
                                || *inp
                                    == g.neighbors(vertex_at(
                                        match dep_def.base {
                                            Base::Neighbors(dp) => dp as usize,
                                            Base::Set(_) => unreachable!(),
                                        },
                                        u
                                    )),
                            "input row attached to a slot that is not its hub's neighborhood"
                        );
                        // No purity row? A sealed arena row (the slot was
                        // itself produced by a bitmap merge) serves the
                        // same role, cascading word-parallel ops down
                        // whole dependency chains — the deep levels of
                        // clique-like queries.
                        if input_bits[u].is_none() {
                            if let Some(bits) = read.slot_bits(dep, slot) {
                                debug_assert_eq!(
                                    bits.iter().map(|w| w.count_ones() as usize).sum::<usize>(),
                                    inp.len(),
                                    "sealed slot row disagrees with its element list"
                                );
                                input_bits[u] = Some(bits);
                            }
                        }
                    }
                    if nops == 1 {
                        setops::apply_op_hub_into(
                            warp,
                            g,
                            &inputs[..m],
                            &input_bits[..m],
                            &operands[..m],
                            &operand_bits[..m],
                            op.kind,
                            mask,
                            tuning,
                            &mut sink,
                        );
                        continue;
                    }
                    setops::apply_op_hub_into(
                        warp,
                        g,
                        &inputs[..m],
                        &input_bits[..m],
                        &operands[..m],
                        &operand_bits[..m],
                        op.kind,
                        mask,
                        tuning,
                        &mut self.ping[..m],
                    );
                    rest = &def.ops[1..];
                }
            }
            // Multi-op chain tail: intermediates ping→pong, the final op
            // straight into the arena. Operand hub rows still upgrade the
            // membership probes; inputs are scratch lists, so never rows.
            let last = rest.len() - 1;
            for (i, op) in rest.iter().enumerate() {
                let mask = if i == last { def.mask } else { LabelMask::ALL };
                let mut operands = [EMPTY; MAX_UNROLL];
                let mut operand_bits = [NO_BITS; MAX_UNROLL];
                for (u, o) in operands.iter_mut().enumerate().take(m) {
                    let ov = vertex_at(op.pos as usize, u);
                    *o = g.neighbors(ov);
                    if let Some(hx) = hubs {
                        operand_bits[u] = hx.row(ov);
                    }
                }
                let mut inputs = [EMPTY; MAX_UNROLL];
                for (u, inp) in inputs.iter_mut().enumerate().take(m) {
                    *inp = self.ping[u].as_slice();
                }
                let input_bits = [NO_BITS; MAX_UNROLL];
                if i == last {
                    let (_, mut sink) = self.storage.split_for_write(sid, m);
                    setops::apply_op_hub_into(
                        warp,
                        g,
                        &inputs[..m],
                        &input_bits[..m],
                        &operands[..m],
                        &operand_bits[..m],
                        op.kind,
                        mask,
                        tuning,
                        &mut sink,
                    );
                } else {
                    setops::apply_op_hub_into(
                        warp,
                        g,
                        &inputs[..m],
                        &input_bits[..m],
                        &operands[..m],
                        &operand_bits[..m],
                        op.kind,
                        mask,
                        tuning,
                        &mut self.pong[..m],
                    );
                    std::mem::swap(&mut self.ping, &mut self.pong);
                }
            }
            // Fused slots: the whole chain in the bitmap domain, ping/pong
            // word scratch lent by the arena, final op extracted straight
            // into the slot (re-`begin`s it after the empty classic leg).
            if fused_any {
                let hx = hubs.expect("fused slots imply an index");
                let stride = hx.stride();
                const NO_ROW: &[u64] = &[];
                let mut chain = [(OpKind::Intersect, NO_ROW); stmatch_pattern::MAX_PATTERN_SIZE];
                let (_, mut sink, bits_ping, bits_pong) =
                    self.storage.split_for_write_bits(sid, m, stride);
                for (u, &is_fused) in fused.iter().enumerate().take(m) {
                    if !is_fused {
                        continue;
                    }
                    let base_row = hx
                        .row(vertex_at(fused_pos, u))
                        .expect("fused base is a hub");
                    for (ci, op) in def.ops.iter().enumerate() {
                        chain[ci] = (
                            op.kind,
                            hx.row(vertex_at(op.pos as usize, u))
                                .expect("fused operand is a hub"),
                        );
                    }
                    setops::apply_chain_bits_into(
                        warp,
                        g,
                        u,
                        base_row,
                        &chain[..nops],
                        def.mask,
                        bits_ping,
                        bits_pong,
                        &mut sink,
                    );
                }
            }
        }
    }

    /// Set-computation entry: routes to the plan walk (compilation off),
    /// the tier-1 monomorphized body (promoted specializable plans), or
    /// the tier-0 bytecode dispatch loop. The tier read is one relaxed
    /// atomic load per level entry; a stale tier-0 snapshot just dispatches
    /// one more level through bytecode, which is metric-identical.
    fn compute_sets_dispatch(&mut self, warp: &mut Warp, level: usize, bat: &[VertexId]) {
        let Some(c) = self.compiled else {
            self.compute_sets(warp, level, bat);
            return;
        };
        if c.tier() == Tier::Specialized && self.compute_sets_specialized(warp, level, bat, c) {
            return;
        }
        self.compute_sets_bc(warp, level, bat, c.bytecode());
    }

    /// Tier 0: executes `level`'s lowered instruction stream. Only
    /// reachable with hub routing off (`self.compiled` is `None`
    /// otherwise), so every instruction issues exactly the element-path
    /// set-operation call — with identical operands, masks, staging and
    /// arena splits — that [`WarpKernel::compute_sets`] would have derived
    /// from the plan structure. Counts, simulator metrics and simt-check
    /// shadow events are therefore bit-identical by construction; what the
    /// stream removes is the per-claim interpretation itself (base-variant
    /// match, op-vector walk, mask/staging decisions).
    fn compute_sets_bc(
        &mut self,
        warp: &mut Warp,
        level: usize,
        bat: &[VertexId],
        bc: &PlanBytecode,
    ) {
        let m = bat.len();
        debug_assert!(m >= 1 && m <= self.cfg.unroll);
        let g = self.g;
        let tuning = self.cfg.setops;
        let mut matched = [0 as VertexId; stmatch_pattern::MAX_PATTERN_SIZE];
        matched[..self.k].copy_from_slice(&self.matched);
        let vertex_at = |pos: usize, u: usize| -> VertexId {
            if pos == level - 1 {
                bat[u]
            } else {
                matched[pos]
            }
        };
        const EMPTY: &[VertexId] = &[];
        const NO_BITS: Option<&[u64]> = None;
        let no_bits = [NO_BITS; MAX_UNROLL];
        for ins in bc.instrs_at(level) {
            let pos = ins.pos as usize;
            match ins.code {
                OpCode::MaterializeBase | OpCode::BeginChain => {
                    let mut sources = [EMPTY; MAX_UNROLL];
                    for (u, s) in sources.iter_mut().enumerate().take(m) {
                        *s = g.neighbors(vertex_at(pos, u));
                    }
                    if ins.last {
                        let (_, mut sink) = self.storage.split_for_write(ins.dst as usize, m);
                        setops::materialize_base_into(warp, g, &sources[..m], ins.mask, &mut sink);
                    } else {
                        setops::materialize_base_into(
                            warp,
                            g,
                            &sources[..m],
                            ins.mask,
                            &mut self.ping[..m],
                        );
                    }
                }
                OpCode::ApplyFromSet => {
                    let mut operands = [EMPTY; MAX_UNROLL];
                    for (u, o) in operands.iter_mut().enumerate().take(m) {
                        *o = g.neighbors(vertex_at(pos, u));
                    }
                    let dep = ins.dep as usize;
                    let dep_level = ins.dep_level as usize;
                    // Split in both branches, exactly like the plan walk:
                    // the split is also the shadow-store write event for
                    // `dst`, and dependency slots are read through its
                    // read view.
                    let (read, mut sink) = self.storage.split_for_write(ins.dst as usize, m);
                    let mut inputs = [EMPTY; MAX_UNROLL];
                    for (u, inp) in inputs.iter_mut().enumerate().take(m) {
                        let slot = if dep_level == level {
                            u
                        } else {
                            self.uiter[dep_level]
                        };
                        *inp = read.slot(dep, slot);
                    }
                    if ins.last {
                        setops::apply_op_hub_into(
                            warp,
                            g,
                            &inputs[..m],
                            &no_bits[..m],
                            &operands[..m],
                            &no_bits[..m],
                            ins.kind,
                            ins.mask,
                            tuning,
                            &mut sink,
                        );
                    } else {
                        setops::apply_op_hub_into(
                            warp,
                            g,
                            &inputs[..m],
                            &no_bits[..m],
                            &operands[..m],
                            &no_bits[..m],
                            ins.kind,
                            ins.mask,
                            tuning,
                            &mut self.ping[..m],
                        );
                    }
                }
                OpCode::ChainStep => {
                    let mut operands = [EMPTY; MAX_UNROLL];
                    for (u, o) in operands.iter_mut().enumerate().take(m) {
                        *o = g.neighbors(vertex_at(pos, u));
                    }
                    let mut inputs = [EMPTY; MAX_UNROLL];
                    for (u, inp) in inputs.iter_mut().enumerate().take(m) {
                        *inp = self.ping[u].as_slice();
                    }
                    if ins.last {
                        let (_, mut sink) = self.storage.split_for_write(ins.dst as usize, m);
                        setops::apply_op_hub_into(
                            warp,
                            g,
                            &inputs[..m],
                            &no_bits[..m],
                            &operands[..m],
                            &no_bits[..m],
                            ins.kind,
                            ins.mask,
                            tuning,
                            &mut sink,
                        );
                    } else {
                        setops::apply_op_hub_into(
                            warp,
                            g,
                            &inputs[..m],
                            &no_bits[..m],
                            &operands[..m],
                            &no_bits[..m],
                            ins.kind,
                            ins.mask,
                            tuning,
                            &mut self.pong[..m],
                        );
                        std::mem::swap(&mut self.ping, &mut self.pong);
                    }
                }
            }
        }
    }

    /// Tier 1: routes to the monomorphized body for the plan's detected
    /// shape, keyed on the live `(unroll, num_sets)` point. Returns `false`
    /// (caller falls back to tier 0) for general shapes or points outside
    /// the dispatch table.
    fn compute_sets_specialized(
        &mut self,
        warp: &mut Warp,
        level: usize,
        bat: &[VertexId],
        c: &CompiledPlan,
    ) -> bool {
        let bc = c.bytecode();
        match c.shape() {
            SpecShape::Cascade => shape_dispatch!(self.cascade_level(warp, level, bat, bc)),
            SpecShape::Path => shape_dispatch!(self.path_level(warp, level, bat, bc)),
            SpecShape::General => false,
        }
    }

    /// Tier-1 body for the clique cascade: every level is exactly one
    /// instruction — materialize `N(bat[u])` at level 1, intersect the
    /// previous level's candidate with `N(bat[u])` below. Monomorphizing
    /// `UNROLL` shrinks the slot arrays from `MAX_UNROLL`-sized scratch to
    /// their exact size and fixes the lane-loop trip counts at compile
    /// time; `NUM_SETS` pins the instantiation to one plan width so each
    /// body's arena geometry is static. Calls the same set-operation
    /// kernels as tier 0 with identical arguments — metrics stay
    /// bit-identical.
    fn cascade_level<const UNROLL: usize, const NUM_SETS: usize>(
        &mut self,
        warp: &mut Warp,
        level: usize,
        bat: &[VertexId],
        bc: &PlanBytecode,
    ) {
        let m = bat.len();
        debug_assert!(m >= 1 && m <= UNROLL);
        debug_assert_eq!(bc.num_sets(), NUM_SETS);
        let g = self.g;
        const EMPTY: &[VertexId] = &[];
        const NO_BITS: Option<&[u64]> = None;
        let &[ins] = bc.instrs_at(level) else {
            unreachable!("cascade levels lower to exactly one instruction");
        };
        let dst = ins.dst as usize;
        debug_assert!(dst < NUM_SETS);
        // Cascade operands always sit at position `level - 1`: the batch.
        let mut sources = [EMPTY; UNROLL];
        for (u, s) in sources.iter_mut().enumerate().take(m) {
            *s = g.neighbors(bat[u]);
        }
        if ins.code == OpCode::MaterializeBase {
            let (_, mut sink) = self.storage.split_for_write(dst, m);
            setops::materialize_base_into(warp, g, &sources[..m], ins.mask, &mut sink);
            return;
        }
        let tuning = self.cfg.setops;
        // The dependency is the previous level's candidate: one shared
        // slot for the whole batch (`dep_level == level - 1 != level`).
        let dep_slot = self.uiter[ins.dep_level as usize];
        let no_bits = [NO_BITS; UNROLL];
        let (read, mut sink) = self.storage.split_for_write(dst, m);
        let mut inputs = [EMPTY; UNROLL];
        for inp in inputs.iter_mut().take(m) {
            *inp = read.slot(ins.dep as usize, dep_slot);
        }
        setops::apply_op_hub_into(
            warp,
            g,
            &inputs[..m],
            &no_bits[..m],
            &sources[..m],
            &no_bits[..m],
            ins.kind,
            ins.mask,
            tuning,
            &mut sink,
        );
    }

    /// Tier-1 body for path/star plans: every instruction is a chain-free
    /// neighbor materialization (levels can be empty when code motion
    /// lifted their candidate to an earlier level). Same monomorphization
    /// rationale as [`WarpKernel::cascade_level`].
    fn path_level<const UNROLL: usize, const NUM_SETS: usize>(
        &mut self,
        warp: &mut Warp,
        level: usize,
        bat: &[VertexId],
        bc: &PlanBytecode,
    ) {
        let m = bat.len();
        debug_assert!(m >= 1 && m <= UNROLL);
        debug_assert_eq!(bc.num_sets(), NUM_SETS);
        let g = self.g;
        const EMPTY: &[VertexId] = &[];
        let mut matched = [0 as VertexId; stmatch_pattern::MAX_PATTERN_SIZE];
        matched[..self.k].copy_from_slice(&self.matched);
        let prog = bc.instrs_at(level);
        debug_assert!(prog.len() <= NUM_SETS);
        for ins in prog {
            let pos = ins.pos as usize;
            let mut sources = [EMPTY; UNROLL];
            for (u, s) in sources.iter_mut().enumerate().take(m) {
                let v = if pos == level - 1 {
                    bat[u]
                } else {
                    matched[pos]
                };
                *s = g.neighbors(v);
            }
            let (_, mut sink) = self.storage.split_for_write(ins.dst as usize, m);
            setops::materialize_base_into(warp, g, &sources[..m], ins.mask, &mut sink);
        }
    }

    /// Last level: counts (or, when enumerating, outputs) the valid
    /// candidates of every slot instead of iterating them (Fig. 3 line 16).
    ///
    /// The counting path exploits sortedness: the symmetry bounds select a
    /// contiguous window of the candidate list (two `partition_point`s per
    /// bound) and injectivity subtracts the `≤ l` matched vertices found
    /// by binary search — `O(l log n)` per slot instead of a linear scan.
    /// The simulated cost is unchanged: the warp still issues the same
    /// count-pass waves over every element (`simt_for`), exactly as the
    /// per-element path would.
    fn count_last_level(&mut self, warp: &mut Warp) {
        let l = self.k - 1;
        let slots = self.batch[l].len();
        let vy = self.validity(l);
        let mut total = 0u64;
        for u in 0..slots {
            self.matched[l - 1] = self.batch[l][u];
            let (cid, slot) = self.candidate_location(l, u);
            let g = self.g;
            let matched = &self.matched;
            let cl = self.storage.slot(cid, slot);
            if self.emit.is_some() {
                let mut tail = std::mem::take(&mut self.emit_tail);
                tail.clear();
                total += setops::count_with(warp, cl, |v| {
                    let ok = vy.check(g, matched, l, v);
                    if ok {
                        tail.push(v);
                    }
                    ok
                });
                for &v in &tail {
                    self.emit_match(v);
                }
                self.emit_tail = tail;
            } else if vy.resid.is_some() || vy.anchor.is_some() {
                // Residual label checks — and the level-1 anchor pin of a
                // 2-vertex anchored run, which the closed form below does
                // not model — need a per-element probe.
                total += setops::count_with(warp, cl, |v| vy.check(g, matched, l, v));
            } else {
                warp.simt_for(cl.len(), |_| {});
                let n = count_valid_sorted(cl, matched, l, vy.bounds);
                debug_assert_eq!(
                    n,
                    cl.iter().filter(|&&v| vy.check(g, matched, l, v)).count() as u64
                );
                total += n;
            }
        }
        self.pending_matches += total;
    }

    /// Validity of candidate `v` at position `l`: label (level 0 only —
    /// deeper candidates come from label-filtered sets), injectivity, and
    /// symmetry bounds.
    #[inline]
    fn valid(&self, l: usize, v: VertexId) -> bool {
        if l == 0 {
            let lbl = match self.compiled {
                Some(c) => c.bytecode().level_meta(0).label,
                None => self.plan.level_label(0),
            };
            if let Some(lbl) = lbl {
                if self.g.label(v) != lbl {
                    return false;
                }
            }
        }
        self.validity(l).check(self.g, &self.matched, l, v)
    }
}

/// Per-level validity context: the residual-label requirement and
/// symmetry-bound list, resolved once per claim/count pass instead of per
/// candidate element (these lookups sit inside million-element loops).
#[derive(Clone, Copy)]
struct Validity<'p> {
    resid: Option<stmatch_graph::Label>,
    bounds: &'p [(usize, Bound)],
    /// Level-1 anchor pins of a delta run (see
    /// [`WarpKernel::set_anchor_pins`]); `None` everywhere else.
    anchor: Option<&'p [(VertexId, VertexId)]>,
}

impl<'p> Validity<'p> {
    #[inline]
    fn new(plan: &'p MatchPlan, l: usize) -> Self {
        Validity {
            resid: plan.residual_label_check(l),
            bounds: plan.bounds(l),
            anchor: None,
        }
    }

    /// Resolves the per-level context from the compiled plan's flat side
    /// tables when compilation is on (one slice index instead of the plan's
    /// per-level structure walk), from the plan otherwise. The bytecode
    /// tables are snapshots of the same plan fields, so both routes yield
    /// identical contexts.
    #[inline]
    fn for_kernel(plan: &'p MatchPlan, compiled: Option<&'p CompiledPlan>, l: usize) -> Self {
        match compiled {
            Some(c) => Validity {
                resid: c.bytecode().level_meta(l).resid,
                bounds: c.bytecode().bounds(l),
                anchor: None,
            },
            None => Validity::new(plan, l),
        }
    }

    /// Injectivity, residual-label and symmetry-bound check against the
    /// matched prefix.
    #[inline]
    fn check(&self, g: &Graph, matched: &[VertexId], l: usize, v: VertexId) -> bool {
        if let Some(lbl) = self.resid {
            if g.label(v) != lbl {
                return false;
            }
        }
        for &m in &matched[..l] {
            if m == v {
                return false;
            }
        }
        for &(pos, bound) in self.bounds {
            let ok = match bound {
                Bound::Less => v < matched[pos],
                Bound::Greater => v > matched[pos],
            };
            if !ok {
                return false;
            }
        }
        if let Some(pins) = self.anchor {
            // Anchored delta run: level 1 is pinned to the paired endpoint
            // of whatever anchor vertex level 0 matched. The pin table has
            // two entries (one per orientation), so a linear scan wins
            // over any lookup structure.
            debug_assert_eq!(l, 1, "anchor pins exist only at level 1");
            return pins.iter().any(|&(a, b)| matched[0] == a && v == b);
        }
        true
    }
}

/// Valid-candidate count of a strictly sorted candidate list, in closed
/// form: every symmetry bound (`v < matched[pos]` / `v > matched[pos]`)
/// clips a contiguous window of the sorted list, and injectivity removes
/// the matched vertices that land inside the window.
fn count_valid_sorted(
    cl: &[VertexId],
    matched: &[VertexId],
    l: usize,
    bounds: &[(usize, Bound)],
) -> u64 {
    let mut lo = 0usize;
    let mut hi = cl.len();
    for &(pos, bound) in bounds {
        let m = matched[pos];
        match bound {
            Bound::Less => hi = hi.min(cl.partition_point(|&v| v < m)),
            Bound::Greater => lo = lo.max(cl.partition_point(|&v| v <= m)),
        }
    }
    if lo >= hi {
        return 0;
    }
    let window = &cl[lo..hi];
    let mut dup = 0u64;
    for &m in &matched[..l] {
        if window.binary_search(&m).is_ok() {
            dup += 1;
        }
    }
    window.len() as u64 - dup
}
