//! The resident match service: one shared graph, a canonical plan cache,
//! and batched admission onto warm execution slots.
//!
//! [`Engine::run`] is the one-shot API: it compiles the pattern, builds a
//! grid (spawning one OS thread per simulated warp), allocates the stack
//! slabs, runs, and tears everything down. A workload that answers many
//! pattern queries against the *same* graph repays none of that setup.
//! [`MatchService`] keeps the expensive state resident (DESIGN.md §4g):
//!
//! * **Shared graph** — the service holds an immutable `Arc<Graph>`; the
//!   hub-bitmap index is built lazily exactly once via
//!   [`Graph::ensure_hub_bitmap`] and shared by every query thereafter.
//! * **Canonical plan cache** — compiled [`MatchPlan`]s are cached keyed
//!   by [`iso::canonical_form`], so relabeled/isomorphic submissions hit
//!   the same entry (counts are isomorphism-invariant). Compilation runs
//!   *outside* the cache lock; racing compiles of the same form collapse
//!   to one entry through the entry API.
//! * **Batched admission** — clients [`submit`](MatchService::submit)
//!   from any number of threads; worker threads drain the admission
//!   queue in batches and serve each batch back-to-back on a warm slot
//!   ([`WarmSlot`]: parked warp threads + recycled stack arenas).
//! * **Fault isolation** — each query runs under its own containment:
//!   injected warp deaths, launch failures, expired deadlines, and even
//!   escaped panics produce a per-query [`ServiceError`] without
//!   poisoning the shared pool; concurrently admitted healthy queries
//!   still return exact counts.
//!
//! ## Lock hierarchy
//!
//! The service adds three classes *below* every engine lock (see
//! `simt_check::LockClass`): `ServiceAdmission(2)` (the queue),
//! `ServicePlanCache(4)`, and `ServiceArenaPool(6)`. None is ever held
//! across an engine launch, and the cache lock is never held while
//! compiling. The plan cache carries a shadow cell
//! (`Cell::plan_cache(id)`) so the race checker can prove every access
//! goes through the tracked lock — and kill the seeded
//! [`mutation::cache_insert_without_lock`] by name.

use crate::compile::CompiledPlan;
use crate::config::EngineConfig;
use crate::delta::{DeltaPlans, MatchDelta};
use crate::engine::{Engine, MatchOutcome};
use crate::fault::FaultPlan;
use crate::pool::WarmSlot;
use crate::recover::RecoveryPolicy;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use stmatch_gpusim::LaunchError;
use stmatch_graph::{AppliedBatch, DeltaOverlay, EdgeOp, Graph};
use stmatch_pattern::{iso, MatchPlan, Pattern, PlanOptions};
use stmatch_plan_verify::{GraphProfile, Verification};

/// Admission lane of a query. High-priority requests dequeue ahead of
/// every queued normal request, with one guardrail: a drain that would
/// fill its whole batch from the high lane while normal requests wait
/// reserves one slot for the *oldest* normal request. A sustained
/// high-priority flood therefore delays the normal lane, but can never
/// starve it — every drain makes normal-lane progress.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// The default lane.
    #[default]
    Normal,
    /// Dequeues ahead of queued normal requests (bounded by the
    /// starvation reservation above).
    High,
}

/// Per-query options carried through admission.
#[derive(Clone, Debug, Default)]
pub struct QueryOptions {
    /// Wall-clock budget measured from *admission* (not launch): a query
    /// that expires while still queued fails without running; one that
    /// expires mid-run is cancelled cooperatively and returns
    /// [`ServiceError::DeadlineExceeded`] with the partial outcome.
    pub deadline: Option<Duration>,
    /// Overrides the service engine's recovery policy for this query.
    pub recovery: Option<RecoveryPolicy>,
    /// Deterministic fault injection for this query only (testing/chaos).
    pub fault_plan: Option<FaultPlan>,
    /// Overrides the service engine's `induced` semantics for this query.
    /// Plans cache separately per semantics (the flag is part of the key).
    pub induced: Option<bool>,
    /// Admission lane (see [`Priority`]).
    pub priority: Priority,
}

/// Why a query failed. Always per-query: no variant implies anything
/// about the health of the service or its warm pool.
#[derive(Debug)]
pub enum ServiceError {
    /// The deadline expired — in the queue (`partial == None`) or mid-run
    /// (`partial` holds the cancelled outcome, a lower-bound count).
    DeadlineExceeded {
        /// The partial outcome of a mid-run cancellation.
        partial: Option<Box<MatchOutcome>>,
    },
    /// Launch planning failed even after the degradation ladder.
    Launch(LaunchError),
    /// The run panicked past containment; the panic was caught at the
    /// query boundary, so the worker and its warm slot survive.
    QueryPanicked(String),
    /// The service is shutting down; the query was not run.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::DeadlineExceeded { partial: None } => {
                write!(f, "deadline expired before the query launched")
            }
            ServiceError::DeadlineExceeded { partial: Some(out) } => {
                write!(f, "deadline expired mid-run (partial count {})", out.count)
            }
            ServiceError::Launch(e) => write!(f, "launch failed: {e}"),
            ServiceError::QueryPanicked(msg) => write!(f, "query panicked: {msg}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Service sizing: the engine template plus worker/batch knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Template configuration for every query (per-query options may
    /// override `induced` and `recovery`). Also fixes the warm-slot grid
    /// geometry and the plan options baked into cache entries.
    pub engine: EngineConfig,
    /// Worker threads, each owning one warm slot. Minimum 1.
    pub workers: usize,
    /// Most queries a worker drains per admission-lock acquisition.
    /// Bounds tail latency under a flood without a lock round-trip per
    /// query. Minimum 1.
    pub batch_max: usize,
}

impl ServiceConfig {
    /// Two workers, batches of eight — small enough for tests, enough
    /// parallelism to exercise the shared structures.
    pub fn new(engine: EngineConfig) -> ServiceConfig {
        ServiceConfig {
            engine,
            workers: 2,
            batch_max: 8,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> ServiceConfig {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-drain batch bound (clamped to at least 1).
    pub fn with_batch_max(mut self, batch_max: usize) -> ServiceConfig {
        self.batch_max = batch_max.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig::new(EngineConfig::default())
    }
}

/// Plan-cache hit/miss/occupancy counters, plus the execution-tier
/// counters of the resident compiled plans (all zero when
/// `EngineConfig::compile` is off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled (the racing-compile case counts one miss per
    /// racer even though only one entry lands).
    pub misses: u64,
    /// Entries resident — at most one per (canonical form, induced).
    pub entries: usize,
    /// Tier promotions performed by resident compiled plans: how many
    /// cache entries crossed their profile threshold and now serve the
    /// shape-specialized body to every subsequent hit.
    pub tier_ups: u64,
    /// Queries served at tier 0 (bytecode dispatch).
    pub tier0_served: u64,
    /// Queries served at tier 1 — specialization hits: warm cache entries
    /// whose promoted tier paid off on a later submission.
    pub specialized_hits: u64,
    /// Cache entries that went through static verification (at most one
    /// verification per canonical entry; zero when
    /// `EngineConfig::verify` is off).
    pub verified: u64,
    /// Total diagnostics those verifications raised (0 = every cached
    /// plan is certified clean).
    pub diagnostics: u64,
}

/// Identifier of a watcher registered with
/// [`MatchService::submit_watch`]; pass to
/// [`MatchService::cancel_watch`] to stop deliveries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WatchId(u64);

/// One per-batch notification delivered to a watcher: the net batch that
/// was applied plus the pattern's [`MatchDelta`] under it. A failed delta
/// computation (launch error or contained panic) is delivered as `Err`
/// without unregistering the watcher or affecting other watchers — the
/// same per-query fault isolation the one-shot lanes get.
#[derive(Clone, Debug)]
pub struct WatchEvent {
    /// The watcher this event belongs to.
    pub watch: WatchId,
    /// Graph version after the batch (see [`DeltaOverlay::version`]).
    pub version: u64,
    /// The net effect of the applied batch.
    pub batch: AppliedBatch,
    /// The pattern's match-count delta under the batch.
    pub delta: Result<MatchDelta, String>,
}

type WatchCallback = Arc<dyn Fn(WatchEvent) + Send + Sync>;

/// One registered watcher: anchored plans compiled once at registration,
/// reused for every batch.
#[derive(Clone)]
struct WatchEntry {
    id: WatchId,
    plans: Arc<DeltaPlans>,
    cb: WatchCallback,
}

/// The mutable topology of a delta-enabled service, guarded by the
/// rank-1 `ServiceGraph` lock: held only to fold a batch and clone out
/// snapshots/watchers — never across a launch, a compile, or a watcher
/// callback, so batch application structurally cannot starve the
/// admission or query lanes.
struct GraphState {
    overlay: DeltaOverlay,
    /// Snapshot of the current topology; queries resolve this `Arc` at
    /// execute time and run against it unlocked.
    current: Arc<Graph>,
    watchers: Vec<WatchEntry>,
    next_watch: u64,
    batches_since_compact: u32,
}

/// A pending reply: hold it and [`wait`](Ticket::wait) when the result is
/// needed, so a client can overlap submissions.
pub struct Ticket {
    rx: mpsc::Receiver<Result<MatchOutcome, ServiceError>>,
}

impl Ticket {
    /// Blocks until the query finishes. A service dropped with the query
    /// still queued reports [`ServiceError::ShuttingDown`].
    pub fn wait(self) -> Result<MatchOutcome, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }
}

/// One admitted query.
struct Request {
    pattern: Pattern,
    opts: QueryOptions,
    admitted: Instant,
    reply: mpsc::Sender<Result<MatchOutcome, ServiceError>>,
}

/// The two-lane admission queue (see [`Priority`]). Both lanes are FIFO;
/// the starvation guardrail lives in [`AdmissionQueue::drain`].
#[derive(Default)]
struct AdmissionQueue {
    high: VecDeque<Request>,
    normal: VecDeque<Request>,
}

impl AdmissionQueue {
    fn push(&mut self, req: Request) {
        match req.opts.priority {
            Priority::High => self.high.push_back(req),
            Priority::Normal => self.normal.push_back(req),
        }
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.high.is_empty() && self.normal.is_empty()
    }

    /// Removes up to `max` requests: high lane first, but when the normal
    /// lane is non-empty one slot of the batch is reserved for its oldest
    /// request — the starvation-freedom invariant (`max >= 1` always
    /// holds; `ServiceConfig::batch_max` is clamped).
    fn drain(&mut self, max: usize) -> Vec<Request> {
        let mut batch = Vec::new();
        let high_cap = if self.normal.is_empty() { max } else { max - 1 };
        while batch.len() < high_cap {
            match self.high.pop_front() {
                Some(r) => batch.push(r),
                None => break,
            }
        }
        while batch.len() < max {
            match self.normal.pop_front() {
                Some(r) => batch.push(r),
                None => break,
            }
        }
        batch
    }
}

/// Cache key: the canonical labeled form plus the matching semantics the
/// plan was compiled for. Two patterns map to the same key iff they are
/// isomorphic (as labeled graphs) and ask for the same semantics.
#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    labels: Vec<u32>,
    adj: Vec<u8>,
    induced: bool,
}

impl PlanKey {
    fn new(pattern: &Pattern, induced: bool) -> PlanKey {
        let (labels, adj) = iso::canonical_form(pattern);
        PlanKey {
            labels,
            adj,
            induced,
        }
    }
}

/// One plan-cache entry: the canonical plan plus — when plan compilation
/// is on — its persistent [`CompiledPlan`]. Holding the compiled plan in
/// the cache is what makes tier promotion *resident*: the profile counter
/// and tier survive across queries, so a warm hit is served straight at
/// the promoted tier.
#[derive(Clone)]
struct CachedPlan {
    plan: Arc<MatchPlan>,
    compiled: Option<Arc<CompiledPlan>>,
    /// Static verification verdict, computed exactly once per canonical
    /// entry when `EngineConfig::verify` is on (the graph is resident, so
    /// the certificate stays valid for the service's lifetime). Served
    /// runs skip engine-side re-verification and audit against this.
    verification: Option<Arc<Verification>>,
}

/// State shared between clients and workers.
struct Inner {
    graph: Arc<Graph>,
    cfg: ServiceConfig,
    /// Instance id scoping this service's lock indices and its plan-cache
    /// shadow cell, so concurrent services never alias in the checker.
    check_id: u32,
    queue: Mutex<AdmissionQueue>,
    cache: Mutex<HashMap<PlanKey, CachedPlan>>,
    shutdown: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Queries served at each tier (from `MatchOutcome::served_tier`).
    tier0_served: AtomicU64,
    tier1_served: AtomicU64,
    /// Cache entries verified / diagnostics raised (verification runs
    /// once per canonical entry; see `CachedPlan::verification`).
    verified: AtomicU64,
    diags: AtomicU64,
    /// Degree profile of the shared graph, computed at most once for the
    /// service's lifetime (the graph is immutable).
    profile: OnceLock<GraphProfile>,
    /// The mutable topology — `Some` iff `EngineConfig::delta` is
    /// enabled. Without it the service is the classic immutable-graph
    /// resident service, bit for bit.
    dynamic: Option<Mutex<GraphState>>,
}

impl Inner {
    fn lock_queue(&self) -> simt_check::Tracked<'_, AdmissionQueue> {
        simt_check::tracked_lock(
            &self.queue,
            simt_check::LockClass::ServiceAdmission,
            self.check_id as usize,
        )
    }

    fn lock_cache(&self) -> simt_check::Tracked<'_, HashMap<PlanKey, CachedPlan>> {
        simt_check::tracked_lock(
            &self.cache,
            simt_check::LockClass::ServicePlanCache,
            self.check_id as usize,
        )
    }

    /// The graph-state lock, rank 1 — acquired before (never while
    /// holding) any other tracked lock. `None` when delta mode is off.
    fn lock_graph(&self) -> Option<simt_check::Tracked<'_, GraphState>> {
        self.dynamic.as_ref().map(|m| {
            simt_check::tracked_lock(
                m,
                simt_check::LockClass::ServiceGraph,
                self.check_id as usize,
            )
        })
    }

    /// The graph a query should run against right now (and, when the
    /// overlay tracks them, the level-0 weights for the sharded split):
    /// the current delta snapshot, or the immutable shared graph.
    fn resolve_graph(&self) -> (Arc<Graph>, Option<Vec<u64>>) {
        match self.lock_graph() {
            Some(state) => (
                Arc::clone(&state.current),
                state.overlay.weights().map(<[u64]>::to_vec),
            ),
            None => (Arc::clone(&self.graph), None),
        }
    }

    /// The shared graph's degree profile (for the static verifier),
    /// computed on first use.
    fn graph_profile(&self) -> &GraphProfile {
        self.profile.get_or_init(|| GraphProfile::of(&self.graph))
    }

    /// Cached-or-compiled plan for `pattern`. The fast path is one lock
    /// acquisition and a map probe; the miss path compiles (and, with the
    /// verify knob on, statically verifies) outside the lock and inserts
    /// through the entry API, so two racers compiling the same canonical
    /// form still land exactly one entry — and the verified/diagnostic
    /// counters tick only for the entry that lands.
    fn plan_for(&self, pattern: &Pattern, induced: bool) -> CachedPlan {
        let key = PlanKey::new(pattern, induced);
        {
            let cache = self.lock_cache();
            simt_check::note_read(simt_check::Cell::plan_cache(self.check_id));
            if let Some(entry) = cache.get(&key) {
                // Relaxed: pure statistic, no ordering with cache state
                // (which the tracked lock above already serializes).
                self.hits.fetch_add(1, Ordering::Relaxed);
                return entry.clone();
            }
        }
        let plan = Arc::new(MatchPlan::compile(
            pattern,
            PlanOptions {
                induced,
                code_motion: self.cfg.engine.code_motion,
                symmetry_breaking: self.cfg.engine.symmetry_breaking,
            },
        ));
        // Bytecode lowering also runs outside the cache lock. With hub
        // routing on the engine would ignore the compiled plan, so skip
        // lowering entirely rather than cache dead tier state.
        let compiled = (self.cfg.engine.compile.enabled && !self.cfg.engine.hub_bitmap.enabled)
            .then(|| {
                Arc::new(
                    CompiledPlan::lower(&plan, self.cfg.engine.compile)
                        .expect("plans produced by MatchPlan::compile always lower"),
                )
            });
        // Static verification, once per canonical entry (DESIGN.md §4j):
        // the service's graph is resident and immutable, so the
        // certificate computed here stays valid for every later hit.
        // Clean certificates publish their capacity hint on the resident
        // compiled plan, so warm hits launch with shaped arenas whenever
        // `VerifyTuning::apply_hints` is on.
        // Delta mode never caches certificates: they are computed against
        // one topology and the graph changes under apply_batch, so a
        // cached verdict would silently go stale.
        let verification = (self.cfg.engine.verify.enabled && self.dynamic.is_none()).then(|| {
            let slab_cap = self
                .cfg
                .engine
                .max_degree_slab
                .min(self.graph.max_degree().max(1));
            let repro = format!(
                "MatchService::submit of pattern '{}' (induced={induced}) on graph '{}' \
                 with EngineConfig::with_verify(true), slab_cap {slab_cap}",
                pattern.name(),
                self.graph.name(),
            );
            let v = stmatch_plan_verify::verify_plan(&plan, self.graph_profile(), slab_cap, &repro);
            if let (Some(caps), Some(c)) = (v.footprint_caps(), compiled.as_deref()) {
                c.set_footprint_hint(caps);
            }
            Arc::new(v)
        });
        // Relaxed: pure statistic, see the hit counter above.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.lock_cache();
        simt_check::note_write(simt_check::Cell::plan_cache(self.check_id));
        match cache.entry(key) {
            Entry::Occupied(e) => e.get().clone(),
            Entry::Vacant(slot) => {
                if let Some(v) = &verification {
                    // Relaxed: statistics tied to the entry that landed;
                    // readers see them via cache_stats' tracked lock.
                    self.verified.fetch_add(1, Ordering::Relaxed);
                    self.diags
                        .fetch_add(v.diagnostics.len() as u64, Ordering::Relaxed);
                }
                slot.insert(CachedPlan {
                    plan,
                    compiled,
                    verification,
                })
                .clone()
            }
        }
    }

    /// Runs one admitted query to a reply. Every failure mode maps to a
    /// per-query error; nothing here can take the worker down.
    fn execute(
        &self,
        warm: Option<&WarmSlot>,
        pattern: &Pattern,
        opts: &QueryOptions,
        admitted: Instant,
    ) -> Result<MatchOutcome, ServiceError> {
        let induced = opts.induced.unwrap_or(self.cfg.engine.induced);
        // The deadline clock starts at admission: time spent queued
        // behind other queries counts against the budget.
        let remaining = match opts.deadline {
            Some(d) => match d.checked_sub(admitted.elapsed()) {
                Some(r) if !r.is_zero() => Some(r),
                _ => return Err(ServiceError::DeadlineExceeded { partial: None }),
            },
            None => None,
        };
        let entry = self.plan_for(pattern, induced);
        let plan = &entry.plan;
        let compiled = entry.compiled.as_deref();
        // Resolve the topology once, up front (rank-1 lock, released
        // immediately): the query runs against this snapshot even if a
        // batch lands mid-flight.
        let (graph, weights) = self.resolve_graph();
        let mut cfg = self.cfg.engine;
        cfg.induced = induced;
        if cfg.verify.enabled && !cfg.shard.enabled {
            // Verification already ran once for this canonical entry (and
            // published any capacity hint on the resident compiled plan);
            // re-verifying per launch would only repeat it. The sharded
            // route keeps the flag: its shard-cover check is per run.
            // `apply_hints` stays as configured — the kernel gates arena
            // shaping on it alone.
            cfg.verify.enabled = false;
        }
        if let Some(r) = opts.recovery {
            cfg.recovery = r;
        }
        if cfg.hub_bitmap.enabled {
            // Shared-index handoff: built at most once for the service's
            // lifetime, then every engine below sees graph.hub_bitmap().
            // Delta snapshots already carry a word-patched copy of the
            // base index (stamped with their version), so this is a no-op
            // for them.
            graph.ensure_hub_bitmap(cfg.hub_bitmap.hub_threshold);
        }
        let mut engine = Engine::new(cfg);
        if let Some(r) = remaining {
            engine = engine.with_timeout(r);
        }
        if let Some(f) = opts.fault_plan.clone() {
            engine = engine.with_fault_plan(f);
        }
        let ran = catch_unwind(AssertUnwindSafe(|| {
            if cfg.shard.enabled {
                // Sharded route: the driver builds one grid per shard, so
                // the worker's single-grid warm slot cannot serve it; the
                // merged outcome keeps the service's count/metrics shape.
                // A delta overlay that tracks weights hands the split its
                // incrementally adjusted vector, skipping the O(graph)
                // recompute per query.
                engine
                    .run_plan_sharded_weighted(&graph, plan, weights.as_deref())
                    .map(|s| s.outcome)
            } else {
                match (warm, compiled) {
                    (Some(w), _) => engine.run_plan_warm_compiled(&graph, plan, w, compiled),
                    (None, Some(c)) => engine.run_plan_compiled(&graph, plan, c),
                    (None, None) => engine.run_plan(&graph, plan),
                }
            }
        }));
        match ran {
            Err(payload) => Err(ServiceError::QueryPanicked(crate::fault::describe_payload(
                payload.as_ref(),
            ))),
            Ok(Err(e)) => Err(ServiceError::Launch(e)),
            Ok(Ok(outcome)) => {
                match outcome.served_tier {
                    // Relaxed: pure statistics, read by cache_stats only.
                    Some(0) => drop(self.tier0_served.fetch_add(1, Ordering::Relaxed)),
                    Some(_) => drop(self.tier1_served.fetch_add(1, Ordering::Relaxed)),
                    None => {}
                }
                // Runtime audit of the cached certificate (mirrors the
                // engine's own audit, which the served route skips): valid
                // only when the launch ran at the certified slab capacity.
                if let Some(v) = entry
                    .verification
                    .as_ref()
                    .filter(|_| outcome.downgrades.is_empty())
                {
                    if v.cert.spill_free {
                        debug_assert_eq!(
                            outcome.spill_events, 0,
                            "cached certificate claims spill-freedom but the run spilled"
                        );
                    }
                    debug_assert!(
                        outcome.peak_slab_cells <= v.cert.peak_cells(cfg.unroll),
                        "runtime peak {} exceeds cached certified bound {}",
                        outcome.peak_slab_cells,
                        v.cert.peak_cells(cfg.unroll)
                    );
                }
                if outcome.timed_out {
                    Err(ServiceError::DeadlineExceeded {
                        partial: Some(Box::new(outcome)),
                    })
                } else {
                    Ok(outcome)
                }
            }
        }
    }
}

/// A resident matching service over one shared graph. See the module docs.
///
/// ```
/// use std::sync::Arc;
/// use stmatch_core::{EngineConfig, MatchService, QueryOptions, ServiceConfig};
/// use stmatch_graph::gen;
/// use stmatch_pattern::catalog;
///
/// let graph = Arc::new(gen::complete(6));
/// let service = MatchService::new(graph, ServiceConfig::new(EngineConfig::default()));
/// let out = service
///     .submit(&catalog::triangle(), QueryOptions::default())
///     .unwrap();
/// assert_eq!(out.count, 20); // C(6,3)
/// ```
pub struct MatchService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl MatchService {
    /// Starts the worker threads; each builds its own warm slot at the
    /// configured grid geometry (falling back to cold per-query grids if
    /// that fails, e.g. on a degenerate geometry).
    /// # Panics
    /// With [`EngineConfig::delta`] enabled, `graph` must be a plain CSR
    /// (not a patched view): the delta overlay folds batches against it.
    pub fn new(graph: Arc<Graph>, cfg: ServiceConfig) -> MatchService {
        cfg.engine.validate();
        let dynamic = cfg.engine.delta.enabled.then(|| {
            if cfg.engine.hub_bitmap.enabled {
                // Build the shared index on the base *before* the first
                // snapshot, so every snapshot carries a version-stamped
                // patched copy instead of rebuilding from scratch.
                graph.ensure_hub_bitmap(cfg.engine.hub_bitmap.hub_threshold);
            }
            let mut overlay = DeltaOverlay::new((*graph).clone());
            if cfg.engine.shard.enabled && cfg.engine.shard.work_aware {
                // Sharded queries split by level-0 weights; track them on
                // the overlay so each batch adjusts the touched vertices
                // instead of recomputing O(graph) per query.
                overlay.track_weights();
            }
            Mutex::new(GraphState {
                current: Arc::clone(&graph),
                overlay,
                watchers: Vec::new(),
                next_watch: 0,
                batches_since_compact: 0,
            })
        });
        let inner = Arc::new(Inner {
            graph,
            cfg,
            check_id: simt_check::next_object_id(),
            queue: Mutex::new(AdmissionQueue::default()),
            cache: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            tier0_served: AtomicU64::new(0),
            tier1_served: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            diags: AtomicU64::new(0),
            profile: OnceLock::new(),
            dynamic,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("match-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        MatchService { inner, workers }
    }

    /// Admits a query without blocking; the [`Ticket`] delivers the
    /// result. Deadlines start now.
    pub fn enqueue(&self, pattern: &Pattern, opts: QueryOptions) -> Ticket {
        let (reply, rx) = mpsc::channel();
        // Acquire: pairs with the Release store in Drop, so a client that
        // observes shutdown also observes every effect sequenced before it.
        if self.inner.shutdown.load(Ordering::Acquire) {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
            return Ticket { rx };
        }
        let req = Request {
            pattern: pattern.clone(),
            opts,
            admitted: Instant::now(),
            reply,
        };
        self.inner.lock_queue().push(req);
        Ticket { rx }
    }

    /// Admits a query and blocks for its result.
    pub fn submit(
        &self,
        pattern: &Pattern,
        opts: QueryOptions,
    ) -> Result<MatchOutcome, ServiceError> {
        self.enqueue(pattern, opts).wait()
    }

    /// Plan-cache counters. Note for checker-based tests: this takes the
    /// tracked cache lock, which publishes the workers' cache history to
    /// the calling thread.
    pub fn cache_stats(&self) -> CacheStats {
        // Clone the compiled plans *out* of the cache lock before touching
        // their tier state: `CompiledPlan::profile` takes a `PlanTierUp`
        // lock (rank 3), which the declared hierarchy forbids acquiring
        // under `ServicePlanCache` (rank 4).
        let (entries, compiled) = {
            let cache = self.inner.lock_cache();
            let compiled: Vec<Arc<CompiledPlan>> =
                cache.values().filter_map(|e| e.compiled.clone()).collect();
            (cache.len(), compiled)
        };
        let tier_ups = compiled.iter().map(|c| c.profile().1).sum();
        // Relaxed: all six counters are pure statistics; the tracked
        // cache lock above already ordered this thread after the workers'
        // cache (and counter) updates.
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries,
            tier_ups,
            tier0_served: self.inner.tier0_served.load(Ordering::Relaxed),
            specialized_hits: self.inner.tier1_served.load(Ordering::Relaxed),
            verified: self.inner.verified.load(Ordering::Relaxed),
            // Relaxed: statistics snapshot; the tracked cache lock above
            // already ordered us after every entry that landed.
            diagnostics: self.inner.diags.load(Ordering::Relaxed),
        }
    }

    /// The static verification verdict cached for `pattern` (under the
    /// service's default `induced` semantics), creating — and verifying —
    /// the cache entry if it does not exist yet. `None` when
    /// `EngineConfig::verify` is off.
    pub fn verification(&self, pattern: &Pattern) -> Option<Arc<Verification>> {
        self.inner
            .plan_for(pattern, self.inner.cfg.engine.induced)
            .verification
    }

    /// Applies one batch of edge updates to the service graph
    /// (delta-enabled services only) and returns its net effect. Cost is
    /// O(batch × affected neighborhoods): the overlay folds the ops,
    /// O(touched) snapshots replace the current view, and per
    /// [`EngineConfig::delta`]`.compact_every` batches the overlay folds
    /// into a fresh CSR. Queries admitted before the call finish against
    /// the old snapshot; queries admitted after see the new one.
    ///
    /// Watcher deltas are computed and delivered *on the caller's
    /// thread*, after the graph lock is released — a slow or panicking
    /// watcher delays only its own `apply_batch` caller, never the
    /// admission or query lanes.
    ///
    /// # Panics
    /// Panics if the service was not built with
    /// [`EngineConfig::with_delta`]`(true)`, or on malformed ops
    /// (self-loops, out-of-range endpoints).
    pub fn apply_batch(&self, ops: &[EdgeOp]) -> AppliedBatch {
        let inner = &self.inner;
        let (pre, post, batch, watchers) = {
            let mut state = inner
                .lock_graph()
                .expect("apply_batch requires EngineConfig::with_delta(true)");
            let pre = Arc::clone(&state.current);
            let batch = state.overlay.apply(ops);
            state.batches_since_compact += 1;
            if state.batches_since_compact >= inner.cfg.engine.delta.compact_every {
                state.overlay.compact();
                state.batches_since_compact = 0;
            }
            let post = Arc::new(state.overlay.snapshot());
            state.current = Arc::clone(&post);
            (pre, post, batch, state.watchers.clone())
        };
        for w in &watchers {
            let engine = Engine::new(inner.cfg.engine);
            let ran = catch_unwind(AssertUnwindSafe(|| {
                engine.run_delta_plans(&pre, &post, &batch, &w.plans)
            }));
            let delta = match ran {
                Ok(Ok(d)) => Ok(d),
                Ok(Err(e)) => Err(format!("launch failed: {e}")),
                Err(payload) => Err(crate::fault::describe_payload(payload.as_ref())),
            };
            (w.cb)(WatchEvent {
                watch: w.id,
                version: batch.version,
                batch: batch.clone(),
                delta,
            });
        }
        batch
    }

    /// Registers a pattern watcher: `cb` receives one [`WatchEvent`] per
    /// subsequent [`MatchService::apply_batch`], carrying the pattern's
    /// exact match-count delta under that batch. Anchored plans compile
    /// here, once, outside the graph lock.
    ///
    /// # Panics
    /// Panics unless the service is delta-enabled and edge-induced.
    pub fn submit_watch(
        &self,
        pattern: &Pattern,
        cb: impl Fn(WatchEvent) + Send + Sync + 'static,
    ) -> WatchId {
        let inner = &self.inner;
        assert!(
            inner.dynamic.is_some(),
            "submit_watch requires EngineConfig::with_delta(true)"
        );
        assert!(
            !inner.cfg.engine.induced,
            "incremental watching is edge-induced only (see stmatch_core::delta)"
        );
        let plans = Arc::new(Engine::new(inner.cfg.engine).compile_delta(pattern));
        let mut state = inner.lock_graph().expect("delta mode checked above");
        let id = WatchId(state.next_watch);
        state.next_watch += 1;
        state.watchers.push(WatchEntry {
            id,
            plans,
            cb: Arc::new(cb),
        });
        id
    }

    /// Unregisters a watcher; returns whether it was still registered.
    pub fn cancel_watch(&self, id: WatchId) -> bool {
        let mut state = self
            .inner
            .lock_graph()
            .expect("cancel_watch requires EngineConfig::with_delta(true)");
        let before = state.watchers.len();
        state.watchers.retain(|w| w.id != id);
        state.watchers.len() != before
    }

    /// The graph queries currently run against: the latest delta snapshot
    /// for delta-enabled services, the shared immutable graph otherwise.
    pub fn current_graph(&self) -> Arc<Graph> {
        self.inner.resolve_graph().0
    }

    /// The shared graph the service was built with (for delta-enabled
    /// services this stays the *initial* topology; see
    /// [`MatchService::current_graph`]).
    pub fn graph(&self) -> &Arc<Graph> {
        &self.inner.graph
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }
}

impl Drop for MatchService {
    /// Graceful shutdown: workers drain the queue (every admitted query
    /// gets a reply), then exit and are joined.
    fn drop(&mut self) {
        // Release: publishes everything before shutdown to the Acquire
        // loads in `enqueue` and the worker loop.
        self.inner.shutdown.store(true, Ordering::Release);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker: drain up to `batch_max` requests per admission-lock
/// acquisition, serve them back-to-back on this worker's warm slot, park
/// briefly when idle. Exits when shutdown is flagged *and* the queue is
/// empty, so pending clients always hear back.
fn worker_loop(inner: &Inner) {
    let warm = WarmSlot::new(inner.cfg.engine.grid).ok();
    loop {
        let batch = inner.lock_queue().drain(inner.cfg.batch_max);
        if batch.is_empty() {
            // Acquire: pairs with Drop's Release store; checked only after
            // an empty drain so every admitted query still gets a reply.
            if inner.shutdown.load(Ordering::Acquire) {
                break;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        for req in batch {
            let result = inner.execute(warm.as_ref(), &req.pattern, &req.opts, req.admitted);
            // A client that dropped its ticket is not an error.
            let _ = req.reply.send(result);
        }
    }
}

/// Seeded concurrency bugs for the `simt-check` harness (mirrors
/// `steal::mutation`): each reintroduces a historically plausible bug the
/// checker must kill by name. Never called from production paths.
pub mod mutation {
    use super::*;

    /// Inserts a plan-cache entry through the raw mutex, *bypassing* the
    /// tracked cache lock — the classic "it's just one insert" shortcut.
    /// The data stays intact (the raw mutex still excludes), but the
    /// checker must flag the unprotected shadow-cell write against the
    /// workers' locked accesses as `data race on plan-cache[id]`.
    ///
    /// Deterministic kill: call after at least one blocking
    /// [`MatchService::submit`] (so a worker's locked cache access has
    /// happened), and do NOT call [`MatchService::cache_stats`] in
    /// between — that takes the tracked lock and would order this thread
    /// after the workers, hiding the race.
    pub fn cache_insert_without_lock(svc: &MatchService, pattern: &Pattern) {
        let inner = &svc.inner;
        let induced = inner.cfg.engine.induced;
        let key = PlanKey::new(pattern, induced);
        let plan = Arc::new(MatchPlan::compile(
            pattern,
            PlanOptions {
                induced,
                code_motion: inner.cfg.engine.code_motion,
                symmetry_breaking: inner.cfg.engine.symmetry_breaking,
            },
        ));
        simt_check::note_write(simt_check::Cell::plan_cache(inner.check_id));
        inner
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                key,
                CachedPlan {
                    plan,
                    compiled: None,
                    verification: None,
                },
            );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_gpusim::{GridConfig, SharedBudget};
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn small_cfg() -> ServiceConfig {
        let grid = GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: SharedBudget::RTX3090_BYTES,
        };
        ServiceConfig::new(EngineConfig::default().with_grid(grid))
    }

    #[test]
    fn submit_matches_engine_run() {
        let graph = Arc::new(gen::erdos_renyi(40, 160, 7));
        let svc = MatchService::new(Arc::clone(&graph), small_cfg());
        let q = catalog::paper_query(6);
        let expected = Engine::new(small_cfg().engine).run(&graph, &q).unwrap();
        let got = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(got.count, expected.count);
        assert_eq!(got.num_sets, expected.num_sets);
        assert_eq!(got.stack_bytes, expected.stack_bytes);
    }

    #[test]
    fn isomorphic_submissions_share_one_cache_entry() {
        let graph = Arc::new(gen::erdos_renyi(30, 100, 3));
        let svc = MatchService::new(Arc::clone(&graph), small_cfg());
        // A path relabeled two ways: same canonical form.
        let a = Pattern::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Pattern::new(4, &[(3, 2), (2, 1), (1, 0)]);
        let first = svc.submit(&a, QueryOptions::default()).unwrap();
        let second = svc.submit(&b, QueryOptions::default()).unwrap();
        assert_eq!(first.count, second.count);
        let stats = svc.cache_stats();
        assert_eq!(stats.entries, 1, "isomorphic patterns share an entry");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn resident_tier_promotion_survives_across_submissions() {
        // Enough edges that one q8 run records well over the tier-up
        // threshold in claims; later hits must then be served specialized.
        let graph = Arc::new(gen::preferential_attachment(200, 5, 3).degree_ordered());
        let mut cfg = small_cfg();
        cfg.engine.compile.enabled = true;
        cfg.engine.compile.tier_up_after = 64;
        let svc = MatchService::new(Arc::clone(&graph), cfg);
        let q = catalog::paper_query(8);
        let baseline = svc.submit(&q, QueryOptions::default()).unwrap().count;
        for _ in 0..3 {
            assert_eq!(
                svc.submit(&q, QueryOptions::default()).unwrap().count,
                baseline
            );
        }
        let stats = svc.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.tier_ups, 1, "the resident cascade promoted once");
        assert!(
            stats.specialized_hits >= 3,
            "warm hits served at the promoted tier (got {})",
            stats.specialized_hits
        );
        assert_eq!(
            stats.tier0_served + stats.specialized_hits,
            4,
            "every query was served at some tier"
        );
        // A path query through the same service stays on tier 0 (the
        // promotion policy is cascade-only).
        let path = catalog::paper_query(1);
        let c1 = svc.submit(&path, QueryOptions::default()).unwrap().count;
        assert_eq!(
            svc.submit(&path, QueryOptions::default()).unwrap().count,
            c1
        );
        let stats = svc.cache_stats();
        assert_eq!(stats.tier_ups, 1, "the path entry never promotes");
        assert_eq!(stats.tier0_served, 2);
    }

    #[test]
    fn expired_deadline_fails_without_running() {
        let graph = Arc::new(gen::complete(6));
        let svc = MatchService::new(graph, small_cfg());
        let opts = QueryOptions {
            deadline: Some(Duration::ZERO),
            ..QueryOptions::default()
        };
        match svc.submit(&catalog::triangle(), opts) {
            Err(ServiceError::DeadlineExceeded { partial: None }) => {}
            other => panic!("expected queued-deadline expiry, got {other:?}"),
        }
        // The pool is not poisoned: the next query succeeds.
        let ok = svc
            .submit(&catalog::triangle(), QueryOptions::default())
            .unwrap();
        assert_eq!(ok.count, 20);
    }

    /// Builds a throwaway request whose deadline seconds act as an id tag
    /// (never executed — only pushed through the admission queue).
    fn tagged_request(priority: Priority, tag: u64) -> Request {
        let (reply, _rx) = mpsc::channel();
        Request {
            pattern: catalog::triangle(),
            opts: QueryOptions {
                deadline: Some(Duration::from_secs(tag)),
                priority,
                ..QueryOptions::default()
            },
            admitted: Instant::now(),
            reply,
        }
    }

    fn tag(r: &Request) -> u64 {
        r.opts.deadline.unwrap().as_secs()
    }

    #[test]
    fn full_batch_reserves_a_slot_for_the_normal_lane() {
        let mut q = AdmissionQueue::default();
        for t in 0..6 {
            q.push(tagged_request(Priority::High, t));
        }
        for t in 100..103 {
            q.push(tagged_request(Priority::Normal, t));
        }
        // A drain the high lane could fill alone must still carry the
        // oldest normal request — the starvation-freedom invariant.
        let batch = q.drain(4);
        assert_eq!(
            batch.iter().map(tag).collect::<Vec<_>>(),
            vec![0, 1, 2, 100],
            "three high (FIFO) plus the oldest normal"
        );
        // Next drain: the remaining high requests, then the reserve again.
        let batch = q.drain(4);
        assert_eq!(
            batch.iter().map(tag).collect::<Vec<_>>(),
            vec![3, 4, 5, 101]
        );
        // High lane empty: the normal lane gets the whole batch.
        let batch = q.drain(4);
        assert_eq!(batch.iter().map(tag).collect::<Vec<_>>(), vec![102]);
        assert!(q.is_empty());
    }

    #[test]
    fn high_lane_dequeues_ahead_of_earlier_normals() {
        let mut q = AdmissionQueue::default();
        q.push(tagged_request(Priority::Normal, 100));
        q.push(tagged_request(Priority::High, 0));
        // Admitted later, served first; the waiting normal keeps the
        // reserved slot.
        let batch = q.drain(2);
        assert_eq!(batch.iter().map(tag).collect::<Vec<_>>(), vec![0, 100]);
        // A batch of one never deadlocks the reservation arithmetic.
        q.push(tagged_request(Priority::High, 1));
        q.push(tagged_request(Priority::Normal, 101));
        assert_eq!(q.drain(1).iter().map(tag).collect::<Vec<_>>(), vec![101]);
        assert_eq!(q.drain(1).iter().map(tag).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn mixed_priority_flood_completes_everything() {
        let graph = Arc::new(gen::erdos_renyi(40, 160, 7));
        let cfg = small_cfg().with_workers(1).with_batch_max(2);
        let expected = Engine::new(cfg.engine)
            .run(&graph, &catalog::triangle())
            .unwrap()
            .count;
        let svc = MatchService::new(Arc::clone(&graph), cfg);
        let mut tickets = Vec::new();
        for i in 0..12 {
            let opts = QueryOptions {
                priority: if i % 4 == 0 {
                    Priority::Normal
                } else {
                    Priority::High
                },
                ..QueryOptions::default()
            };
            tickets.push(svc.enqueue(&catalog::triangle(), opts));
        }
        for t in tickets {
            assert_eq!(t.wait().unwrap().count, expected);
        }
    }

    #[test]
    fn sharded_route_serves_exact_counts() {
        let graph = Arc::new(gen::preferential_attachment(100, 4, 5).degree_ordered());
        let q = catalog::paper_query(6);
        let expected = Engine::new(small_cfg().engine)
            .run(&graph, &q)
            .unwrap()
            .count;
        let mut cfg = small_cfg();
        cfg.engine = cfg.engine.with_shards(2);
        let svc = MatchService::new(Arc::clone(&graph), cfg);
        let clean = svc.submit(&q, QueryOptions::default()).unwrap();
        assert_eq!(clean.count, expected);
        // A shard kill injected per query recovers exactly, and the
        // worker survives to serve the next query.
        let opts = QueryOptions {
            fault_plan: Some(FaultPlan::seeded_shard_kill(0x7a, 2, 1)),
            ..QueryOptions::default()
        };
        let faulted = svc.submit(&q, opts).unwrap();
        assert_eq!(faulted.count, expected);
        let report = faulted.fault.expect("a shard died");
        assert!(report.fully_recovered());
        assert!(report.reproduce.is_some());
        assert_eq!(
            svc.submit(&q, QueryOptions::default()).unwrap().count,
            expected
        );
    }

    fn delta_cfg() -> ServiceConfig {
        let mut cfg = small_cfg();
        cfg.engine = cfg.engine.with_delta(true);
        cfg
    }

    #[test]
    fn apply_batch_moves_queries_to_the_new_topology() {
        let graph = Arc::new(gen::preferential_attachment(40, 3, 5).degree_ordered());
        let svc = MatchService::new(Arc::clone(&graph), delta_cfg());
        let q = catalog::triangle();
        let before = svc.submit(&q, QueryOptions::default()).unwrap().count;
        assert_eq!(
            Engine::new(small_cfg().engine)
                .run(&graph, &q)
                .unwrap()
                .count,
            before
        );
        // Delete one edge, insert one absent edge.
        let present = (graph.neighbors(0)[0], 0);
        let absent = (0..40u32)
            .flat_map(|u| (u + 1..40).map(move |v| (u, v)))
            .find(|&(u, v)| !graph.has_edge(u, v))
            .unwrap();
        let batch = svc.apply_batch(&[
            EdgeOp::delete(present.0, present.1),
            EdgeOp::insert(absent.0, absent.1),
        ]);
        assert_eq!((batch.inserts.len(), batch.deletes.len()), (1, 1));
        assert_eq!(svc.current_graph().version(), 1);
        let after = svc.submit(&q, QueryOptions::default()).unwrap().count;
        let expected = Engine::new(small_cfg().engine)
            .run(&svc.current_graph(), &q)
            .unwrap()
            .count;
        assert_eq!(after, expected, "queries see the post-batch snapshot");
        assert_ne!(svc.graph().version(), 1, "the seed graph is untouched");
    }

    #[test]
    fn watchers_receive_exact_deltas_per_batch() {
        let graph = Arc::new(gen::preferential_attachment(40, 3, 5).degree_ordered());
        let mut cfg = delta_cfg();
        // Compact every batch: the fold must be invisible to watchers.
        cfg.engine.delta.compact_every = 1;
        let svc = MatchService::new(Arc::clone(&graph), cfg);
        let q = catalog::triangle();
        let events: Arc<Mutex<Vec<WatchEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let id = svc.submit_watch(&q, move |e| sink.lock().unwrap().push(e));
        let mut running = svc.submit(&q, QueryOptions::default()).unwrap().count as i64;
        let absent: Vec<(u32, u32)> = (0..40u32)
            .flat_map(|u| (u + 1..40).map(move |v| (u, v)))
            .filter(|&(u, v)| !graph.has_edge(u, v))
            .take(4)
            .collect();
        for (i, &(u, v)) in absent.iter().enumerate() {
            svc.apply_batch(&[EdgeOp::insert(u, v)]);
            let ev = events.lock().unwrap().last().cloned().unwrap();
            assert_eq!(ev.watch, id);
            assert_eq!(ev.version, i as u64 + 1);
            let delta = ev.delta.expect("delta computed");
            assert_eq!(delta.removed, 0, "insert-only batch");
            running += delta.net();
            let full = svc.submit(&q, QueryOptions::default()).unwrap().count;
            assert_eq!(running, full as i64, "cumulative deltas track recompute");
        }
        assert!(svc.cancel_watch(id));
        assert!(!svc.cancel_watch(id), "second cancel is a no-op");
        svc.apply_batch(&[EdgeOp::delete(absent[0].0, absent[0].1)]);
        assert_eq!(
            events.lock().unwrap().len(),
            4,
            "cancelled watcher is quiet"
        );
    }

    /// Satellite starvation guarantee: a stream of `apply_batch` calls
    /// with registered watchers never blocks the one-shot admission lane —
    /// watcher deltas run on the applier's thread, outside every service
    /// lock, so concurrently submitted queries keep completing.
    #[test]
    fn watch_deltas_never_starve_the_one_shot_lane() {
        let graph = Arc::new(gen::preferential_attachment(40, 3, 5).degree_ordered());
        let cfg = delta_cfg().with_workers(1).with_batch_max(2);
        let svc = Arc::new(MatchService::new(Arc::clone(&graph), cfg));
        let expected = Engine::new(delta_cfg().engine)
            .run(&graph, &catalog::triangle())
            .unwrap()
            .count;
        let hits = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&hits);
        svc.submit_watch(&catalog::triangle(), move |e| {
            assert_eq!(e.delta.expect("delta computed"), MatchDelta::default());
            // Relaxed: a plain event counter — the join below is the
            // happens-before edge the final read relies on.
            sink.fetch_add(1, Ordering::Relaxed);
        });
        // Net-zero batches: the topology never changes, so one-shot counts
        // stay deterministic while watch deltas are being computed.
        let absent = (0..40u32)
            .flat_map(|u| (u + 1..40).map(move |v| (u, v)))
            .find(|&(u, v)| !graph.has_edge(u, v))
            .unwrap();
        let applier = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for _ in 0..6 {
                    let batch = svc.apply_batch(&[
                        EdgeOp::insert(absent.0, absent.1),
                        EdgeOp::delete(absent.0, absent.1),
                    ]);
                    assert!(batch.is_empty());
                }
            })
        };
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| svc.enqueue(&catalog::triangle(), QueryOptions::default()))
            .collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap().count, expected, "one-shot lane ran");
        }
        applier.join().unwrap();
        // Relaxed: the applier join() above already ordered every
        // watcher delivery before this read.
        assert_eq!(hits.load(Ordering::Relaxed), 6, "every batch was delivered");
    }

    #[test]
    #[should_panic(expected = "with_delta")]
    fn apply_batch_requires_delta_mode() {
        let svc = MatchService::new(Arc::new(gen::complete(6)), small_cfg());
        let _ = svc.apply_batch(&[EdgeOp::insert(0, 2)]);
    }

    #[test]
    fn drop_drains_pending_queries() {
        let graph = Arc::new(gen::complete(6));
        let svc = MatchService::new(graph, small_cfg());
        let tickets: Vec<Ticket> = (0..6)
            .map(|_| svc.enqueue(&catalog::triangle(), QueryOptions::default()))
            .collect();
        drop(svc);
        for t in tickets {
            assert_eq!(t.wait().unwrap().count, 20, "drained before shutdown");
        }
    }
}
