//! Multi-device execution (Fig. 11) — facade over two routes.
//!
//! The paper runs on multiple GPUs "by duplicating the input graph and
//! dividing the outermost loop iterations across GPUs". This module keeps
//! that contract behind one entry point, [`run_multi_device`], with the
//! route picked by [`EngineConfig::shard`](crate::EngineConfig):
//!
//! * **Strided partitions** (knob off, the historical default): each
//!   simulated device receives a strided slice of the level-0 vertex
//!   range and runs a full grid on it. Devices are *simulated
//!   sequentially* (this host cannot run several grids truly in parallel
//!   without oversubscription skewing results), and the reported
//!   multi-device time is the maximum per-device time — exactly the
//!   quantity that determines wall clock on real hardware. Slices are
//!   fixed at launch: a device that finishes early cannot help a loaded
//!   one, and a died/failed device strands its slice.
//! * **Sharded grids** (knob on): the [`crate::shard`] subsystem — one
//!   grid per shard over a shared work rail, with work-aware splits,
//!   cross-shard stealing and shard-death recovery. `devices` becomes the
//!   shard count; per-shard outcomes fill [`MultiDeviceOutcome::devices`]
//!   and the full shard bookkeeping rides along in
//!   [`MultiDeviceOutcome::sharded`]. Counts are identical to the strided
//!   route (both cover the same domain exactly).
//!
//! Either way, an aborted run is *auditable*: the outcome lists the
//! level-0 ranges its partial count never covered
//! ([`MultiDeviceOutcome::uncovered`]).

use crate::engine::{Engine, MatchOutcome};
use crate::shard::ShardedOutcome;
use stmatch_gpusim::LaunchError;
use stmatch_graph::Graph;
use stmatch_pattern::Pattern;

/// A half-open range of level-0 *virtual* indices an aborted run never
/// covered. For the strided route the indices live in the owning device's
/// own stride space (`vertex = device + index * devices`); for the
/// sharded route they index the run's [`ShardPlan::order`]
/// (`vertex = order[index]`) and belong to the rail, not one device.
///
/// [`ShardPlan::order`]: crate::shard::ShardPlan
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UncoveredRange {
    /// The device that owned the range, or `None` for rail-resident
    /// ranges of a sharded run (portable, owned by no single device).
    pub device: Option<usize>,
    /// First uncovered virtual index.
    pub lo: usize,
    /// One past the last uncovered virtual index.
    pub hi: usize,
}

/// Aggregated result of a multi-device run.
#[derive(Clone, Debug)]
pub struct MultiDeviceOutcome {
    /// Per-device outcomes, in device order. May be shorter than the
    /// requested device count when the run aborted partway (see
    /// [`MultiDeviceOutcome::aborted`]). On the sharded route these are
    /// the round-0 per-shard outcomes (recovery rounds are folded into
    /// `count` and [`MultiDeviceOutcome::sharded`]).
    pub devices: Vec<MatchOutcome>,
    /// Total matches across the *completed* devices.
    pub count: u64,
    /// True when the run stopped before covering the whole domain — a
    /// device timed out, a later device's launch failed, or a sharded run
    /// abandoned work. The count is then a partial lower bound and
    /// [`MultiDeviceOutcome::uncovered`] lists what it omits.
    pub aborted: bool,
    /// The device whose launch failed, if any. Devices before it completed
    /// and their outcomes are retained; devices after it never ran.
    pub failed_device: Option<usize>,
    /// The launch error that stopped the run at [`failed_device`]
    /// (`failed_device`/`error` are always set together).
    ///
    /// [`failed_device`]: MultiDeviceOutcome::failed_device
    pub error: Option<LaunchError>,
    /// Level-0 ranges the partial count never covered; empty whenever
    /// `aborted` is false, so a partial count is always auditable down to
    /// the exact slice of the outermost loop it omits.
    pub uncovered: Vec<UncoveredRange>,
    /// Full shard bookkeeping (rail traffic, recovery ladder, reproduce
    /// line) when the sharded route served the run; `None` on the strided
    /// route.
    pub sharded: Option<ShardedOutcome>,
}

impl MultiDeviceOutcome {
    /// The bottleneck device's wall time in ms (what a real multi-GPU run
    /// would report).
    pub fn elapsed_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.elapsed_ms())
            .fold(0.0, f64::max)
    }

    /// The bottleneck device's simulated cycles.
    pub fn simulated_cycles(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.simulated_cycles())
            .max()
            .unwrap_or(0)
    }
}

/// Runs `pattern` over `graph` partitioned across `devices` simulated
/// devices with `engine`'s configuration. With
/// [`EngineConfig::shard`](crate::EngineConfig) enabled the run is served
/// by the sharded route (`devices` = shard count, work-aware splits,
/// cross-shard stealing, shard-death recovery); otherwise by fixed
/// strided partitions.
///
/// Fault tolerance across devices: if a device times out or a later
/// device's launch fails, the outcomes of the devices that already
/// completed are *returned* (with `aborted`/`failed_device` set) rather
/// than discarded — hours of completed partitions survive one bad device.
/// Only a failure on the very first device returns `Err`, since there is
/// nothing to salvage.
pub fn run_multi_device(
    engine: &Engine,
    graph: &Graph,
    pattern: &Pattern,
    devices: usize,
) -> Result<MultiDeviceOutcome, LaunchError> {
    assert!(devices >= 1);
    let plan = engine.compile(pattern);
    if engine.config().shard.enabled {
        return run_sharded_route(engine, graph, &plan, devices);
    }
    let n = graph.num_vertices();
    // Virtual domain width of a strided device (see `Engine::launch`).
    let domain = |d: usize| if n > d { (n - d).div_ceil(devices) } else { 0 };
    let mut outcomes: Vec<MatchOutcome> = Vec::with_capacity(devices);
    let mut aborted = false;
    let mut failed_device = None;
    let mut error = None;
    let mut uncovered: Vec<UncoveredRange> = Vec::new();
    for d in 0..devices {
        match engine.run_partition(graph, &plan, d, devices) {
            Ok(out) => {
                let timed_out = out.timed_out;
                if let Some((lo, hi)) = out.l0_uncovered {
                    uncovered.push(UncoveredRange {
                        device: Some(d),
                        lo,
                        hi,
                    });
                }
                outcomes.push(out);
                if timed_out {
                    // The wall-clock budget is for the whole run; don't
                    // start the remaining devices after blowing it.
                    aborted = true;
                    break;
                }
            }
            Err(err) if outcomes.is_empty() => return Err(err),
            Err(err) => {
                aborted = true;
                failed_device = Some(d);
                error = Some(err);
                break;
            }
        }
    }
    // Devices the abort prevented from ever starting (including a failed
    // device, which completed nothing) contribute their whole slice.
    for d in outcomes.len()..devices {
        if domain(d) > 0 {
            uncovered.push(UncoveredRange {
                device: Some(d),
                lo: 0,
                hi: domain(d),
            });
        }
    }
    if !aborted {
        debug_assert!(uncovered.is_empty(), "complete runs cover everything");
        uncovered.clear();
    }
    let count = outcomes.iter().map(|o| o.count).sum();
    Ok(MultiDeviceOutcome {
        devices: outcomes,
        count,
        aborted,
        failed_device,
        error,
        uncovered,
        sharded: None,
    })
}

/// The sharded route: rebuilds the engine with `devices` shards (keeping
/// its timeout and fault plan) and adapts the [`ShardedOutcome`] to the
/// facade's shape.
fn run_sharded_route(
    engine: &Engine,
    graph: &Graph,
    plan: &stmatch_pattern::MatchPlan,
    devices: usize,
) -> Result<MultiDeviceOutcome, LaunchError> {
    let mut cfg = *engine.config();
    cfg.shard.shards = devices;
    let mut e = Engine::new(cfg);
    if let Some(t) = engine.timeout_budget() {
        e = e.with_timeout(t);
    }
    if let Some(fp) = engine.fault_plan() {
        e = e.with_fault_plan(fp.clone());
    }
    let out = e.run_plan_sharded(graph, plan)?;
    let aborted = out.outcome.timed_out
        || out
            .outcome
            .fault
            .as_ref()
            .is_some_and(|f| !f.fully_recovered());
    let uncovered = out
        .unfinished
        .iter()
        .map(|&(lo, hi)| UncoveredRange {
            device: None,
            lo,
            hi,
        })
        .collect();
    Ok(MultiDeviceOutcome {
        devices: out.per_shard.clone(),
        count: out.outcome.count,
        aborted,
        failed_device: None,
        error: None,
        uncovered,
        sharded: Some(out),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    #[test]
    fn multi_device_counts_match_single_device() {
        let g = gen::erdos_renyi(90, 360, 21);
        let engine = Engine::new(EngineConfig::default());
        let single = engine.run(&g, &catalog::paper_query(6)).unwrap().count;
        for devices in [1, 2, 4] {
            let multi = run_multi_device(&engine, &g, &catalog::paper_query(6), devices).unwrap();
            assert_eq!(multi.count, single, "devices={devices}");
            assert_eq!(multi.devices.len(), devices);
            assert!(multi.sharded.is_none(), "knob off stays on strided route");
        }
    }

    #[test]
    fn sharded_route_counts_match_single_device() {
        let g = gen::preferential_attachment(100, 4, 5).degree_ordered();
        let single = Engine::new(EngineConfig::default())
            .run(&g, &catalog::paper_query(6))
            .unwrap()
            .count;
        let engine = Engine::new(EngineConfig::default().with_shard(true));
        for devices in [1, 2, 4] {
            let multi = run_multi_device(&engine, &g, &catalog::paper_query(6), devices).unwrap();
            assert_eq!(multi.count, single, "devices={devices}");
            assert_eq!(multi.devices.len(), devices);
            assert!(!multi.aborted);
            assert!(multi.uncovered.is_empty());
            let sharded = multi.sharded.as_ref().expect("sharded route bookkeeping");
            assert_eq!(sharded.shards, devices);
        }
    }

    #[test]
    fn multi_device_clean_run_is_not_aborted() {
        let g = gen::erdos_renyi(40, 120, 7);
        let engine = Engine::new(EngineConfig::default());
        let multi = run_multi_device(&engine, &g, &catalog::triangle(), 2).unwrap();
        assert!(!multi.aborted);
        assert_eq!(multi.failed_device, None);
        assert!(multi.error.is_none());
        assert!(multi.uncovered.is_empty());
    }

    #[test]
    fn timed_out_device_keeps_partial_outcomes() {
        use std::time::Duration;
        let g = gen::erdos_renyi(90, 360, 21);
        let engine = Engine::new(EngineConfig::default()).with_timeout(Duration::ZERO);
        // The first device blows the (zero) budget immediately; its partial
        // outcome must be returned instead of dropped, and the remaining
        // devices must not be started.
        let multi = run_multi_device(&engine, &g, &catalog::paper_query(6), 4).unwrap();
        assert!(multi.aborted);
        assert_eq!(multi.devices.len(), 1);
        assert!(multi.devices[0].timed_out);
        assert_eq!(multi.failed_device, None, "timeout is not a launch error");
    }

    #[test]
    fn aborted_run_lists_uncovered_ranges() {
        use std::time::Duration;
        let g = gen::erdos_renyi(90, 360, 21);
        let devices = 4;
        let engine = Engine::new(EngineConfig::default()).with_timeout(Duration::ZERO);
        let multi = run_multi_device(&engine, &g, &catalog::paper_query(6), devices).unwrap();
        assert!(multi.aborted);
        // Device 0 timed out mid-slice; devices 1..4 never started. The
        // uncovered list must account for every level-0 vertex the count
        // omitted: the tail of device 0's strided domain plus the whole
        // domain of each unstarted device.
        let n = g.num_vertices();
        let domain = |d: usize| (n - d).div_ceil(devices);
        let claimed0 = multi.devices[0]
            .l0_uncovered
            .map_or(domain(0), |(lo, _)| lo);
        let covered: usize = (0..devices).map(domain).sum::<usize>()
            - multi.uncovered.iter().map(|r| r.hi - r.lo).sum::<usize>();
        assert_eq!(covered, claimed0, "uncovered ranges audit the gap");
        for d in 1..devices {
            assert!(multi
                .uncovered
                .iter()
                .any(|r| r.device == Some(d) && r.lo == 0 && r.hi == domain(d)));
        }
    }

    #[test]
    fn first_device_failure_is_an_error() {
        let g = gen::erdos_renyi(40, 120, 7);
        let mut cfg = EngineConfig::default();
        cfg.grid.shared_mem_per_block = 64;
        cfg.recovery = crate::recover::RecoveryPolicy::disabled();
        // Device 0 fails before anything completes: nothing to salvage.
        match run_multi_device(&Engine::new(cfg), &g, &catalog::triangle(), 2) {
            Err(LaunchError::SharedMemory(_)) => {}
            other => panic!("expected shared-memory failure, got {other:?}"),
        }
    }

    #[test]
    fn bottleneck_time_is_max() {
        let g = gen::erdos_renyi(60, 200, 3);
        let engine = Engine::new(EngineConfig::default());
        let multi = run_multi_device(&engine, &g, &catalog::triangle(), 2).unwrap();
        let max_ms = multi
            .devices
            .iter()
            .map(|d| d.elapsed_ms())
            .fold(0.0, f64::max);
        assert_eq!(multi.elapsed_ms(), max_ms);
        // The aggregate must equal the true bottleneck: the max simulated
        // cycles over *all* devices (not merely exceed device 0's).
        let max_cycles = multi
            .devices
            .iter()
            .map(|d| d.simulated_cycles())
            .max()
            .unwrap();
        assert!(max_cycles > 0, "a triangle run does real work");
        assert_eq!(multi.simulated_cycles(), max_cycles);
    }
}
