//! Multi-device execution (Fig. 11).
//!
//! The paper runs on multiple GPUs "by duplicating the input graph and
//! dividing the outermost loop iterations across GPUs". We reproduce the
//! same partitioning: each simulated device receives a contiguous slice of
//! the level-0 vertex range and runs a full grid on it. Devices are
//! *simulated sequentially* (this host cannot run several grids truly in
//! parallel without oversubscription skewing results), and the reported
//! multi-device time is the maximum per-device time — exactly the quantity
//! that determines wall clock on real hardware.

use crate::engine::{Engine, MatchOutcome};
use stmatch_gpusim::LaunchError;
use stmatch_graph::Graph;
use stmatch_pattern::Pattern;

/// Aggregated result of a multi-device run.
#[derive(Clone, Debug)]
pub struct MultiDeviceOutcome {
    /// Per-device outcomes, in device order.
    pub devices: Vec<MatchOutcome>,
    /// Total matches across devices.
    pub count: u64,
}

impl MultiDeviceOutcome {
    /// The bottleneck device's wall time in ms (what a real multi-GPU run
    /// would report).
    pub fn elapsed_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.elapsed_ms())
            .fold(0.0, f64::max)
    }

    /// The bottleneck device's simulated cycles.
    pub fn simulated_cycles(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.simulated_cycles())
            .max()
            .unwrap_or(0)
    }
}

/// Runs `pattern` over `graph` partitioned across `devices` simulated
/// devices with `engine`'s configuration.
pub fn run_multi_device(
    engine: &Engine,
    graph: &Graph,
    pattern: &Pattern,
    devices: usize,
) -> Result<MultiDeviceOutcome, LaunchError> {
    assert!(devices >= 1);
    let plan = engine.compile(pattern);
    let mut outcomes = Vec::with_capacity(devices);
    for d in 0..devices {
        outcomes.push(engine.run_partition(graph, &plan, d, devices)?);
    }
    let count = outcomes.iter().map(|o| o.count).sum();
    Ok(MultiDeviceOutcome {
        devices: outcomes,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    #[test]
    fn multi_device_counts_match_single_device() {
        let g = gen::erdos_renyi(90, 360, 21);
        let engine = Engine::new(EngineConfig::default());
        let single = engine.run(&g, &catalog::paper_query(6)).unwrap().count;
        for devices in [1, 2, 4] {
            let multi = run_multi_device(&engine, &g, &catalog::paper_query(6), devices).unwrap();
            assert_eq!(multi.count, single, "devices={devices}");
            assert_eq!(multi.devices.len(), devices);
        }
    }

    #[test]
    fn bottleneck_time_is_max() {
        let g = gen::erdos_renyi(60, 200, 3);
        let engine = Engine::new(EngineConfig::default());
        let multi = run_multi_device(&engine, &g, &catalog::triangle(), 2).unwrap();
        let max_ms = multi
            .devices
            .iter()
            .map(|d| d.elapsed_ms())
            .fold(0.0, f64::max);
        assert_eq!(multi.elapsed_ms(), max_ms);
        assert!(multi.simulated_cycles() >= multi.devices[0].simulated_cycles().min(1));
    }
}
