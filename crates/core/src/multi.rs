//! Multi-device execution (Fig. 11).
//!
//! The paper runs on multiple GPUs "by duplicating the input graph and
//! dividing the outermost loop iterations across GPUs". We reproduce the
//! same partitioning: each simulated device receives a contiguous slice of
//! the level-0 vertex range and runs a full grid on it. Devices are
//! *simulated sequentially* (this host cannot run several grids truly in
//! parallel without oversubscription skewing results), and the reported
//! multi-device time is the maximum per-device time — exactly the quantity
//! that determines wall clock on real hardware.

use crate::engine::{Engine, MatchOutcome};
use stmatch_gpusim::LaunchError;
use stmatch_graph::Graph;
use stmatch_pattern::Pattern;

/// Aggregated result of a multi-device run.
#[derive(Clone, Debug)]
pub struct MultiDeviceOutcome {
    /// Per-device outcomes, in device order. May be shorter than the
    /// requested device count when the run aborted partway (see
    /// [`MultiDeviceOutcome::aborted`]).
    pub devices: Vec<MatchOutcome>,
    /// Total matches across the *completed* devices.
    pub count: u64,
    /// True when the run stopped before every device finished — either a
    /// device timed out or a later device's launch failed. The count is
    /// then a partial lower bound over `devices`.
    pub aborted: bool,
    /// The device whose launch failed, if any. Devices before it completed
    /// and their outcomes are retained; devices after it never ran.
    pub failed_device: Option<usize>,
    /// The launch error that stopped the run at [`failed_device`]
    /// (`failed_device`/`error` are always set together).
    ///
    /// [`failed_device`]: MultiDeviceOutcome::failed_device
    pub error: Option<LaunchError>,
}

impl MultiDeviceOutcome {
    /// The bottleneck device's wall time in ms (what a real multi-GPU run
    /// would report).
    pub fn elapsed_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.elapsed_ms())
            .fold(0.0, f64::max)
    }

    /// The bottleneck device's simulated cycles.
    pub fn simulated_cycles(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.simulated_cycles())
            .max()
            .unwrap_or(0)
    }
}

/// Runs `pattern` over `graph` partitioned across `devices` simulated
/// devices with `engine`'s configuration.
///
/// Fault tolerance across devices: if a device times out or a later
/// device's launch fails, the outcomes of the devices that already
/// completed are *returned* (with `aborted`/`failed_device` set) rather
/// than discarded — hours of completed partitions survive one bad device.
/// Only a failure on the very first device returns `Err`, since there is
/// nothing to salvage.
pub fn run_multi_device(
    engine: &Engine,
    graph: &Graph,
    pattern: &Pattern,
    devices: usize,
) -> Result<MultiDeviceOutcome, LaunchError> {
    assert!(devices >= 1);
    let plan = engine.compile(pattern);
    let mut outcomes = Vec::with_capacity(devices);
    let mut aborted = false;
    let mut failed_device = None;
    let mut error = None;
    for d in 0..devices {
        match engine.run_partition(graph, &plan, d, devices) {
            Ok(out) => {
                let timed_out = out.timed_out;
                outcomes.push(out);
                if timed_out {
                    // The wall-clock budget is for the whole run; don't
                    // start the remaining devices after blowing it.
                    aborted = true;
                    break;
                }
            }
            Err(err) if outcomes.is_empty() => return Err(err),
            Err(err) => {
                aborted = true;
                failed_device = Some(d);
                error = Some(err);
                break;
            }
        }
    }
    let count = outcomes.iter().map(|o| o.count).sum();
    Ok(MultiDeviceOutcome {
        devices: outcomes,
        count,
        aborted,
        failed_device,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    #[test]
    fn multi_device_counts_match_single_device() {
        let g = gen::erdos_renyi(90, 360, 21);
        let engine = Engine::new(EngineConfig::default());
        let single = engine.run(&g, &catalog::paper_query(6)).unwrap().count;
        for devices in [1, 2, 4] {
            let multi = run_multi_device(&engine, &g, &catalog::paper_query(6), devices).unwrap();
            assert_eq!(multi.count, single, "devices={devices}");
            assert_eq!(multi.devices.len(), devices);
        }
    }

    #[test]
    fn multi_device_clean_run_is_not_aborted() {
        let g = gen::erdos_renyi(40, 120, 7);
        let engine = Engine::new(EngineConfig::default());
        let multi = run_multi_device(&engine, &g, &catalog::triangle(), 2).unwrap();
        assert!(!multi.aborted);
        assert_eq!(multi.failed_device, None);
        assert!(multi.error.is_none());
    }

    #[test]
    fn timed_out_device_keeps_partial_outcomes() {
        use std::time::Duration;
        let g = gen::erdos_renyi(90, 360, 21);
        let engine = Engine::new(EngineConfig::default()).with_timeout(Duration::ZERO);
        // The first device blows the (zero) budget immediately; its partial
        // outcome must be returned instead of dropped, and the remaining
        // devices must not be started.
        let multi = run_multi_device(&engine, &g, &catalog::paper_query(6), 4).unwrap();
        assert!(multi.aborted);
        assert_eq!(multi.devices.len(), 1);
        assert!(multi.devices[0].timed_out);
        assert_eq!(multi.failed_device, None, "timeout is not a launch error");
    }

    #[test]
    fn first_device_failure_is_an_error() {
        let g = gen::erdos_renyi(40, 120, 7);
        let mut cfg = EngineConfig::default();
        cfg.grid.shared_mem_per_block = 64;
        cfg.recovery = crate::recover::RecoveryPolicy::disabled();
        // Device 0 fails before anything completes: nothing to salvage.
        match run_multi_device(&Engine::new(cfg), &g, &catalog::triangle(), 2) {
            Err(LaunchError::SharedMemory(_)) => {}
            other => panic!("expected shared-memory failure, got {other:?}"),
        }
    }

    #[test]
    fn bottleneck_time_is_max() {
        let g = gen::erdos_renyi(60, 200, 3);
        let engine = Engine::new(EngineConfig::default());
        let multi = run_multi_device(&engine, &g, &catalog::triangle(), 2).unwrap();
        let max_ms = multi
            .devices
            .iter()
            .map(|d| d.elapsed_ms())
            .fold(0.0, f64::max);
        assert_eq!(multi.elapsed_ms(), max_ms);
        assert!(multi.simulated_cycles() >= multi.devices[0].simulated_cycles().min(1));
    }
}
