//! Deterministic fault injection and fault reporting.
//!
//! A [`FaultPlan`] attaches to an [`Engine`](crate::Engine) launch and
//! perturbs chosen warps at precise points of their execution:
//!
//! * **panic** at the Nth claim — the warp dies mid-traversal and the
//!   engine's containment layer must requeue its unfinished work;
//! * **stall** at the Nth claim — the warp sleeps while holding a full
//!   steal mirror, forcing siblings onto the stealing paths;
//! * **poison** at the Nth mirror publish — the warp panics *inside* the
//!   mirror's critical section, leaving the lock poisoned exactly between
//!   publish and unlock (the scenario `steal.rs`'s poison-recovery
//!   contract is written for).
//!
//! Plans are deterministic: [`FaultPlan::seeded`] derives every fault from
//! a single `u64` through the testkit's SplitMix64, and the seed travels
//! with the plan as a `FAULT_SEED=0x…` reproduce line that failure reports
//! print verbatim. Injection sites are claim/publish *ordinals*, not
//! wall-clock times, so a replay under the same seed perturbs the same
//! logical points of the traversal.
//!
//! Injected panics carry a [`FaultPanic`] payload. While a plan with
//! panic-type faults is live, the engine installs a process-wide panic
//! hook shim (see [`silence_fault_panics`]) that swallows the default
//! "thread panicked" stderr noise for `FaultPanic` payloads only; real
//! panics still reach the previously installed hook.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use stmatch_testkit::rng::SplitMix64;

/// What a fault does to its warp when its trigger point is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic (via [`FaultPanic`]) at the warp's `at_claim`-th claim.
    Panic {
        /// 1-based claim ordinal that triggers the panic.
        at_claim: u64,
    },
    /// Sleep for `delay` at the warp's `at_claim`-th claim, with the steal
    /// mirror published and unlocked — stealable.
    Stall {
        /// 1-based claim ordinal that triggers the stall.
        at_claim: u64,
        /// How long the warp sleeps.
        delay: Duration,
    },
    /// Panic *inside* the mirror critical section at the warp's
    /// `at_publish`-th stealable-state publish, poisoning the mirror lock
    /// between publish and unlock.
    PoisonPublish {
        /// 1-based publish ordinal that triggers the poisoned panic.
        at_publish: u64,
    },
    /// Kill an entire shard of a sharded run: the shard driver expands this
    /// into a panic at claim `at_claim` for *every* warp of shard `shard`'s
    /// grid (see [`FaultPlan::for_shard`]). The warp-level hooks ignore it,
    /// so a plan carrying only shard kills is inert on single-grid runs.
    ShardKill {
        /// Shard index whose grid dies.
        shard: usize,
        /// 1-based claim ordinal at which every warp of the shard panics.
        at_claim: u64,
    },
}

/// One scheduled fault: a warp plus a trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Global warp id the fault targets.
    pub warp: usize,
    /// The fault trigger and effect.
    pub kind: FaultKind,
}

/// Panic payload of injected faults. Carrying a dedicated type (instead of
/// a string) lets the containment layer and the panic-hook shim recognize
/// injected deaths without parsing messages.
#[derive(Clone, Copy, Debug)]
pub struct FaultPanic {
    /// The warp that was killed.
    pub warp: usize,
    /// The claim/publish ordinal at which it died.
    pub at: u64,
    /// True when the panic fired inside the mirror critical section.
    pub poisoned_publish: bool,
}

impl FaultPanic {
    /// Human-readable rendering used in [`WarpDeath`] records.
    pub fn describe(&self) -> String {
        if self.poisoned_publish {
            format!(
                "injected fault: poisoned mirror publish #{} of warp {}",
                self.at, self.warp
            )
        } else {
            format!(
                "injected fault: panic at claim #{} of warp {}",
                self.at, self.warp
            )
        }
    }
}

/// A deterministic schedule of warp faults for one launch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    /// Reproduce line (`FAULT_SEED=0x…`) for seeded plans.
    reproduce: Option<String>,
}

impl FaultPlan {
    /// An empty plan; add faults with the builder methods.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a panic for `warp` at its `at_claim`-th claim (1-based).
    pub fn panic_at(mut self, warp: usize, at_claim: u64) -> FaultPlan {
        assert!(at_claim >= 1, "claim ordinals are 1-based");
        self.faults.push(Fault {
            warp,
            kind: FaultKind::Panic { at_claim },
        });
        self
    }

    /// Schedules a stall for `warp` at its `at_claim`-th claim (1-based).
    pub fn stall_at(mut self, warp: usize, at_claim: u64, delay: Duration) -> FaultPlan {
        assert!(at_claim >= 1, "claim ordinals are 1-based");
        self.faults.push(Fault {
            warp,
            kind: FaultKind::Stall { at_claim, delay },
        });
        self
    }

    /// Schedules a poisoned-publish panic for `warp` at its
    /// `at_publish`-th mirror publish (1-based).
    pub fn poison_publish_at(mut self, warp: usize, at_publish: u64) -> FaultPlan {
        assert!(at_publish >= 1, "publish ordinals are 1-based");
        self.faults.push(Fault {
            warp,
            kind: FaultKind::PoisonPublish { at_publish },
        });
        self
    }

    /// Schedules the death of whole shard `shard` at claim ordinal
    /// `at_claim` (1-based): every warp of that shard's grid panics there.
    /// Only the sharded driver interprets this (the `warp` field of the
    /// stored fault is unused); single-grid runs ignore it.
    pub fn shard_kill_at(mut self, shard: usize, at_claim: u64) -> FaultPlan {
        assert!(at_claim >= 1, "claim ordinals are 1-based");
        self.faults.push(Fault {
            warp: 0,
            kind: FaultKind::ShardKill { shard, at_claim },
        });
        self
    }

    /// Derives a shard-kill plan from a single seed: `kills` distinct
    /// shards of a `shards`-shard run die, each at a claim ordinal in the
    /// first handful of claims (so survivors inherit real unfinished
    /// work). Deterministic per `(seed, shards, kills)`; the reproduce
    /// line `FAULT_SEED=0x…` travels in the resulting [`FaultReport`] and
    /// the sharded outcome.
    pub fn seeded_shard_kill(seed: u64, shards: usize, kills: usize) -> FaultPlan {
        assert!(shards >= 1);
        assert!(kills <= shards, "cannot kill more shards than the run has");
        let mut rng = SplitMix64::new(seed);
        let mut victims: Vec<usize> = (0..shards).collect();
        for i in 0..kills {
            let j = i + (rng.next_u64() as usize) % (shards - i);
            victims.swap(i, j);
        }
        let mut plan = FaultPlan::new();
        for &s in victims.iter().take(kills) {
            plan = plan.shard_kill_at(s, 1 + rng.next_u64() % 8);
        }
        plan.reproduce = Some(format!("FAULT_SEED=0x{seed:x}"));
        plan
    }

    /// Restricts this plan to shard `shard` of a sharded run whose grids
    /// have `total_warps` warps each: warp-level faults apply to every
    /// shard's grid verbatim (each grid numbers its warps from 0), and a
    /// matching [`FaultKind::ShardKill`] expands into a panic for every
    /// warp of the shard. The reproduce line travels with each sub-plan.
    pub fn for_shard(&self, shard: usize, total_warps: usize) -> FaultPlan {
        let mut out = FaultPlan {
            faults: Vec::new(),
            reproduce: self.reproduce.clone(),
        };
        for f in &self.faults {
            match f.kind {
                FaultKind::ShardKill { shard: s, at_claim } if s == shard => {
                    for w in 0..total_warps {
                        out.faults.push(Fault {
                            warp: w,
                            kind: FaultKind::Panic { at_claim },
                        });
                    }
                }
                FaultKind::ShardKill { .. } => {}
                _ => out.faults.push(*f),
            }
        }
        out
    }

    /// A deterministic reproduce line for a sharded run: the seeded
    /// `FAULT_SEED=0x…` line when present, otherwise a literal rendering
    /// of the plan's shard kills (`SHARD_KILLS=shard@claim,…` — a
    /// hand-built plan is its own reproduction recipe). `None` when the
    /// plan neither was seeded nor kills shards.
    pub fn shard_reproduce_line(&self) -> Option<String> {
        if let Some(r) = &self.reproduce {
            return Some(r.clone());
        }
        let kills: Vec<String> = self
            .faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::ShardKill { shard, at_claim } => Some(format!("{shard}@{at_claim}")),
                _ => None,
            })
            .collect();
        (!kills.is_empty()).then(|| format!("SHARD_KILLS={}", kills.join(",")))
    }

    /// True when the plan contains shard-kill faults (meaningful only on
    /// the sharded route).
    pub fn kills_shards(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::ShardKill { .. }))
    }

    /// Derives a plan from a single seed: `panics` warp deaths and
    /// `stalls` stalls, over distinct warps of a `total_warps`-warp grid.
    /// Trigger ordinals land in the first few dozen claims so the faults
    /// fire even on small fixture workloads. The same `(seed, total_warps,
    /// panics, stalls)` always yields the same plan; the reproduce line
    /// `FAULT_SEED=0x…` travels in the resulting [`FaultReport`].
    pub fn seeded(seed: u64, total_warps: usize, panics: usize, stalls: usize) -> FaultPlan {
        assert!(total_warps >= 1);
        assert!(
            panics + stalls <= total_warps,
            "cannot fault more warps than the grid has"
        );
        let mut rng = SplitMix64::new(seed);
        // Distinct victims via a seeded partial Fisher-Yates draw.
        let mut warps: Vec<usize> = (0..total_warps).collect();
        for i in 0..(panics + stalls) {
            let j = i + (rng.next_u64() as usize) % (total_warps - i);
            warps.swap(i, j);
        }
        let mut plan = FaultPlan::new();
        for &w in warps.iter().take(panics) {
            plan = plan.panic_at(w, 1 + rng.next_u64() % 48);
        }
        for &w in warps.iter().skip(panics).take(stalls) {
            let at = 1 + rng.next_u64() % 48;
            let ms = 5 + rng.next_u64() % 20;
            plan = plan.stall_at(w, at, Duration::from_millis(ms));
        }
        plan.reproduce = Some(format!("FAULT_SEED=0x{seed:x}"));
        plan
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True when the plan can kill warps (panics or poisoned publishes) —
    /// the engine only installs the quiet panic-hook shim for such plans.
    pub fn injects_panics(&self) -> bool {
        self.faults
            .iter()
            .any(|f| !matches!(f.kind, FaultKind::Stall { .. }))
    }

    /// The `FAULT_SEED=0x…` reproduce line of seeded plans.
    pub fn reproduce_line(&self) -> Option<&str> {
        self.reproduce.as_deref()
    }

    /// Claim-path injection hook: called by the kernel once per claim with
    /// the warp's 1-based claim ordinal. Stalls sleep here; panic faults
    /// unwind with a [`FaultPanic`] payload. Called *before* an iteration
    /// index is taken, so a killed warp loses no claimed-but-unprocessed
    /// index.
    ///
    /// simt-check interaction: this hook fires *outside* every board lock,
    /// so the injected unwind holds nothing. The dying warp's vector clock
    /// is still published at the grid's join hook (which runs after
    /// `catch_unwind`), so the recovery path's reads of the dead warp's
    /// mirror are happens-before-ordered and the race checker stays silent
    /// across every fault-injection test — by construction, not by
    /// suppression.
    pub fn at_claim(&self, warp: usize, nth: u64) {
        for f in &self.faults {
            if f.warp != warp {
                continue;
            }
            match f.kind {
                FaultKind::Panic { at_claim } if at_claim == nth => {
                    std::panic::panic_any(FaultPanic {
                        warp,
                        at: nth,
                        poisoned_publish: false,
                    });
                }
                FaultKind::Stall { at_claim, delay } if at_claim == nth => {
                    std::thread::sleep(delay);
                }
                _ => {}
            }
        }
    }

    /// Publish-path injection hook: called inside the mirror critical
    /// section with the warp's 1-based publish ordinal; a matching poison
    /// fault panics while the lock is held.
    ///
    /// simt-check interaction: the panic unwinds through the tracked
    /// mirror guard, whose release token drops *before* the mutex unlocks
    /// (declaration order in `simt_check::Tracked`). The checker therefore
    /// observes a well-formed release even for a poisoned lock, and the
    /// containment path's subsequent `Mirror::lock` (poison-recovering)
    /// inherits the dead warp's clock through the lock clock — a poisoned
    /// publish is indistinguishable from a clean release to the race
    /// detector, which is exactly the guarantee the recovery protocol
    /// needs.
    pub fn at_publish(&self, warp: usize, nth: u64) {
        for f in &self.faults {
            if f.warp == warp {
                if let FaultKind::PoisonPublish { at_publish } = f.kind {
                    if at_publish == nth {
                        std::panic::panic_any(FaultPanic {
                            warp,
                            at: nth,
                            poisoned_publish: true,
                        });
                    }
                }
            }
        }
    }
}

/// Record of one contained warp death.
#[derive(Clone, Debug)]
pub struct WarpDeath {
    /// Global warp id that died.
    pub warp: usize,
    /// Rendered panic payload ([`FaultPanic::describe`] for injected
    /// faults, the panic message otherwise).
    pub message: String,
    /// Work items (steal payloads) reclaimed from the dead warp's mirror
    /// and in-flight state back onto the board.
    pub requeued: usize,
}

/// What the fault-tolerant execution layer observed during a run; attached
/// to [`MatchOutcome`](crate::MatchOutcome) whenever anything non-clean
/// happened (injected or real).
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// Contained warp deaths, in order of containment.
    pub deaths: Vec<WarpDeath>,
    /// Total work items requeued from dead warps.
    pub requeued: usize,
    /// Salvage relaunches performed to drain leftover requeued work (see
    /// [`RecoveryPolicy`](crate::RecoveryPolicy)).
    pub salvage_launches: u32,
    /// Work items abandoned after the salvage budget ran out; when
    /// nonzero the count is a lower bound.
    pub unrecovered: usize,
    /// Panics that escaped the engine's containment layer (caught only by
    /// the grid backstop); when nonzero the count is a lower bound.
    pub escaped_panics: usize,
    /// Reproduce line (`FAULT_SEED=0x…`) when a seeded plan was active.
    pub reproduce: Option<String>,
}

impl FaultReport {
    /// True when nothing fault-related happened (the engine then attaches
    /// no report at all).
    pub fn is_clean(&self) -> bool {
        self.deaths.is_empty()
            && self.requeued == 0
            && self.salvage_launches == 0
            && self.unrecovered == 0
            && self.escaped_panics == 0
    }

    /// True when every death was contained and every requeued work item
    /// was completed — the count is exact despite the deaths.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered == 0 && self.escaped_panics == 0
    }
}

/// Renders a caught panic payload, recognizing [`FaultPanic`].
pub(crate) fn describe_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(fp) = payload.downcast_ref::<FaultPanic>() {
        fp.describe()
    } else {
        stmatch_gpusim::describe_panic(payload)
    }
}

/// True when the payload is an injected [`FaultPanic`].
fn is_fault_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<FaultPanic>().is_some()
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Refcount of live [`SilenceGuard`]s plus the displaced original hook.
static SILENCE: Mutex<Option<PanicHook>> = Mutex::new(None);
static SILENCE_REFS: AtomicUsize = AtomicUsize::new(0);

/// Suppresses the default panic-hook output for [`FaultPanic`] payloads
/// process-wide until the returned guard drops. Reentrant (refcounted) and
/// transparent to real panics: non-fault payloads are forwarded to the
/// hook that was installed before the first guard. The engine wraps every
/// panic-injecting launch in one of these so deliberate warp deaths do not
/// spray "thread panicked" noise over test and benchmark output.
pub fn silence_fault_panics() -> SilenceGuard {
    let mut prev = SILENCE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // SeqCst: the refcount transition 0->1 / 1->0 decides who swaps the
    // process-wide hook; both sides also hold the SILENCE mutex, so SeqCst
    // is belt-and-braces ordering the count against the hook swap.
    if SILENCE_REFS.fetch_add(1, Ordering::SeqCst) == 0 {
        *prev = Some(std::panic::take_hook());
        std::panic::set_hook(Box::new(|info| {
            if is_fault_payload(info.payload()) {
                return; // injected fault: containment will report it
            }
            let prev = SILENCE
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(hook) = prev.as_ref() {
                hook(info);
            }
        }));
    }
    SilenceGuard(())
}

/// RAII guard of [`silence_fault_panics`]; restores the previous hook when
/// the last live guard drops.
pub struct SilenceGuard(());

impl Drop for SilenceGuard {
    fn drop(&mut self) {
        // SeqCst: the refcount serializes hook install/restore across
        // threads; the last decrement must totally order before the
        // hook swap below so no guard elsewhere still counts itself.
        if SILENCE_REFS.fetch_sub(1, Ordering::SeqCst) == 1 {
            let hook = SILENCE
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            if let Some(hook) = hook {
                std::panic::set_hook(hook);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_distinct_per_seed() {
        let a = FaultPlan::seeded(0xfeed, 8, 2, 1);
        let b = FaultPlan::seeded(0xfeed, 8, 2, 1);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 3);
        assert_eq!(a.reproduce_line(), Some("FAULT_SEED=0xfeed"));
        let c = FaultPlan::seeded(0xbeef, 8, 2, 1);
        assert_ne!(a.faults(), c.faults());
        // Victims are distinct warps.
        let mut warps: Vec<usize> = a.faults().iter().map(|f| f.warp).collect();
        warps.sort_unstable();
        warps.dedup();
        assert_eq!(warps.len(), 3);
    }

    #[test]
    fn shard_kill_expands_per_shard_and_is_inert_at_warp_level() {
        let plan = FaultPlan::seeded_shard_kill(0xabc, 4, 2);
        assert_eq!(plan, FaultPlan::seeded_shard_kill(0xabc, 4, 2));
        assert!(plan.kills_shards());
        assert_eq!(plan.reproduce_line(), Some("FAULT_SEED=0xabc"));
        // Distinct victim shards.
        let mut victims: Vec<usize> = plan
            .faults()
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::ShardKill { shard, .. } => Some(shard),
                _ => None,
            })
            .collect();
        assert_eq!(victims.len(), 2);
        victims.dedup();
        assert_eq!(victims.len(), 2);
        // Exactly the killed shards' sub-plans carry panics, one per warp.
        let killed: Vec<usize> = (0..4)
            .filter(|&s| !plan.for_shard(s, 6).is_empty())
            .collect();
        assert_eq!(killed.len(), 2);
        let sub = plan.for_shard(killed[0], 6);
        assert_eq!(sub.faults().len(), 6);
        assert!(sub.injects_panics());
        assert_eq!(sub.reproduce_line(), Some("FAULT_SEED=0xabc"));
        // The warp-level hooks never fire on the raw plan.
        plan.at_claim(0, 1);
        plan.at_publish(0, 1);
        // Warp-level faults replicate to every shard's sub-plan.
        let mixed = FaultPlan::new().panic_at(1, 3).shard_kill_at(0, 2);
        assert_eq!(mixed.for_shard(1, 4).faults().len(), 1);
        assert_eq!(mixed.for_shard(0, 4).faults().len(), 5);
    }

    #[test]
    fn injects_panics_classification() {
        assert!(!FaultPlan::new().injects_panics());
        assert!(!FaultPlan::new()
            .stall_at(0, 1, Duration::from_millis(1))
            .injects_panics());
        assert!(FaultPlan::new().panic_at(0, 1).injects_panics());
        assert!(FaultPlan::new().poison_publish_at(0, 1).injects_panics());
    }

    #[test]
    fn at_claim_panics_with_fault_payload_at_the_exact_ordinal() {
        let plan = FaultPlan::new().panic_at(3, 2);
        plan.at_claim(3, 1); // not yet
        plan.at_claim(2, 2); // wrong warp
        let _quiet = silence_fault_panics();
        let err = std::panic::catch_unwind(|| plan.at_claim(3, 2)).unwrap_err();
        let fp = err
            .downcast_ref::<FaultPanic>()
            .expect("FaultPanic payload");
        assert_eq!((fp.warp, fp.at, fp.poisoned_publish), (3, 2, false));
        assert!(describe_payload(err.as_ref()).contains("claim #2"));
    }

    #[test]
    fn silence_guard_restores_previous_hook_and_forwards_real_panics() {
        {
            let _g1 = silence_fault_panics();
            let _g2 = silence_fault_panics(); // reentrant
            let msg = std::panic::catch_unwind(|| panic!("real panic"))
                .map_err(|p| describe_payload(p.as_ref()))
                .unwrap_err();
            assert_eq!(msg, "real panic");
        }
        // SeqCst: pairs with the guard Drop's SeqCst decrement.
        assert_eq!(SILENCE_REFS.load(Ordering::SeqCst), 0);
    }
}
