//! # stmatch-core — the STMatch engine
//!
//! A Rust reproduction of *STMatch: Accelerating Graph Pattern Matching on
//! GPU with Stack-Based Loop Optimizations* (SC 2022), running on the
//! software GPU execution model of [`stmatch_gpusim`].
//!
//! The engine implements the paper's full design:
//!
//! * a **stack-based matching kernel** (Fig. 3): the whole match runs in a
//!   single grid launch, with each warp simulating the recursive
//!   backtracking procedure on an explicit call stack — no per-level
//!   synchronization, no materialized partial subgraphs;
//! * **two-level work stealing** (§V): pull-based stealing inside a
//!   threadblock, push-based stealing across threadblocks through the
//!   `is_idle` bitmap and `global_stks` slots;
//! * **loop unrolling** (§VI): up to `UNROLL` iterations' candidate-set
//!   computations combined into shared warp-wide waves (Fig. 8),
//!   recovering SIMT lane utilization on sparse graphs;
//! * **loop-invariant code motion** (§VII): executed from the compact
//!   dependence encoding compiled by [`stmatch_pattern::MatchPlan`],
//!   including merged multi-label intermediate sets.
//!
//! On top of the paper's design the engine is **fault tolerant**: warp
//! panics are contained per warp and the dead warp's unfinished work is
//! requeued for survivors ([`fault`]), launch-planning failures walk a
//! count-invariant degradation ladder ([`recover`]), and a deterministic
//! fault-injection plan ([`FaultPlan`]) makes all of it testable.
//!
//! ## Quick start
//!
//! ```
//! use stmatch_core::{Engine, EngineConfig};
//! use stmatch_graph::gen;
//! use stmatch_pattern::catalog;
//!
//! let graph = gen::erdos_renyi(100, 400, 42);
//! let engine = Engine::new(EngineConfig::default());
//! let triangles = engine.run(&graph, &catalog::triangle()).unwrap();
//! println!("{} triangles", triangles.count);
//! ```

pub mod arena;
pub mod compile;
pub mod config;
pub mod delta;
pub mod engine;
pub mod fault;
pub mod kernel;
pub mod multi;
pub mod pool;
pub mod recover;
pub mod service;
pub mod setops;
pub mod shard;
pub mod steal;

pub use compile::{CompiledPlan, Tier};
pub use config::{
    CompileTuning, DeltaTuning, EngineConfig, HubBitmapTuning, ShardTuning, VerifyTuning,
};
pub use delta::{DeltaPlans, MatchDelta};
pub use engine::{Engine, Enumeration, MatchOutcome};
pub use fault::{FaultKind, FaultPlan, FaultReport, WarpDeath};
pub use multi::{run_multi_device, MultiDeviceOutcome, UncoveredRange};
pub use pool::{ArenaPool, WarmSlot};
pub use recover::{DowngradeStep, RecoveryPolicy, ShardStep};
pub use service::{
    CacheStats, MatchService, Priority, QueryOptions, ServiceConfig, ServiceError, Ticket,
    WatchEvent, WatchId,
};
pub use shard::{ShardPlan, ShardedOutcome};
pub use steal::RailStats;
pub use stmatch_gpusim::LaunchError;
