//! Warm execution resources for the resident match service: a persistent
//! warp-thread pool plus recyclable stack arenas.
//!
//! A cold [`Engine::run`](crate::Engine::run) pays two fixed costs per
//! query: spawning one OS thread per warp (the sim's warp model) and
//! allocating the fixed `NUM_SETS × UNROLL × MAX_DEGREE` stack slabs. A
//! [`WarmSlot`] amortizes both across queries — the [`WarmGrid`] keeps its
//! warp threads parked between launches, and the [`ArenaPool`] recycles
//! each warp's [`StackArena`] (reset, not reallocated) for the next query
//! whose geometry matches.
//!
//! ## Concurrency contract
//!
//! The arena pool is shared by all warps of one slot's grid, so checkout /
//! give-back go through a [`tracked_lock`](simt_check::tracked_lock) of
//! class `ServiceArenaPool` (rank 6): *below* every engine lock in the
//! declared hierarchy, because a warp returns its arena only after the
//! kernel tail released the board and collector locks, and checks one out
//! before acquiring any. The tracked lock also gives the race checker the
//! happens-before edge between successive owners of a recycled arena —
//! the arena keeps its shadow-cell identity across [`StackArena::reset`],
//! so without that edge every recycled write would (correctly!) look like
//! a cross-thread race.

use crate::arena::StackArena;
use std::sync::Mutex;
use stmatch_gpusim::{GridConfig, LaunchError, WarmGrid};

/// A bounded free-list of recyclable [`StackArena`]s.
///
/// `checkout` hands an arena to a warp (or `None` when the list is dry —
/// the warp then builds a fresh one); `give_back` returns it after the
/// launch. The pool is capped at the grid's warp count: arenas beyond the
/// cap (possible after a downgrade shrank the grid) are simply dropped.
pub struct ArenaPool {
    /// Distinct lock index for the hierarchy checker, so concurrent
    /// services' pools never alias in the lock-order graph.
    check_index: usize,
    pool: Mutex<Vec<StackArena>>,
    cap: usize,
}

impl ArenaPool {
    /// Creates an empty pool holding at most `cap` arenas.
    pub fn new(cap: usize) -> ArenaPool {
        ArenaPool {
            check_index: simt_check::next_object_id() as usize,
            pool: Mutex::new(Vec::new()),
            cap,
        }
    }

    /// Takes a recycled arena, or `None` when the pool is empty.
    pub fn checkout(&self) -> Option<StackArena> {
        simt_check::tracked_lock(
            &self.pool,
            simt_check::LockClass::ServiceArenaPool,
            self.check_index,
        )
        .pop()
    }

    /// Returns an arena for reuse; arenas beyond the cap are dropped.
    pub fn give_back(&self, arena: StackArena) {
        let mut pool = simt_check::tracked_lock(
            &self.pool,
            simt_check::LockClass::ServiceArenaPool,
            self.check_index,
        );
        if pool.len() < self.cap {
            pool.push(arena);
        }
    }

    /// Number of arenas currently parked in the pool.
    pub fn parked(&self) -> usize {
        simt_check::tracked_lock(
            &self.pool,
            simt_check::LockClass::ServiceArenaPool,
            self.check_index,
        )
        .len()
    }
}

/// One warm execution slot: a parked warp-thread pool plus its arena
/// free-list. A service worker owns one slot and serves its batch of
/// queries on it back-to-back.
pub struct WarmSlot {
    grid: WarmGrid,
    arenas: ArenaPool,
}

impl WarmSlot {
    /// Spawns the warp threads for `config` and an empty arena pool
    /// capped at the grid's warp count.
    pub fn new(config: GridConfig) -> Result<WarmSlot, LaunchError> {
        let grid = WarmGrid::new(config)?;
        let arenas = ArenaPool::new(config.total_warps());
        Ok(WarmSlot { grid, arenas })
    }

    /// The geometry this slot's threads were spawned for. The engine only
    /// routes a launch here when its (possibly downgraded) config matches
    /// exactly; otherwise it falls back to a cold grid.
    pub fn grid_config(&self) -> GridConfig {
        self.grid.config()
    }

    /// The parked warp-thread pool.
    pub fn grid(&self) -> &WarmGrid {
        &self.grid
    }

    /// The recyclable arena free-list.
    pub fn arenas(&self) -> &ArenaPool {
        &self.arenas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_gpusim::SharedBudget;

    #[test]
    fn arena_pool_caps_and_recycles() {
        let pool = ArenaPool::new(2);
        assert!(pool.checkout().is_none());
        pool.give_back(StackArena::new(2, 2, 8));
        pool.give_back(StackArena::new(2, 2, 8));
        pool.give_back(StackArena::new(2, 2, 8)); // beyond cap: dropped
        assert_eq!(pool.parked(), 2);
        let a = pool.checkout().unwrap();
        assert_eq!(pool.parked(), 1);
        pool.give_back(a);
        assert_eq!(pool.parked(), 2);
    }

    #[test]
    fn warm_slot_reports_config() {
        let cfg = GridConfig {
            num_blocks: 1,
            warps_per_block: 2,
            shared_mem_per_block: SharedBudget::RTX3090_BYTES,
        };
        let slot = WarmSlot::new(cfg).unwrap();
        assert_eq!(slot.grid_config(), cfg);
        assert_eq!(slot.arenas().parked(), 0);
    }
}
