//! The flat warp-stack arena — the paper's fixed
//! `C[NUM_SETS][UNROLL][MAX_DEGREE]` global-memory slabs (§VIII-A, Fig. 7).
//!
//! One contiguous `Vec<VertexId>` holds every candidate-set slot of one
//! warp's stack: slot `(set, u)` owns the `cap`-element slab starting at
//! `(set * unroll + u) * cap`, and a `Csize`-style length array records how
//! much of each slab is live. This is exactly the geometry the engine
//! already reports as `MatchOutcome::stack_bytes`
//! (`NUM_SETS × UNROLL × MAX_DEGREE × 4` bytes per warp), so the
//! accounting and the allocation now agree — and, unlike the previous
//! `Vec<Vec<VertexId>>` storage, the steady-state claim path never touches
//! the heap: writes land in the pre-sized slab through [`ArenaWriter`].
//!
//! **Overflow policy (graceful fallback).** A candidate list longer than
//! `cap` spills to a per-slot heap vector, mirroring the paper's
//! CPU-memory spill for vertices with degree > `MAX_DEGREE`. On the first
//! overflowing push the slab prefix is copied into the spill vector so the
//! list stays contiguous; `len > cap` marks the slot as spilled. Spilling
//! allocates (it is the escape hatch, not the hot path) and the
//! zero-allocation guarantee applies only while candidate lists fit their
//! slabs — size `EngineConfig::max_degree_slab` accordingly.
//!
//! Set-operation *outputs* never alias their inputs: a set's operands are
//! sets with strictly smaller ids (dependencies precede dependents in the
//! plan), so [`StackArena::split_for_write`] hands out a read view of the
//! slots below the written set and a write sink over the written set's
//! slots from one `split_at_mut`, with no copying and no locks.

use crate::setops::SetSink;
use stmatch_graph::VertexId;

/// One warp's candidate-set storage: a flat slab plus per-slot lengths.
pub struct StackArena {
    /// The contiguous slab; slot `(set, u)` owns
    /// `data[(set * unroll + u) * cap ..][..cap]`.
    data: Vec<VertexId>,
    /// `Csize`: live length per slot. `len > cap` means the slot spilled.
    len: Vec<u32>,
    /// Heap-side overflow per slot; holds the *entire* list when spilled.
    spill: Vec<Vec<VertexId>>,
    cap: usize,
    unroll: usize,
    /// Slab-overflow migrations since construction (observability: the
    /// engine surfaces the total as `MatchOutcome::spill_events`, and the
    /// degradation ladder's slab-shrink rung leans on this path).
    events: u64,
    /// Process-unique arena identity for the race checker's shadow cells
    /// (`arena[id].set[s]`). Arenas are warp-private by design; the
    /// instrumentation *proves* that — any cross-thread access without a
    /// happens-before edge (e.g. a future shared-slab refactor gone wrong)
    /// is reported, not assumed away.
    check_id: u32,
}

/// Resolves slot `i`'s live list given the split-out arena parts.
#[inline]
fn view<'s>(
    data: &'s [VertexId],
    len: &[u32],
    spill: &'s [Vec<VertexId>],
    cap: usize,
    i: usize,
) -> &'s [VertexId] {
    let n = len[i] as usize;
    if n <= cap {
        &data[i * cap..i * cap + n]
    } else {
        &spill[i]
    }
}

impl StackArena {
    /// Allocates the slab for `num_sets × unroll` slots of `cap` vertices.
    /// This is the *only* allocation of the arena's lifetime (absent
    /// spills); it happens once per warp per launch.
    pub fn new(num_sets: usize, unroll: usize, cap: usize) -> StackArena {
        let slots = num_sets.max(1) * unroll;
        StackArena {
            data: vec![0; slots * cap],
            len: vec![0; slots],
            spill: vec![Vec::new(); slots],
            cap,
            unroll,
            events: 0,
            check_id: simt_check::next_object_id(),
        }
    }

    /// Number of slab-overflow migrations (first overflowing push per
    /// rewrite) since construction.
    #[inline]
    pub fn spill_events(&self) -> u64 {
        self.events
    }

    #[inline]
    fn idx(&self, set: usize, u: usize) -> usize {
        debug_assert!(u < self.unroll);
        set * self.unroll + u
    }

    /// The live candidate list of slot `(set, u)`.
    #[inline]
    #[track_caller]
    pub fn slot(&self, set: usize, u: usize) -> &[VertexId] {
        simt_check::note_read(simt_check::Cell::arena(self.check_id, set));
        view(
            &self.data,
            &self.len,
            &self.spill,
            self.cap,
            self.idx(set, u),
        )
    }

    /// True if slot `(set, u)` outgrew its slab and lives on the heap.
    #[inline]
    pub fn spilled(&self, set: usize, u: usize) -> bool {
        self.len[self.idx(set, u)] as usize > self.cap
    }

    /// Splits the arena at `set`: a read view over every slot of sets
    /// `< set` (the only sets a plan allows as operands) and a write sink
    /// over slots `(set, 0..m)`.
    #[track_caller]
    pub fn split_for_write(&mut self, set: usize, m: usize) -> (ArenaRead<'_>, ArenaWriter<'_>) {
        debug_assert!(m >= 1 && m <= self.unroll);
        // One shadow write event covers the whole rewrite of `set`'s slots
        // (the writer half streams into them exclusively until dropped).
        simt_check::note_write(simt_check::Cell::arena(self.check_id, set));
        let at = set * self.unroll;
        let (rd, wd) = self.data.split_at_mut(at * self.cap);
        let (rl, wl) = self.len.split_at_mut(at);
        let (rs, ws) = self.spill.split_at_mut(at);
        (
            ArenaRead {
                data: rd,
                len: rl,
                spill: rs,
                cap: self.cap,
                unroll: self.unroll,
            },
            ArenaWriter {
                data: &mut wd[..m * self.cap],
                len: &mut wl[..m],
                spill: &mut ws[..m],
                cap: self.cap,
                events: &mut self.events,
            },
        )
    }
}

/// Read view over the sets below a [`StackArena::split_for_write`] point.
pub struct ArenaRead<'a> {
    data: &'a [VertexId],
    len: &'a [u32],
    spill: &'a [Vec<VertexId>],
    cap: usize,
    unroll: usize,
}

impl ArenaRead<'_> {
    /// The live candidate list of slot `(set, u)`; `set` must be below the
    /// split point.
    #[inline]
    pub fn slot(&self, set: usize, u: usize) -> &[VertexId] {
        debug_assert!(u < self.unroll);
        view(
            self.data,
            self.len,
            self.spill,
            self.cap,
            set * self.unroll + u,
        )
    }
}

/// Write sink over the `m` unroll slots of one set: implements
/// [`SetSink`] so the combined set operations stream survivors straight
/// into the slab (or its spill) with zero steady-state allocations.
pub struct ArenaWriter<'a> {
    data: &'a mut [VertexId],
    len: &'a mut [u32],
    spill: &'a mut [Vec<VertexId>],
    cap: usize,
    events: &'a mut u64,
}

impl SetSink for ArenaWriter<'_> {
    #[inline]
    fn begin(&mut self, slot: usize, _capacity_hint: usize) {
        self.len[slot] = 0;
        if !self.spill[slot].is_empty() {
            self.spill[slot].clear();
        }
    }

    #[inline]
    fn push(&mut self, slot: usize, value: VertexId) {
        let n = self.len[slot] as usize;
        if n < self.cap {
            self.data[slot * self.cap + n] = value;
        } else {
            if n == self.cap {
                // First overflow: migrate the slab prefix so the spilled
                // list stays one contiguous sorted slice.
                let base = slot * self.cap;
                let head = &self.data[base..base + self.cap];
                self.spill[slot].extend_from_slice(head);
                *self.events += 1;
            }
            self.spill[slot].push(value);
        }
        self.len[slot] = (n + 1) as u32;
    }

    #[inline]
    fn extend(&mut self, slot: usize, values: &[VertexId]) {
        let n = self.len[slot] as usize;
        let end = n + values.len();
        if end <= self.cap {
            let base = slot * self.cap;
            self.data[base + n..base + end].copy_from_slice(values);
            self.len[slot] = end as u32;
        } else {
            // Crosses the slab boundary: per-value pushes handle the
            // spill migration.
            for &v in values {
                self.push(slot, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(w: &mut ArenaWriter<'_>, slot: usize, vals: &[VertexId]) {
        w.begin(slot, vals.len());
        for &v in vals {
            w.push(slot, v);
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut a = StackArena::new(3, 2, 4);
        {
            let (_, mut w) = a.split_for_write(1, 2);
            fill(&mut w, 0, &[5, 6, 7]);
            fill(&mut w, 1, &[9]);
        }
        assert_eq!(a.slot(1, 0), &[5, 6, 7]);
        assert_eq!(a.slot(1, 1), &[9]);
        assert_eq!(a.slot(0, 0), &[] as &[VertexId]);
        assert_eq!(a.slot(2, 1), &[] as &[VertexId]);
    }

    #[test]
    fn rewrite_resets_previous_contents() {
        let mut a = StackArena::new(1, 1, 4);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[1, 2, 3, 4]);
        }
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[8]);
        }
        assert_eq!(a.slot(0, 0), &[8]);
    }

    #[test]
    fn read_view_sees_lower_sets_during_write() {
        let mut a = StackArena::new(2, 1, 4);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[2, 4, 6]);
        }
        let (r, mut w) = a.split_for_write(1, 1);
        assert_eq!(r.slot(0, 0), &[2, 4, 6]);
        w.begin(0, 2);
        w.push(0, r.slot(0, 0)[1]);
        assert_eq!(a.slot(1, 0), &[4]);
    }

    #[test]
    fn overflow_spills_transparently_and_recovers() {
        let mut a = StackArena::new(1, 1, 3);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[1, 2, 3, 4, 5, 6]);
        }
        assert!(a.spilled(0, 0));
        assert_eq!(a.slot(0, 0), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.spill_events(), 1);
        // Shrinking back under the cap returns to the slab.
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[7, 8]);
        }
        assert!(!a.spilled(0, 0));
        assert_eq!(a.slot(0, 0), &[7, 8]);
    }

    #[test]
    fn zero_sets_still_constructs() {
        let a = StackArena::new(0, 4, 8);
        assert_eq!(a.slot(0, 0), &[] as &[VertexId]);
    }
}
