//! The flat warp-stack arena — the paper's fixed
//! `C[NUM_SETS][UNROLL][MAX_DEGREE]` global-memory slabs (§VIII-A, Fig. 7).
//!
//! One contiguous `Vec<VertexId>` holds every candidate-set slot of one
//! warp's stack: slot `(set, u)` owns the `cap`-element slab starting at
//! `(set * unroll + u) * cap`, and a `Csize`-style length array records how
//! much of each slab is live. This is exactly the geometry the engine
//! already reports as `MatchOutcome::stack_bytes`
//! (`NUM_SETS × UNROLL × MAX_DEGREE × 4` bytes per warp), so the
//! accounting and the allocation now agree — and, unlike the previous
//! `Vec<Vec<VertexId>>` storage, the steady-state claim path never touches
//! the heap: writes land in the pre-sized slab through [`ArenaWriter`].
//!
//! **Overflow policy (graceful fallback).** A candidate list longer than
//! `cap` spills to a per-slot heap vector, mirroring the paper's
//! CPU-memory spill for vertices with degree > `MAX_DEGREE`. On the first
//! overflowing push the slab prefix is copied into the spill vector so the
//! list stays contiguous; `len > cap` marks the slot as spilled. Spilling
//! allocates (it is the escape hatch, not the hot path) and the
//! zero-allocation guarantee applies only while candidate lists fit their
//! slabs — size `EngineConfig::max_degree_slab` accordingly.
//!
//! Set-operation *outputs* never alias their inputs: a set's operands are
//! sets with strictly smaller ids (dependencies precede dependents in the
//! plan), so [`StackArena::split_for_write`] hands out a read view of the
//! slots below the written set and a write sink over the written set's
//! slots from one `split_at_mut`, with no copying and no locks.

use crate::setops::SetSink;
use stmatch_graph::VertexId;

/// One warp's candidate-set storage: a flat slab plus per-slot lengths.
pub struct StackArena {
    /// The contiguous slab; slot `(set, u)` owns
    /// `data[slot_off[set * unroll + u] ..][..slot_cap[set * unroll + u]]`.
    data: Vec<VertexId>,
    /// `Csize`: live length per slot. `len > slot_cap` means the slot
    /// spilled.
    len: Vec<u32>,
    /// Heap-side overflow per slot; holds the *entire* list when spilled.
    spill: Vec<Vec<VertexId>>,
    /// Start offset of each slot's slab in `data` (uniform arenas:
    /// `i * cap`; shaped arenas: prefix sums of the per-set capacities).
    slot_off: Vec<usize>,
    /// Capacity of each slot's slab. All `unroll` slots of one set share a
    /// capacity, so set-op writers keep a scalar cap.
    slot_cap: Vec<usize>,
    /// The uniform (largest) slab capacity the arena was shaped from.
    cap: usize,
    unroll: usize,
    /// Candidate cells currently live across every slot (slab + spill
    /// elements), and the high-water mark since construction/reset. The
    /// peak is folded in at [`ArenaWriter`] drop — once per set rewrite,
    /// never per push — and surfaces as `MatchOutcome::peak_slab_cells`,
    /// the observable the static `ResourceCert` bound is audited against.
    live_cells: u64,
    peak_cells: u64,
    /// Slab-overflow migrations since construction (observability: the
    /// engine surfaces the total as `MatchOutcome::spill_events`, and the
    /// degradation ladder's slab-shrink rung leans on this path).
    events: u64,
    /// Word-aligned ping/pong scratch rows for fused bitmap op chains
    /// (`setops::apply_chain_bits_into`). Grown to the graph's row stride
    /// on first use (warmup), then reused: steady-state lends never
    /// allocate.
    bits_ping: Vec<u64>,
    bits_pong: Vec<u64>,
    /// Per-slot result bitmap rows (`words_stride` words each), filled by
    /// the bitmap set-op paths through [`SetSink::put_word`] /
    /// [`SetSink::seal_bits`] so dependent sets can run in the bitmap
    /// domain without re-deriving rows from elements. Empty until
    /// [`StackArena::enable_set_bits`] sizes it (once, at kernel
    /// construction): element-only configs pay nothing.
    words: Vec<u64>,
    /// Whether slot `i`'s row in `words` denotes exactly its element list.
    /// Cleared on every rewrite ([`SetSink::begin`]); set only by
    /// [`SetSink::seal_bits`].
    words_valid: Vec<bool>,
    /// Row stride of `words` in u64s; 0 while set-bits storage is off.
    words_stride: usize,
    /// Process-unique arena identity for the race checker's shadow cells
    /// (`arena[id].set[s]`). Arenas are warp-private by design; the
    /// instrumentation *proves* that — any cross-thread access without a
    /// happens-before edge (e.g. a future shared-slab refactor gone wrong)
    /// is reported, not assumed away.
    check_id: u32,
}

/// Resolves slot `i`'s live list given the split-out arena parts.
#[inline]
fn view<'s>(
    data: &'s [VertexId],
    len: &[u32],
    spill: &'s [Vec<VertexId>],
    off: &[usize],
    cap: &[usize],
    i: usize,
) -> &'s [VertexId] {
    let n = len[i] as usize;
    if n <= cap[i] {
        &data[off[i]..off[i] + n]
    } else {
        &spill[i]
    }
}

/// Per-slot offsets for `num_sets × unroll` slots under per-set capacities
/// (`set_caps[set]` cells for each of the set's `unroll` slots), plus the
/// total cell count.
fn shape_offsets(set_caps: &[usize], unroll: usize) -> (Vec<usize>, Vec<usize>, usize) {
    let slots = set_caps.len().max(1) * unroll;
    let mut off = Vec::with_capacity(slots);
    let mut cap = Vec::with_capacity(slots);
    let mut at = 0usize;
    for set in 0..set_caps.len().max(1) {
        let c = set_caps.get(set).copied().unwrap_or(0);
        for _ in 0..unroll {
            off.push(at);
            cap.push(c);
            at += c;
        }
    }
    (off, cap, at)
}

impl StackArena {
    /// Allocates the slab for `num_sets × unroll` slots of `cap` vertices.
    /// This is the *only* allocation of the arena's lifetime (absent
    /// spills); it happens once per warp per launch.
    pub fn new(num_sets: usize, unroll: usize, cap: usize) -> StackArena {
        Self::new_shaped(&vec![cap; num_sets.max(1)], unroll, cap)
    }

    /// Allocates a *shaped* arena: set `s`'s `unroll` slots each get
    /// `set_caps[s]` cells instead of the uniform `cap`. This is the
    /// consumer of the verifier's footprint hint — certified per-set bounds
    /// shrink the slab below `NUM_SETS × UNROLL × MAX_DEGREE` without
    /// changing spill behavior (a sound bound never overflows early).
    /// `uniform_cap` records the capacity the shape was derived from.
    pub fn new_shaped(set_caps: &[usize], unroll: usize, uniform_cap: usize) -> StackArena {
        let (slot_off, slot_cap, cells) = shape_offsets(set_caps, unroll);
        let slots = slot_cap.len();
        StackArena {
            data: vec![0; cells],
            len: vec![0; slots],
            spill: vec![Vec::new(); slots],
            slot_off,
            slot_cap,
            cap: uniform_cap,
            unroll,
            live_cells: 0,
            peak_cells: 0,
            events: 0,
            bits_ping: Vec::new(),
            bits_pong: Vec::new(),
            words: Vec::new(),
            words_valid: vec![false; slots],
            words_stride: 0,
            check_id: simt_check::next_object_id(),
        }
    }

    /// Re-shapes a recycled arena for a new kernel's geometry, reusing the
    /// existing heap blocks wherever they are large enough (a pool of
    /// resident-service arenas cycles through queries of many shapes;
    /// `clear` + `resize` only reallocates when the new geometry is
    /// strictly larger than anything the arena has served before). The
    /// arena's `check_id` is deliberately kept: for the race checker the
    /// recycled arena *is* the same object, and the pool's tracked
    /// checkout/give-back lock provides the happens-before edge between
    /// its successive owners. Spill-event and set-bits state reset to the
    /// post-construction state so a recycled kernel's metrics are
    /// indistinguishable from a cold one's.
    pub fn reset(&mut self, num_sets: usize, unroll: usize, cap: usize) {
        self.reset_shaped(&vec![cap; num_sets.max(1)], unroll, cap);
    }

    /// [`StackArena::reset`] with per-set capacities (see
    /// [`StackArena::new_shaped`]).
    pub fn reset_shaped(&mut self, set_caps: &[usize], unroll: usize, uniform_cap: usize) {
        let (slot_off, slot_cap, cells) = shape_offsets(set_caps, unroll);
        let slots = slot_cap.len();
        self.data.clear();
        self.data.resize(cells, 0);
        self.len.clear();
        self.len.resize(slots, 0);
        self.spill.truncate(slots);
        for s in &mut self.spill {
            s.clear();
        }
        self.spill.resize_with(slots, Vec::new);
        self.slot_off = slot_off;
        self.slot_cap = slot_cap;
        self.cap = uniform_cap;
        self.unroll = unroll;
        self.live_cells = 0;
        self.peak_cells = 0;
        self.events = 0;
        self.words.clear();
        self.words_stride = 0;
        self.words_valid.clear();
        self.words_valid.resize(slots, false);
    }

    /// Sizes the per-slot result bitmap storage for rows of `stride` u64
    /// words. Called once at kernel construction when hub-bitmap routing
    /// is on; like [`StackArena::new`] this is a construction-time
    /// allocation, so the steady-state claim path stays allocation-free.
    pub fn enable_set_bits(&mut self, stride: usize) {
        self.words = vec![0; self.words_valid.len() * stride];
        self.words_stride = stride;
    }

    /// The sealed result bitmap row of slot `(set, u)`, if its last
    /// rewrite went through a bitmap path with an unfiltered extraction.
    #[inline]
    pub fn set_bits(&self, set: usize, u: usize) -> Option<&[u64]> {
        let i = self.idx(set, u);
        (self.words_stride > 0 && self.words_valid[i])
            .then(|| &self.words[i * self.words_stride..(i + 1) * self.words_stride])
    }

    /// Number of slab-overflow migrations (first overflowing push per
    /// rewrite) since construction.
    #[inline]
    pub fn spill_events(&self) -> u64 {
        self.events
    }

    /// High-water mark of candidate cells live across every slot (slab and
    /// spill elements) since construction/reset — the runtime observable
    /// the static resource certificate's `peak_cells` bound is audited
    /// against.
    #[inline]
    pub fn peak_slab_cells(&self) -> u64 {
        self.peak_cells
    }

    /// Total cells the arena's flat slab allocates (the footprint the
    /// shaped constructor shrinks).
    #[inline]
    pub fn slab_cells(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn idx(&self, set: usize, u: usize) -> usize {
        debug_assert!(u < self.unroll);
        set * self.unroll + u
    }

    /// The live candidate list of slot `(set, u)`.
    #[inline]
    #[track_caller]
    pub fn slot(&self, set: usize, u: usize) -> &[VertexId] {
        simt_check::note_read(simt_check::Cell::arena(self.check_id, set));
        view(
            &self.data,
            &self.len,
            &self.spill,
            &self.slot_off,
            &self.slot_cap,
            self.idx(set, u),
        )
    }

    /// True if slot `(set, u)` outgrew its slab and lives on the heap.
    #[inline]
    pub fn spilled(&self, set: usize, u: usize) -> bool {
        let i = self.idx(set, u);
        self.len[i] as usize > self.slot_cap[i]
    }

    /// Splits the arena at `set`: a read view over every slot of sets
    /// `< set` (the only sets a plan allows as operands) and a write sink
    /// over slots `(set, 0..m)`.
    #[track_caller]
    pub fn split_for_write(&mut self, set: usize, m: usize) -> (ArenaRead<'_>, ArenaWriter<'_>) {
        let (r, w, _, _) = self.split_for_write_bits(set, m, 0);
        (r, w)
    }

    /// [`StackArena::split_for_write`] plus the word-aligned ping/pong
    /// bitmap scratch (`stride` words each) that fused bitmap chains
    /// ping/pong intermediate rows through
    /// (`setops::apply_chain_bits_into`). The scratch is grown on first
    /// use and reused afterwards, so steady-state calls never allocate;
    /// all four views come from disjoint field borrows and coexist.
    #[track_caller]
    pub fn split_for_write_bits(
        &mut self,
        set: usize,
        m: usize,
        stride: usize,
    ) -> (ArenaRead<'_>, ArenaWriter<'_>, &mut [u64], &mut [u64]) {
        debug_assert!(m >= 1 && m <= self.unroll);
        if self.bits_ping.len() < stride {
            self.bits_ping.resize(stride, 0);
            self.bits_pong.resize(stride, 0);
        }
        // One shadow write event covers the whole rewrite of `set`'s slots
        // (the writer half streams into them exclusively until dropped).
        simt_check::note_write(simt_check::Cell::arena(self.check_id, set));
        let at = set * self.unroll;
        let set_cap = self.slot_cap[at];
        let ws_stride = self.words_stride;
        let (rd, wd) = self.data.split_at_mut(self.slot_off[at]);
        let (rl, wl) = self.len.split_at_mut(at);
        let (rs, ws) = self.spill.split_at_mut(at);
        let (rw, ww) = self.words.split_at_mut(at * ws_stride);
        let (rv, wv) = self.words_valid.split_at_mut(at);
        (
            ArenaRead {
                data: rd,
                len: rl,
                spill: rs,
                off: &self.slot_off[..at],
                cap: &self.slot_cap[..at],
                unroll: self.unroll,
                words: rw,
                words_valid: rv,
                words_stride: ws_stride,
            },
            ArenaWriter {
                data: &mut wd[..m * set_cap],
                len: &mut wl[..m],
                spill: &mut ws[..m],
                cap: set_cap,
                live: &mut self.live_cells,
                peak: &mut self.peak_cells,
                events: &mut self.events,
                words: &mut ww[..m * ws_stride],
                words_valid: &mut wv[..m],
                words_stride: ws_stride,
            },
            &mut self.bits_ping[..stride],
            &mut self.bits_pong[..stride],
        )
    }
}

/// Read view over the sets below a [`StackArena::split_for_write`] point.
pub struct ArenaRead<'a> {
    data: &'a [VertexId],
    len: &'a [u32],
    spill: &'a [Vec<VertexId>],
    off: &'a [usize],
    cap: &'a [usize],
    unroll: usize,
    words: &'a [u64],
    words_valid: &'a [bool],
    words_stride: usize,
}

impl ArenaRead<'_> {
    /// The live candidate list of slot `(set, u)`; `set` must be below the
    /// split point.
    #[inline]
    pub fn slot(&self, set: usize, u: usize) -> &[VertexId] {
        debug_assert!(u < self.unroll);
        view(
            self.data,
            self.len,
            self.spill,
            self.off,
            self.cap,
            set * self.unroll + u,
        )
    }

    /// The sealed result bitmap row of slot `(set, u)`, if its last
    /// rewrite went through a bitmap path with an unfiltered extraction
    /// — `Some` means the row denotes exactly [`ArenaRead::slot`]'s list,
    /// so dependents may intersect against it word-parallel.
    #[inline]
    pub fn slot_bits(&self, set: usize, u: usize) -> Option<&[u64]> {
        debug_assert!(u < self.unroll);
        let i = set * self.unroll + u;
        (self.words_stride > 0 && self.words_valid[i])
            .then(|| &self.words[i * self.words_stride..(i + 1) * self.words_stride])
    }
}

/// Write sink over the `m` unroll slots of one set: implements
/// [`SetSink`] so the combined set operations stream survivors straight
/// into the slab (or its spill) with zero steady-state allocations.
pub struct ArenaWriter<'a> {
    data: &'a mut [VertexId],
    len: &'a mut [u32],
    spill: &'a mut [Vec<VertexId>],
    cap: usize,
    live: &'a mut u64,
    peak: &'a mut u64,
    events: &'a mut u64,
    words: &'a mut [u64],
    words_valid: &'a mut [bool],
    words_stride: usize,
}

impl Drop for ArenaWriter<'_> {
    fn drop(&mut self) {
        // Live cells only grow while a writer streams; folding the
        // high-water mark in here keeps the accounting off the per-push
        // path (one max per set rewrite).
        *self.peak = (*self.peak).max(*self.live);
    }
}

impl SetSink for ArenaWriter<'_> {
    #[inline]
    fn begin(&mut self, slot: usize, _capacity_hint: usize) {
        *self.live -= self.len[slot] as u64;
        self.len[slot] = 0;
        // Any rewrite — bitmap path or not — obsoletes the slot's stored
        // row until a fresh seal lands.
        self.words_valid[slot] = false;
        if !self.spill[slot].is_empty() {
            self.spill[slot].clear();
        }
    }

    #[inline]
    fn push(&mut self, slot: usize, value: VertexId) {
        let n = self.len[slot] as usize;
        if n < self.cap {
            self.data[slot * self.cap + n] = value;
        } else {
            if n == self.cap {
                // First overflow: migrate the slab prefix so the spilled
                // list stays one contiguous sorted slice.
                let base = slot * self.cap;
                let head = &self.data[base..base + self.cap];
                self.spill[slot].extend_from_slice(head);
                *self.events += 1;
            }
            self.spill[slot].push(value);
        }
        self.len[slot] = (n + 1) as u32;
        *self.live += 1;
    }

    #[inline]
    fn extend(&mut self, slot: usize, values: &[VertexId]) {
        let n = self.len[slot] as usize;
        let end = n + values.len();
        if end <= self.cap {
            let base = slot * self.cap;
            self.data[base + n..base + end].copy_from_slice(values);
            self.len[slot] = end as u32;
            *self.live += values.len() as u64;
        } else {
            // Crosses the slab boundary: per-value pushes handle the
            // spill migration.
            for &v in values {
                self.push(slot, v);
            }
        }
    }

    #[inline]
    fn put_word(&mut self, slot: usize, word_index: usize, word: u64) {
        if self.words_stride > 0 {
            debug_assert!(word_index < self.words_stride);
            self.words[slot * self.words_stride + word_index] = word;
        }
    }

    #[inline]
    fn seal_bits(&mut self, slot: usize) {
        if self.words_stride > 0 {
            self.words_valid[slot] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(w: &mut ArenaWriter<'_>, slot: usize, vals: &[VertexId]) {
        w.begin(slot, vals.len());
        for &v in vals {
            w.push(slot, v);
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut a = StackArena::new(3, 2, 4);
        {
            let (_, mut w) = a.split_for_write(1, 2);
            fill(&mut w, 0, &[5, 6, 7]);
            fill(&mut w, 1, &[9]);
        }
        assert_eq!(a.slot(1, 0), &[5, 6, 7]);
        assert_eq!(a.slot(1, 1), &[9]);
        assert_eq!(a.slot(0, 0), &[] as &[VertexId]);
        assert_eq!(a.slot(2, 1), &[] as &[VertexId]);
    }

    #[test]
    fn rewrite_resets_previous_contents() {
        let mut a = StackArena::new(1, 1, 4);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[1, 2, 3, 4]);
        }
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[8]);
        }
        assert_eq!(a.slot(0, 0), &[8]);
    }

    #[test]
    fn read_view_sees_lower_sets_during_write() {
        let mut a = StackArena::new(2, 1, 4);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[2, 4, 6]);
        }
        let (r, mut w) = a.split_for_write(1, 1);
        assert_eq!(r.slot(0, 0), &[2, 4, 6]);
        w.begin(0, 2);
        w.push(0, r.slot(0, 0)[1]);
        drop((r, w)); // the writer's Drop folds the peak; end the borrow
        assert_eq!(a.slot(1, 0), &[4]);
    }

    #[test]
    fn overflow_spills_transparently_and_recovers() {
        let mut a = StackArena::new(1, 1, 3);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[1, 2, 3, 4, 5, 6]);
        }
        assert!(a.spilled(0, 0));
        assert_eq!(a.slot(0, 0), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.spill_events(), 1);
        // Shrinking back under the cap returns to the slab.
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[7, 8]);
        }
        assert!(!a.spilled(0, 0));
        assert_eq!(a.slot(0, 0), &[7, 8]);
    }

    #[test]
    fn bits_scratch_is_lent_alongside_the_split() {
        let mut a = StackArena::new(2, 1, 4);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[1, 2]);
        }
        {
            let (r, mut w, ping, pong) = a.split_for_write_bits(1, 1, 3);
            assert_eq!(ping.len(), 3);
            assert_eq!(pong.len(), 3);
            ping[2] = 0xdead;
            pong[0] = 0xbeef;
            // Slots and scratch coexist: the read view still resolves.
            assert_eq!(r.slot(0, 0), &[1, 2]);
            fill(&mut w, 0, &[9]);
        }
        assert_eq!(a.slot(1, 0), &[9]);
        // Scratch persists (it is reusable state, not per-call).
        let (_, _, ping, _) = a.split_for_write_bits(1, 1, 3);
        assert_eq!(ping[2], 0xdead);
    }

    #[test]
    fn bits_scratch_grows_monotonically_and_never_shrinks() {
        let mut a = StackArena::new(1, 1, 2);
        {
            let (_, _, ping, pong) = a.split_for_write_bits(0, 1, 5);
            assert_eq!((ping.len(), pong.len()), (5, 5));
        }
        // A smaller stride lends a prefix of the existing buffer.
        {
            let (_, _, ping, _) = a.split_for_write_bits(0, 1, 2);
            assert_eq!(ping.len(), 2);
        }
        assert_eq!(a.bits_ping.len(), 5);
        assert_eq!(a.bits_pong.len(), 5);
    }

    #[test]
    fn sealed_set_bits_survive_until_the_next_rewrite() {
        let mut a = StackArena::new(2, 1, 4);
        assert_eq!(a.set_bits(0, 0), None); // storage off by default
        a.enable_set_bits(2);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[1, 65]);
            w.put_word(0, 0, 0b10);
            w.put_word(0, 1, 0b10);
            w.seal_bits(0);
        }
        assert_eq!(a.set_bits(0, 0), Some(&[0b10u64, 0b10][..]));
        // The read view of a higher split sees the sealed row.
        {
            let (r, _) = a.split_for_write(1, 1);
            assert_eq!(r.slot_bits(0, 0), Some(&[0b10u64, 0b10][..]));
        }
        // An unsealed rewrite (classic element path) invalidates it.
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[3]);
        }
        assert_eq!(a.set_bits(0, 0), None);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut a = StackArena::new(2, 2, 3);
        a.enable_set_bits(2);
        {
            let (_, mut w) = a.split_for_write(1, 2);
            fill(&mut w, 0, &[1, 2, 3, 4, 5]); // force a spill
            w.put_word(0, 0, 7);
            w.seal_bits(0);
        }
        assert_eq!(a.spill_events(), 1);
        let id_before = a.check_id;
        a.reset(3, 1, 4);
        assert_eq!(a.check_id, id_before, "identity survives recycling");
        assert_eq!(a.spill_events(), 0);
        assert_eq!(a.set_bits(0, 0), None, "set-bits storage back off");
        for set in 0..3 {
            assert_eq!(a.slot(set, 0), &[] as &[VertexId]);
            assert!(!a.spilled(set, 0));
        }
        // The recycled arena serves the new geometry exactly like a fresh
        // one would.
        {
            let (_, mut w) = a.split_for_write(2, 1);
            fill(&mut w, 0, &[4, 8]);
        }
        assert_eq!(a.slot(2, 0), &[4, 8]);
    }

    #[test]
    fn zero_sets_still_constructs() {
        let a = StackArena::new(0, 4, 8);
        assert_eq!(a.slot(0, 0), &[] as &[VertexId]);
    }

    #[test]
    fn peak_cells_track_the_high_water_mark() {
        let mut a = StackArena::new(2, 1, 4);
        assert_eq!(a.peak_slab_cells(), 0);
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[1, 2, 3]);
        }
        {
            let (_, mut w) = a.split_for_write(1, 1);
            fill(&mut w, 0, &[4, 5]);
        }
        assert_eq!(a.peak_slab_cells(), 5);
        // Rewriting set 0 smaller lowers live occupancy but not the peak.
        {
            let (_, mut w) = a.split_for_write(0, 1);
            fill(&mut w, 0, &[9]);
        }
        assert_eq!(a.peak_slab_cells(), 5);
        // Spilled elements count too: they are live candidate cells.
        {
            let (_, mut w) = a.split_for_write(1, 1);
            fill(&mut w, 0, &[1, 2, 3, 4, 5, 6]);
        }
        assert_eq!(a.peak_slab_cells(), 7);
        a.reset(2, 1, 4);
        assert_eq!(a.peak_slab_cells(), 0);
    }

    #[test]
    fn shaped_arena_packs_per_set_capacities() {
        let mut a = StackArena::new_shaped(&[2, 5], 2, 5);
        assert_eq!(a.slab_cells(), 2 * 2 + 5 * 2);
        {
            let (_, mut w) = a.split_for_write(0, 2);
            fill(&mut w, 0, &[1, 2]);
            fill(&mut w, 1, &[3]);
        }
        {
            let (r, mut w) = a.split_for_write(1, 2);
            assert_eq!(r.slot(0, 0), &[1, 2]);
            assert_eq!(r.slot(0, 1), &[3]);
            fill(&mut w, 0, &[7, 8, 9, 10, 11]);
        }
        assert_eq!(a.slot(0, 0), &[1, 2]);
        assert_eq!(a.slot(1, 0), &[7, 8, 9, 10, 11]);
        assert!(!a.spilled(1, 0), "within its shaped cap");
        // Overflowing the *shaped* cap spills at that cap, not the uniform.
        {
            let (_, mut w) = a.split_for_write(0, 2);
            fill(&mut w, 0, &[1, 2, 3]);
        }
        assert!(a.spilled(0, 0));
        assert_eq!(a.slot(0, 0), &[1, 2, 3]);
        assert_eq!(a.spill_events(), 1);
        // A shaped reset recycles into a uniform geometry and back.
        a.reset_shaped(&[4, 1, 3], 1, 4);
        assert_eq!(a.slab_cells(), 8);
        assert_eq!(a.spill_events(), 0);
        {
            let (_, mut w) = a.split_for_write(2, 1);
            fill(&mut w, 0, &[6, 7, 8]);
        }
        assert_eq!(a.slot(2, 0), &[6, 7, 8]);
        assert!(!a.spilled(2, 0));
    }
}
