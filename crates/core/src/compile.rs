//! Compiled-plan execution tiers (PR 7, DESIGN.md §4h).
//!
//! A [`CompiledPlan`] pairs a plan's lowered bytecode
//! ([`stmatch_pattern::PlanBytecode`]) with the *profile state* that drives
//! tier selection:
//!
//! * **Tier 0 — bytecode.** The kernel executes the flat instruction stream
//!   in a tight dispatch loop instead of re-interpreting [`MatchPlan`]
//!   structure per claim.
//! * **Tier 1 — specialized.** For the dominant stream shapes (the clique
//!   cascade and path plans, [`SpecShape`]), monomorphized kernel bodies
//!   const-generic over `(UNROLL, NUM_SETS)` replace the dispatch loop.
//!   A plan reaches tier 1 through its profile counter: once the claim
//!   loops that share this `CompiledPlan` have recorded
//!   `CompileTuning::tier_up_after` claims, the plan is promoted. Because
//!   the service's plan cache holds the `CompiledPlan` next to the
//!   canonical-form entry, warm resident queries start straight at the
//!   promoted tier on cache hit.
//!
//! Promotion policy: profile-driven tier-up applies to **cascades only** —
//! they are the compute-bound shape where monomorphized unroll bounds pay.
//! Path plans are memory-bound block copies whose dispatch overhead is
//! already negligible, so they are specialized only when profiling is
//! explicitly skipped (`tier_up_after == 0`). This is why, under default
//! tuning, q8-on-clique reaches tier 1 while q1 stays on tier 0 no matter
//! how many claims it records.
//!
//! Concurrency: the claim loop's fast paths touch only relaxed atomics
//! (claim counter batches in, tier snapshot out). Actual tier *transitions*
//! — and every read of the transition counters — happen under a
//! [`simt_check`]-tracked lock of class [`LockClass::PlanTierUp`], with the
//! shared state registered as the `tier-state[p]` shadow cell, so the race
//! and lock-order analyzers see every cross-thread hand-off (service
//! workers tiering up while other workers hit the cache).

use crate::config::CompileTuning;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use stmatch_pattern::bytecode::{BytecodeError, PlanBytecode, SpecShape};
use stmatch_pattern::MatchPlan;

/// The execution tier a compiled plan is currently served at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Flat-bytecode dispatch loop.
    Bytecode,
    /// Monomorphized shape-specialized kernel body.
    Specialized,
}

impl Tier {
    /// Stable numeric form for outcome reporting (`0` / `1`).
    #[inline]
    pub fn index(self) -> u8 {
        match self {
            Tier::Bytecode => 0,
            Tier::Specialized => 1,
        }
    }
}

/// A lowered plan plus shared tier/profile state. One instance is shared by
/// every warp of a run — and, through the service plan cache, by every run
/// of the same canonical query.
#[derive(Debug)]
pub struct CompiledPlan {
    bytecode: PlanBytecode,
    tuning: CompileTuning,
    /// Total claims recorded by kernels executing this plan (relaxed;
    /// batched in from per-warp counters, never read on the fast path).
    claims: AtomicU64,
    /// Current tier (0/1). Relaxed-loaded per level entry by the dispatch
    /// loop; stored only inside [`CompiledPlan::tier_up`] under the lock.
    tier: AtomicU8,
    /// Number of tier transitions performed (0 or 1 today; a counter so
    /// cache stats can sum over entries and future tiers can extend it).
    tier_ups: AtomicU64,
    /// Per-set slab-capacity bounds from a *clean* static verification
    /// (`stmatch_plan_verify::Verification::footprint_caps`). Write-once:
    /// the first verifier to certify the plan publishes its hint; later
    /// launches of the same cached plan reuse it. Consulted only when
    /// `VerifyTuning::apply_hints` is on — otherwise arenas keep the
    /// uniform geometry and runs stay bit-identical.
    footprint: OnceLock<Vec<u32>>,
    /// Guards tier transitions and stat reads (class `PlanTierUp`).
    tier_lock: Mutex<()>,
    /// simt-check object id: names this plan's `tier-state` shadow cell and
    /// its lock instance.
    check_id: u32,
}

impl CompiledPlan {
    /// Lowers `plan` and attaches fresh profile state. The stream is
    /// verified during lowering; a malformed encoding surfaces here as a
    /// named [`BytecodeError`] instead of a debug assertion mid-claim.
    pub fn lower(plan: &MatchPlan, tuning: CompileTuning) -> Result<CompiledPlan, BytecodeError> {
        Ok(Self::from_bytecode(PlanBytecode::lower(plan)?, tuning))
    }

    /// Wraps an already-lowered stream. Public so the kill-test suite can
    /// run deliberately corrupted (but well-formed) bytecode through the
    /// full engine; production paths go through [`CompiledPlan::lower`].
    pub fn from_bytecode(bytecode: PlanBytecode, tuning: CompileTuning) -> CompiledPlan {
        let pre_specialize = tuning.tier_up_after == 0
            && tuning.specialize
            && bytecode.shape() != SpecShape::General;
        CompiledPlan {
            bytecode,
            tuning,
            claims: AtomicU64::new(0),
            tier: AtomicU8::new(u8::from(pre_specialize)),
            tier_ups: AtomicU64::new(0),
            footprint: OnceLock::new(),
            tier_lock: Mutex::new(()),
            check_id: simt_check::next_object_id(),
        }
    }

    /// The lowered instruction stream.
    #[inline]
    pub fn bytecode(&self) -> &PlanBytecode {
        &self.bytecode
    }

    /// Detected specialization shape.
    #[inline]
    pub fn shape(&self) -> SpecShape {
        self.bytecode.shape()
    }

    /// The tuning this plan was compiled under.
    #[inline]
    pub fn tuning(&self) -> CompileTuning {
        self.tuning
    }

    /// Publishes per-set arena-capacity bounds from a clean verification.
    /// Idempotent: the first hint wins (all verifiers of one canonical
    /// plan compute the same bounds from the same graph profile, so a
    /// lost race loses nothing).
    pub fn set_footprint_hint(&self, caps: Vec<u32>) {
        let _ = self.footprint.set(caps);
    }

    /// The published capacity hint, if a clean verification attached one.
    #[inline]
    pub fn footprint_hint(&self) -> Option<&[u32]> {
        self.footprint.get().map(Vec::as_slice)
    }

    /// Current tier, as seen by the dispatch loop: a relaxed snapshot.
    /// Reading a stale tier 0 is harmless (one more bytecode-dispatched
    /// level); both tiers are metric-identical by construction.
    #[inline]
    pub fn tier(&self) -> Tier {
        // Relaxed: a stale tier is self-correcting (next level entry
        // re-reads) and both tiers compute identical results, so no
        // ordering with other memory is needed on this fast path.
        if self.tier.load(Ordering::Relaxed) == 0 {
            Tier::Bytecode
        } else {
            Tier::Specialized
        }
    }

    /// Records `n` claims from a kernel's local batch and runs the tier-up
    /// check. Called at commit boundaries and every 4096th claim — never
    /// per claim — so the shared counter stays off the fast path.
    pub fn note_claims(&self, n: u64) {
        if n == 0 {
            return;
        }
        // Relaxed: the claim counter is a monotone tally with no data
        // guarded behind it — the only consumer is the threshold test
        // below, and a late-observed crossing merely delays promotion by
        // one batch. The tier peek piggybacks on the same reasoning.
        let total = self.claims.fetch_add(n, Ordering::Relaxed) + n;
        if self.tier.load(Ordering::Relaxed) == 0
            && self.auto_promotes()
            && total >= self.tuning.tier_up_after
        {
            self.tier_up();
        }
    }

    /// Whether the profile counter may promote this plan: cascades only
    /// (see module docs for the policy rationale).
    fn auto_promotes(&self) -> bool {
        self.tuning.specialize && self.shape() == SpecShape::Cascade
    }

    /// Locked tier transition. Cold: runs at most once per plan per
    /// promotion, racing only with concurrent promoters and stat readers.
    #[cold]
    fn tier_up(&self) {
        let _g = simt_check::tracked_lock(
            &self.tier_lock,
            simt_check::LockClass::PlanTierUp,
            self.check_id as usize,
        );
        simt_check::note_write(simt_check::Cell::tier_state(self.check_id));
        // Double-checked under the lock: several claim loops can observe
        // the threshold crossing at once; only the first transitions.
        // Relaxed suffices for all three accesses because the tier_lock
        // mutex already orders them against every other locked section,
        // and lock-free readers tolerate staleness (see `tier`).
        if self.tier.load(Ordering::Relaxed) == 0 {
            self.tier.store(1, Ordering::Relaxed);
            self.tier_ups.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Locked snapshot of `(current tier, tier-ups, claims)` for stats and
    /// routing assertions. Takes the same lock as [`CompiledPlan::tier_up`]
    /// so the shadow store sees the read ordered against transitions.
    pub fn profile(&self) -> (Tier, u64, u64) {
        let _g = simt_check::tracked_lock(
            &self.tier_lock,
            simt_check::LockClass::PlanTierUp,
            self.check_id as usize,
        );
        simt_check::note_read(simt_check::Cell::tier_state(self.check_id));
        // Relaxed: the tier_lock held above orders these reads against
        // every transition; the claims tally is advisory (concurrent
        // claim loops may still be batching).
        (
            self.tier(),
            self.tier_ups.load(Ordering::Relaxed),
            self.claims.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_pattern::{catalog, MatchPlan, PlanOptions};

    fn compiled(q: usize, tuning: CompileTuning) -> CompiledPlan {
        let plan = MatchPlan::compile(&catalog::paper_query(q), PlanOptions::default());
        CompiledPlan::lower(&plan, tuning).expect("paper queries lower")
    }

    #[test]
    fn cascade_tiers_up_at_threshold_exactly_once() {
        let c = compiled(
            8,
            CompileTuning {
                enabled: true,
                tier_up_after: 100,
                specialize: true,
            },
        );
        assert_eq!(c.tier(), Tier::Bytecode);
        c.note_claims(99);
        assert_eq!(c.tier(), Tier::Bytecode);
        c.note_claims(1);
        assert_eq!(c.tier(), Tier::Specialized);
        c.note_claims(5000);
        let (tier, ups, claims) = c.profile();
        assert_eq!(tier, Tier::Specialized);
        assert_eq!(ups, 1, "promotion happens once");
        assert_eq!(claims, 5100);
    }

    #[test]
    fn paths_never_auto_promote_but_pre_specialize() {
        let profiled = compiled(
            1,
            CompileTuning {
                enabled: true,
                tier_up_after: 10,
                specialize: true,
            },
        );
        profiled.note_claims(1_000_000);
        assert_eq!(profiled.tier(), Tier::Bytecode, "paths stay on tier 0");
        let forced = compiled(
            1,
            CompileTuning {
                enabled: true,
                tier_up_after: 0,
                specialize: true,
            },
        );
        assert_eq!(
            forced.tier(),
            Tier::Specialized,
            "threshold 0 skips profiling"
        );
    }

    #[test]
    fn specialize_off_pins_tier_zero() {
        let c = compiled(
            8,
            CompileTuning {
                enabled: true,
                tier_up_after: 0,
                specialize: false,
            },
        );
        assert_eq!(c.tier(), Tier::Bytecode);
        c.note_claims(1 << 20);
        assert_eq!(c.tier(), Tier::Bytecode);
    }

    #[test]
    fn general_shapes_stay_bytecode_even_when_forced() {
        // q6 mixes intersect/difference: General shape, no tier-1 body.
        let c = compiled(
            6,
            CompileTuning {
                enabled: true,
                tier_up_after: 0,
                specialize: true,
            },
        );
        assert_eq!(c.shape(), SpecShape::General);
        assert_eq!(c.tier(), Tier::Bytecode);
        c.note_claims(1 << 20);
        assert_eq!(c.tier(), Tier::Bytecode);
    }

    #[test]
    fn concurrent_promoters_record_one_tier_up() {
        let c = std::sync::Arc::new(compiled(
            8,
            CompileTuning {
                enabled: true,
                tier_up_after: 1,
                specialize: true,
            },
        ));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..64 {
                        c.note_claims(7);
                    }
                });
            }
        });
        let (tier, ups, claims) = c.profile();
        assert_eq!(tier, Tier::Specialized);
        assert_eq!(ups, 1);
        assert_eq!(claims, 8 * 64 * 7);
    }
}
