//! Graceful degradation: bounded retry with a downgraded configuration.
//!
//! When launch planning fails — the shared-memory budget overflows or the
//! global stack-slab reservation exceeds the device budget — the engine
//! does not surface the [`LaunchError`] immediately. Instead it walks a
//! **degradation ladder**: each rung trades throughput for footprint while
//! provably preserving counts (unroll size, grid width and slab capacity
//! are all count-invariant; slab shrinkage is backed by the arena's
//! transparent heap spill, the simulator analogue of spilling stacks to
//! global/CPU memory):
//!
//! 1. halve `unroll` (shared `Csize` rows and global slabs shrink with it),
//! 2. shrink `max_degree_slab` (global-memory pressure only — candidate
//!    lists longer than the slab spill to the heap at a spill-event cost),
//! 3. halve `warps_per_block` (fewer mirrors and cursor arrays per block).
//!
//! The walk is bounded by [`RecoveryPolicy::max_downgrades`] with a fixed
//! backoff sleep between attempts; every rung taken is recorded as a
//! [`DowngradeStep`] in the outcome so operators can see what the run paid
//! for surviving.

use crate::config::EngineConfig;
use std::time::Duration;
use stmatch_gpusim::LaunchError;

/// Bounds on the engine's automatic fault recovery. Lives on
/// [`EngineConfig`] (and is `Copy` like it); defaults are permissive
/// enough that fixture-scale runs recover fully, [`RecoveryPolicy::
/// disabled`] restores the fail-fast behavior of earlier revisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum degradation-ladder rungs taken before the launch error is
    /// surfaced to the caller.
    pub max_downgrades: u32,
    /// Sleep between relaunch attempts (a real service would let the
    /// allocator/device settle; here it keeps retry storms bounded).
    pub backoff: Duration,
    /// Maximum salvage relaunches draining work requeued from dead warps
    /// after the main launch returned (naive mode has no idle phase to
    /// absorb a late requeue; an all-warps-dead grid leaves everything).
    pub salvage_relaunches: u32,
    /// Maximum sharded recovery rounds after a sharded run joins with
    /// unfinished rail work (shard deaths the live survivors did not fully
    /// drain). Each round halves the shard count; past the budget the
    /// driver falls back to one cold single-grid pass (see `shard`).
    pub shard_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_downgrades: 12,
            backoff: Duration::from_millis(1),
            salvage_relaunches: 2,
            shard_retries: 2,
        }
    }
}

impl RecoveryPolicy {
    /// No automatic recovery: launch errors surface immediately and
    /// leftover requeued work is abandoned (reported as `unrecovered`).
    /// Sharded runs skip the halving rounds and go straight to the cold
    /// single-grid fallback, which stays count-exact.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_downgrades: 0,
            backoff: Duration::ZERO,
            salvage_relaunches: 0,
            shard_retries: 0,
        }
    }
}

/// One rung of the degradation ladder, as recorded in
/// [`MatchOutcome::downgrades`](crate::MatchOutcome::downgrades).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DowngradeStep {
    /// `unroll` was halved.
    Unroll {
        /// Previous unroll size.
        from: usize,
        /// New unroll size.
        to: usize,
    },
    /// `max_degree_slab` was shrunk (lists beyond it spill to the heap).
    MaxDegreeSlab {
        /// Previous slab capacity.
        from: usize,
        /// New slab capacity.
        to: usize,
    },
    /// `warps_per_block` was halved.
    WarpsPerBlock {
        /// Previous warps per block.
        from: usize,
        /// New warps per block.
        to: usize,
    },
}

impl std::fmt::Display for DowngradeStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DowngradeStep::Unroll { from, to } => write!(f, "unroll {from} -> {to}"),
            DowngradeStep::MaxDegreeSlab { from, to } => {
                write!(f, "max_degree_slab {from} -> {to} (heap spill beyond)")
            }
            DowngradeStep::WarpsPerBlock { from, to } => {
                write!(f, "warps_per_block {from} -> {to}")
            }
        }
    }
}

/// One rung of the *shard* degradation ladder, recorded in
/// [`ShardedOutcome::degradations`](crate::shard::ShardedOutcome). Separate
/// from [`DowngradeStep`]: these rungs change how many grids run, not the
/// per-grid geometry, and only sharded runs can take them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStep {
    /// A recovery round relaunched the leftover work on fewer shards.
    FewerShards {
        /// Shard count of the round that left work behind.
        from: usize,
        /// Shard count of the recovery round.
        to: usize,
    },
    /// The retry budget ran out; leftovers were finished by one cold
    /// single-grid pass through the plain engine path.
    SingleGrid,
}

impl std::fmt::Display for ShardStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardStep::FewerShards { from, to } => write!(f, "shards {from} -> {to}"),
            ShardStep::SingleGrid => write!(f, "cold single-grid fallback"),
        }
    }
}

/// Floor below which the slab is not shrunk further (spilling *every*
/// list defeats the arena; past this rung the ladder moves on to the
/// grid dimension).
const SLAB_FLOOR: usize = 64;

/// Picks the next rung down for a config that failed with `err`, or
/// `None` when the ladder is exhausted for that failure mode. Every rung
/// is count-invariant (see module docs).
pub fn degrade(cfg: &EngineConfig, err: &LaunchError) -> Option<(EngineConfig, DowngradeStep)> {
    let mut next = *cfg;
    match err {
        LaunchError::SharedMemory(_) => {
            // Shared budget: Csize rows scale with unroll, everything else
            // with warps_per_block.
            if cfg.unroll > 1 {
                next.unroll = cfg.unroll / 2;
                return Some((
                    next,
                    DowngradeStep::Unroll {
                        from: cfg.unroll,
                        to: next.unroll,
                    },
                ));
            }
            if cfg.grid.warps_per_block > 1 {
                next.grid.warps_per_block = cfg.grid.warps_per_block / 2;
                return Some((
                    next,
                    DowngradeStep::WarpsPerBlock {
                        from: cfg.grid.warps_per_block,
                        to: next.grid.warps_per_block,
                    },
                ));
            }
            None
        }
        LaunchError::GlobalMemory(_) => {
            // Stack slabs: num_sets × unroll × max_degree_slab × warps.
            if cfg.unroll > 1 {
                next.unroll = cfg.unroll / 2;
                return Some((
                    next,
                    DowngradeStep::Unroll {
                        from: cfg.unroll,
                        to: next.unroll,
                    },
                ));
            }
            if cfg.max_degree_slab > SLAB_FLOOR {
                next.max_degree_slab = (cfg.max_degree_slab / 4).max(SLAB_FLOOR);
                return Some((
                    next,
                    DowngradeStep::MaxDegreeSlab {
                        from: cfg.max_degree_slab,
                        to: next.max_degree_slab,
                    },
                ));
            }
            if cfg.grid.warps_per_block > 1 {
                next.grid.warps_per_block = cfg.grid.warps_per_block / 2;
                return Some((
                    next,
                    DowngradeStep::WarpsPerBlock {
                        from: cfg.grid.warps_per_block,
                        to: next.grid.warps_per_block,
                    },
                ));
            }
            None
        }
        // Bad geometry is a caller error; no rung fixes it.
        LaunchError::BadGeometry(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_gpusim::memory::{OutOfMemory, SharedOverflow};

    fn shared_err() -> LaunchError {
        LaunchError::SharedMemory(SharedOverflow {
            what: "test".into(),
            requested: 1,
            used: 1,
            capacity: 1,
        })
    }

    fn global_err() -> LaunchError {
        LaunchError::GlobalMemory(OutOfMemory {
            requested: 1,
            in_use: 1,
            limit: 1,
        })
    }

    #[test]
    fn shared_ladder_unroll_then_warps_then_exhausts() {
        let mut cfg = EngineConfig::default();
        cfg.grid.warps_per_block = 4;
        let mut steps = Vec::new();
        while let Some((next, step)) = degrade(&cfg, &shared_err()) {
            steps.push(step);
            cfg = next;
        }
        assert_eq!(cfg.unroll, 1);
        assert_eq!(cfg.grid.warps_per_block, 1);
        // unroll 8->4->2->1, then wpb 4->2->1.
        assert_eq!(steps.len(), 5);
        assert!(matches!(steps[0], DowngradeStep::Unroll { from: 8, to: 4 }));
        assert!(matches!(
            steps[4],
            DowngradeStep::WarpsPerBlock { from: 2, to: 1 }
        ));
    }

    #[test]
    fn global_ladder_includes_slab_spill_with_floor() {
        let mut cfg = EngineConfig {
            unroll: 1,
            ..EngineConfig::default()
        };
        cfg.grid.warps_per_block = 1;
        let (next, step) = degrade(&cfg, &global_err()).unwrap();
        assert_eq!(next.max_degree_slab, 1024);
        assert!(matches!(
            step,
            DowngradeStep::MaxDegreeSlab {
                from: 4096,
                to: 1024
            }
        ));
        let mut cfg = next;
        while let Some((next, _)) = degrade(&cfg, &global_err()) {
            cfg = next;
        }
        assert_eq!(cfg.max_degree_slab, SLAB_FLOOR);
    }

    #[test]
    fn bad_geometry_has_no_rung() {
        let cfg = EngineConfig::default();
        assert!(degrade(&cfg, &LaunchError::BadGeometry("x".into())).is_none());
    }

    #[test]
    fn every_rung_yields_a_valid_config() {
        let mut cfg = EngineConfig::default();
        for err in [shared_err(), global_err()] {
            while let Some((next, _)) = degrade(&cfg, &err) {
                next.validate();
                cfg = next;
            }
        }
    }
}
