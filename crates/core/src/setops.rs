//! Warp-wide set operations — the `getCandidates` primitives.
//!
//! Candidate sets are sorted vertex lists; intersections and differences
//! against neighbor lists are computed with one membership probe per
//! element, one element per SIMT lane (§IV of the paper). The *combined*
//! variants process the sets of several unroll slots in a single stream of
//! waves (Fig. 8): a prefix sum over set sizes maps each lane to a
//! `(set index, offset)` pair, lanes probe their own operand, a ballot
//! collects the survivors and `popc`-ranking compacts them into the
//! output sets. With unroll size 1 the same code degrades to the naive
//! one-set-at-a-time operation whose lane utilization is bounded by the
//! data graph's (usually small) degrees — the effect Fig. 13 quantifies.
//!
//! **Adaptive membership probes.** The *simulated* cost model charges one
//! lane instruction per streamed element regardless of how the host
//! resolves membership, so the host is free to pick the cheapest real
//! algorithm per slot without perturbing any simulator metric:
//!
//! * [`SetOpAlgo::BinarySearch`] — `O(log |B|)` per element; the
//!   always-correct default for mid-range size ratios.
//! * [`SetOpAlgo::Merge`] — a monotone cursor walked linearly; `O(|A|+|B|)`
//!   total, best when `|B|` is comparable to `|A|`. Correct because each
//!   slot's elements stream in ascending order.
//! * [`SetOpAlgo::Gallop`] — exponential search from the monotone cursor,
//!   then binary search inside the bracket; best when `|B| ≫ |A|`.
//!
//! [`choose_algo`] picks per slot from the size ratio using the
//! [`SetOpTuning`] thresholds (an [`EngineConfig`](crate::config::EngineConfig)
//! knob). An empty operand short-circuits the probe entirely: intersection
//! drops every element, difference keeps every element.
//!
//! **Sinks.** Outputs stream through the [`SetSink`] trait so callers
//! choose where survivors land: plain `[Vec<VertexId>]` buffers (the
//! baselines, tests) or the flat stack arena's
//! [`ArenaWriter`](crate::arena::ArenaWriter) (the kernel's
//! allocation-free hot path).

use stmatch_gpusim::{Warp, WARP_SIZE};
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::{LabelMask, OpKind};

/// Destination of a combined set operation: one output list per unroll
/// slot. `begin(u, hint)` resets slot `u` before its first `push`; pushes
/// arrive in ascending element order per slot.
pub trait SetSink {
    fn begin(&mut self, slot: usize, capacity_hint: usize);
    fn push(&mut self, slot: usize, value: VertexId);

    /// Bulk append, equivalent to pushing every value in order; sinks
    /// override this with a block copy for the unfiltered-copy fast path.
    fn extend(&mut self, slot: usize, values: &[VertexId]) {
        for &v in values {
            self.push(slot, v);
        }
    }
}

/// Plain heap-vector sink; reuses each vector's capacity across calls.
impl SetSink for [Vec<VertexId>] {
    #[inline]
    fn begin(&mut self, slot: usize, capacity_hint: usize) {
        self[slot].clear();
        self[slot].reserve(capacity_hint);
    }

    #[inline]
    fn push(&mut self, slot: usize, value: VertexId) {
        self[slot].push(value);
    }

    #[inline]
    fn extend(&mut self, slot: usize, values: &[VertexId]) {
        self[slot].extend_from_slice(values);
    }
}

/// Host-side membership algorithm for one slot of a combined set op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetOpAlgo {
    /// Full-range binary search per streamed element.
    BinarySearch,
    /// Linear merge: a monotone operand cursor advanced element by element.
    Merge,
    /// Galloping (exponential) search from the monotone cursor.
    Gallop,
}

/// Size-ratio thresholds for [`choose_algo`]. With `|A|` the input length
/// and `|B|` the operand length: merge when `|B| ≤ merge_ratio·|A|`,
/// gallop when `|B| ≥ gallop_ratio·|A|`, binary search between. `force`
/// pins one algorithm for every slot (tests, ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetOpTuning {
    pub merge_ratio: usize,
    pub gallop_ratio: usize,
    pub force: Option<SetOpAlgo>,
}

impl Default for SetOpTuning {
    fn default() -> Self {
        SetOpTuning {
            merge_ratio: 4,
            gallop_ratio: 64,
            force: None,
        }
    }
}

impl SetOpTuning {
    /// A tuning that pins every slot to `algo` (bypasses the ratio test).
    pub fn forced(algo: SetOpAlgo) -> Self {
        SetOpTuning {
            force: Some(algo),
            ..SetOpTuning::default()
        }
    }
}

/// Picks the membership algorithm for one slot from the input/operand
/// size ratio (see [`SetOpTuning`]).
#[inline]
pub fn choose_algo(input_len: usize, operand_len: usize, t: SetOpTuning) -> SetOpAlgo {
    if let Some(f) = t.force {
        return f;
    }
    if operand_len <= input_len.saturating_mul(t.merge_ratio) {
        SetOpAlgo::Merge
    } else if operand_len >= input_len.saturating_mul(t.gallop_ratio) {
        SetOpAlgo::Gallop
    } else {
        SetOpAlgo::BinarySearch
    }
}

/// First index `i ≥ lo` with `ops[i] ≥ value`, found by exponential
/// probing from `lo` followed by binary search inside the bracket.
/// Amortized `O(log gap)` across a monotone scan.
#[inline]
fn gallop_to(ops: &[VertexId], lo: usize, value: VertexId) -> usize {
    let n = ops.len();
    if lo >= n || ops[lo] >= value {
        return lo;
    }
    // Invariant: ops[base] < value; limit is exclusive upper bound.
    let mut step = 1usize;
    let mut base = lo;
    let mut limit = n;
    while base + step < n {
        if ops[base + step] < value {
            base += step;
            step <<= 1;
        } else {
            limit = base + step;
            break;
        }
    }
    base + 1 + ops[base + 1..limit].partition_point(|&x| x < value)
}

/// Copies `sources[u]` into `outs[u]` keeping only vertices admitted by
/// `mask`, for all slots in one combined lane stream.
pub fn materialize_base(
    warp: &mut Warp,
    g: &Graph,
    sources: &[&[VertexId]],
    mask: LabelMask,
    outs: &mut [Vec<VertexId>],
) {
    debug_assert_eq!(sources.len(), outs.len());
    materialize_base_into(warp, g, sources, mask, outs)
}

/// [`materialize_base`] streaming into any [`SetSink`].
pub fn materialize_base_into<S: SetSink + ?Sized>(
    warp: &mut Warp,
    g: &Graph,
    sources: &[&[VertexId]],
    mask: LabelMask,
    out: &mut S,
) {
    for (u, src) in sources.iter().enumerate() {
        out.begin(u, src.len());
    }
    if mask.is_all() {
        // Unfiltered copy: move the data with one block copy per slot and
        // replay the stream's wave accounting verbatim — the per-element
        // closure below touches no warp state, so metrics are identical.
        for (u, src) in sources.iter().enumerate() {
            out.extend(u, src);
        }
        stream_accounting(warp, sources);
        return;
    }
    stream_slots(warp, sources, |_warp, slot, value| {
        if mask.allows(g.label(value)) {
            out.push(slot, value);
        }
    });
}

/// Computes `outs[u] = inputs[u] (∩ | −) operands[u]` filtered by `mask`,
/// for all slots in one combined lane stream, with default adaptive
/// tuning. Inputs and operands must be sorted ascending; outputs are
/// sorted ascending.
pub fn apply_op(
    warp: &mut Warp,
    g: &Graph,
    inputs: &[&[VertexId]],
    operands: &[&[VertexId]],
    kind: OpKind,
    mask: LabelMask,
    outs: &mut [Vec<VertexId>],
) {
    debug_assert_eq!(inputs.len(), outs.len());
    apply_op_into(
        warp,
        g,
        inputs,
        operands,
        kind,
        mask,
        SetOpTuning::default(),
        outs,
    )
}

/// [`apply_op`] streaming into any [`SetSink`], with explicit tuning.
///
/// The algorithm choice is per slot and purely host-side: wave, scan,
/// ballot, and survivor-rank accounting are identical across the three
/// paths (the simulated probe costs one lane instruction either way), so
/// simulator metrics are bit-identical regardless of tuning.
#[allow(clippy::too_many_arguments)]
pub fn apply_op_into<S: SetSink + ?Sized>(
    warp: &mut Warp,
    g: &Graph,
    inputs: &[&[VertexId]],
    operands: &[&[VertexId]],
    kind: OpKind,
    mask: LabelMask,
    tuning: SetOpTuning,
    out: &mut S,
) {
    debug_assert_eq!(inputs.len(), operands.len());
    debug_assert!(inputs.len() <= WARP_SIZE);
    let mut algo = [SetOpAlgo::BinarySearch; WARP_SIZE];
    let mut cursor = [0usize; WARP_SIZE];
    for (u, (inp, ops)) in inputs.iter().zip(operands).enumerate() {
        out.begin(u, inp.len());
        algo[u] = choose_algo(inp.len(), ops.len(), tuning);
    }
    stream_slots(warp, inputs, |warp, slot, value| {
        let ops = operands[slot];
        let found = if ops.is_empty() {
            // Empty operand: ∩ drops everything, − keeps everything.
            false
        } else {
            match algo[slot] {
                SetOpAlgo::BinarySearch => ops.binary_search(&value).is_ok(),
                SetOpAlgo::Merge => {
                    let c = &mut cursor[slot];
                    while *c < ops.len() && ops[*c] < value {
                        *c += 1;
                    }
                    *c < ops.len() && ops[*c] == value
                }
                SetOpAlgo::Gallop => {
                    let c = &mut cursor[slot];
                    *c = gallop_to(ops, *c, value);
                    *c < ops.len() && ops[*c] == value
                }
            }
        };
        let keep = match kind {
            OpKind::Intersect => found,
            OpKind::Difference => !found,
        };
        // One extra lane instruction for the label check on labeled runs.
        if keep && (mask.is_all() || mask.allows(g.label(value))) {
            // Output offset = popc of lower survivor lanes (Fig. 8); with
            // in-order lane simulation a push lands at exactly that offset.
            let _ = warp.rank_in_mask(0, 0);
            out.push(slot, value);
        }
    });
}

/// Issues exactly the waves [`stream_slots`] would issue for `slots` —
/// size prefix-scan, full waves, one ballot per wave — without visiting
/// the elements. Used by fast paths that move data with block copies but
/// must keep the simulated accounting identical.
fn stream_accounting(warp: &mut Warp, slots: &[&[VertexId]]) {
    assert!(
        slots.len() <= WARP_SIZE,
        "combined set op over {} slots exceeds the warp width {}",
        slots.len(),
        WARP_SIZE
    );
    let total: usize = slots.iter().map(|s| s.len()).sum();
    if total == 0 {
        return;
    }
    if slots.len() > 1 {
        let mut sizes = [0u32; WARP_SIZE];
        for (i, s) in slots.iter().enumerate() {
            sizes[i] = s.len() as u32;
        }
        let _ = warp.exclusive_scan(&mut sizes);
    }
    let waves = total.div_ceil(WARP_SIZE);
    for wave in 0..waves {
        let in_wave = (total - wave * WARP_SIZE).min(WARP_SIZE);
        let active = if in_wave == WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << in_wave) - 1
        };
        warp.wave(active, |_| {});
        let _ = warp.ballot(active);
    }
}

/// Streams the concatenated elements of all slots through SIMT waves,
/// invoking `f(warp, slot, value)` per element, with Fig. 8 accounting:
/// a size prefix-scan per batch, full waves of 32 lanes, and one ballot
/// per wave for the output compaction. Within a slot, elements stream in
/// ascending order (what makes monotone-cursor probes correct).
fn stream_slots<F: FnMut(&mut Warp, usize, VertexId)>(
    warp: &mut Warp,
    slots: &[&[VertexId]],
    mut f: F,
) {
    // The Fig. 8 lane mapping assigns one slot size per scan lane; more
    // slots than lanes would silently drop sizes from the prefix scan.
    // `EngineConfig::validate` bounds unroll at WARP_SIZE for this reason.
    assert!(
        slots.len() <= WARP_SIZE,
        "combined set op over {} slots exceeds the warp width {}",
        slots.len(),
        WARP_SIZE
    );
    let total: usize = slots.iter().map(|s| s.len()).sum();
    if total == 0 {
        return;
    }
    if slots.len() > 1 {
        // size_scan: one warp scan maps lanes to (set_idx, set_ofs).
        let mut sizes = [0u32; WARP_SIZE];
        for (i, s) in slots.iter().enumerate() {
            sizes[i] = s.len() as u32;
        }
        let _ = warp.exclusive_scan(&mut sizes);
    }
    let waves = total.div_ceil(WARP_SIZE);
    let mut slot = 0usize;
    let mut ofs = 0usize;
    for wave in 0..waves {
        let in_wave = (total - wave * WARP_SIZE).min(WARP_SIZE);
        let active = if in_wave == WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << in_wave) - 1
        };
        // Issue the wave: per-lane membership probe / copy.
        warp.wave(active, |_| {});
        for _ in 0..in_wave {
            while ofs >= slots[slot].len() {
                slot += 1;
                ofs = 0;
            }
            let value = slots[slot][ofs];
            f(warp, slot, value);
            ofs += 1;
        }
        // bsearch_res ballot for output compaction.
        let _ = warp.ballot(active);
    }
}

/// Counts elements of `set` that satisfy a per-element predicate, as one
/// warp-wide pass (used at the last level, where candidates are counted
/// rather than iterated).
pub fn count_with<F: FnMut(VertexId) -> bool>(
    warp: &mut Warp,
    set: &[VertexId],
    mut pred: F,
) -> u64 {
    let mut count = 0u64;
    warp.simt_for(set.len(), |i| {
        if pred(set[i]) {
            count += 1;
        }
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::gen;

    // Helper that runs `f` on a real warp inside a 1-warp grid launch and
    // returns the warp's metrics.
    fn with_warp<F: Fn(&mut Warp) + Sync>(f: F) -> stmatch_gpusim::WarpMetrics {
        let grid = stmatch_gpusim::Grid::new(stmatch_gpusim::GridConfig {
            num_blocks: 1,
            warps_per_block: 1,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let m = grid.launch(|w| f(w));
        m.warps[0]
    }

    #[test]
    fn intersect_matches_reference() {
        let g = gen::complete(2); // labels unused (mask ALL)
        let a: Vec<VertexId> = vec![1, 3, 5, 7, 9, 11];
        let b: Vec<VertexId> = vec![3, 4, 5, 6, 7];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![3, 5, 7]);
        });
    }

    #[test]
    fn difference_matches_reference() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = vec![1, 3, 5, 7];
        let b: Vec<VertexId> = vec![3, 7, 8];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Difference,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![1, 5]);
        });
    }

    #[test]
    fn combined_slots_equal_individual_ops() {
        let g = gen::complete(2);
        let ins: Vec<Vec<VertexId>> = vec![vec![1, 2, 3], vec![10, 20, 30, 40], vec![5]];
        let ops: Vec<Vec<VertexId>> = vec![vec![2, 3, 4], vec![20, 40], vec![6]];
        let _ = with_warp(move |w| {
            let in_refs: Vec<&[VertexId]> = ins.iter().map(|v| v.as_slice()).collect();
            let op_refs: Vec<&[VertexId]> = ops.iter().map(|v| v.as_slice()).collect();
            let mut combined = vec![Vec::new(), Vec::new(), Vec::new()];
            apply_op(
                w,
                &g,
                &in_refs,
                &op_refs,
                OpKind::Intersect,
                LabelMask::ALL,
                &mut combined,
            );
            assert_eq!(combined[0], vec![2, 3]);
            assert_eq!(combined[1], vec![20, 40]);
            assert!(combined[2].is_empty());
        });
    }

    #[test]
    fn combined_ops_issue_fewer_waves() {
        // Eight 4-element sets: one-at-a-time needs 8 waves of 4/32 active;
        // combined needs ceil(32/32) = 1 wave of 32/32.
        let g = gen::complete(2);
        let sets: Vec<Vec<VertexId>> = (0..8).map(|s| vec![s, s + 10, s + 20, s + 30]).collect();
        let op: Vec<VertexId> = (0..64).collect();

        let m_single = with_warp(|w| {
            for s in &sets {
                let mut outs = vec![Vec::new()];
                apply_op(
                    w,
                    &g,
                    &[s.as_slice()],
                    &[op.as_slice()],
                    OpKind::Intersect,
                    LabelMask::ALL,
                    &mut outs,
                );
            }
        });
        let m_combined = with_warp(|w| {
            let in_refs: Vec<&[VertexId]> = sets.iter().map(|v| v.as_slice()).collect();
            let op_refs: Vec<&[VertexId]> = vec![op.as_slice(); 8];
            let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); 8];
            apply_op(
                w,
                &g,
                &in_refs,
                &op_refs,
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
        });
        assert!(
            m_combined.lane_utilization() > m_single.lane_utilization(),
            "combined {} vs single {}",
            m_combined.lane_utilization(),
            m_single.lane_utilization()
        );
    }

    #[test]
    fn base_materialization_filters_labels() {
        let g = gen::complete(6).relabeled(vec![0, 1, 0, 1, 0, 1]);
        let src: Vec<VertexId> = vec![0, 1, 2, 3, 4, 5];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            materialize_base(w, &g, &[&src], LabelMask::single(1), &mut outs);
            assert_eq!(outs[0], vec![1, 3, 5]);
        });
    }

    #[test]
    fn outputs_stay_sorted() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = (0..100).collect();
        let b: Vec<VertexId> = (0..100).filter(|v| v % 3 == 0).collect();
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert!(outs[0].windows(2).all(|p| p[0] < p[1]));
            assert_eq!(outs[0].len(), 34);
        });
    }

    #[test]
    fn count_with_accounts_lanes() {
        let set: Vec<VertexId> = (0..40).collect();
        let m = with_warp(move |w| {
            let c = count_with(w, &set, |v| v % 2 == 0);
            assert_eq!(c, 20);
        });
        assert_eq!(m.issued_lane_slots, 64);
        assert_eq!(m.active_lane_slots, 40);
    }

    #[test]
    fn choose_algo_respects_thresholds() {
        let t = SetOpTuning::default(); // merge ≤ 4×, gallop ≥ 64×
        assert_eq!(choose_algo(100, 100, t), SetOpAlgo::Merge);
        assert_eq!(choose_algo(100, 400, t), SetOpAlgo::Merge);
        assert_eq!(choose_algo(100, 401, t), SetOpAlgo::BinarySearch);
        assert_eq!(choose_algo(100, 6399, t), SetOpAlgo::BinarySearch);
        assert_eq!(choose_algo(100, 6400, t), SetOpAlgo::Gallop);
        assert_eq!(
            choose_algo(1, 1_000_000, SetOpTuning::forced(SetOpAlgo::Merge)),
            SetOpAlgo::Merge
        );
    }

    #[test]
    fn forced_algos_agree_and_keep_metrics_identical() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = (0..200).step_by(3).collect();
        let b: Vec<VertexId> = (0..200).step_by(2).collect();
        let mut results: Vec<(Vec<VertexId>, u64, u64)> = Vec::new();
        for algo in [SetOpAlgo::BinarySearch, SetOpAlgo::Merge, SetOpAlgo::Gallop] {
            for kind in [OpKind::Intersect, OpKind::Difference] {
                let (a, b, g) = (a.clone(), b.clone(), g.clone());
                let out = std::sync::Mutex::new(Vec::new());
                let m = with_warp(|w| {
                    let mut outs = vec![Vec::new()];
                    apply_op_into(
                        w,
                        &g,
                        &[&a],
                        &[&b],
                        kind,
                        LabelMask::ALL,
                        SetOpTuning::forced(algo),
                        &mut outs[..],
                    );
                    *out.lock().unwrap() = outs.remove(0);
                });
                results.push((
                    out.into_inner().unwrap(),
                    m.simt_instructions,
                    m.issued_lane_slots,
                ));
            }
        }
        // All three algorithms: same outputs, same simulated cost.
        for pair in results.chunks(2).skip(1) {
            assert_eq!(pair[0], results[0], "intersect path diverged");
            assert_eq!(pair[1], results[1], "difference path diverged");
        }
    }

    #[test]
    fn empty_operand_short_circuits_correctly() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = vec![2, 4, 6];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&[]],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert!(outs[0].is_empty());
            apply_op(
                w,
                &g,
                &[&a],
                &[&[]],
                OpKind::Difference,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![2, 4, 6]);
        });
    }

    #[test]
    fn gallop_to_finds_lower_bounds() {
        let ops: Vec<VertexId> = vec![1, 3, 5, 7, 9, 11, 13];
        assert_eq!(gallop_to(&ops, 0, 0), 0);
        assert_eq!(gallop_to(&ops, 0, 1), 0);
        assert_eq!(gallop_to(&ops, 0, 2), 1);
        assert_eq!(gallop_to(&ops, 0, 13), 6);
        assert_eq!(gallop_to(&ops, 0, 14), 7);
        assert_eq!(gallop_to(&ops, 3, 8), 4);
        assert_eq!(gallop_to(&ops, 7, 99), 7);
    }
}
